//! Predictor size-accounting audit (ISSUE 6 satellite d).
//!
//! `Prefetcher::memory_bytes()` is the honest resident footprint the
//! budget-sweep figures charge each predictor; `storage_bytes()` is the
//! modelled hardware budget. The two serve different comparisons and
//! must not drift from the actual data-structure layout: these tests pin
//! the per-entry growth of the unlimited correlation table, the
//! constancy of the fixed-array organizations, and the budget bound of
//! the sketch predictor — all through public API, by differencing real
//! allocations rather than restating private constants.

use ltc_cache::{Hierarchy, HierarchyConfig};
use ltc_predictors::table::TableConfig;
use ltc_predictors::{
    CorrelationTable, DbcpConfig, DbcpPrefetcher, GhbConfig, GhbPrefetcher, NullPrefetcher,
    Prefetcher, SketchDbcp, SketchDbcpConfig, StrideConfig, StridePrefetcher,
};
use ltc_trace::{Addr, MemoryAccess, Pc};

/// Drives a predictor through a conflict loop so its tables populate.
fn drive<P: Prefetcher>(p: &mut P, iterations: usize) {
    let mut h = Hierarchy::new(HierarchyConfig::paper());
    let span = 512 * 64;
    let mut out = Vec::new();
    for i in 0..iterations {
        for alias in 0..4u64 {
            let addr = Addr((i as u64 % 64) * 64 + alias * span);
            let a = MemoryAccess::load(Pc(0x400 + alias * 8), addr);
            let outcome = h.access(a.addr, a.kind);
            p.on_access(&a, &outcome, &mut out);
            out.clear();
        }
    }
}

/// The unlimited table's resident memory grows linearly: each distinct
/// signature costs exactly the same number of bytes, and the total is
/// always `len × per_entry`. (The hardware model stays at the paper's
/// 5 B/signature, strictly below the honest count.)
#[test]
fn unlimited_table_memory_grows_per_entry() {
    let mut table = CorrelationTable::new(TableConfig::unlimited());
    assert_eq!(table.memory_bytes(), 0);
    let sig = |i: u32| ltc_lasttouch::Signature(0x1000 + i * 17);
    table.train(sig(0), Addr(0x40));
    let per_entry = table.memory_bytes();
    assert!(per_entry > 0);
    for i in 1..500u32 {
        table.train(sig(i), Addr(0x40 + u64::from(i) * 64));
        assert_eq!(
            table.memory_bytes(),
            table.len() as u64 * per_entry,
            "entry {i} broke linear growth"
        );
    }
    // Re-training an existing signature allocates nothing.
    let before = table.memory_bytes();
    table.train(sig(3), Addr(0x9999 * 64));
    assert_eq!(table.memory_bytes(), before);
    assert!(table.storage_bytes() < table.memory_bytes(), "5 B model must undercut resident");
}

/// The finite organization allocates its sets×ways array up front: the
/// resident count is non-zero from construction and never moves, no
/// matter how many signatures stream through.
#[test]
fn finite_table_memory_is_constant() {
    let mut table = CorrelationTable::new(TableConfig::with_bytes(64 << 10));
    let cold = table.memory_bytes();
    assert!(cold > 0, "fixed array must be charged when empty");
    for i in 0..10_000u32 {
        table.train(ltc_lasttouch::Signature(i), Addr(u64::from(i) * 64));
    }
    assert_eq!(table.memory_bytes(), cold);
    assert_eq!(table.storage_bytes(), table.storage_bytes(), "model stays capacity-based");
}

/// Fixed-array prefetchers (GHB, stride) must report a footprint that is
/// constant across any stream and at least the modelled hardware bytes
/// (full-width entries cannot be smaller than the packed model).
#[test]
fn fixed_array_prefetchers_report_constant_honest_memory() {
    let mut ghb = GhbPrefetcher::new(GhbConfig::default());
    let mut stride = StridePrefetcher::new(StrideConfig::default());
    let ghb_cold = ghb.memory_bytes();
    let stride_cold = stride.memory_bytes();
    drive(&mut ghb, 500);
    drive(&mut stride, 500);
    assert_eq!(ghb.memory_bytes(), ghb_cold, "GHB arrays are fixed");
    assert_eq!(stride.memory_bytes(), stride_cold, "stride table is fixed");
    assert!(ghb.memory_bytes() >= ghb.storage_bytes());
    assert!(stride.memory_bytes() >= stride.storage_bytes());
}

/// DBCP's honest footprint = table resident + history storage; with the
/// unlimited table it must grow as signatures accumulate, and always
/// exceed the 5 B/signature hardware model.
#[test]
fn dbcp_memory_tracks_table_growth() {
    let mut p = DbcpPrefetcher::new(DbcpConfig::unlimited());
    let cold = p.memory_bytes();
    drive(&mut p, 2_000);
    assert!(p.table_len() > 0, "drive loop must populate the table");
    assert!(p.memory_bytes() > cold, "unlimited table growth must show up");
    assert!(p.memory_bytes() > p.storage_bytes());
}

/// The sketch predictor's summary is budget-bounded up front, so its
/// honest footprint never exceeds the modelled budget+history storage,
/// and never moves however long the stream runs.
#[test]
fn sketch_dbcp_memory_stays_within_budget() {
    let mut p = SketchDbcp::new(SketchDbcpConfig::with_budget_bytes(64 << 10));
    let cold = p.memory_bytes();
    drive(&mut p, 3_000);
    assert_eq!(p.memory_bytes(), cold, "sketch allocation is up front");
    assert!(p.memory_bytes() <= p.storage_bytes(), "resident must fit the modelled budget");
}

/// The baseline holds nothing; the trait default ties memory to storage.
#[test]
fn null_prefetcher_holds_nothing() {
    let p = NullPrefetcher::new();
    assert_eq!(p.storage_bytes(), 0);
    assert_eq!(p.memory_bytes(), 0);
    assert!(p.is_passive());
}
