//! A sketch-backed dead-block correlating prefetcher.
//!
//! `SketchDbcp` is DBCP with the exact correlation table replaced by a
//! bounded-memory [`ChhSummary`]: last-touch signatures are the keys,
//! observed replacement blocks the correlated values. Where the exact
//! table stores one `(signature → prediction, confidence)` entry per
//! distinct signature — megabytes that grow with the trace — the sketch
//! monitors only the heavy-hitter signatures and their dominant
//! replacements inside a byte budget fixed at construction, trading the
//! cold tail of the signature distribution for trace-length-independent
//! memory.
//!
//! Prediction plays the role of the table's 2-bit confidence: a
//! replacement is predicted once its pair estimate reaches
//! [`SketchDbcpConfig::min_count`] *and* dominates the runner-up by
//! [`SketchDbcpConfig::dominance`] — the sketch analogue of "confident
//! and not flapping between targets".

use ltc_cache::{CacheConfig, HierarchyOutcome, ImageError, MemLevel, PrefetchOutcome};
use ltc_lasttouch::{HistoryTable, SignatureScheme};
use ltc_stream::{ChhConfig, ChhSummary};
use ltc_trace::{Addr, MemoryAccess};

use crate::image::{PredictorImage, SketchImage};
use crate::prefetcher::{PrefetchRequest, Prefetcher};

/// Configuration for [`SketchDbcp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchDbcpConfig {
    /// Byte budget for the correlation summary (the axis the sketch
    /// budget-sweep figure varies).
    pub budget_bytes: u64,
    /// Replacement candidates monitored per signature.
    pub inner_capacity: usize,
    /// Minimum pair estimate before a prediction fires.
    pub min_count: u64,
    /// The top candidate must reach `dominance ×` the runner-up's
    /// estimate (1 disables the check).
    pub dominance: u64,
    /// Signature scheme (32-bit trace mode by default).
    pub scheme: SignatureScheme,
    /// L1D geometry mirrored by the history table.
    pub l1: CacheConfig,
}

impl SketchDbcpConfig {
    /// A sketch predictor fitting `budget_bytes` of summary.
    ///
    /// `min_count` defaults to 1: real signature working sets exceed any
    /// interesting budget, so the summary churns and a monitored
    /// signature has typically been re-adopted since its last eviction.
    /// Demanding repeated confirmation would silence the predictor;
    /// instead a monitored signature predicts its dominant observed
    /// replacement immediately, and the Space-Saving outer summary is
    /// what concentrates the budget on signatures worth predicting.
    pub fn with_budget_bytes(budget_bytes: u64) -> Self {
        SketchDbcpConfig {
            budget_bytes,
            inner_capacity: 2,
            min_count: 1,
            dominance: 2,
            scheme: SignatureScheme::trace_mode(),
            l1: CacheConfig::l1d(),
        }
    }
}

/// DBCP over a correlated-heavy-hitter summary instead of an exact table.
#[derive(Debug)]
pub struct SketchDbcp {
    cfg: SketchDbcpConfig,
    history: HistoryTable,
    summary: ChhSummary,
    predictions: u64,
}

impl SketchDbcp {
    /// Creates a sketch predictor.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot hold a single signature (see
    /// [`ChhSummary::new`]).
    pub fn new(cfg: SketchDbcpConfig) -> Self {
        SketchDbcp {
            cfg,
            history: HistoryTable::new(cfg.l1, cfg.scheme),
            summary: ChhSummary::new(ChhConfig {
                budget_bytes: cfg.budget_bytes,
                inner_capacity: cfg.inner_capacity,
                ways: 8,
                seed: 0x17c5_723a,
            }),
            predictions: 0,
        }
    }

    /// Number of last-touch predictions made so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Signatures currently monitored by the summary (diagnostics).
    pub fn tracked_signatures(&self) -> usize {
        self.summary.keys()
    }

    fn line(&self, addr: Addr) -> Addr {
        addr.line(64)
    }
}

impl Prefetcher for SketchDbcp {
    fn name(&self) -> &'static str {
        "sketch-dbcp"
    }

    fn on_access(
        &mut self,
        access: &MemoryAccess,
        outcome: &HierarchyOutcome,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let line = self.line(access.addr);
        // Train on the demand eviction, exactly like exact DBCP: the
        // victim's last-touch signature correlates with this replacement.
        if let Some(ev) = &outcome.l1.evicted {
            if let Some(rec) = self.history.record_eviction(ev.addr, line) {
                self.summary.observe(u64::from(rec.signature.0), rec.predicted.0);
            }
        }
        let sig = self.history.record_access(access.addr, access.pc);
        if let Some((best, second)) = self.summary.best_two(u64::from(sig.0)) {
            let runner_up = second.map_or(0, |s| s.estimate);
            let confident = best.estimate >= self.cfg.min_count
                && best.estimate >= self.cfg.dominance * runner_up;
            let predicted = Addr(best.value);
            if confident && predicted != line {
                self.predictions += 1;
                out.push(PrefetchRequest::into_l1(predicted, line));
            }
        }
    }

    fn on_prefetch_applied(
        &mut self,
        req: &PrefetchRequest,
        outcome: &PrefetchOutcome,
        _source: MemLevel,
    ) {
        // Prefetch-induced evictions train the summary like demand ones;
        // there is no per-entry confidence to feed back — mispredictions
        // decay naturally because the true pairs outnumber them.
        if let PrefetchOutcome::Filled { evicted: Some(ev), .. } = outcome {
            if let Some(rec) = self.history.record_eviction(ev.addr, req.target) {
                self.summary.observe(u64::from(rec.signature.0), rec.predicted.0);
            }
        }
    }

    fn storage_bytes(&self) -> u64 {
        // The modelled hardware budget: the configured summary bytes plus
        // the history table DBCP also needs.
        self.cfg.budget_bytes + self.history.storage_bytes()
    }

    fn memory_bytes(&self) -> u64 {
        self.summary.memory_bytes() + self.history.storage_bytes()
    }

    fn image(&self) -> Option<PredictorImage> {
        Some(PredictorImage::Sketch(SketchImage {
            history: self.history.to_image(),
            summary: self.summary.to_state(),
            predictions: self.predictions,
        }))
    }

    fn restore_image(&mut self, image: &PredictorImage) -> Result<(), ImageError> {
        let PredictorImage::Sketch(img) = image else {
            return Err(image.kind_mismatch("sketch"));
        };
        // `ChhSummary::from_state` rebuilds from the snapshot's embedded
        // configuration; require it to match ours so a restore can never
        // silently change the summary's budget or bucketing.
        let same_cfg = img.summary.budget_bytes == self.cfg.budget_bytes
            && img.summary.inner_capacity == self.cfg.inner_capacity as u64
            && img.summary.ways == self.summary.config().ways as u64
            && img.summary.seed == self.summary.config().seed;
        if !same_cfg {
            return Err(ImageError::ConfigMismatch {
                expected: format!("{:?}", self.summary.config()),
                found: format!(
                    "budget {} inner {} ways {} seed {:#x}",
                    img.summary.budget_bytes,
                    img.summary.inner_capacity,
                    img.summary.ways,
                    img.summary.seed
                ),
            });
        }
        self.history.restore_image(&img.history)?;
        self.summary =
            ChhSummary::from_state(&img.summary).map_err(|e| ImageError::Invalid(e.to_string()))?;
        self.predictions = img.predictions;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_cache::{Hierarchy, HierarchyConfig};
    use ltc_trace::{AccessKind, Pc};

    fn drive_conflict_loop(p: &mut SketchDbcp, iterations: usize) -> (u64, u64) {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let span = 512 * 64;
        let lines = [0u64, span, 2 * span, 3 * span];
        let (mut accesses, mut misses) = (0u64, 0u64);
        let mut out = Vec::new();
        for _ in 0..iterations {
            for (i, &l) in lines.iter().enumerate() {
                let a = MemoryAccess::load(Pc(0x400 + i as u64 * 8), Addr(l));
                let o = h.access(a.addr, AccessKind::Load);
                accesses += 1;
                misses += u64::from(!o.l1.hit);
                p.on_access(&a, &o, &mut out);
                for req in out.drain(..) {
                    if h.l1().contains(req.target) {
                        continue;
                    }
                    let (po, src) = h.prefetch_into_l1(req.target, req.victim);
                    p.on_prefetch_applied(&req, &po, src);
                }
            }
        }
        (accesses, misses)
    }

    #[test]
    fn learns_recurring_conflict_pattern() {
        let mut p = SketchDbcp::new(SketchDbcpConfig::with_budget_bytes(64 << 10));
        let (accesses, misses) = drive_conflict_loop(&mut p, 50);
        assert!(p.predictions() > 0, "predictions must fire");
        assert!(
            (misses as f64) < 0.8 * (accesses as f64),
            "sketch DBCP should eliminate recurring conflict misses: {misses}/{accesses}"
        );
    }

    #[test]
    fn trains_summary_on_evictions() {
        let mut p = SketchDbcp::new(SketchDbcpConfig::with_budget_bytes(64 << 10));
        drive_conflict_loop(&mut p, 3);
        assert!(p.tracked_signatures() > 0, "evictions must register signatures");
    }

    #[test]
    fn no_prediction_without_training() {
        let mut p = SketchDbcp::new(SketchDbcpConfig::with_budget_bytes(64 << 10));
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut out = Vec::new();
        for i in 0..100u64 {
            let a = MemoryAccess::load(Pc(0x400), Addr(i * 64));
            let o = h.access(a.addr, AccessKind::Load);
            p.on_access(&a, &o, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(p.predictions(), 0);
    }

    #[test]
    fn resident_memory_respects_the_budget() {
        let budget = 32 << 10;
        let mut p = SketchDbcp::new(SketchDbcpConfig::with_budget_bytes(budget));
        let history = p.history.storage_bytes();
        drive_conflict_loop(&mut p, 200);
        assert!(
            p.memory_bytes() - history <= budget,
            "summary resident {} exceeds budget {budget}",
            p.memory_bytes() - history
        );
        assert_eq!(p.storage_bytes(), budget + history);
    }

    #[test]
    fn storage_is_independent_of_training() {
        let cold = SketchDbcp::new(SketchDbcpConfig::with_budget_bytes(16 << 10));
        let mut warm = SketchDbcp::new(SketchDbcpConfig::with_budget_bytes(16 << 10));
        drive_conflict_loop(&mut warm, 20);
        assert_eq!(cold.storage_bytes(), warm.storage_bytes());
    }
}
