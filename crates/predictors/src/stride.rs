//! A classic per-PC stride prefetcher (Baer & Chen style).

use ltc_cache::{HierarchyOutcome, ImageError};
use ltc_trace::{Addr, MemoryAccess, Pc};

use crate::image::{check_shapes, PredictorImage, StrideImage};
use crate::prefetcher::{PrefetchRequest, Prefetcher};

/// Configuration for [`StridePrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// Table entries (direct-mapped by PC).
    pub entries: usize,
    /// Consecutive equal strides required before prefetching.
    pub train_threshold: u8,
    /// Prefetch degree (blocks fetched ahead once trained).
    pub degree: u32,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig { entries: 256, train_threshold: 2, degree: 2 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc_tag: u64,
    last_addr: u64,
    stride: i64,
    count: u8,
    valid: bool,
}

/// Detects constant-stride streams per PC and prefetches ahead into L2.
///
/// Included as the historical baseline that GHB PC/DC subsumes (the paper's
/// Section 1 lists strided-access prefetchers as the narrow-coverage
/// starting point of the lineage).
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<StrideEntry>,
}

impl StridePrefetcher {
    /// Creates an empty stride table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(cfg: StrideConfig) -> Self {
        assert!(cfg.entries > 0, "stride table needs at least one entry");
        StridePrefetcher {
            cfg,
            table: vec![StrideEntry::default(); cfg.entries.next_power_of_two()],
        }
    }

    fn entry_mut(&mut self, pc: Pc) -> &mut StrideEntry {
        let idx = (pc.0 as usize) & (self.table.len() - 1);
        &mut self.table[idx]
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn on_access(
        &mut self,
        access: &MemoryAccess,
        outcome: &HierarchyOutcome,
        out: &mut Vec<PrefetchRequest>,
    ) {
        // Train on every access; issue only on misses to bound traffic.
        let cfg = self.cfg;
        let e = self.entry_mut(access.pc);
        let addr = access.addr.0;
        if !e.valid || e.pc_tag != access.pc.0 {
            *e = StrideEntry {
                pc_tag: access.pc.0,
                last_addr: addr,
                stride: 0,
                count: 0,
                valid: true,
            };
            return;
        }
        let new_stride = addr as i64 - e.last_addr as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.count = e.count.saturating_add(1);
        } else {
            e.stride = new_stride;
            e.count = 1;
        }
        e.last_addr = addr;
        if e.count >= cfg.train_threshold && !outcome.l1.hit {
            let stride = e.stride;
            for k in 1..=cfg.degree {
                let target = addr.wrapping_add_signed(stride * i64::from(k));
                out.push(PrefetchRequest::into_l2(Addr(target).line(64)));
            }
        }
    }

    fn storage_bytes(&self) -> u64 {
        // ~17 bytes per entry: tag + addr + stride + counter.
        self.table.len() as u64 * 17
    }

    fn memory_bytes(&self) -> u64 {
        // Fixed array: resident memory is the full-width entries.
        self.table.len() as u64 * std::mem::size_of::<StrideEntry>() as u64
    }

    fn image(&self) -> Option<PredictorImage> {
        Some(PredictorImage::Stride(StrideImage {
            pc_tag: self.table.iter().map(|e| e.pc_tag).collect(),
            last_addr: self.table.iter().map(|e| e.last_addr).collect(),
            stride: self.table.iter().map(|e| e.stride).collect(),
            count: self.table.iter().map(|e| e.count).collect(),
            valid: self.table.iter().map(|e| e.valid).collect(),
        }))
    }

    fn restore_image(&mut self, image: &PredictorImage) -> Result<(), ImageError> {
        let PredictorImage::Stride(img) = image else {
            return Err(image.kind_mismatch("stride"));
        };
        check_shapes(
            self.table.len(),
            &[
                ("pc_tag", img.pc_tag.len()),
                ("last_addr", img.last_addr.len()),
                ("stride", img.stride.len()),
                ("count", img.count.len()),
                ("valid", img.valid.len()),
            ],
        )?;
        for (i, e) in self.table.iter_mut().enumerate() {
            *e = StrideEntry {
                pc_tag: img.pc_tag[i],
                last_addr: img.last_addr[i],
                stride: img.stride[i],
                count: img.count[i],
                valid: img.valid[i],
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_cache::{Hierarchy, HierarchyConfig};
    use ltc_trace::AccessKind;

    fn run(accesses: &[(u64, u64)]) -> Vec<PrefetchRequest> {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut out = Vec::new();
        for &(pc, addr) in accesses {
            let a = MemoryAccess::load(Pc(pc), Addr(addr));
            let o = h.access(a.addr, AccessKind::Load);
            p.on_access(&a, &o, &mut out);
        }
        out
    }

    #[test]
    fn detects_constant_stride() {
        let seq: Vec<(u64, u64)> = (0..8).map(|i| (0x400, 0x1000 + i * 256)).collect();
        let reqs = run(&seq);
        assert!(!reqs.is_empty(), "trained stride stream must prefetch");
        // Targets run ahead of the stream at the detected stride.
        let last_addr = 0x1000 + 7 * 256;
        assert!(reqs.iter().any(|r| r.target.0 > last_addr));
    }

    #[test]
    fn irregular_stream_stays_quiet() {
        let seq: Vec<(u64, u64)> =
            vec![(0x400, 0x1000), (0x400, 0x5040), (0x400, 0x2980), (0x400, 0x7000)];
        assert!(run(&seq).is_empty());
    }

    #[test]
    fn different_pcs_train_independently() {
        // Interleaved streams from two PCs, each strided. (PCs chosen to
        // avoid aliasing in the 256-entry direct-mapped table.)
        let mut seq = Vec::new();
        for i in 0..8u64 {
            seq.push((0x401, 0x10_0000 + i * 128));
            seq.push((0x502, 0x90_0000 + i * 320));
        }
        let reqs = run(&seq);
        assert!(!reqs.is_empty(), "per-PC tables must see through interleaving");
    }

    #[test]
    fn prefetches_go_to_l2() {
        let seq: Vec<(u64, u64)> = (0..8).map(|i| (0x400, 0x1000 + i * 256)).collect();
        for r in run(&seq) {
            assert_eq!(r.level, crate::prefetcher::PrefetchLevel::L2);
        }
    }
}
