//! The prefetch request queue used in cycle-accurate simulation.
//!
//! Section 5 of the paper: "all DBCP and LT-cords requests are placed into a
//! 128-entry circular queue. When the request queue is full, new requests
//! replace old (unissued) ones at the queue head. Requests are only issued
//! when the L1/L2 bus is free."

use std::collections::VecDeque;

use crate::prefetcher::PrefetchRequest;

/// A bounded circular prefetch request queue.
///
/// # Example
///
/// ```
/// use ltc_predictors::{PrefetchRequest, RequestQueue};
/// use ltc_trace::Addr;
///
/// let mut q = RequestQueue::new(2);
/// q.push(PrefetchRequest::into_l2(Addr(0)));
/// q.push(PrefetchRequest::into_l2(Addr(64)));
/// q.push(PrefetchRequest::into_l2(Addr(128))); // displaces the oldest
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop().unwrap().target, Addr(64));
/// ```
#[derive(Debug, Clone)]
pub struct RequestQueue {
    queue: VecDeque<PrefetchRequest>,
    capacity: usize,
    dropped: u64,
}

impl RequestQueue {
    /// Creates a queue with the given capacity (the paper uses 128).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        RequestQueue { queue: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// The paper's 128-entry configuration.
    pub fn paper() -> Self {
        RequestQueue::new(128)
    }

    /// Enqueues a request, displacing the oldest unissued request when full.
    pub fn push(&mut self, req: PrefetchRequest) {
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.dropped += 1;
        }
        self.queue.push_back(req);
    }

    /// Dequeues the oldest request (issued when the L1/L2 bus is free).
    pub fn pop(&mut self) -> Option<PrefetchRequest> {
        self.queue.pop_front()
    }

    /// Pending requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests displaced before they could issue.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_trace::Addr;

    fn req(n: u64) -> PrefetchRequest {
        PrefetchRequest::into_l2(Addr(n * 64))
    }

    #[test]
    fn fifo_order() {
        let mut q = RequestQueue::new(4);
        for i in 0..3 {
            q.push(req(i));
        }
        assert_eq!(q.pop().unwrap().target, Addr(0));
        assert_eq!(q.pop().unwrap().target, Addr(64));
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut q = RequestQueue::new(2);
        q.push(req(1));
        q.push(req(2));
        q.push(req(3));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.pop().unwrap().target, Addr(128));
        assert_eq!(q.pop().unwrap().target, Addr(192));
        assert!(q.pop().is_none());
    }

    #[test]
    fn paper_capacity_is_128() {
        let mut q = RequestQueue::paper();
        for i in 0..200 {
            q.push(req(i));
        }
        assert_eq!(q.len(), 128);
        assert_eq!(q.dropped(), 72);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_capacity() {
        let _ = RequestQueue::new(0);
    }
}
