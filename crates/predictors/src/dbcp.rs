//! The Dead-Block Correlating Prefetcher (Lai & Falsafi, ISCA'01).
//!
//! DBCP keeps the full signature-to-replacement correlation table *on chip*.
//! With unlimited storage it is the coverage upper bound LT-cords is judged
//! against (Figure 8); with realistic storage (2 MB in Table 1) its coverage
//! collapses for applications whose signature working set exceeds the table
//! (Figure 4), which is the motivation for LT-cords.

use std::collections::HashMap;

use ltc_cache::{CacheConfig, HierarchyOutcome, ImageError, MemLevel, PrefetchOutcome};
use ltc_lasttouch::{HistoryTable, Signature, SignatureScheme};
use ltc_trace::{Addr, MemoryAccess};

use crate::image::{DbcpImage, PredictorImage};
use crate::prefetcher::{PrefetchRequest, Prefetcher};
use crate::table::{CorrelationTable, TableConfig};

/// Configuration for [`DbcpPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbcpConfig {
    /// Correlation table sizing.
    pub table: TableConfig,
    /// Signature scheme (32-bit trace mode by default).
    pub scheme: SignatureScheme,
    /// L1D geometry mirrored by the history table.
    pub l1: CacheConfig,
}

impl DbcpConfig {
    /// The "oracle" DBCP with unlimited correlation storage (Figure 8).
    pub fn unlimited() -> Self {
        DbcpConfig {
            table: TableConfig::unlimited(),
            scheme: SignatureScheme::trace_mode(),
            l1: CacheConfig::l1d(),
        }
    }

    /// The realistic DBCP with a 2 MB on-chip table (Tables 1 and 3).
    pub fn paper_2mb() -> Self {
        DbcpConfig { table: TableConfig::with_bytes(2 << 20), ..DbcpConfig::unlimited() }
    }

    /// DBCP with an arbitrary table byte budget (the Figure 4 sweep).
    pub fn with_table_bytes(bytes: u64) -> Self {
        DbcpConfig { table: TableConfig::with_bytes(bytes), ..DbcpConfig::unlimited() }
    }
}

/// Dead-block correlating prefetcher with an on-chip correlation table.
#[derive(Debug)]
pub struct DbcpPrefetcher {
    history: HistoryTable,
    table: CorrelationTable,
    /// In-flight prefetches: target line -> signature that produced them
    /// (for confidence feedback).
    inflight: HashMap<Addr, Signature>,
    predictions: u64,
}

impl DbcpPrefetcher {
    /// Creates a DBCP instance.
    pub fn new(cfg: DbcpConfig) -> Self {
        DbcpPrefetcher {
            history: HistoryTable::new(cfg.l1, cfg.scheme),
            table: CorrelationTable::new(cfg.table),
            inflight: HashMap::new(),
            predictions: 0,
        }
    }

    /// Number of last-touch predictions made so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Live correlation-table entries (diagnostics; grows without bound in
    /// the unlimited configuration).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    fn line(&self, addr: Addr) -> Addr {
        addr.line(64)
    }
}

impl Prefetcher for DbcpPrefetcher {
    fn name(&self) -> &'static str {
        "dbcp"
    }

    fn on_access(
        &mut self,
        access: &MemoryAccess,
        outcome: &HierarchyOutcome,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let line = self.line(access.addr);
        // 1. Confidence feedback from the cache's prefetch provenance.
        if outcome.l1.first_use_of_prefetch {
            if let Some(sig) = self.inflight.remove(&line) {
                self.table.update_confidence(sig, true);
            }
        }
        if let Some(ev) = &outcome.l1.evicted {
            if ev.prefetched_unused {
                if let Some(sig) = self.inflight.remove(&ev.addr) {
                    self.table.update_confidence(sig, false);
                }
            }
        }
        // 2. Train on the demand eviction (the victim's last touch is now
        //    known, and the replacement is this very access).
        if let Some(ev) = &outcome.l1.evicted {
            if let Some(rec) = self.history.record_eviction(ev.addr, line) {
                self.table.train(rec.signature, rec.predicted);
            }
        }
        // 3. Update the history trace and look the signature up.
        let sig = self.history.record_access(access.addr, access.pc);
        if let Some((predicted, conf)) = self.table.lookup(sig) {
            if conf.is_confident() && predicted != line {
                self.predictions += 1;
                out.push(PrefetchRequest::into_l1(predicted, line));
            }
        }
    }

    fn on_prefetch_applied(
        &mut self,
        req: &PrefetchRequest,
        outcome: &PrefetchOutcome,
        _source: MemLevel,
    ) {
        if let PrefetchOutcome::Filled { evicted, .. } = outcome {
            // Track for confidence feedback.
            if let Some(victim) = req.victim {
                // The signature that predicted this prefetch belongs to the
                // victim's frame; recover it from the history table before
                // the frame is retargeted.
                if let Some(sig) = self.history.peek_signature(victim) {
                    self.inflight.insert(req.target, sig);
                }
            }
            // Train on the prefetch-induced eviction exactly as on a demand
            // eviction: the displaced block's last touch is final.
            if let Some(ev) = evicted {
                if let Some(rec) = self.history.record_eviction(ev.addr, req.target) {
                    self.table.train(rec.signature, rec.predicted);
                }
            }
        }
    }

    fn storage_bytes(&self) -> u64 {
        self.table.storage_bytes() + self.history.storage_bytes()
    }

    fn memory_bytes(&self) -> u64 {
        self.table.memory_bytes() + self.history.storage_bytes()
    }

    fn image(&self) -> Option<PredictorImage> {
        let mut inflight: Vec<(u64, u32)> = self.inflight.iter().map(|(a, s)| (a.0, s.0)).collect();
        inflight.sort_unstable();
        Some(PredictorImage::Dbcp(DbcpImage {
            history: self.history.to_image(),
            table: self.table.to_state(),
            inflight,
            predictions: self.predictions,
        }))
    }

    fn restore_image(&mut self, image: &PredictorImage) -> Result<(), ImageError> {
        let PredictorImage::Dbcp(img) = image else {
            return Err(image.kind_mismatch("dbcp"));
        };
        self.history.restore_image(&img.history)?;
        self.table.restore_state(&img.table)?;
        self.inflight = img.inflight.iter().map(|&(a, s)| (Addr(a), Signature(s))).collect();
        self.predictions = img.predictions;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_cache::{Hierarchy, HierarchyConfig};
    use ltc_trace::{AccessKind, Pc};

    /// Drives a small loop that cycles three conflicting lines through one
    /// L1 set, which is the canonical DBCP pattern of Figure 1.
    fn drive_conflict_loop(p: &mut DbcpPrefetcher, iterations: usize) -> (u64, u64) {
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let span = 512 * 64; // L1 set span
        let lines = [0u64, span, 2 * span, 3 * span];
        let mut misses = 0;
        let mut accesses = 0;
        let mut out = Vec::new();
        for _ in 0..iterations {
            for (i, &l) in lines.iter().enumerate() {
                let a = MemoryAccess::load(Pc(0x400 + i as u64 * 8), Addr(l));
                let o = h.access(a.addr, AccessKind::Load);
                accesses += 1;
                misses += u64::from(!o.l1.hit);
                p.on_access(&a, &o, &mut out);
                for req in out.drain(..) {
                    if h.l1().contains(req.target) {
                        continue;
                    }
                    let (po, src) = h.prefetch_into_l1(req.target, req.victim);
                    p.on_prefetch_applied(&req, &po, src);
                }
            }
        }
        (accesses, misses)
    }

    #[test]
    fn learns_recurring_conflict_pattern() {
        let mut p = DbcpPrefetcher::new(DbcpConfig::unlimited());
        let (_, misses_cold) = {
            let mut p2 = DbcpPrefetcher::new(DbcpConfig::unlimited());
            drive_conflict_loop(&mut p2, 2)
        };
        let (accesses, misses) = drive_conflict_loop(&mut p, 50);
        // After warm-up the prefetcher should eliminate most conflict misses.
        assert!(p.predictions() > 0, "predictions must fire");
        let warm_misses = misses.saturating_sub(misses_cold);
        let warm_accesses = accesses - 8;
        assert!(
            (warm_misses as f64) < 0.8 * (warm_accesses as f64),
            "DBCP should eliminate recurring conflict misses: {warm_misses}/{warm_accesses}"
        );
    }

    #[test]
    fn trains_signature_table_on_evictions() {
        let mut p = DbcpPrefetcher::new(DbcpConfig::unlimited());
        drive_conflict_loop(&mut p, 3);
        assert!(p.table_len() > 0, "evictions must create table entries");
    }

    #[test]
    fn tiny_table_underperforms_unlimited() {
        let mut small = DbcpPrefetcher::new(DbcpConfig::with_table_bytes(40)); // 8 entries
        let mut big = DbcpPrefetcher::new(DbcpConfig::unlimited());
        // A working set of many conflicting groups exceeds 8 entries.
        let mut h_small = Hierarchy::new(HierarchyConfig::paper());
        let mut h_big = Hierarchy::new(HierarchyConfig::paper());
        let span = 512 * 64;
        let mut out = Vec::new();
        let mut run = |p: &mut DbcpPrefetcher, h: &mut Hierarchy| {
            let mut misses = 0u64;
            for _ in 0..30 {
                for set in 0..64u64 {
                    // 4 aliases per 2-way set: every access misses without
                    // prefetching, and the predicted replacement is evicted
                    // (not resident) at prediction time, so prefetches help.
                    for alias in 0..4u64 {
                        let addr = Addr(set * 64 + alias * span);
                        let a = MemoryAccess::load(Pc(0x400 + alias), addr);
                        let o = h.access(a.addr, AccessKind::Load);
                        misses += u64::from(!o.l1.hit);
                        p.on_access(&a, &o, &mut out);
                        for req in out.drain(..) {
                            if h.l1().contains(req.target) {
                                continue;
                            }
                            let (po, src) = h.prefetch_into_l1(req.target, req.victim);
                            p.on_prefetch_applied(&req, &po, src);
                        }
                    }
                }
            }
            misses
        };
        let misses_small = run(&mut small, &mut h_small);
        let misses_big = run(&mut big, &mut h_big);
        assert!(
            misses_big < misses_small,
            "unlimited table must beat an 8-entry table ({misses_big} vs {misses_small})"
        );
    }

    #[test]
    fn storage_includes_table_and_history() {
        let p = DbcpPrefetcher::new(DbcpConfig::paper_2mb());
        assert!(p.storage_bytes() >= 2 << 20);
    }

    #[test]
    fn no_prediction_without_training() {
        let mut p = DbcpPrefetcher::new(DbcpConfig::unlimited());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut out = Vec::new();
        // First-touch misses only: nothing to correlate yet.
        for i in 0..100u64 {
            let a = MemoryAccess::load(Pc(0x400), Addr(i * 64));
            let o = h.access(a.addr, AccessKind::Load);
            p.on_access(&a, &o, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(p.predictions(), 0);
    }
}
