//! A set-associative correlation table (the on-chip DBCP store).

use ltc_cache::ImageError;
use ltc_lasttouch::{Confidence, Signature};
use ltc_trace::Addr;
use serde::{Deserialize, Serialize};

/// Capacity configuration for a [`CorrelationTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableConfig {
    /// Maximum entries, or `None` for the unlimited "oracle" table the paper
    /// uses as DBCP's upper bound (Figure 8).
    pub capacity: Option<usize>,
    /// Associativity of the finite organization (ignored when unlimited).
    pub ways: usize,
}

impl TableConfig {
    /// An unlimited table.
    pub const fn unlimited() -> Self {
        TableConfig { capacity: None, ways: 8 }
    }

    /// A finite table with the given entry count (8-way set-associative,
    /// LRU — a realistic hardware organization; the paper does not specify
    /// DBCP's table organization beyond its byte size).
    pub const fn with_entries(entries: usize) -> Self {
        TableConfig { capacity: Some(entries), ways: 8 }
    }

    /// Entry count corresponding to a byte budget at the paper's 5 bytes per
    /// signature (Section 5.4).
    pub const fn with_bytes(bytes: u64) -> Self {
        TableConfig::with_entries((bytes / 5) as usize)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    sig: Signature,
    predicted: Addr,
    confidence: Confidence,
    last_use: u64,
    valid: bool,
}

/// Maps last-touch signatures to predicted replacement addresses.
///
/// The finite variant is organized as a set-associative structure with LRU
/// replacement; the unlimited variant stores every signature ever seen
/// (the paper's "DBCP with unlimited storage" upper bound).
#[derive(Debug, Clone)]
pub struct CorrelationTable {
    cfg: TableConfig,
    /// Finite mode: sets x ways entries.
    sets: Vec<Entry>,
    set_count: usize,
    /// Unlimited mode: a plain map.
    map: std::collections::HashMap<Signature, (Addr, Confidence)>,
    clock: u64,
    insertions: u64,
}

impl CorrelationTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if a finite capacity is zero or smaller than one set.
    pub fn new(cfg: TableConfig) -> Self {
        let (sets, set_count) = match cfg.capacity {
            Some(cap) => {
                assert!(cap > 0, "finite table needs capacity > 0");
                let ways = cfg.ways.max(1);
                let set_count = (cap / ways).max(1).next_power_of_two();
                let empty = Entry {
                    sig: Signature(0),
                    predicted: Addr(0),
                    confidence: Confidence::new(0),
                    last_use: 0,
                    valid: false,
                };
                (vec![empty; set_count * ways], set_count)
            }
            None => (Vec::new(), 0),
        };
        CorrelationTable {
            cfg,
            sets,
            set_count,
            map: std::collections::HashMap::new(),
            clock: 0,
            insertions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match self.cfg.capacity {
            Some(_) => self.sets.iter().filter(|e| e.valid).count(),
            None => self.map.len(),
        }
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total insertions performed (diagnostics).
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Storage estimate at the paper's 5 bytes per signature.
    pub fn storage_bytes(&self) -> u64 {
        match self.cfg.capacity {
            Some(cap) => cap as u64 * 5,
            None => self.map.len() as u64 * 5,
        }
    }

    /// Actual resident simulator memory: the entry array for the finite
    /// organization, the hash map (entry payload plus the modelled ~48
    /// bytes of bucket/allocator overhead per entry) for the unlimited
    /// one. This is what an honest budget comparison against sketch
    /// summaries must charge, not the 5-byte hardware model.
    pub fn memory_bytes(&self) -> u64 {
        const MAP_NODE_OVERHEAD: u64 = 48;
        let entry = std::mem::size_of::<Entry>() as u64;
        match self.cfg.capacity {
            Some(_) => self.sets.len() as u64 * entry,
            None => {
                let payload = std::mem::size_of::<(Signature, (Addr, Confidence))>() as u64;
                self.map.len() as u64 * (payload + MAP_NODE_OVERHEAD)
            }
        }
    }

    #[inline]
    fn set_range(&self, sig: Signature) -> std::ops::Range<usize> {
        let set = (sig.0 as usize) & (self.set_count - 1);
        let ways = self.cfg.ways;
        set * ways..set * ways + ways
    }

    /// Looks up the prediction for `sig`, if present and regardless of
    /// confidence (callers check [`Confidence::is_confident`]).
    pub fn lookup(&mut self, sig: Signature) -> Option<(Addr, Confidence)> {
        self.clock += 1;
        match self.cfg.capacity {
            None => self.map.get(&sig).copied(),
            Some(_) => {
                let range = self.set_range(sig);
                let clock = self.clock;
                self.sets[range].iter_mut().find(|e| e.valid && e.sig == sig).map(|e| {
                    e.last_use = clock;
                    (e.predicted, e.confidence)
                })
            }
        }
    }

    /// Trains the table with an observed `(signature, replacement)` pair.
    ///
    /// A matching entry with the same target is strengthened; a matching
    /// entry with a different target is weakened and, once its confidence
    /// reaches zero, retargeted (the classic 2-bit update). New signatures
    /// are inserted with the paper's initial confidence of 2.
    pub fn train(&mut self, sig: Signature, predicted: Addr) {
        self.clock += 1;
        self.insertions += 1;
        match self.cfg.capacity {
            None => match self.map.entry(sig) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((predicted, Confidence::initial()));
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let entry = o.get_mut();
                    if entry.0 == predicted {
                        entry.1 = entry.1.strengthen();
                    } else {
                        entry.1 = entry.1.weaken();
                        if entry.1.value() == 0 {
                            *entry = (predicted, Confidence::initial());
                        }
                    }
                }
            },
            Some(_) => {
                let range = self.set_range(sig);
                let clock = self.clock;
                let slice = &mut self.sets[range];
                if let Some(e) = slice.iter_mut().find(|e| e.valid && e.sig == sig) {
                    e.last_use = clock;
                    if e.predicted == predicted {
                        e.confidence = e.confidence.strengthen();
                    } else {
                        e.confidence = e.confidence.weaken();
                        if e.confidence.value() == 0 {
                            e.predicted = predicted;
                            e.confidence = Confidence::initial();
                        }
                    }
                    return;
                }
                // Insert: invalid way first, else LRU.
                let victim =
                    slice.iter_mut().min_by_key(|e| (e.valid, e.last_use)).expect("ways >= 1");
                *victim = Entry {
                    sig,
                    predicted,
                    confidence: Confidence::initial(),
                    last_use: clock,
                    valid: true,
                };
            }
        }
    }

    /// Snapshots the table's complete state. The unlimited map is
    /// flattened into parallel vectors sorted by signature, so the
    /// snapshot's bytes are deterministic.
    pub fn to_state(&self) -> CorrelationTableState {
        let mut state = CorrelationTableState {
            capacity: self.cfg.capacity.map(|c| c as u64),
            ways: self.cfg.ways as u64,
            sig: self.sets.iter().map(|e| e.sig.0).collect(),
            predicted: self.sets.iter().map(|e| e.predicted.0).collect(),
            confidence: self.sets.iter().map(|e| e.confidence.value()).collect(),
            last_use: self.sets.iter().map(|e| e.last_use).collect(),
            valid: self.sets.iter().map(|e| e.valid).collect(),
            map_sigs: Vec::new(),
            map_predicted: Vec::new(),
            map_confidence: Vec::new(),
            clock: self.clock,
            insertions: self.insertions,
        };
        let mut entries: Vec<_> = self.map.iter().map(|(s, &(a, c))| (s.0, a.0, c)).collect();
        entries.sort_unstable_by_key(|&(s, ..)| s);
        for (s, a, c) in entries {
            state.map_sigs.push(s);
            state.map_predicted.push(a);
            state.map_confidence.push(c.value());
        }
        state
    }

    /// Overwrites this table's state from `state`.
    ///
    /// # Errors
    ///
    /// [`ImageError::ConfigMismatch`] when the snapshot's sizing differs
    /// from this table's configuration, [`ImageError::Shape`] when a
    /// state vector's length disagrees with the entry count.
    pub fn restore_state(&mut self, state: &CorrelationTableState) -> Result<(), ImageError> {
        let same_cfg = state.capacity == self.cfg.capacity.map(|c| c as u64)
            && state.ways == self.cfg.ways as u64;
        if !same_cfg {
            return Err(ImageError::ConfigMismatch {
                expected: format!("{:?}", self.cfg),
                found: format!("capacity {:?}, ways {}", state.capacity, state.ways),
            });
        }
        crate::image::check_shapes(
            self.sets.len(),
            &[
                ("sig", state.sig.len()),
                ("predicted", state.predicted.len()),
                ("confidence", state.confidence.len()),
                ("last_use", state.last_use.len()),
                ("valid", state.valid.len()),
            ],
        )?;
        crate::image::check_shapes(
            state.map_sigs.len(),
            &[
                ("map_predicted", state.map_predicted.len()),
                ("map_confidence", state.map_confidence.len()),
            ],
        )?;
        for (i, e) in self.sets.iter_mut().enumerate() {
            *e = Entry {
                sig: Signature(state.sig[i]),
                predicted: Addr(state.predicted[i]),
                confidence: Confidence::new(state.confidence[i]),
                last_use: state.last_use[i],
                valid: state.valid[i],
            };
        }
        self.map.clear();
        for i in 0..state.map_sigs.len() {
            self.map.insert(
                Signature(state.map_sigs[i]),
                (Addr(state.map_predicted[i]), Confidence::new(state.map_confidence[i])),
            );
        }
        self.clock = state.clock;
        self.insertions = state.insertions;
        Ok(())
    }

    /// Adjusts the confidence of an existing entry (feedback from prefetch
    /// outcomes). Missing entries are ignored.
    pub fn update_confidence(&mut self, sig: Signature, correct: bool) {
        match self.cfg.capacity {
            None => {
                if let Some(e) = self.map.get_mut(&sig) {
                    e.1 = if correct { e.1.strengthen() } else { e.1.weaken() };
                }
            }
            Some(_) => {
                let range = self.set_range(sig);
                if let Some(e) = self.sets[range].iter_mut().find(|e| e.valid && e.sig == sig) {
                    e.confidence =
                        if correct { e.confidence.strengthen() } else { e.confidence.weaken() };
                }
            }
        }
    }
}

/// Snapshot of a [`CorrelationTable`]: the finite entry array as
/// parallel per-slot vectors, the unlimited map as parallel vectors
/// sorted by signature, plus the LRU clock and insertion counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrelationTableState {
    /// Configured capacity (`None` = unlimited).
    pub capacity: Option<u64>,
    /// Configured associativity.
    pub ways: u64,
    /// Finite-mode per-slot signatures.
    pub sig: Vec<u32>,
    /// Finite-mode per-slot predicted addresses.
    pub predicted: Vec<u64>,
    /// Finite-mode per-slot confidence values.
    pub confidence: Vec<u8>,
    /// Finite-mode per-slot LRU stamps.
    pub last_use: Vec<u64>,
    /// Finite-mode per-slot valid bits.
    pub valid: Vec<bool>,
    /// Unlimited-mode signatures, strictly increasing.
    pub map_sigs: Vec<u32>,
    /// Unlimited-mode predictions, parallel to `map_sigs`.
    pub map_predicted: Vec<u64>,
    /// Unlimited-mode confidences, parallel to `map_sigs`.
    pub map_confidence: Vec<u8>,
    /// LRU clock at capture time.
    pub clock: u64,
    /// Insertions performed up to capture time.
    pub insertions: u64,
}

impl CorrelationTableState {
    /// Bytes of simulated state the snapshot carries: 22 per finite slot
    /// (4 sig + 8 predicted + 1 confidence + 8 stamp + 1 valid), 13 per
    /// unlimited entry, plus the two counters.
    pub fn image_bytes(&self) -> u64 {
        self.sig.len() as u64 * 22 + self.map_sigs.len() as u64 * 13 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_table_never_forgets() {
        let mut t = CorrelationTable::new(TableConfig::unlimited());
        for i in 0..10_000u32 {
            t.train(Signature(i), Addr(u64::from(i) * 64));
        }
        assert_eq!(t.len(), 10_000);
        for i in (0..10_000u32).step_by(997) {
            let (addr, _) = t.lookup(Signature(i)).expect("entry must persist");
            assert_eq!(addr, Addr(u64::from(i) * 64));
        }
    }

    #[test]
    fn finite_table_bounds_entries() {
        let mut t = CorrelationTable::new(TableConfig::with_entries(64));
        for i in 0..10_000u32 {
            t.train(Signature(i), Addr(64));
        }
        assert!(t.len() <= 64);
    }

    #[test]
    fn retrain_same_target_strengthens() {
        let mut t = CorrelationTable::new(TableConfig::unlimited());
        t.train(Signature(5), Addr(64));
        t.train(Signature(5), Addr(64));
        let (_, conf) = t.lookup(Signature(5)).unwrap();
        assert_eq!(conf.value(), 3);
    }

    #[test]
    fn conflicting_target_weakens_then_replaces() {
        let mut t = CorrelationTable::new(TableConfig::unlimited());
        t.train(Signature(5), Addr(64)); // conf 2
        t.train(Signature(5), Addr(128)); // conf 1, still old target
        let (addr, conf) = t.lookup(Signature(5)).unwrap();
        assert_eq!(addr, Addr(64));
        assert_eq!(conf.value(), 1);
        t.train(Signature(5), Addr(128)); // conf 0 -> retarget
        let (addr, conf) = t.lookup(Signature(5)).unwrap();
        assert_eq!(addr, Addr(128));
        assert_eq!(conf.value(), 2);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // One set (8 ways): fill 8 entries, touch the first 7, insert a 9th.
        let mut t = CorrelationTable::new(TableConfig { capacity: Some(8), ways: 8 });
        for i in 0..8u32 {
            t.train(Signature(i << 4), Addr(64)); // same set (low bits 0)
        }
        for i in 0..7u32 {
            let _ = t.lookup(Signature(i << 4));
        }
        t.train(Signature(9 << 4), Addr(64));
        assert!(t.lookup(Signature(7 << 4)).is_none(), "LRU way was replaced");
        assert!(t.lookup(Signature(0)).is_some());
    }

    #[test]
    fn confidence_feedback_updates_entry() {
        let mut t = CorrelationTable::new(TableConfig::unlimited());
        t.train(Signature(1), Addr(64));
        t.update_confidence(Signature(1), false);
        let (_, conf) = t.lookup(Signature(1)).unwrap();
        assert!(!conf.is_confident());
        t.update_confidence(Signature(1), true);
        let (_, conf) = t.lookup(Signature(1)).unwrap();
        assert!(conf.is_confident());
    }

    #[test]
    fn with_bytes_matches_paper_density() {
        let cfg = TableConfig::with_bytes(2 << 20); // the paper's 2 MB DBCP
        assert_eq!(cfg.capacity, Some((2 << 20) / 5));
    }

    #[test]
    fn storage_bytes_reports_budget() {
        let t = CorrelationTable::new(TableConfig::with_entries(100));
        assert_eq!(t.storage_bytes(), 500);
    }
}
