//! Baseline hardware prefetchers and the prefetcher interface.
//!
//! This crate defines the [`Prefetcher`] trait through which every predictor
//! in the reproduction (the [`NullPrefetcher`], a classic [`StridePrefetcher`],
//! the delta-correlating [`GhbPrefetcher`] of Nesbit & Smith, the
//! [`DbcpPrefetcher`] of Lai & Falsafi, and LT-cords itself in the `ltcords`
//! crate) plugs into the coverage and timing simulators, plus the baseline
//! implementations the paper compares against in Table 3.
//!
//! # Example
//!
//! ```
//! use ltc_predictors::{DbcpConfig, DbcpPrefetcher, Prefetcher};
//!
//! let dbcp = DbcpPrefetcher::new(DbcpConfig::unlimited());
//! assert_eq!(dbcp.name(), "dbcp");
//! ```

pub mod dbcp;
pub mod ghb;
pub mod image;
pub mod null;
pub mod prefetcher;
pub mod queue;
pub mod sketch;
pub mod stride;
pub mod table;

pub use dbcp::{DbcpConfig, DbcpPrefetcher};
pub use ghb::{GhbConfig, GhbPrefetcher};
pub use image::{DbcpImage, GhbImage, PredictorImage, SketchImage, StrideImage};
pub use null::NullPrefetcher;
pub use prefetcher::{PredictorTraffic, PrefetchLevel, PrefetchRequest, Prefetcher};
pub use queue::RequestQueue;
pub use sketch::{SketchDbcp, SketchDbcpConfig};
pub use stride::{StrideConfig, StridePrefetcher};
pub use table::{CorrelationTable, CorrelationTableState, TableConfig};
