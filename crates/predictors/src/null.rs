//! The do-nothing predictor (the paper's baseline configuration).

use ltc_cache::HierarchyOutcome;
use ltc_trace::MemoryAccess;

use crate::prefetcher::{PrefetchRequest, Prefetcher};

/// A predictor that never prefetches: the baseline processor of Table 1.
///
/// # Example
///
/// ```
/// use ltc_predictors::{NullPrefetcher, Prefetcher};
///
/// let p = NullPrefetcher::new();
/// assert_eq!(p.storage_bytes(), 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the baseline (non-)predictor.
    pub fn new() -> Self {
        NullPrefetcher
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn on_access(
        &mut self,
        _access: &MemoryAccess,
        _outcome: &HierarchyOutcome,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }

    fn storage_bytes(&self) -> u64 {
        0
    }

    fn is_passive(&self) -> bool {
        true
    }

    fn image(&self) -> Option<crate::PredictorImage> {
        Some(crate::PredictorImage::Null)
    }

    fn restore_image(
        &mut self,
        image: &crate::PredictorImage,
    ) -> Result<(), ltc_cache::ImageError> {
        match image {
            crate::PredictorImage::Null => Ok(()),
            other => Err(other.kind_mismatch("null")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_cache::{Hierarchy, HierarchyConfig};
    use ltc_trace::{AccessKind, Addr, Pc};

    #[test]
    fn never_requests_prefetches() {
        let mut p = NullPrefetcher::new();
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut out = Vec::new();
        for i in 0..100u64 {
            let a = MemoryAccess::load(Pc(1), Addr(i * 64));
            let o = h.access(a.addr, AccessKind::Load);
            p.on_access(&a, &o, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(p.traffic().total(), 0);
    }
}
