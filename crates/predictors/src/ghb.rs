//! The Global History Buffer prefetcher, PC/DC variant (Nesbit & Smith).
//!
//! GHB PC/DC is the paper's strongest conventional baseline (Table 3): a
//! delta-correlating prefetcher that localizes the global miss stream by PC
//! and matches recurring *delta pairs* to predict upcoming misses. The paper
//! configures it with a 256-entry index table, a 256-entry history buffer
//! and prefetch depth 4 (Table 1), "as recommended for SPEC applications".

use ltc_cache::{HierarchyOutcome, ImageError};
use ltc_trace::{Addr, MemoryAccess};

use crate::image::{check_shapes, GhbImage, PredictorImage};
use crate::prefetcher::{PrefetchRequest, Prefetcher};

/// Configuration for [`GhbPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhbConfig {
    /// Index table entries (PC-indexed).
    pub index_entries: usize,
    /// Global history buffer entries.
    pub ghb_entries: usize,
    /// Prefetch depth after a delta-pair match.
    pub depth: u32,
    /// Maximum per-PC chain length walked per miss.
    pub max_chain: usize,
}

impl Default for GhbConfig {
    fn default() -> Self {
        // Table 1: "GHB PC/DC, 4-deep, 256-entry IT, 256-entry GHB".
        GhbConfig { index_entries: 256, ghb_entries: 256, depth: 4, max_chain: 64 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ItEntry {
    pc_tag: u64,
    /// Absolute id of the most recent GHB entry for this PC.
    last_id: u64,
    valid: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct GhbEntry {
    addr: u64,
    /// Absolute id of the previous entry with the same PC (0 = none).
    prev_id: u64,
}

/// Delta-correlating prefetcher over a PC-localized global history buffer.
#[derive(Debug, Clone)]
pub struct GhbPrefetcher {
    cfg: GhbConfig,
    index: Vec<ItEntry>,
    ring: Vec<GhbEntry>,
    /// Absolute id of the next entry to insert (ids start at 1).
    next_id: u64,
}

impl GhbPrefetcher {
    /// Creates an empty GHB.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    pub fn new(cfg: GhbConfig) -> Self {
        assert!(cfg.index_entries > 0 && cfg.ghb_entries > 0, "GHB sizes must be non-zero");
        GhbPrefetcher {
            cfg,
            index: vec![ItEntry::default(); cfg.index_entries.next_power_of_two()],
            ring: vec![GhbEntry::default(); cfg.ghb_entries.next_power_of_two()],
            next_id: 1,
        }
    }

    #[inline]
    fn ring_slot(&self, id: u64) -> usize {
        (id as usize) & (self.ring.len() - 1)
    }

    #[inline]
    fn id_live(&self, id: u64) -> bool {
        id != 0 && id + (self.ring.len() as u64) > self.next_id
    }

    /// Walks the per-PC chain, returning miss addresses oldest-first
    /// (including the newest entry `head_id`).
    fn chain_oldest_first(&self, head_id: u64) -> Vec<u64> {
        let mut rev = Vec::with_capacity(16);
        let mut id = head_id;
        while self.id_live(id) && rev.len() < self.cfg.max_chain {
            let e = self.ring[self.ring_slot(id)];
            rev.push(e.addr);
            id = e.prev_id;
            if id >= head_id {
                break; // stale pointer re-using a newer slot
            }
        }
        rev.reverse();
        rev
    }
}

impl Prefetcher for GhbPrefetcher {
    fn name(&self) -> &'static str {
        "ghb-pc/dc"
    }

    fn on_access(
        &mut self,
        access: &MemoryAccess,
        outcome: &HierarchyOutcome,
        out: &mut Vec<PrefetchRequest>,
    ) {
        if outcome.l1.hit {
            return; // GHB observes the L1D miss stream
        }
        let line = access.addr.line(64).0;
        // Index table lookup.
        let it_idx = (access.pc.0 as usize) & (self.index.len() - 1);
        let it = self.index[it_idx];
        let prev = if it.valid && it.pc_tag == access.pc.0 { it.last_id } else { 0 };
        // Insert the miss into the GHB.
        let id = self.next_id;
        self.next_id += 1;
        let slot = self.ring_slot(id);
        self.ring[slot] = GhbEntry { addr: line, prev_id: prev };
        self.index[it_idx] = ItEntry { pc_tag: access.pc.0, last_id: id, valid: true };

        // Delta correlation over the PC-localized history.
        let addrs = self.chain_oldest_first(id);
        if addrs.len() < 3 {
            return;
        }
        let deltas: Vec<i64> = addrs.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        let m = deltas.len();
        let key = (deltas[m - 2], deltas[m - 1]);
        // Search backwards (most recent occurrence first) for the key pair.
        let mut found = None;
        if m >= 3 {
            for j in (1..m - 2).rev() {
                if (deltas[j - 1], deltas[j]) == key {
                    found = Some(j);
                    break;
                }
            }
        }
        let Some(j) = found else { return };
        // Replay the deltas that followed the previous occurrence.
        let mut target = line as i64;
        let mut issued = 0;
        for &d in &deltas[j + 1..] {
            target += d;
            if target <= 0 {
                break;
            }
            out.push(PrefetchRequest::into_l2(Addr(target as u64).line(64)));
            issued += 1;
            if issued >= self.cfg.depth {
                break;
            }
        }
    }

    fn storage_bytes(&self) -> u64 {
        // IT entry ~10 B (tag + pointer), GHB entry ~12 B (addr + pointer).
        self.index.len() as u64 * 10 + self.ring.len() as u64 * 12
    }

    fn memory_bytes(&self) -> u64 {
        // Fixed arrays: resident memory is the full-width entries.
        self.index.len() as u64 * std::mem::size_of::<ItEntry>() as u64
            + self.ring.len() as u64 * std::mem::size_of::<GhbEntry>() as u64
    }

    fn image(&self) -> Option<PredictorImage> {
        Some(PredictorImage::Ghb(GhbImage {
            index_pc_tag: self.index.iter().map(|e| e.pc_tag).collect(),
            index_last_id: self.index.iter().map(|e| e.last_id).collect(),
            index_valid: self.index.iter().map(|e| e.valid).collect(),
            ring_addr: self.ring.iter().map(|e| e.addr).collect(),
            ring_prev_id: self.ring.iter().map(|e| e.prev_id).collect(),
            next_id: self.next_id,
        }))
    }

    fn restore_image(&mut self, image: &PredictorImage) -> Result<(), ImageError> {
        let PredictorImage::Ghb(img) = image else {
            return Err(image.kind_mismatch("ghb"));
        };
        check_shapes(
            self.index.len(),
            &[
                ("index_pc_tag", img.index_pc_tag.len()),
                ("index_last_id", img.index_last_id.len()),
                ("index_valid", img.index_valid.len()),
            ],
        )?;
        check_shapes(
            self.ring.len(),
            &[("ring_addr", img.ring_addr.len()), ("ring_prev_id", img.ring_prev_id.len())],
        )?;
        for (i, e) in self.index.iter_mut().enumerate() {
            *e = ItEntry {
                pc_tag: img.index_pc_tag[i],
                last_id: img.index_last_id[i],
                valid: img.index_valid[i],
            };
        }
        for (i, e) in self.ring.iter_mut().enumerate() {
            *e = GhbEntry { addr: img.ring_addr[i], prev_id: img.ring_prev_id[i] };
        }
        self.next_id = img.next_id;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_cache::{Hierarchy, HierarchyConfig};
    use ltc_trace::{AccessKind, Pc};

    fn run(seq: &[(u64, u64)]) -> Vec<PrefetchRequest> {
        let mut p = GhbPrefetcher::new(GhbConfig::default());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut out = Vec::new();
        for &(pc, addr) in seq {
            let a = MemoryAccess::load(Pc(pc), Addr(addr));
            let o = h.access(a.addr, AccessKind::Load);
            p.on_access(&a, &o, &mut out);
        }
        out
    }

    #[test]
    fn constant_stride_is_a_special_case_of_delta_pairs() {
        let seq: Vec<(u64, u64)> = (0..12).map(|i| (0x400, 0x10_0000 + i * 4096)).collect();
        let reqs = run(&seq);
        assert!(!reqs.is_empty());
        // Predictions continue the stride lattice.
        assert!(reqs
            .iter()
            .all(|r| r.target.0 >= 0x10_0000 && (r.target.0 - 0x10_0000) % 4096 == 0));
    }

    #[test]
    fn recurring_delta_pattern_is_learned() {
        // Pattern of deltas: +64, +128, +4096 repeating (non-constant).
        let mut addr = 0x20_0000u64;
        let mut seq = Vec::new();
        for _ in 0..6 {
            for d in [64u64, 128, 4096] {
                seq.push((0x700, addr));
                addr += d;
            }
        }
        let reqs = run(&seq);
        assert!(!reqs.is_empty(), "repeating delta tuple must be predicted");
    }

    #[test]
    fn interleaved_pcs_do_not_confuse_localization() {
        // Two PCs with different strides, interleaved: PC localization must
        // keep the delta streams separate. (PCs chosen to avoid aliasing in
        // the 256-entry direct-mapped index table.)
        let mut seq = Vec::new();
        for i in 0..10u64 {
            seq.push((0x401, 0x10_0000 + i * 4096));
            seq.push((0x502, 0x80_0000 + i * 8192));
        }
        let reqs = run(&seq);
        assert!(!reqs.is_empty());
        for r in &reqs {
            let from_a = r.target.0 >= 0x10_0000 && r.target.0 < 0x50_0000;
            let from_b = r.target.0 >= 0x80_0000;
            assert!(from_a || from_b, "target {:#x} continues neither stream", r.target.0);
            if from_a {
                assert_eq!((r.target.0 - 0x10_0000) % 4096, 0);
            }
            if from_b {
                assert_eq!((r.target.0 - 0x80_0000) % 8192, 0);
            }
        }
    }

    #[test]
    fn random_misses_produce_no_predictions() {
        let seq: Vec<(u64, u64)> = vec![
            (0x400, 0x123_4000),
            (0x400, 0x87_1040),
            (0x400, 0x44_0080),
            (0x400, 0x99_20c0),
            (0x400, 0x15_3100),
            (0x400, 0x70_0140),
        ];
        assert!(run(&seq).is_empty());
    }

    #[test]
    fn hits_do_not_pollute_history() {
        // Misses at a stride with interleaved *hits* to an unrelated line.
        let mut p = GhbPrefetcher::new(GhbConfig::default());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut out = Vec::new();
        h.access(Addr(0x42_0000), AccessKind::Load); // warm one line
        for i in 0..10u64 {
            let miss = MemoryAccess::load(Pc(0x400), Addr(0x10_0000 + i * 4096));
            let o = h.access(miss.addr, AccessKind::Load);
            p.on_access(&miss, &o, &mut out);
            let hit = MemoryAccess::load(Pc(0x400), Addr(0x42_0000));
            let o = h.access(hit.addr, AccessKind::Load);
            p.on_access(&hit, &o, &mut out);
        }
        assert!(!out.is_empty(), "hits must not break the miss-delta stream");
    }

    #[test]
    fn ring_overwrite_invalidates_stale_chains() {
        // Fill the GHB far beyond capacity with one PC, then confirm the
        // chain walk stays bounded and alive.
        let seq: Vec<(u64, u64)> = (0..2000).map(|i| (0x400, 0x10_0000 + i * 4096)).collect();
        let reqs = run(&seq);
        assert!(!reqs.is_empty());
    }
}
