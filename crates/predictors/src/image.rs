//! Serializable warm-state images for predictors.
//!
//! [`PredictorImage`] extends the cache-side imaging protocol
//! ([`ltc_cache::HierarchyImage`]) to the prefetchers: each supported
//! predictor snapshots its complete mutable state — history table,
//! correlation storage, queues and counters — into a tagged variant, and
//! restores it only into a predictor of the *same kind and
//! configuration*. A kind or configuration mismatch is a typed
//! [`ImageError`], never silent drift; predictors whose state is too
//! entangled to snapshot (LT-cords) simply report no image and fall back
//! to warm-up replay.
//!
//! The enum serializes as a single-entry tagged map (`{"dbcp": {...}}`),
//! the same wire shape as [`ltc_trace::SourceState`], so checkpoint
//! files stay self-describing.

use ltc_cache::ImageError;
use ltc_lasttouch::HistoryTableImage;
use ltc_stream::ChhState;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::table::CorrelationTableState;

/// Snapshot of a [`crate::DbcpPrefetcher`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbcpImage {
    /// History-table frames.
    pub history: HistoryTableImage,
    /// Correlation-table entries.
    pub table: CorrelationTableState,
    /// In-flight prefetches as sorted `(target line, signature)` pairs.
    pub inflight: Vec<(u64, u32)>,
    /// Predictions made so far.
    pub predictions: u64,
}

/// Snapshot of a [`crate::GhbPrefetcher`]: the index table and history
/// ring as parallel vectors (one entry per slot).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GhbImage {
    /// Index-table PC tags.
    pub index_pc_tag: Vec<u64>,
    /// Index-table head pointers (absolute GHB entry ids).
    pub index_last_id: Vec<u64>,
    /// Index-table valid bits.
    pub index_valid: Vec<bool>,
    /// History-ring miss addresses.
    pub ring_addr: Vec<u64>,
    /// History-ring per-PC chain pointers.
    pub ring_prev_id: Vec<u64>,
    /// Next absolute entry id.
    pub next_id: u64,
}

/// Snapshot of a [`crate::StridePrefetcher`]'s per-PC table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrideImage {
    /// Per-entry PC tags.
    pub pc_tag: Vec<u64>,
    /// Per-entry last addresses.
    pub last_addr: Vec<u64>,
    /// Per-entry detected strides.
    pub stride: Vec<i64>,
    /// Per-entry confirmation counters.
    pub count: Vec<u8>,
    /// Per-entry valid bits.
    pub valid: Vec<bool>,
}

/// Snapshot of a [`crate::SketchDbcp`]: the history table plus the
/// existing mergeable summary snapshot from `ltc_stream`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchImage {
    /// History-table frames.
    pub history: HistoryTableImage,
    /// Correlated-heavy-hitter summary snapshot.
    pub summary: ChhState,
    /// Predictions made so far.
    pub predictions: u64,
}

/// A predictor's complete warm state, tagged by kind.
///
/// Produced by [`crate::Prefetcher::image`] and consumed by
/// [`crate::Prefetcher::restore_image`]; restoring a variant into a
/// predictor of a different kind is an [`ImageError::Kind`].
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorImage {
    /// The stateless baseline (nothing to restore).
    Null,
    /// Dead-block correlating prefetcher.
    Dbcp(DbcpImage),
    /// Global history buffer (PC/DC).
    Ghb(GhbImage),
    /// Per-PC stride table.
    Stride(StrideImage),
    /// Sketch-backed DBCP.
    Sketch(SketchImage),
}

impl PredictorImage {
    /// The wire tag of this image's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            PredictorImage::Null => "null",
            PredictorImage::Dbcp(_) => "dbcp",
            PredictorImage::Ghb(_) => "ghb",
            PredictorImage::Stride(_) => "stride",
            PredictorImage::Sketch(_) => "sketch",
        }
    }

    /// Bytes of simulated state the image carries (the imaging analogue
    /// of [`crate::Prefetcher::memory_bytes`]).
    pub fn image_bytes(&self) -> u64 {
        match self {
            PredictorImage::Null => 0,
            PredictorImage::Dbcp(i) => {
                i.history.image_bytes() + i.table.image_bytes() + i.inflight.len() as u64 * 12 + 8
            }
            PredictorImage::Ghb(i) => {
                i.index_pc_tag.len() as u64 * 17 + i.ring_addr.len() as u64 * 16 + 8
            }
            PredictorImage::Stride(i) => i.pc_tag.len() as u64 * 26,
            PredictorImage::Sketch(i) => i.history.image_bytes() + i.summary.budget_bytes + 8,
        }
    }

    /// The [`ImageError::Kind`] for restoring this image into a
    /// predictor expecting `expected`.
    pub fn kind_mismatch(&self, expected: &str) -> ImageError {
        ImageError::Kind { expected: expected.to_string(), found: self.kind().to_string() }
    }
}

impl Serialize for PredictorImage {
    fn to_value(&self) -> Value {
        let (tag, body) = match self {
            PredictorImage::Null => ("null", Value::Null),
            PredictorImage::Dbcp(i) => ("dbcp", i.to_value()),
            PredictorImage::Ghb(i) => ("ghb", i.to_value()),
            PredictorImage::Stride(i) => ("stride", i.to_value()),
            PredictorImage::Sketch(i) => ("sketch", i.to_value()),
        };
        Value::Map(vec![(tag.to_string(), body)])
    }
}

impl<'de> Deserialize<'de> for PredictorImage {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries =
            value.as_map().ok_or_else(|| DeError::expected("tagged map", "PredictorImage"))?;
        let [(tag, body)] = entries else {
            return Err(DeError::expected("single-variant map", "PredictorImage"));
        };
        match tag.as_str() {
            "null" => Ok(PredictorImage::Null),
            "dbcp" => Ok(PredictorImage::Dbcp(DbcpImage::from_value(body)?)),
            "ghb" => Ok(PredictorImage::Ghb(GhbImage::from_value(body)?)),
            "stride" => Ok(PredictorImage::Stride(StrideImage::from_value(body)?)),
            "sketch" => Ok(PredictorImage::Sketch(SketchImage::from_value(body)?)),
            other => Err(DeError::expected("known predictor image tag", other)),
        }
    }
}

/// Checks that every `(field, found)` length equals `expected`.
pub(crate) fn check_shapes(
    expected: usize,
    shapes: &[(&'static str, usize)],
) -> Result<(), ImageError> {
    for &(field, found) in shapes {
        if found != expected {
            return Err(ImageError::Shape { field, expected, found });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_image_round_trips() {
        let v = PredictorImage::Null.to_value();
        assert_eq!(PredictorImage::from_value(&v), Ok(PredictorImage::Null));
    }

    #[test]
    fn unknown_tag_is_a_typed_error() {
        let v = Value::Map(vec![("martian".to_string(), Value::Null)]);
        assert!(PredictorImage::from_value(&v).is_err());
    }

    #[test]
    fn kind_mismatch_names_both_sides() {
        let err = PredictorImage::Null.kind_mismatch("dbcp");
        assert!(err.to_string().contains("null"), "{err}");
        assert!(err.to_string().contains("dbcp"), "{err}");
    }

    #[test]
    fn check_shapes_flags_the_offending_field() {
        assert!(check_shapes(3, &[("a", 3), ("b", 3)]).is_ok());
        let err = check_shapes(3, &[("a", 3), ("b", 2)]).unwrap_err();
        assert!(matches!(err, ImageError::Shape { field: "b", expected: 3, found: 2 }));
    }
}
