//! Versioned hash families for sketch bucket selection.
//!
//! Every sketch records which family built it — in its
//! [`crate::SketchShape`] (so merges across families are typed errors)
//! and in its serialized state (so a snapshot revives seed-compatibly,
//! hashing exactly as the summary that produced it). Changing the
//! *default* family changes simulation results and therefore rides a
//! `MODEL_VERSION` bump; old states remain replayable because they pin
//! their own family by code.

use crate::mix64;

/// A hash family, identified by a stable wire code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashKind {
    /// The SplitMix64 finalizer over `key ^ seed` (family 1, the
    /// original): two multiplies and three xor-shifts per bucket.
    Mix64,
    /// Dietzfelbinger multiply-shift: one widening multiply by an odd
    /// seed, taking the well-mixed high bits. About half the work of
    /// [`HashKind::Mix64`] per bucket; the default since
    /// `MODEL_VERSION` 4.
    #[default]
    MultiplyShift,
}

impl HashKind {
    /// The stable wire code stored in sketch states (1-based so an
    /// all-zero state is visibly invalid rather than silently legacy).
    pub fn code(self) -> u64 {
        match self {
            HashKind::Mix64 => 1,
            HashKind::MultiplyShift => 2,
        }
    }

    /// Revives a family from its wire code.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(HashKind::Mix64),
            2 => Some(HashKind::MultiplyShift),
            _ => None,
        }
    }

    /// Human-readable family name (for error messages).
    pub fn name(self) -> &'static str {
        match self {
            HashKind::Mix64 => "mix64",
            HashKind::MultiplyShift => "multiply-shift",
        }
    }

    /// Bucket index in `[0, mask]` (mask = power-of-two size − 1).
    ///
    /// The Mix64 arm masks the finalizer's low bits — bit-identical to
    /// the historical `mix64(key ^ seed) & mask` — so legacy states
    /// estimate exactly as they did when captured.
    #[inline]
    pub(crate) fn index(self, key: u64, seed: u64, mask: usize) -> usize {
        match self {
            HashKind::Mix64 => mix64(key ^ seed) as usize & mask,
            // High bits carry the quality in multiply-shift; shift them
            // down before masking.
            HashKind::MultiplyShift => ((seed | 1).wrapping_mul(key) >> 32) as usize & mask,
        }
    }

    /// Full-width hashed value for range reduction (`(h * n) >> 64`),
    /// which weights high bits — exactly where multiply-shift
    /// concentrates its mixing.
    #[inline]
    pub(crate) fn spread(self, key: u64, seed: u64) -> u64 {
        match self {
            HashKind::Mix64 => mix64(key ^ seed),
            HashKind::MultiplyShift => (seed | 1).wrapping_mul(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_reject_unknowns() {
        for kind in [HashKind::Mix64, HashKind::MultiplyShift] {
            assert_eq!(HashKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(HashKind::from_code(0), None);
        assert_eq!(HashKind::from_code(3), None);
    }

    #[test]
    fn default_is_multiply_shift() {
        assert_eq!(HashKind::default(), HashKind::MultiplyShift);
    }

    #[test]
    fn mix64_indexing_matches_legacy_formula() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            for seed in [7u64, 0x9e37_79b9_7f4a_7c15] {
                assert_eq!(
                    HashKind::Mix64.index(key, seed, 1023),
                    mix64(key ^ seed) as usize & 1023,
                );
            }
        }
    }

    #[test]
    fn families_spread_buckets() {
        // Both families must scatter a consecutive key range across a
        // small table instead of collapsing to a few buckets.
        for kind in [HashKind::Mix64, HashKind::MultiplyShift] {
            let mut seen = std::collections::HashSet::new();
            for key in 0..256u64 {
                seen.insert(kind.index(key, 0x1234_5678_9abc_def0, 63));
            }
            assert!(seen.len() > 48, "{} hit only {} of 64 buckets", kind.name(), seen.len());
        }
    }
}
