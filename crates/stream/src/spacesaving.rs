//! The Space-Saving top-k frequency summary (Metwally et al.).
//!
//! Tracks at most `capacity` distinct keys. A monitored key's counter is
//! exact plus at most its recorded `overestimate`; an unmonitored key has
//! been observed at most `max_error()` times. Both bounds follow from the
//! classic guarantee: with capacity `k` over a stream of `N` observations,
//! every estimation error is at most `N / k` (the ε·N bound with
//! ε = 1/k). The summary is deterministic: identical observation sequences
//! produce identical states (min-replacement ties break by slot index).

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

use serde::{Deserialize, Serialize};

use crate::merge::{MergeError, SketchShape};

/// What [`SpaceSaving::observe`] did with the key.
///
/// Exposed so composite summaries (the nested CHH of [`crate::chh`]) can
/// maintain per-slot companion state: `slot` indices are stable for the
/// lifetime of a monitored key and recycled on replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observed {
    /// The key was already monitored; its counter grew.
    Incremented(u32),
    /// The key took a fresh slot (summary not yet full).
    Inserted(u32),
    /// The key displaced the minimum-count key from `slot`.
    Replaced(u32),
}

impl Observed {
    /// The slot now holding the observed key.
    pub fn slot(self) -> u32 {
        match self {
            Observed::Incremented(s) | Observed::Inserted(s) | Observed::Replaced(s) => s,
        }
    }
}

/// A monitored key's estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// Estimated count (never below the true count).
    pub count: u64,
    /// Upper bound on the overestimation (the displaced minimum at
    /// adoption time; 0 for keys monitored since their first occurrence).
    pub overestimate: u64,
}

#[derive(Debug, Clone)]
struct Entry<K> {
    key: K,
    count: u64,
    overestimate: u64,
}

/// Modelled bookkeeping bytes per monitored key beyond the entry payload:
/// the `(count, slot)` order-set node and the key→slot index node,
/// including allocator/container overhead.
const NODE_BYTES: u64 = 48;

/// Deterministic Space-Saving summary over `Copy` keys.
///
/// # Example
///
/// ```
/// use ltc_stream::SpaceSaving;
///
/// let mut ss = SpaceSaving::new(2);
/// for key in [7u64, 7, 7, 9, 9, 4] {
///     ss.observe(key);
/// }
/// let est = ss.estimate(&7).unwrap();
/// assert!(est.count >= 3, "estimates never undercount");
/// assert!(ss.memory_bytes() <= SpaceSaving::<u64>::entry_bytes() * 2);
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving<K> {
    capacity: usize,
    entries: Vec<Entry<K>>,
    index: HashMap<K, u32>,
    /// Live `(count, slot)` pairs ordered for O(log k) min retrieval.
    order: BTreeSet<(u64, u32)>,
    total: u64,
    /// Replacements performed by this instance (telemetry only — not
    /// part of the logical sketch state, so excluded from
    /// [`SpaceSavingState`] and [`SpaceSaving::merge`]).
    evictions: u64,
}

impl<K: Eq + Hash + Copy> SpaceSaving<K> {
    /// Creates a summary monitoring at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Space-Saving needs capacity >= 1");
        SpaceSaving {
            capacity,
            entries: Vec::new(),
            index: HashMap::new(),
            order: BTreeSet::new(),
            total: 0,
            evictions: 0,
        }
    }

    /// Modelled resident bytes per monitored key (entry payload plus
    /// index/order bookkeeping) — the unit [`SpaceSaving::with_budget`]
    /// divides a byte budget by.
    pub fn entry_bytes() -> u64 {
        std::mem::size_of::<Entry<K>>() as u64 + NODE_BYTES
    }

    /// Creates a summary sized to fit `budget_bytes`
    /// (at least one entry).
    pub fn with_budget(budget_bytes: u64) -> Self {
        SpaceSaving::new((budget_bytes / Self::entry_bytes()).max(1) as usize)
    }

    /// Maximum monitored keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Monitored keys right now.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Observations so far (`N`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Min-key replacements performed by this instance since
    /// construction (or the last [`SpaceSaving::clear`]): how often a
    /// full summary displaced its minimum-count key. High eviction
    /// rates relative to [`SpaceSaving::total`] signal the capacity is
    /// too small for the stream's churn. Telemetry-only: snapshots and
    /// merges neither carry nor combine it.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The ε·N error bound: any estimate is within `total / capacity` of
    /// the true count, and any unmonitored key occurred at most this often.
    pub fn max_error(&self) -> u64 {
        self.total / self.capacity as u64
    }

    /// Modelled resident bytes (entry payloads + per-key bookkeeping).
    /// Bounded by `capacity * entry_bytes()` regardless of stream length.
    pub fn memory_bytes(&self) -> u64 {
        self.entries.len() as u64 * Self::entry_bytes()
    }

    /// Records `n` occurrences of `key`.
    pub fn observe_n(&mut self, key: K, n: u64) -> Observed {
        self.total += n;
        if let Some(&slot) = self.index.get(&key) {
            let e = &mut self.entries[slot as usize];
            self.order.remove(&(e.count, slot));
            e.count += n;
            self.order.insert((e.count, slot));
            return Observed::Incremented(slot);
        }
        if self.entries.len() < self.capacity {
            let slot = self.entries.len() as u32;
            self.entries.push(Entry { key, count: n, overestimate: 0 });
            self.index.insert(key, slot);
            self.order.insert((n, slot));
            return Observed::Inserted(slot);
        }
        // Displace the minimum-count key (deterministic: lowest slot on
        // count ties) and inherit its counter as the overestimate.
        let &(min_count, slot) = self.order.iter().next().expect("capacity >= 1");
        self.order.remove(&(min_count, slot));
        let e = &mut self.entries[slot as usize];
        self.index.remove(&e.key);
        *e = Entry { key, count: min_count + n, overestimate: min_count };
        self.index.insert(key, slot);
        self.order.insert((min_count + n, slot));
        self.evictions += 1;
        Observed::Replaced(slot)
    }

    /// Records one occurrence of `key`.
    pub fn observe(&mut self, key: K) -> Observed {
        self.observe_n(key, 1)
    }

    /// The estimate for `key`, or `None` if it is not monitored (its true
    /// count is then at most [`SpaceSaving::max_error`]).
    pub fn estimate(&self, key: &K) -> Option<Estimate> {
        self.index.get(key).map(|&slot| {
            let e = &self.entries[slot as usize];
            Estimate { count: e.count, overestimate: e.overestimate }
        })
    }

    /// The slot holding `key`, if monitored. Slots are stable while the
    /// key stays monitored and recycled on replacement (see [`Observed`]).
    pub fn slot(&self, key: &K) -> Option<u32> {
        self.index.get(key).copied()
    }

    /// Iterates monitored `(key, estimate)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (K, Estimate)> + '_ {
        self.entries
            .iter()
            .map(|e| (e.key, Estimate { count: e.count, overestimate: e.overestimate }))
    }

    /// Monitored keys sorted by descending estimated count (slot index
    /// breaks ties, so the order is deterministic).
    pub fn top(&self) -> Vec<(K, Estimate)> {
        let mut slots: Vec<u32> = (0..self.entries.len() as u32).collect();
        slots.sort_by_key(|&s| (std::cmp::Reverse(self.entries[s as usize].count), s));
        slots
            .into_iter()
            .map(|s| {
                let e = &self.entries[s as usize];
                (e.key, Estimate { count: e.count, overestimate: e.overestimate })
            })
            .collect()
    }

    /// Forgets everything (capacity is retained).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.order.clear();
        self.total = 0;
        self.evictions = 0;
    }

    /// The minimum monitored count (0 when empty) — the upper bound on
    /// any unmonitored key's true count once the summary is full.
    fn min_count(&self) -> u64 {
        self.order.iter().next().map(|&(count, _)| count).unwrap_or(0)
    }

    /// What an absent key may have truly counted in this summary: the
    /// minimum counter when full (it could have been displaced), zero
    /// otherwise (below capacity every observed key is monitored).
    fn absent_bound(&self) -> u64 {
        if self.entries.len() == self.capacity {
            self.min_count()
        } else {
            0
        }
    }
}

impl<K: Eq + Hash + Copy + Ord> SpaceSaving<K> {
    /// This summary's construction shape (merge precondition).
    pub fn shape(&self) -> SketchShape {
        SketchShape::new("space-saving", vec![("capacity", self.capacity as u64)])
    }

    /// Folds `other` into `self` (the parallel Space-Saving combine of
    /// Cafaro et al.): matched keys sum their estimates and
    /// overestimates; a key monitored on only one side adds the other
    /// side's absent bound — its minimum counter when full, zero below
    /// capacity — to both (the key may have been displaced there), and
    /// the combined entries are cut back to the top
    /// `capacity` by count (ties broken by key, so merging is
    /// deterministic and commutative).
    ///
    /// # Merged error bounds
    ///
    /// Over the combined stream of `N = N₁ + N₂` observations:
    /// estimates still never undercount; a monitored key's error stays
    /// within `N₁/k + N₂/k` = [`SpaceSaving::max_error`] of the merged
    /// summary (each side's per-entry overestimate and absent bound is at
    /// most `Nᵢ/k`); any key whose true count exceeds `2·max_error()`
    /// is guaranteed to stay monitored. The last bound is `2ε·N` rather
    /// than the single-pass `ε·N` because the combined counters can sum
    /// to `2N` before truncation — the price of merging, documented so
    /// callers can size capacity accordingly.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError`] when the capacities differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.shape().ensure_matches(&other.shape())?;
        let (m_self, m_other) = (self.absent_bound(), other.absent_bound());
        let mut combined: Vec<(K, u64, u64)> = Vec::with_capacity(self.len() + other.len());
        for (key, est) in self.iter() {
            match other.estimate(&key) {
                Some(o) => {
                    combined.push((key, est.count + o.count, est.overestimate + o.overestimate));
                }
                None => combined.push((key, est.count + m_other, est.overestimate + m_other)),
            }
        }
        for (key, est) in other.iter() {
            if self.estimate(&key).is_none() {
                combined.push((key, est.count + m_self, est.overestimate + m_self));
            }
        }
        combined.sort_by_key(|&(key, count, _)| (std::cmp::Reverse(count), key));
        combined.truncate(self.capacity);
        let total = self.total + other.total;
        self.clear();
        self.total = total;
        for (slot, (key, count, overestimate)) in combined.into_iter().enumerate() {
            self.entries.push(Entry { key, count, overestimate });
            self.index.insert(key, slot as u32);
            self.order.insert((count, slot as u32));
        }
        Ok(())
    }
}

impl SpaceSaving<u64> {
    /// The serializable snapshot of this summary (slot order preserved,
    /// so [`SpaceSaving::from_state`] reproduces the exact state —
    /// including [`SpaceSaving::top`]'s tie-breaking).
    pub fn to_state(&self) -> SpaceSavingState {
        SpaceSavingState {
            capacity: self.capacity as u64,
            total: self.total,
            keys: self.entries.iter().map(|e| e.key).collect(),
            counts: self.entries.iter().map(|e| e.count).collect(),
            overestimates: self.entries.iter().map(|e| e.overestimate).collect(),
        }
    }

    /// Rebuilds a summary from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError::State`] when the snapshot is inconsistent
    /// (mismatched array lengths, more entries than capacity, duplicate
    /// keys, zero capacity) — states cross process boundaries, so bad
    /// data must be an error, not a panic.
    pub fn from_state(state: &SpaceSavingState) -> Result<Self, MergeError> {
        let invalid = |reason: String| MergeError::State { summary: "space-saving", reason };
        if state.capacity == 0 {
            return Err(invalid("capacity 0".to_string()));
        }
        if state.keys.len() != state.counts.len() || state.keys.len() != state.overestimates.len() {
            return Err(invalid(format!(
                "mismatched array lengths {}/{}/{}",
                state.keys.len(),
                state.counts.len(),
                state.overestimates.len()
            )));
        }
        if state.keys.len() as u64 > state.capacity {
            return Err(invalid(format!(
                "{} entries exceed capacity {}",
                state.keys.len(),
                state.capacity
            )));
        }
        let mut ss = SpaceSaving::new(state.capacity as usize);
        ss.total = state.total;
        for (slot, &key) in state.keys.iter().enumerate() {
            let (count, overestimate) = (state.counts[slot], state.overestimates[slot]);
            if ss.index.insert(key, slot as u32).is_some() {
                return Err(invalid(format!("duplicate key {key:#x}")));
            }
            ss.entries.push(Entry { key, count, overestimate });
            ss.order.insert((count, slot as u32));
        }
        Ok(ss)
    }
}

/// Serializable snapshot of a [`SpaceSaving<u64>`] summary: parallel
/// slot-ordered arrays (the wire form of a segmented worker's partial
/// summary).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceSavingState {
    /// Maximum monitored keys.
    pub capacity: u64,
    /// Observations summarized (`N`).
    pub total: u64,
    /// Monitored keys in slot order.
    pub keys: Vec<u64>,
    /// Estimated counts, parallel to `keys`.
    pub counts: Vec<u64>,
    /// Overestimation bounds, parallel to `keys`.
    pub overestimates: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut ss = SpaceSaving::new(8);
        for i in 0..5u64 {
            ss.observe_n(i, i + 1);
        }
        for i in 0..5u64 {
            let e = ss.estimate(&i).unwrap();
            assert_eq!(e.count, i + 1);
            assert_eq!(e.overestimate, 0);
        }
        assert_eq!(ss.total(), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn replacement_inherits_min_count() {
        let mut ss = SpaceSaving::new(2);
        ss.observe_n(1u64, 5);
        ss.observe_n(2, 3);
        let o = ss.observe(9); // displaces key 2 (count 3)
        assert_eq!(o, Observed::Replaced(1));
        let e = ss.estimate(&9).unwrap();
        assert_eq!(e.count, 4);
        assert_eq!(e.overestimate, 3);
        assert!(ss.estimate(&2).is_none());
    }

    #[test]
    fn evictions_count_replacements_only() {
        let mut ss = SpaceSaving::new(2);
        ss.observe(1u64);
        ss.observe(2);
        ss.observe(1);
        assert_eq!(ss.evictions(), 0, "inserts and increments are not evictions");
        ss.observe(3); // displaces the min key
        ss.observe(4); // displaces again
        assert_eq!(ss.evictions(), 2);
        // Telemetry-only: the counter survives neither snapshots nor clear.
        let revived = SpaceSaving::from_state(&ss.to_state()).unwrap();
        assert_eq!(revived.evictions(), 0);
        ss.clear();
        assert_eq!(ss.evictions(), 0);
    }

    #[test]
    fn error_stays_within_bound() {
        // Skewed stream: key k occurs 2^(10-k) times, shuffled deterministically.
        let mut stream = Vec::new();
        for k in 0..10u64 {
            stream.extend(std::iter::repeat(k).take(1 << (10 - k)));
        }
        // Interleave by striding.
        let mut ss = SpaceSaving::new(4);
        let mut truth = std::collections::HashMap::new();
        for i in 0..stream.len() {
            let key = stream[(i * 7919) % stream.len()];
            ss.observe(key);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        for (key, est) in ss.iter() {
            let t = truth[&key];
            assert!(est.count >= t, "never undercounts");
            assert!(est.count - t <= ss.max_error(), "ε·N bound");
        }
    }

    #[test]
    fn memory_is_bounded_by_capacity() {
        let mut ss = SpaceSaving::new(16);
        for i in 0..100_000u64 {
            ss.observe(i);
        }
        assert_eq!(ss.len(), 16);
        assert_eq!(ss.memory_bytes(), 16 * SpaceSaving::<u64>::entry_bytes());
    }

    #[test]
    fn with_budget_fits_the_budget() {
        let budget = 4096;
        let ss = SpaceSaving::<u64>::with_budget(budget);
        assert!(ss.capacity() as u64 * SpaceSaving::<u64>::entry_bytes() <= budget);
        assert!(ss.capacity() >= 1);
    }

    #[test]
    fn top_is_sorted_and_deterministic() {
        let mut ss = SpaceSaving::new(8);
        for (k, n) in [(3u64, 9u64), (1, 4), (2, 9), (5, 1)] {
            ss.observe_n(k, n);
        }
        let top: Vec<u64> = ss.top().into_iter().map(|(k, _)| k).collect();
        assert_eq!(top, vec![3, 2, 1, 5], "count desc, slot order on ties");
    }

    #[test]
    fn clear_resets_state() {
        let mut ss = SpaceSaving::new(2);
        ss.observe(1u64);
        ss.clear();
        assert!(ss.is_empty());
        assert_eq!(ss.total(), 0);
        assert!(ss.estimate(&1).is_none());
        ss.observe(2);
        assert_eq!(ss.estimate(&2).unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = SpaceSaving::<u64>::new(0);
    }

    #[test]
    fn merge_sums_matched_keys_and_totals() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        a.observe_n(1u64, 5);
        a.observe_n(2, 3);
        b.observe_n(1, 7);
        b.observe_n(3, 2);
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 17);
        // Neither side is full, so absent bounds are zero and every
        // combined count is exact.
        assert_eq!(a.estimate(&1).unwrap().count, 12);
        assert_eq!(a.estimate(&2).unwrap().count, 3);
        assert_eq!(a.estimate(&3).unwrap().count, 2);
        assert_eq!(a.estimate(&1).unwrap().overestimate, 0);
    }

    #[test]
    fn merge_never_undercounts_displaced_keys() {
        // Key 9 is hot in `b` but got displaced from `a`: its merged
        // estimate must still cover the occurrences `a` may have seen.
        let mut a = SpaceSaving::new(2);
        a.observe_n(1u64, 10);
        a.observe_n(2, 6);
        a.observe_n(9, 1); // displaces 2, inherits count 6
        a.observe_n(2, 9); // displaces 9 again — 9's true count in a is 1
        let mut b = SpaceSaving::new(2);
        b.observe_n(9u64, 20);
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        // True combined count of 9 is 21; the estimate must not be below.
        assert!(merged.estimate(&9).is_some_and(|e| e.count >= 21));
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = SpaceSaving::new(3);
        let mut b = SpaceSaving::new(3);
        for (k, n) in [(1u64, 9u64), (2, 4), (3, 7), (4, 2)] {
            a.observe_n(k, n);
        }
        for (k, n) in [(2u64, 5u64), (5, 8), (6, 1)] {
            b.observe_n(k, n);
        }
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab.total(), ba.total());
        assert_eq!(ab.top(), ba.top(), "deterministic tie-breaking makes merge commutative");
    }

    #[test]
    fn merge_rejects_capacity_mismatch() {
        let mut a = SpaceSaving::new(4);
        let b = SpaceSaving::<u64>::new(8);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(
            err,
            crate::MergeError::Shape {
                summary: "space-saving",
                field: "capacity",
                left: 4,
                right: 8
            }
        );
    }

    #[test]
    fn state_round_trips_exactly() {
        let mut ss = SpaceSaving::new(3);
        for key in [7u64, 7, 9, 4, 4, 4, 1] {
            ss.observe(key);
        }
        let revived = SpaceSaving::from_state(&ss.to_state()).unwrap();
        assert_eq!(revived.total(), ss.total());
        assert_eq!(revived.top(), ss.top());
        assert_eq!(revived.memory_bytes(), ss.memory_bytes());
        // The revived summary keeps evolving identically.
        let (mut a, mut b) = (ss, revived);
        for key in [9u64, 9, 2] {
            a.observe(key);
            b.observe(key);
        }
        assert_eq!(a.top(), b.top());
    }

    #[test]
    fn invalid_states_are_typed_errors() {
        let mut state = SpaceSaving::<u64>::new(2).to_state();
        state.capacity = 0;
        assert!(matches!(
            SpaceSaving::from_state(&state),
            Err(crate::MergeError::State { summary: "space-saving", .. })
        ));
        let mut over = SpaceSavingState {
            capacity: 1,
            total: 2,
            keys: vec![1, 2],
            counts: vec![1, 1],
            overestimates: vec![0, 0],
        };
        assert!(SpaceSaving::from_state(&over).is_err(), "entries beyond capacity");
        over.capacity = 2;
        over.counts.pop();
        assert!(SpaceSaving::from_state(&over).is_err(), "ragged arrays");
        let dup = SpaceSavingState {
            capacity: 4,
            total: 2,
            keys: vec![5, 5],
            counts: vec![1, 1],
            overestimates: vec![0, 0],
        };
        assert!(SpaceSaving::from_state(&dup).is_err(), "duplicate keys");
    }
}
