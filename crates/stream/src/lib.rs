//! Bounded-memory one-pass stream summaries.
//!
//! The exact DBCP correlation table grows with the number of distinct
//! last-touch signatures — megabytes for the paper's workloads, unbounded
//! for arbitrarily long traces. This crate provides the sketch
//! counterpart: reusable summaries that mine the same (signature →
//! next-miss) correlations online in memory that is fixed up front,
//! trading a quantified estimation error for independence from trace
//! length:
//!
//! * [`SpaceSaving`] — deterministic top-k frequency counting with the
//!   classic ε·N error bound (Metwally et al.).
//! * [`CountMin`] — a seeded counter sketch answering frequency queries
//!   for *any* key, never undercounting (Cormode & Muthukrishnan).
//! * [`ChhSummary`] — correlated heavy hitters over a two-dimensional
//!   stream: an outer [`SpaceSaving`] over keys, nested inner summaries
//!   of each key's correlated values, and a [`CountMin`] over whole pairs
//!   capping the estimates (Lahiri et al.; Epicoco et al.).
//!
//! Every summary reports its modelled resident footprint via
//! `memory_bytes()` and can be sized from a byte budget (`with_budget`);
//! the budget is a hard bound that holds for any stream length. Hashing
//! seeds derive from the workspace `rand` generator, so a summary's state
//! is a pure function of `(configuration, observation sequence)` — the
//! property that lets sketch-based experiment runs participate in the
//! engine's artifact cache.
//!
//! Every summary is also **mergeable**: `merge(&mut self, other)` folds a
//! same-shape peer in (shape checked via [`SketchShape`], mismatches are
//! typed [`MergeError`]s), with the combined error bounds documented on
//! each `merge`. Together with the serializable `*State` snapshots this
//! lets one logical trace be split across workers — each summarizes its
//! segment in budgeted memory, and the partial summaries combine into one
//! (`ltsim stream --segments N`).
//!
//! # Example
//!
//! ```
//! use ltc_stream::{ChhConfig, ChhSummary};
//!
//! // 64 KiB of summary, no matter how long the miss stream gets.
//! let mut chh = ChhSummary::new(ChhConfig::with_budget(64 << 10));
//! for i in 0..1_000_000u64 {
//!     let signature = i % 3;
//!     let next_miss = 0x1000 + signature * 0x40;
//!     chh.observe(signature, next_miss);
//! }
//! assert!(chh.memory_bytes() <= 64 << 10);
//! assert_eq!(chh.correlated(0).unwrap()[0].value, 0x1000);
//! ```

pub mod chh;
pub mod countmin;
pub mod hash;
pub mod merge;
pub mod spacesaving;

pub use chh::{ChhConfig, ChhPair, ChhState, ChhSummary};
pub use countmin::{CountMin, CountMinState};
pub use hash::HashKind;
pub use merge::{MergeError, SketchShape};
pub use spacesaving::{Estimate, Observed, SpaceSaving, SpaceSavingState};

/// Strong 64-bit mixer (the SplitMix64 finalizer), shared by every
/// summary so their hashing — and therefore their deterministic state —
/// cannot drift apart.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}
