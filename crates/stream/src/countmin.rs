//! The Count-Min sketch (Cormode & Muthukrishnan).
//!
//! A `depth × width` grid of counters. Each row hashes the key with an
//! independent seed; an estimate is the minimum over the key's counters,
//! so it never undercounts and overcounts by at most `e·N / width` with
//! probability `1 − exp(−depth)`. Unlike [`crate::SpaceSaving`] it
//! answers for *any* key, at the cost of never knowing which keys are hot.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::hash::HashKind;
use crate::merge::{MergeError, SketchShape};

/// Count-Min sketch over `u64` keys with deterministic seeding.
///
/// Row seeds are drawn from the workspace's [`StdRng`] stream, so two
/// sketches built with the same `(width, depth, seed)` are byte-for-byte
/// interchangeable — a property the artifact cache relies on.
///
/// # Example
///
/// ```
/// use ltc_stream::CountMin;
///
/// let mut cm = CountMin::new(1 << 10, 4, 42);
/// for _ in 0..5 {
///     cm.observe(7);
/// }
/// assert!(cm.estimate(7) >= 5, "estimates never undercount");
/// ```
#[derive(Debug, Clone)]
pub struct CountMin {
    width: usize,
    depth: usize,
    seed: u64,
    hash: HashKind,
    row_seeds: Vec<u64>,
    counters: Vec<u64>,
    total: u64,
}

impl CountMin {
    /// Creates a sketch of `depth` rows of `width` counters (width is
    /// rounded up to a power of two for mask indexing), hashing with the
    /// default [`HashKind`].
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        CountMin::with_hash(width, depth, seed, HashKind::default())
    }

    /// [`CountMin::new`] with an explicit hash family (legacy states
    /// revive through this).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn with_hash(width: usize, depth: usize, seed: u64, hash: HashKind) -> Self {
        assert!(width > 0 && depth > 0, "Count-Min needs width >= 1 and depth >= 1");
        let width = width.next_power_of_two();
        let mut rng = StdRng::seed_from_u64(seed);
        let row_seeds = (0..depth).map(|_| rng.next_u64()).collect();
        CountMin { width, depth, seed, hash, row_seeds, counters: vec![0; width * depth], total: 0 }
    }

    /// Creates the widest power-of-two sketch of the given depth that fits
    /// `budget_bytes` of counters (at least one counter per row).
    pub fn with_budget(budget_bytes: u64, depth: usize, seed: u64) -> Self {
        CountMin::with_budget_hash(budget_bytes, depth, seed, HashKind::default())
    }

    /// [`CountMin::with_budget`] with an explicit hash family.
    pub fn with_budget_hash(budget_bytes: u64, depth: usize, seed: u64, hash: HashKind) -> Self {
        assert!(depth > 0, "Count-Min needs depth >= 1");
        let per_row = (budget_bytes / 8 / depth as u64).max(1);
        // next_power_of_two rounds up; halve back down if that overshoots.
        let mut width = per_row.next_power_of_two();
        if width > per_row {
            width /= 2;
        }
        CountMin::with_hash(width.max(1) as usize, depth, seed, hash)
    }

    /// The hash family bucketing this sketch.
    pub fn hash_kind(&self) -> HashKind {
        self.hash
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Observations so far (`N`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Resident bytes: the counter grid plus row seeds.
    pub fn memory_bytes(&self) -> u64 {
        (self.counters.len() as u64 + self.row_seeds.len() as u64) * 8
    }

    /// Non-zero counters in the grid — the occupancy telemetry samples.
    /// Approaching `width * depth` means rows are saturating and
    /// estimates degrade toward `total`; an O(width·depth) scan, so
    /// sample it, don't call it per observation.
    pub fn occupancy(&self) -> u64 {
        self.counters.iter().filter(|&&c| c > 0).count() as u64
    }

    #[inline]
    fn slot(&self, row: usize, key: u64) -> usize {
        row * self.width + self.hash.index(key, self.row_seeds[row], self.width - 1)
    }

    /// Records `n` occurrences of `key`.
    pub fn observe_n(&mut self, key: u64, n: u64) {
        self.total += n;
        for row in 0..self.depth {
            let slot = self.slot(row, key);
            self.counters[slot] += n;
        }
    }

    /// Records one occurrence of `key`.
    pub fn observe(&mut self, key: u64) {
        self.observe_n(key, 1);
    }

    /// The (never undercounting) estimate for `key`.
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth).map(|row| self.counters[self.slot(row, key)]).min().unwrap_or(0)
    }

    /// Zeroes every counter (geometry and seeds are retained).
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    /// This sketch's construction shape (merge precondition): width,
    /// depth, the seed the row hashes derive from, and the hash family —
    /// two families bucket differently, so cross-family cell addition
    /// would be meaningless.
    pub fn shape(&self) -> SketchShape {
        SketchShape::new(
            "count-min",
            vec![
                ("width", self.width as u64),
                ("depth", self.depth as u64),
                ("seed", self.seed),
                ("hash", self.hash.code()),
            ],
        )
    }

    /// Adds `other`'s counters into `self`, cell by cell.
    ///
    /// # Merged error bounds
    ///
    /// Counter grids of identical geometry and row seeds are linear in
    /// the stream: the merged grid equals the grid a single sketch would
    /// have built over the concatenated stream, so the merge is *exact* —
    /// estimates still never undercount and the overcount bound is
    /// `e·N/width` with the summed `N = N₁ + N₂`. Merging is therefore
    /// associative and commutative with no extra error.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError`] when width, depth or seed differ (with a
    /// different seed the rows hash differently, so cell-wise addition
    /// would be meaningless).
    pub fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.shape().ensure_matches(&other.shape())?;
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine += theirs;
        }
        self.total += other.total;
        Ok(())
    }

    /// The serializable snapshot of this sketch (row seeds regenerate
    /// from the stored seed).
    pub fn to_state(&self) -> CountMinState {
        CountMinState {
            width: self.width as u64,
            depth: self.depth as u64,
            seed: self.seed,
            hash: self.hash.code(),
            total: self.total,
            counters: self.counters.clone(),
        }
    }

    /// Rebuilds a sketch from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError::State`] when the counter array does not
    /// match the stated geometry or the geometry is degenerate.
    pub fn from_state(state: &CountMinState) -> Result<Self, MergeError> {
        let invalid = |reason: String| MergeError::State { summary: "count-min", reason };
        if state.width == 0 || state.depth == 0 {
            return Err(invalid(format!("degenerate geometry {}x{}", state.width, state.depth)));
        }
        if !state.width.is_power_of_two() {
            return Err(invalid(format!("width {} is not a power of two", state.width)));
        }
        let hash = HashKind::from_code(state.hash)
            .ok_or_else(|| invalid(format!("unknown hash family code {}", state.hash)))?;
        let mut cm =
            CountMin::with_hash(state.width as usize, state.depth as usize, state.seed, hash);
        if cm.counters.len() != state.counters.len() {
            return Err(invalid(format!(
                "{} counters for a {}x{} grid",
                state.counters.len(),
                state.width,
                state.depth
            )));
        }
        cm.counters.clone_from(&state.counters);
        cm.total = state.total;
        Ok(cm)
    }
}

/// Serializable snapshot of a [`CountMin`] sketch (the wire form of a
/// segmented worker's partial summary).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountMinState {
    /// Counters per row (a power of two).
    pub width: u64,
    /// Number of rows.
    pub depth: u64,
    /// Seed the row hashes derive from.
    pub seed: u64,
    /// Hash family wire code ([`HashKind::code`]), so the snapshot
    /// revives bucketing exactly as it was built.
    pub hash: u64,
    /// Observations summarized (`N`).
    pub total: u64,
    /// The `depth × width` counter grid, row-major.
    pub counters: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_counts_nonzero_counters() {
        let mut cm = CountMin::new(64, 4, 1);
        assert_eq!(cm.occupancy(), 0);
        cm.observe(42);
        // One distinct key touches exactly one counter per row (hash
        // collisions across rows land in different rows' slots).
        assert_eq!(cm.occupancy(), cm.depth() as u64);
        for key in 0..10_000u64 {
            cm.observe(key);
        }
        let occ = cm.occupancy();
        assert!(occ > 0 && occ <= (cm.width() * cm.depth()) as u64);
        cm.clear();
        assert_eq!(cm.occupancy(), 0);
    }

    #[test]
    fn never_undercounts() {
        let mut cm = CountMin::new(64, 4, 1);
        for key in 0..1000u64 {
            cm.observe_n(key, key % 7 + 1);
        }
        for key in 0..1000u64 {
            assert!(cm.estimate(key) > key % 7);
        }
    }

    #[test]
    fn unseen_keys_stay_small() {
        let mut cm = CountMin::new(1 << 12, 4, 9);
        for key in 0..100u64 {
            cm.observe(key);
        }
        // A wide sketch over a tiny stream rarely collides on all rows.
        let ghosts = (10_000..10_100u64).filter(|&k| cm.estimate(k) > 0).count();
        assert!(ghosts < 5, "too many phantom counts: {ghosts}");
    }

    #[test]
    fn same_seed_is_identical() {
        let mut a = CountMin::new(128, 3, 7);
        let mut b = CountMin::new(128, 3, 7);
        for key in 0..500u64 {
            a.observe(key * 31);
            b.observe(key * 31);
        }
        for key in 0..500u64 {
            assert_eq!(a.estimate(key * 31), b.estimate(key * 31));
        }
    }

    #[test]
    fn different_seeds_hash_differently() {
        let a = CountMin::new(1 << 10, 2, 1);
        let b = CountMin::new(1 << 10, 2, 2);
        let differs = (0..64u64).any(|k| a.slot(0, k) != b.slot(0, k));
        assert!(differs, "row seeds must change the hash");
    }

    #[test]
    fn budget_bounds_memory() {
        for budget in [64u64, 1 << 10, 1 << 16, (1 << 16) + 123] {
            let cm = CountMin::with_budget(budget, 2, 1);
            assert!(
                cm.counters.len() as u64 * 8 <= budget.max(2 * 8 * 2),
                "counter grid must fit {budget}"
            );
        }
    }

    #[test]
    fn clear_zeroes_counts() {
        let mut cm = CountMin::new(32, 2, 1);
        cm.observe(5);
        cm.clear();
        assert_eq!(cm.estimate(5), 0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn merge_equals_single_pass() {
        // Linearity: sketching two halves and merging is byte-identical
        // to sketching the concatenation.
        let mut whole = CountMin::new(128, 3, 7);
        let mut left = CountMin::new(128, 3, 7);
        let mut right = CountMin::new(128, 3, 7);
        for key in 0..400u64 {
            whole.observe(key % 37);
            if key < 200 {
                left.observe(key % 37);
            } else {
                right.observe(key % 37);
            }
        }
        left.merge(&right).unwrap();
        assert_eq!(left.total(), whole.total());
        assert_eq!(left.counters, whole.counters);
    }

    #[test]
    fn merge_rejects_shape_mismatches() {
        use crate::MergeError;
        let mut base = CountMin::new(64, 2, 1);
        let err = base.merge(&CountMin::new(128, 2, 1)).unwrap_err();
        assert!(matches!(err, MergeError::Shape { summary: "count-min", field: "width", .. }));
        let err = base.merge(&CountMin::new(64, 3, 1)).unwrap_err();
        assert!(matches!(err, MergeError::Shape { field: "depth", .. }));
        let err = base.merge(&CountMin::new(64, 2, 2)).unwrap_err();
        assert!(matches!(err, MergeError::Shape { field: "seed", .. }));
    }

    #[test]
    fn merge_rejects_hash_family_mismatch() {
        use crate::MergeError;
        let mut ms = CountMin::with_hash(64, 2, 1, HashKind::MultiplyShift);
        let legacy = CountMin::with_hash(64, 2, 1, HashKind::Mix64);
        let err = ms.merge(&legacy).unwrap_err();
        assert!(matches!(err, MergeError::Shape { summary: "count-min", field: "hash", .. }));
    }

    #[test]
    fn states_pin_their_hash_family() {
        for kind in [HashKind::Mix64, HashKind::MultiplyShift] {
            let mut cm = CountMin::with_hash(128, 3, 5, kind);
            for key in 0..400u64 {
                cm.observe(key * 13);
            }
            let state = cm.to_state();
            assert_eq!(state.hash, kind.code());
            let revived = CountMin::from_state(&state).unwrap();
            assert_eq!(revived.hash_kind(), kind);
            assert_eq!(revived.counters, cm.counters);
            for key in 0..400u64 {
                assert_eq!(revived.estimate(key * 13), cm.estimate(key * 13), "{}", kind.name());
            }
        }
        let mut bad = CountMin::new(64, 2, 1).to_state();
        bad.hash = 99;
        assert!(CountMin::from_state(&bad).is_err(), "unknown hash code must be rejected");
    }

    #[test]
    fn legacy_mix64_family_still_never_undercounts() {
        let mut cm = CountMin::with_hash(64, 4, 1, HashKind::Mix64);
        for key in 0..1000u64 {
            cm.observe_n(key, key % 7 + 1);
        }
        for key in 0..1000u64 {
            assert!(cm.estimate(key) > key % 7);
        }
    }

    #[test]
    fn state_round_trips_exactly() {
        let mut cm = CountMin::new(64, 3, 9);
        for key in 0..300u64 {
            cm.observe(key * 17);
        }
        let revived = CountMin::from_state(&cm.to_state()).unwrap();
        assert_eq!(revived.total(), cm.total());
        assert_eq!(revived.counters, cm.counters);
        for key in 0..300u64 {
            assert_eq!(revived.estimate(key * 17), cm.estimate(key * 17));
        }
    }

    #[test]
    fn invalid_states_are_typed_errors() {
        use crate::MergeError;
        let mut state = CountMin::new(64, 2, 1).to_state();
        state.counters.pop();
        assert!(matches!(
            CountMin::from_state(&state),
            Err(MergeError::State { summary: "count-min", .. })
        ));
        let mut degenerate = CountMin::new(64, 2, 1).to_state();
        degenerate.depth = 0;
        assert!(CountMin::from_state(&degenerate).is_err());
        let mut odd = CountMin::new(64, 2, 1).to_state();
        odd.width = 65;
        assert!(CountMin::from_state(&odd).is_err());
    }
}
