//! The Count-Min sketch (Cormode & Muthukrishnan).
//!
//! A `depth × width` grid of counters. Each row hashes the key with an
//! independent seed; an estimate is the minimum over the key's counters,
//! so it never undercounts and overcounts by at most `e·N / width` with
//! probability `1 − exp(−depth)`. Unlike [`crate::SpaceSaving`] it
//! answers for *any* key, at the cost of never knowing which keys are hot.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::mix64;

/// Count-Min sketch over `u64` keys with deterministic seeding.
///
/// Row seeds are drawn from the workspace's [`StdRng`] stream, so two
/// sketches built with the same `(width, depth, seed)` are byte-for-byte
/// interchangeable — a property the artifact cache relies on.
///
/// # Example
///
/// ```
/// use ltc_stream::CountMin;
///
/// let mut cm = CountMin::new(1 << 10, 4, 42);
/// for _ in 0..5 {
///     cm.observe(7);
/// }
/// assert!(cm.estimate(7) >= 5, "estimates never undercount");
/// ```
#[derive(Debug, Clone)]
pub struct CountMin {
    width: usize,
    depth: usize,
    row_seeds: Vec<u64>,
    counters: Vec<u64>,
    total: u64,
}

impl CountMin {
    /// Creates a sketch of `depth` rows of `width` counters (width is
    /// rounded up to a power of two for mask indexing).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "Count-Min needs width >= 1 and depth >= 1");
        let width = width.next_power_of_two();
        let mut rng = StdRng::seed_from_u64(seed);
        let row_seeds = (0..depth).map(|_| rng.next_u64()).collect();
        CountMin { width, depth, row_seeds, counters: vec![0; width * depth], total: 0 }
    }

    /// Creates the widest power-of-two sketch of the given depth that fits
    /// `budget_bytes` of counters (at least one counter per row).
    pub fn with_budget(budget_bytes: u64, depth: usize, seed: u64) -> Self {
        assert!(depth > 0, "Count-Min needs depth >= 1");
        let per_row = (budget_bytes / 8 / depth as u64).max(1);
        // next_power_of_two rounds up; halve back down if that overshoots.
        let mut width = per_row.next_power_of_two();
        if width > per_row {
            width /= 2;
        }
        CountMin::new(width.max(1) as usize, depth, seed)
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Observations so far (`N`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Resident bytes: the counter grid plus row seeds.
    pub fn memory_bytes(&self) -> u64 {
        (self.counters.len() as u64 + self.row_seeds.len() as u64) * 8
    }

    #[inline]
    fn slot(&self, row: usize, key: u64) -> usize {
        row * self.width + (mix64(key ^ self.row_seeds[row]) as usize & (self.width - 1))
    }

    /// Records `n` occurrences of `key`.
    pub fn observe_n(&mut self, key: u64, n: u64) {
        self.total += n;
        for row in 0..self.depth {
            let slot = self.slot(row, key);
            self.counters[slot] += n;
        }
    }

    /// Records one occurrence of `key`.
    pub fn observe(&mut self, key: u64) {
        self.observe_n(key, 1);
    }

    /// The (never undercounting) estimate for `key`.
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth).map(|row| self.counters[self.slot(row, key)]).min().unwrap_or(0)
    }

    /// Zeroes every counter (geometry and seeds are retained).
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_undercounts() {
        let mut cm = CountMin::new(64, 4, 1);
        for key in 0..1000u64 {
            cm.observe_n(key, key % 7 + 1);
        }
        for key in 0..1000u64 {
            assert!(cm.estimate(key) > key % 7);
        }
    }

    #[test]
    fn unseen_keys_stay_small() {
        let mut cm = CountMin::new(1 << 12, 4, 9);
        for key in 0..100u64 {
            cm.observe(key);
        }
        // A wide sketch over a tiny stream rarely collides on all rows.
        let ghosts = (10_000..10_100u64).filter(|&k| cm.estimate(k) > 0).count();
        assert!(ghosts < 5, "too many phantom counts: {ghosts}");
    }

    #[test]
    fn same_seed_is_identical() {
        let mut a = CountMin::new(128, 3, 7);
        let mut b = CountMin::new(128, 3, 7);
        for key in 0..500u64 {
            a.observe(key * 31);
            b.observe(key * 31);
        }
        for key in 0..500u64 {
            assert_eq!(a.estimate(key * 31), b.estimate(key * 31));
        }
    }

    #[test]
    fn different_seeds_hash_differently() {
        let a = CountMin::new(1 << 10, 2, 1);
        let b = CountMin::new(1 << 10, 2, 2);
        let differs = (0..64u64).any(|k| a.slot(0, k) != b.slot(0, k));
        assert!(differs, "row seeds must change the hash");
    }

    #[test]
    fn budget_bounds_memory() {
        for budget in [64u64, 1 << 10, 1 << 16, (1 << 16) + 123] {
            let cm = CountMin::with_budget(budget, 2, 1);
            assert!(
                cm.counters.len() as u64 * 8 <= budget.max(2 * 8 * 2),
                "counter grid must fit {budget}"
            );
        }
    }

    #[test]
    fn clear_zeroes_counts() {
        let mut cm = CountMin::new(32, 2, 1);
        cm.observe(5);
        cm.clear();
        assert_eq!(cm.estimate(5), 0);
        assert_eq!(cm.total(), 0);
    }
}
