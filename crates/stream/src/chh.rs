//! Correlated heavy hitters over a two-dimensional stream.
//!
//! Mines `(key, value)` pairs — here: last-touch signature → next missed
//! block — for keys that are frequent *and* values that are frequent
//! conditioned on their key, following the nested-summary construction of
//! Lahiri et al. ("Identifying Correlated Heavy-Hitters in a
//! Two-Dimensional Data Stream") with the sketch-assisted refinement of
//! Epicoco et al. ("Fast and Accurate Mining of Correlated Heavy
//! Hitters"): an outer key summary whose entries each carry a nested
//! inner summary over that key's values, plus a [`CountMin`] sketch over
//! whole pairs that persists across outer replacements and caps the
//! inner estimates.
//!
//! Unlike the pointer-heavy global [`crate::SpaceSaving`], the outer
//! summary is
//! *set-associative*: keys hash (seeded) into sets of [`ChhConfig::ways`]
//! packed 16-byte entries, replacement is Space-Saving's
//! min-count-inheritance restricted to the set, and the inner summaries
//! are inline arrays in one flat allocation. That keeps the never-
//! undercount property and the deterministic state while monitoring
//! 5–10x more keys per budget byte — the difference between a sketch
//! predictor that can hold a signature working set and one that churns.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::countmin::CountMin;
use crate::mix64;
use crate::spacesaving::Estimate;

/// Mixes a `(key, value)` pair into the Count-Min key domain.
#[inline]
fn pair_key(key: u64, value: u64) -> u64 {
    key.rotate_left(32) ^ value.wrapping_mul(0xff51_afd7_ed55_8ccd)
}

/// Sizing and seeding of a [`ChhSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChhConfig {
    /// Total byte budget for the summary (outer + inners + pair sketch).
    pub budget_bytes: u64,
    /// Values monitored per key (the inner summary capacity).
    pub inner_capacity: usize,
    /// Outer set associativity.
    pub ways: usize,
    /// Seed for the set hash and the pair sketch's row hashes.
    pub seed: u64,
}

impl ChhConfig {
    /// A summary fitting `budget_bytes` with the default shape: two
    /// correlated values per key, 8-way sets, a quarter of the budget on
    /// the pair sketch.
    pub fn with_budget(budget_bytes: u64) -> Self {
        ChhConfig { budget_bytes, inner_capacity: 2, ways: 8, seed: 0x17c5_723a }
    }

    /// Same budget, different seed (the trace seed in engine runs, so a
    /// spec's seed fully determines the summary).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Modelled bytes per monitored key: one packed outer entry plus the
    /// inline inner slots.
    pub fn bytes_per_key(&self) -> u64 {
        (std::mem::size_of::<OuterEntry>() + self.inner_capacity * std::mem::size_of::<InnerSlot>())
            as u64
    }
}

/// One correlated value of a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChhPair {
    /// The correlated value.
    pub value: u64,
    /// Best pair-count estimate: the inner counter capped by the pair
    /// sketch (both overcount, so the minimum is the tighter bound).
    pub estimate: u64,
    /// Upper bound on the estimate's overshoot within the inner summary.
    pub overestimate: u64,
}

/// Packed outer entry: 16 bytes. `count == 0` marks an empty way.
#[derive(Debug, Clone, Copy, Default)]
struct OuterEntry {
    key: u64,
    count: u32,
    overestimate: u32,
}

/// Packed inner slot: 16 bytes. `count == 0` marks an empty slot.
#[derive(Debug, Clone, Copy, Default)]
struct InnerSlot {
    value: u64,
    count: u32,
    overestimate: u32,
}

/// Bounded-memory summary of correlated `(key → value)` heavy hitters.
///
/// # Example
///
/// ```
/// use ltc_stream::{ChhConfig, ChhSummary};
///
/// let mut chh = ChhSummary::new(ChhConfig::with_budget(64 << 10));
/// for _ in 0..8 {
///     chh.observe(0xbeef, 0x1000); // signature 0xbeef's misses lead to 0x1000
///     chh.observe(0xbeef, 0x2000);
///     chh.observe(0xbeef, 0x1000);
/// }
/// let top = chh.correlated(0xbeef).unwrap()[0];
/// assert_eq!(top.value, 0x1000);
/// assert!(chh.memory_bytes() <= 64 << 10);
/// ```
#[derive(Debug, Clone)]
pub struct ChhSummary {
    cfg: ChhConfig,
    /// `sets * ways` outer entries.
    outer: Vec<OuterEntry>,
    /// `sets * ways * inner_capacity` inner slots, parallel to `outer`.
    inners: Vec<InnerSlot>,
    pairs: CountMin,
    sets: usize,
    hash_seed: u64,
    total: u64,
}

impl ChhSummary {
    /// Creates a summary whose resident memory never exceeds
    /// `cfg.budget_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small for one set of keys plus the
    /// minimum pair sketch (a few hundred bytes), or if `inner_capacity`
    /// or `ways` is zero.
    pub fn new(cfg: ChhConfig) -> Self {
        assert!(cfg.inner_capacity > 0 && cfg.ways > 0, "CHH needs inner_capacity and ways >= 1");
        let pairs = CountMin::with_budget(cfg.budget_bytes / 4, 2, cfg.seed);
        let remaining = cfg.budget_bytes.saturating_sub(pairs.memory_bytes());
        let capacity = (remaining / cfg.bytes_per_key()) as usize;
        // Any set count works (set selection is a multiply-shift range
        // reduction, not a mask), so none of the budget is rounded away.
        let sets = capacity / cfg.ways;
        assert!(
            sets >= 1,
            "CHH budget of {} bytes cannot hold a {}-way set of keys",
            cfg.budget_bytes,
            cfg.ways
        );
        let entries = sets * cfg.ways;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let hash_seed = rng.next_u64();
        ChhSummary {
            cfg,
            outer: vec![OuterEntry::default(); entries],
            inners: vec![InnerSlot::default(); entries * cfg.inner_capacity],
            pairs,
            sets,
            hash_seed,
            total: 0,
        }
    }

    /// The configuration the summary was built with.
    pub fn config(&self) -> &ChhConfig {
        &self.cfg
    }

    /// Keys currently monitored.
    pub fn keys(&self) -> usize {
        self.outer.iter().filter(|e| e.count > 0).count()
    }

    /// Maximum monitored keys.
    pub fn key_capacity(&self) -> usize {
        self.outer.len()
    }

    /// Pairs observed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Expected-case bound on key-frequency overestimates under uniform
    /// set hashing (the per-set Space-Saving bound is `set
    /// observations / ways`; summed over sets that is `N / capacity` on
    /// average).
    pub fn max_key_error(&self) -> u64 {
        self.total / self.key_capacity() as u64
    }

    /// Resident bytes: the packed outer/inner arrays plus the pair
    /// sketch. A constant for a given configuration — the allocation
    /// happens up front, so the bound holds for any stream length.
    pub fn memory_bytes(&self) -> u64 {
        self.outer.len() as u64 * std::mem::size_of::<OuterEntry>() as u64
            + self.inners.len() as u64 * std::mem::size_of::<InnerSlot>() as u64
            + self.pairs.memory_bytes()
    }

    #[inline]
    fn way_range(&self, key: u64) -> std::ops::Range<usize> {
        // Multiply-shift range reduction: uniform over any set count.
        let set = ((u128::from(mix64(key ^ self.hash_seed)) * self.sets as u128) >> 64) as usize;
        set * self.cfg.ways..(set + 1) * self.cfg.ways
    }

    #[inline]
    fn inner_range(&self, entry_idx: usize) -> std::ops::Range<usize> {
        entry_idx * self.cfg.inner_capacity..(entry_idx + 1) * self.cfg.inner_capacity
    }

    /// Records one `(key, value)` observation.
    pub fn observe(&mut self, key: u64, value: u64) {
        self.total += 1;
        self.pairs.observe(pair_key(key, value));
        let range = self.way_range(key);
        // Hit, or adopt: an empty way first, else the set's min-count way
        // (lowest index on ties), inheriting its count per Space-Saving.
        let idx = match self.outer[range.clone()].iter().position(|e| e.count > 0 && e.key == key) {
            Some(offset) => {
                let idx = range.start + offset;
                self.outer[idx].count += 1;
                idx
            }
            None => {
                let offset = (range.clone())
                    .map(|i| self.outer[i])
                    .enumerate()
                    .min_by_key(|(i, e)| (e.count, *i))
                    .map(|(i, _)| i)
                    .expect("ways >= 1");
                let idx = range.start + offset;
                let inherited = self.outer[idx].count;
                self.outer[idx] = OuterEntry { key, count: inherited + 1, overestimate: inherited };
                // The way now tracks a different key; its value history
                // must not leak into the new one.
                let inner = self.inner_range(idx);
                self.inners[inner].iter_mut().for_each(|s| *s = InnerSlot::default());
                idx
            }
        };
        // Inner summary: same Space-Saving discipline over the values.
        let inner = self.inner_range(idx);
        match self.inners[inner.clone()].iter().position(|s| s.count > 0 && s.value == value) {
            Some(offset) => self.inners[inner.start + offset].count += 1,
            None => {
                let offset = (inner.clone())
                    .map(|i| self.inners[i])
                    .enumerate()
                    .min_by_key(|(i, s)| (s.count, *i))
                    .map(|(i, _)| i)
                    .expect("inner_capacity >= 1");
                let slot = &mut self.inners[inner.start + offset];
                *slot = InnerSlot { value, count: slot.count + 1, overestimate: slot.count };
            }
        }
    }

    /// The key-frequency estimate, if `key` is monitored.
    pub fn key_estimate(&self, key: u64) -> Option<Estimate> {
        let range = self.way_range(key);
        self.outer[range].iter().find(|e| e.count > 0 && e.key == key).map(|e| Estimate {
            count: u64::from(e.count),
            overestimate: u64::from(e.overestimate),
        })
    }

    /// Iterates every monitored key with its frequency estimate.
    pub fn key_estimates(&self) -> impl Iterator<Item = (u64, Estimate)> + '_ {
        self.outer.iter().filter(|e| e.count > 0).map(|e| {
            (e.key, Estimate { count: u64::from(e.count), overestimate: u64::from(e.overestimate) })
        })
    }

    /// The monitored values correlated with `key`, most frequent first
    /// (value breaks ties), or `None` if the key is not monitored.
    pub fn correlated(&self, key: u64) -> Option<Vec<ChhPair>> {
        let idx = self.index_of(key)?;
        let inner = self.inner_range(idx);
        let mut pairs: Vec<ChhPair> = self.inners[inner]
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| self.refine(key, s))
            .collect();
        pairs.sort_by_key(|p| (std::cmp::Reverse(p.estimate), p.value));
        Some(pairs)
    }

    /// The strongest correlated value and (optionally) the runner-up,
    /// without allocating — the per-access hot path of `SketchDbcp`.
    pub fn best_two(&self, key: u64) -> Option<(ChhPair, Option<ChhPair>)> {
        fn better(a: &ChhPair, b: &ChhPair) -> bool {
            (a.estimate, std::cmp::Reverse(a.value)) > (b.estimate, std::cmp::Reverse(b.value))
        }
        let idx = self.index_of(key)?;
        let inner = self.inner_range(idx);
        let mut best: Option<ChhPair> = None;
        let mut second: Option<ChhPair> = None;
        for slot in self.inners[inner].iter().filter(|s| s.count > 0) {
            let p = self.refine(key, slot);
            if best.as_ref().map_or(true, |b| better(&p, b)) {
                second = best;
                best = Some(p);
            } else if second.as_ref().map_or(true, |s| better(&p, s)) {
                second = Some(p);
            }
        }
        best.map(|b| (b, second))
    }

    fn index_of(&self, key: u64) -> Option<usize> {
        let range = self.way_range(key);
        let offset = self.outer[range.clone()].iter().position(|e| e.count > 0 && e.key == key)?;
        Some(range.start + offset)
    }

    fn refine(&self, key: u64, slot: &InnerSlot) -> ChhPair {
        ChhPair {
            value: slot.value,
            estimate: u64::from(slot.count).min(self.pairs.estimate(pair_key(key, slot.value))),
            overestimate: u64::from(slot.overestimate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChhSummary {
        ChhSummary::new(ChhConfig::with_budget(32 << 10))
    }

    #[test]
    fn tracks_dominant_correlation() {
        let mut chh = small();
        for _ in 0..100 {
            chh.observe(1, 0xaa);
            chh.observe(1, 0xaa);
            chh.observe(1, 0xbb);
            chh.observe(2, 0xcc);
        }
        let top = chh.correlated(1).unwrap();
        assert_eq!(top[0].value, 0xaa);
        assert!(top[0].estimate >= 200);
        assert_eq!(chh.correlated(2).unwrap()[0].value, 0xcc);
    }

    #[test]
    fn best_two_matches_correlated() {
        let mut chh = small();
        for _ in 0..50 {
            chh.observe(7, 0x10);
            chh.observe(7, 0x10);
            chh.observe(7, 0x20);
        }
        let (best, second) = chh.best_two(7).unwrap();
        let sorted = chh.correlated(7).unwrap();
        assert_eq!(best, sorted[0]);
        assert_eq!(second, sorted.get(1).copied());
        assert!(chh.best_two(999).is_none());
    }

    #[test]
    fn replacement_resets_inner_history() {
        // One-way sets make displacement directly observable: find a key
        // that collides with key 1's set, displace it, and check the old
        // value history did not leak.
        let mut chh = ChhSummary::new(ChhConfig {
            budget_bytes: 8 << 10,
            inner_capacity: 2,
            ways: 1,
            seed: 1,
        });
        for _ in 0..10 {
            chh.observe(1, 0xaa);
        }
        let collider = (2u64..).find(|&k| {
            let mut probe = chh.clone();
            probe.observe(k, 0xff);
            probe.key_estimate(1).is_none()
        });
        let collider = collider.expect("some key collides with key 1's set");
        chh.observe(collider, 0xff);
        let top = chh.correlated(collider).unwrap();
        assert_eq!(top.len(), 1, "old key's values must not leak");
        assert_eq!(top[0].value, 0xff);
        // The inner summary restarted for the fresh key, and the pair
        // sketch (which persists) caps the estimate at its true count.
        assert_eq!(top[0].estimate, 1);
        // The inherited outer count is recorded as overestimate.
        assert_eq!(chh.key_estimate(collider).unwrap().overestimate, 10);
    }

    #[test]
    fn memory_bounded_by_budget_for_any_stream_length() {
        let budget = 48 << 10;
        let mut chh = ChhSummary::new(ChhConfig::with_budget(budget));
        let cold = chh.memory_bytes();
        for i in 0..200_000u64 {
            chh.observe(i % 10_000, i % 97);
        }
        assert!(chh.memory_bytes() <= budget, "resident {} > budget {budget}", chh.memory_bytes());
        assert_eq!(chh.memory_bytes(), cold, "allocation is up front and constant");
    }

    #[test]
    fn holds_a_working_set_that_fits() {
        // 4k distinct keys recurring uniformly, capacity comfortably
        // above: every key must stay monitored with an exact count.
        let mut chh = ChhSummary::new(ChhConfig::with_budget(512 << 10));
        assert!(chh.key_capacity() >= 8_000, "512 KiB must hold ~8k keys");
        for pass in 1..=5u64 {
            for k in 0..4_000u64 {
                chh.observe(k, k + 1);
            }
            let _ = pass;
        }
        let monitored = (0..4_000u64).filter(|&k| chh.key_estimate(k).is_some()).count();
        assert!(monitored > 3_600, "only {monitored}/4000 keys retained");
        // A stable monitored key sees every pass: most estimates reach 5.
        let full_count =
            (0..4_000u64).filter(|&k| chh.key_estimate(k).is_some_and(|e| e.count >= 5)).count();
        assert!(full_count > 3_000, "only {full_count}/4000 keys counted all passes");
    }

    #[test]
    fn same_seed_same_summary() {
        let cfg = ChhConfig::with_budget(16 << 10).with_seed(99);
        let mut a = ChhSummary::new(cfg);
        let mut b = ChhSummary::new(cfg);
        for i in 0..5_000u64 {
            a.observe(i % 37, i % 11);
            b.observe(i % 37, i % 11);
        }
        assert_eq!(a.correlated(5), b.correlated(5));
        assert_eq!(a.memory_bytes(), b.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn impossible_budget_rejected() {
        let _ =
            ChhSummary::new(ChhConfig { budget_bytes: 64, inner_capacity: 4, ways: 8, seed: 0 });
    }
}
