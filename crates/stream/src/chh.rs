//! Correlated heavy hitters over a two-dimensional stream.
//!
//! Mines `(key, value)` pairs — here: last-touch signature → next missed
//! block — for keys that are frequent *and* values that are frequent
//! conditioned on their key, following the nested-summary construction of
//! Lahiri et al. ("Identifying Correlated Heavy-Hitters in a
//! Two-Dimensional Data Stream") with the sketch-assisted refinement of
//! Epicoco et al. ("Fast and Accurate Mining of Correlated Heavy
//! Hitters"): an outer key summary whose entries each carry a nested
//! inner summary over that key's values, plus a [`CountMin`] sketch over
//! whole pairs that persists across outer replacements and caps the
//! inner estimates.
//!
//! Unlike the pointer-heavy global [`crate::SpaceSaving`], the outer
//! summary is
//! *set-associative*: keys hash (seeded) into sets of [`ChhConfig::ways`]
//! packed 16-byte entries, replacement is Space-Saving's
//! min-count-inheritance restricted to the set, and the inner summaries
//! are inline arrays in one flat allocation. That keeps the never-
//! undercount property and the deterministic state while monitoring
//! 5–10x more keys per budget byte — the difference between a sketch
//! predictor that can hold a signature working set and one that churns.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::countmin::{CountMin, CountMinState};
use crate::hash::HashKind;
use crate::merge::{MergeError, SketchShape};
use crate::spacesaving::Estimate;

/// Mixes a `(key, value)` pair into the Count-Min key domain.
#[inline]
fn pair_key(key: u64, value: u64) -> u64 {
    key.rotate_left(32) ^ value.wrapping_mul(0xff51_afd7_ed55_8ccd)
}

/// Sizing and seeding of a [`ChhSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChhConfig {
    /// Total byte budget for the summary (outer + inners + pair sketch).
    pub budget_bytes: u64,
    /// Values monitored per key (the inner summary capacity).
    pub inner_capacity: usize,
    /// Outer set associativity.
    pub ways: usize,
    /// Seed for the set hash and the pair sketch's row hashes.
    pub seed: u64,
}

impl ChhConfig {
    /// A summary fitting `budget_bytes` with the default shape: two
    /// correlated values per key, 8-way sets, a quarter of the budget on
    /// the pair sketch.
    pub fn with_budget(budget_bytes: u64) -> Self {
        ChhConfig { budget_bytes, inner_capacity: 2, ways: 8, seed: 0x17c5_723a }
    }

    /// Same budget, different seed (the trace seed in engine runs, so a
    /// spec's seed fully determines the summary).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Modelled bytes per monitored key: one packed outer entry plus the
    /// inline inner slots.
    pub fn bytes_per_key(&self) -> u64 {
        (std::mem::size_of::<OuterEntry>() + self.inner_capacity * std::mem::size_of::<InnerSlot>())
            as u64
    }
}

/// One correlated value of a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChhPair {
    /// The correlated value.
    pub value: u64,
    /// Best pair-count estimate: the inner counter capped by the pair
    /// sketch (both overcount, so the minimum is the tighter bound).
    pub estimate: u64,
    /// Upper bound on the estimate's overshoot within the inner summary.
    pub overestimate: u64,
}

/// Packed outer entry: 16 bytes. `count == 0` marks an empty way.
#[derive(Debug, Clone, Copy, Default)]
struct OuterEntry {
    key: u64,
    count: u32,
    overestimate: u32,
}

/// Packed inner slot: 16 bytes. `count == 0` marks an empty slot.
#[derive(Debug, Clone, Copy, Default)]
struct InnerSlot {
    value: u64,
    count: u32,
    overestimate: u32,
}

/// Bounded-memory summary of correlated `(key → value)` heavy hitters.
///
/// # Example
///
/// ```
/// use ltc_stream::{ChhConfig, ChhSummary};
///
/// let mut chh = ChhSummary::new(ChhConfig::with_budget(64 << 10));
/// for _ in 0..8 {
///     chh.observe(0xbeef, 0x1000); // signature 0xbeef's misses lead to 0x1000
///     chh.observe(0xbeef, 0x2000);
///     chh.observe(0xbeef, 0x1000);
/// }
/// let top = chh.correlated(0xbeef).unwrap()[0];
/// assert_eq!(top.value, 0x1000);
/// assert!(chh.memory_bytes() <= 64 << 10);
/// ```
#[derive(Debug, Clone)]
pub struct ChhSummary {
    cfg: ChhConfig,
    /// `sets * ways` outer entries.
    outer: Vec<OuterEntry>,
    /// `sets * ways * inner_capacity` inner slots, parallel to `outer`.
    inners: Vec<InnerSlot>,
    pairs: CountMin,
    sets: usize,
    hash: HashKind,
    hash_seed: u64,
    total: u64,
}

impl ChhSummary {
    /// Creates a summary whose resident memory never exceeds
    /// `cfg.budget_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small for one set of keys plus the
    /// minimum pair sketch (a few hundred bytes), or if `inner_capacity`
    /// or `ways` is zero.
    pub fn new(cfg: ChhConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(summary) => summary,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`ChhSummary::new`]: the single home of the
    /// budget-to-layout computation, shared with
    /// [`ChhSummary::from_state`] so a snapshot's configuration is
    /// validated by exactly the rules construction enforces — a bad
    /// state from across a process boundary is a typed error, never a
    /// panic.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError::State`] when `inner_capacity` or `ways`
    /// is zero or the budget cannot hold one set of keys beside the
    /// minimum pair sketch.
    pub fn try_new(cfg: ChhConfig) -> Result<Self, MergeError> {
        Self::try_new_with_hash(cfg, HashKind::default())
    }

    /// [`ChhSummary::try_new`] with an explicit hash family, shared by
    /// the outer set hash and the nested pair sketch (legacy states
    /// revive through this).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChhSummary::try_new`].
    pub fn try_new_with_hash(cfg: ChhConfig, hash: HashKind) -> Result<Self, MergeError> {
        let invalid = |reason: String| MergeError::State { summary: "chh", reason };
        if cfg.inner_capacity == 0 || cfg.ways == 0 {
            return Err(invalid("CHH needs inner_capacity and ways >= 1".to_string()));
        }
        let pairs = CountMin::with_budget_hash(cfg.budget_bytes / 4, 2, cfg.seed, hash);
        let remaining = cfg.budget_bytes.saturating_sub(pairs.memory_bytes());
        let capacity = (remaining / cfg.bytes_per_key()) as usize;
        // Any set count works (set selection is a multiply-shift range
        // reduction, not a mask), so none of the budget is rounded away.
        let sets = capacity / cfg.ways;
        if sets == 0 {
            return Err(invalid(format!(
                "CHH budget of {} bytes cannot hold a {}-way set of keys",
                cfg.budget_bytes, cfg.ways
            )));
        }
        let entries = sets * cfg.ways;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let hash_seed = rng.next_u64();
        Ok(ChhSummary {
            cfg,
            outer: vec![OuterEntry::default(); entries],
            inners: vec![InnerSlot::default(); entries * cfg.inner_capacity],
            pairs,
            sets,
            hash,
            hash_seed,
            total: 0,
        })
    }

    /// The hash family bucketing this summary.
    pub fn hash_kind(&self) -> HashKind {
        self.hash
    }

    /// The configuration the summary was built with.
    pub fn config(&self) -> &ChhConfig {
        &self.cfg
    }

    /// Keys currently monitored.
    pub fn keys(&self) -> usize {
        self.outer.iter().filter(|e| e.count > 0).count()
    }

    /// Maximum monitored keys.
    pub fn key_capacity(&self) -> usize {
        self.outer.len()
    }

    /// Pairs observed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The nested Count-Min pair sketch (read-only), so telemetry can
    /// sample its occupancy alongside the outer table's.
    pub fn pair_sketch(&self) -> &CountMin {
        &self.pairs
    }

    /// Expected-case bound on key-frequency overestimates under uniform
    /// set hashing (the per-set Space-Saving bound is `set
    /// observations / ways`; summed over sets that is `N / capacity` on
    /// average).
    pub fn max_key_error(&self) -> u64 {
        self.total / self.key_capacity() as u64
    }

    /// Resident bytes: the packed outer/inner arrays plus the pair
    /// sketch. A constant for a given configuration — the allocation
    /// happens up front, so the bound holds for any stream length.
    pub fn memory_bytes(&self) -> u64 {
        self.outer.len() as u64 * std::mem::size_of::<OuterEntry>() as u64
            + self.inners.len() as u64 * std::mem::size_of::<InnerSlot>() as u64
            + self.pairs.memory_bytes()
    }

    #[inline]
    fn way_range(&self, key: u64) -> std::ops::Range<usize> {
        // Range reduction `(h * sets) >> 64`: uniform over any set count,
        // weighted by the hashed value's high bits.
        let h = self.hash.spread(key, self.hash_seed);
        let set = ((u128::from(h) * self.sets as u128) >> 64) as usize;
        set * self.cfg.ways..(set + 1) * self.cfg.ways
    }

    #[inline]
    fn inner_range(&self, entry_idx: usize) -> std::ops::Range<usize> {
        entry_idx * self.cfg.inner_capacity..(entry_idx + 1) * self.cfg.inner_capacity
    }

    /// Records one `(key, value)` observation.
    pub fn observe(&mut self, key: u64, value: u64) {
        self.total += 1;
        self.pairs.observe(pair_key(key, value));
        let range = self.way_range(key);
        // Hit, or adopt: an empty way first, else the set's min-count way
        // (lowest index on ties), inheriting its count per Space-Saving.
        let idx = match self.outer[range.clone()].iter().position(|e| e.count > 0 && e.key == key) {
            Some(offset) => {
                let idx = range.start + offset;
                self.outer[idx].count += 1;
                idx
            }
            None => {
                let offset = (range.clone())
                    .map(|i| self.outer[i])
                    .enumerate()
                    .min_by_key(|(i, e)| (e.count, *i))
                    .map(|(i, _)| i)
                    .expect("ways >= 1");
                let idx = range.start + offset;
                let inherited = self.outer[idx].count;
                self.outer[idx] = OuterEntry { key, count: inherited + 1, overestimate: inherited };
                // The way now tracks a different key; its value history
                // must not leak into the new one.
                let inner = self.inner_range(idx);
                self.inners[inner].iter_mut().for_each(|s| *s = InnerSlot::default());
                idx
            }
        };
        // Inner summary: same Space-Saving discipline over the values.
        let inner = self.inner_range(idx);
        match self.inners[inner.clone()].iter().position(|s| s.count > 0 && s.value == value) {
            Some(offset) => self.inners[inner.start + offset].count += 1,
            None => {
                let offset = (inner.clone())
                    .map(|i| self.inners[i])
                    .enumerate()
                    .min_by_key(|(i, s)| (s.count, *i))
                    .map(|(i, _)| i)
                    .expect("inner_capacity >= 1");
                let slot = &mut self.inners[inner.start + offset];
                *slot = InnerSlot { value, count: slot.count + 1, overestimate: slot.count };
            }
        }
    }

    /// The key-frequency estimate, if `key` is monitored.
    pub fn key_estimate(&self, key: u64) -> Option<Estimate> {
        let range = self.way_range(key);
        self.outer[range].iter().find(|e| e.count > 0 && e.key == key).map(|e| Estimate {
            count: u64::from(e.count),
            overestimate: u64::from(e.overestimate),
        })
    }

    /// Iterates every monitored key with its frequency estimate.
    pub fn key_estimates(&self) -> impl Iterator<Item = (u64, Estimate)> + '_ {
        self.outer.iter().filter(|e| e.count > 0).map(|e| {
            (e.key, Estimate { count: u64::from(e.count), overestimate: u64::from(e.overestimate) })
        })
    }

    /// The monitored values correlated with `key`, most frequent first
    /// (value breaks ties), or `None` if the key is not monitored.
    pub fn correlated(&self, key: u64) -> Option<Vec<ChhPair>> {
        let idx = self.index_of(key)?;
        let inner = self.inner_range(idx);
        let mut pairs: Vec<ChhPair> = self.inners[inner]
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| self.refine(key, s))
            .collect();
        pairs.sort_by_key(|p| (std::cmp::Reverse(p.estimate), p.value));
        Some(pairs)
    }

    /// The strongest correlated value and (optionally) the runner-up,
    /// without allocating — the per-access hot path of `SketchDbcp`.
    pub fn best_two(&self, key: u64) -> Option<(ChhPair, Option<ChhPair>)> {
        fn better(a: &ChhPair, b: &ChhPair) -> bool {
            (a.estimate, std::cmp::Reverse(a.value)) > (b.estimate, std::cmp::Reverse(b.value))
        }
        let idx = self.index_of(key)?;
        let inner = self.inner_range(idx);
        let mut best: Option<ChhPair> = None;
        let mut second: Option<ChhPair> = None;
        for slot in self.inners[inner].iter().filter(|s| s.count > 0) {
            let p = self.refine(key, slot);
            if best.as_ref().map_or(true, |b| better(&p, b)) {
                second = best;
                best = Some(p);
            } else if second.as_ref().map_or(true, |s| better(&p, s)) {
                second = Some(p);
            }
        }
        best.map(|b| (b, second))
    }

    fn index_of(&self, key: u64) -> Option<usize> {
        let range = self.way_range(key);
        let offset = self.outer[range.clone()].iter().position(|e| e.count > 0 && e.key == key)?;
        Some(range.start + offset)
    }

    fn refine(&self, key: u64, slot: &InnerSlot) -> ChhPair {
        ChhPair {
            value: slot.value,
            estimate: u64::from(slot.count).min(self.pairs.estimate(pair_key(key, slot.value))),
            overestimate: u64::from(slot.overestimate),
        }
    }

    /// This summary's construction shape (merge precondition): the full
    /// [`ChhConfig`], since budget, associativity and seed together
    /// determine the set geometry, the hash seed and the pair-sketch
    /// layout.
    pub fn shape(&self) -> SketchShape {
        SketchShape::new(
            "chh",
            vec![
                ("budget_bytes", self.cfg.budget_bytes),
                ("inner_capacity", self.cfg.inner_capacity as u64),
                ("ways", self.cfg.ways as u64),
                ("seed", self.cfg.seed),
                ("hash", self.hash.code()),
            ],
        )
    }

    /// Folds `other` into `self`, set by set.
    ///
    /// Identical configurations hash every key to the same set, so each
    /// set merges independently under the Space-Saving combine (matched
    /// keys sum counts and overestimates; a key monitored on only one
    /// side adds the other set's minimum count — it may have been
    /// displaced there — when that set is full; top [`ChhConfig::ways`]
    /// kept, ties broken by key). Matched keys additionally merge their
    /// inner value summaries under the same discipline at
    /// [`ChhConfig::inner_capacity`], and the pair sketch merges exactly
    /// (cell-wise, see [`CountMin::merge`]), which keeps the
    /// sketch-capped estimates of [`ChhSummary::correlated`] sound.
    ///
    /// # Merged error bounds
    ///
    /// Per set the bounds are the Space-Saving merge bounds
    /// ([`crate::SpaceSaving::merge`]) at the set's observation count:
    /// key estimates never undercount, and a key's error stays within
    /// the two sides' per-set bounds summed. Aggregated uniformly over
    /// sets that is the usual expected-case
    /// [`ChhSummary::max_key_error`] with the summed `N`; survival of a
    /// truly hot key is guaranteed above twice its set's bound. Inner
    /// estimates stay capped by the exactly-merged pair sketch.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError`] when the configurations differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.shape().ensure_matches(&other.shape())?;
        self.pairs.merge(&other.pairs)?;
        for set in 0..self.sets {
            self.merge_set(set, other);
        }
        self.total += other.total;
        Ok(())
    }

    /// Merges one set of `other` into the same set of `self`.
    fn merge_set(&mut self, set: usize, other: &Self) {
        let ways = self.cfg.ways;
        let range = set * ways..(set + 1) * ways;
        let mine: Vec<(OuterEntry, Vec<InnerSlot>)> = range
            .clone()
            .filter(|&i| self.outer[i].count > 0)
            .map(|i| (self.outer[i], self.inners[self.inner_range(i)].to_vec()))
            .collect();
        let theirs: Vec<(OuterEntry, Vec<InnerSlot>)> = range
            .clone()
            .filter(|&i| other.outer[i].count > 0)
            .map(|i| (other.outer[i], other.inners[other.inner_range(i)].to_vec()))
            .collect();
        let m_mine = absent_bound(mine.iter().map(|(e, _)| u64::from(e.count)), ways);
        let m_theirs = absent_bound(theirs.iter().map(|(e, _)| u64::from(e.count)), ways);

        // The Space-Saving combine over this set's keys, inner summaries
        // riding along.
        let mut combined: Vec<(u64, u64, u64, Vec<InnerSlot>)> = Vec::new();
        for (entry, inner) in &mine {
            match theirs.iter().find(|(e, _)| e.key == entry.key) {
                Some((peer, peer_inner)) => combined.push((
                    entry.key,
                    u64::from(entry.count) + u64::from(peer.count),
                    u64::from(entry.overestimate) + u64::from(peer.overestimate),
                    merge_inner(inner, peer_inner, self.cfg.inner_capacity),
                )),
                None => combined.push((
                    entry.key,
                    u64::from(entry.count) + m_theirs,
                    u64::from(entry.overestimate) + m_theirs,
                    bump_inner(inner, m_theirs),
                )),
            }
        }
        for (entry, inner) in &theirs {
            if !mine.iter().any(|(e, _)| e.key == entry.key) {
                combined.push((
                    entry.key,
                    u64::from(entry.count) + m_mine,
                    u64::from(entry.overestimate) + m_mine,
                    bump_inner(inner, m_mine),
                ));
            }
        }
        combined.sort_by_key(|&(key, count, _, _)| (std::cmp::Reverse(count), key));
        combined.truncate(ways);

        for (offset, idx) in range.enumerate() {
            let inner_range = self.inner_range(idx);
            match combined.get(offset) {
                Some((key, count, overestimate, inner)) => {
                    self.outer[idx] = OuterEntry {
                        key: *key,
                        count: clamp32(*count),
                        overestimate: clamp32(*overestimate),
                    };
                    for (slot, filled) in self.inners[inner_range]
                        .iter_mut()
                        .zip(inner.iter().copied().chain(std::iter::repeat(InnerSlot::default())))
                    {
                        *slot = filled;
                    }
                }
                None => {
                    self.outer[idx] = OuterEntry::default();
                    self.inners[inner_range].iter_mut().for_each(|s| *s = InnerSlot::default());
                }
            }
        }
    }

    /// The serializable snapshot of this summary: the configuration
    /// (everything else regenerates from it), sparse occupied
    /// outer/inner slots, and the pair sketch.
    pub fn to_state(&self) -> ChhState {
        let mut state = ChhState {
            budget_bytes: self.cfg.budget_bytes,
            inner_capacity: self.cfg.inner_capacity as u64,
            ways: self.cfg.ways as u64,
            seed: self.cfg.seed,
            hash: self.hash.code(),
            total: self.total,
            pairs: self.pairs.to_state(),
            ..ChhState::default()
        };
        for (idx, e) in self.outer.iter().enumerate().filter(|(_, e)| e.count > 0) {
            state.outer_index.push(idx as u64);
            state.outer_keys.push(e.key);
            state.outer_counts.push(u64::from(e.count));
            state.outer_overestimates.push(u64::from(e.overestimate));
        }
        for (idx, s) in self.inners.iter().enumerate().filter(|(_, s)| s.count > 0) {
            state.inner_index.push(idx as u64);
            state.inner_values.push(s.value);
            state.inner_counts.push(u64::from(s.count));
            state.inner_overestimates.push(u64::from(s.overestimate));
        }
        state
    }

    /// Rebuilds a summary from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError::State`] when the snapshot is inconsistent:
    /// a configuration too small to construct, ragged or out-of-range
    /// slot arrays, counts beyond `u32`, or a pair sketch whose shape
    /// disagrees with the configuration.
    pub fn from_state(state: &ChhState) -> Result<Self, MergeError> {
        let cfg = ChhConfig {
            budget_bytes: state.budget_bytes,
            inner_capacity: state.inner_capacity as usize,
            ways: state.ways as usize,
            seed: state.seed,
        };
        let hash = HashKind::from_code(state.hash).ok_or_else(|| MergeError::State {
            summary: "chh",
            reason: format!("unknown hash family code {}", state.hash),
        })?;
        let mut chh = ChhSummary::try_new_with_hash(cfg, hash)?;
        let pairs = CountMin::from_state(&state.pairs)?;
        chh.pairs.shape().ensure_matches(&pairs.shape())?;
        chh.pairs = pairs;
        chh.total = state.total;
        fill_sparse(
            &mut chh.outer,
            &state.outer_index,
            &state.outer_keys,
            &state.outer_counts,
            &state.outer_overestimates,
            |key, count, overestimate| OuterEntry { key, count, overestimate },
            "outer",
        )?;
        fill_sparse(
            &mut chh.inners,
            &state.inner_index,
            &state.inner_values,
            &state.inner_counts,
            &state.inner_overestimates,
            |value, count, overestimate| InnerSlot { value, count, overestimate },
            "inner",
        )?;
        Ok(chh)
    }
}

/// The Space-Saving absent bound for a set: the minimum monitored count
/// when every way is occupied, zero otherwise.
fn absent_bound(counts: impl Iterator<Item = u64> + Clone, capacity: usize) -> u64 {
    if counts.clone().count() == capacity {
        counts.min().unwrap_or(0)
    } else {
        0
    }
}

/// Clamps a merged 64-bit count back into the packed 32-bit field.
fn clamp32(count: u64) -> u32 {
    count.min(u64::from(u32::MAX)) as u32
}

/// Merges two keys' inner value summaries under the Space-Saving combine
/// at `capacity` slots.
fn merge_inner(mine: &[InnerSlot], theirs: &[InnerSlot], capacity: usize) -> Vec<InnerSlot> {
    let occupied_mine: Vec<&InnerSlot> = mine.iter().filter(|s| s.count > 0).collect();
    let occupied_theirs: Vec<&InnerSlot> = theirs.iter().filter(|s| s.count > 0).collect();
    let m_mine = absent_bound(occupied_mine.iter().map(|s| u64::from(s.count)), capacity);
    let m_theirs = absent_bound(occupied_theirs.iter().map(|s| u64::from(s.count)), capacity);
    let mut combined: Vec<InnerSlot> = Vec::new();
    for slot in &occupied_mine {
        let (count, overestimate) = match occupied_theirs.iter().find(|s| s.value == slot.value) {
            Some(peer) => (
                u64::from(slot.count) + u64::from(peer.count),
                u64::from(slot.overestimate) + u64::from(peer.overestimate),
            ),
            None => (u64::from(slot.count) + m_theirs, u64::from(slot.overestimate) + m_theirs),
        };
        combined.push(InnerSlot {
            value: slot.value,
            count: clamp32(count),
            overestimate: clamp32(overestimate),
        });
    }
    for slot in &occupied_theirs {
        if !occupied_mine.iter().any(|s| s.value == slot.value) {
            combined.push(InnerSlot {
                value: slot.value,
                count: clamp32(u64::from(slot.count) + m_mine),
                overestimate: clamp32(u64::from(slot.overestimate) + m_mine),
            });
        }
    }
    combined.sort_by_key(|s| (std::cmp::Reverse(s.count), s.value));
    combined.truncate(capacity);
    combined
}

/// A single-side key's inner slots carried into the merge: every slot
/// absorbs the other set's absent bound (the key — and so any of its
/// values — may have counted up to that much there), preserving the
/// never-undercount property the pair-sketch cap relies on.
fn bump_inner(slots: &[InnerSlot], bound: u64) -> Vec<InnerSlot> {
    slots
        .iter()
        .filter(|s| s.count > 0)
        .map(|s| InnerSlot {
            value: s.value,
            count: clamp32(u64::from(s.count) + bound),
            overestimate: clamp32(u64::from(s.overestimate) + bound),
        })
        .collect()
}

/// Writes sparse `(index, payload, count, overestimate)` arrays into a
/// zeroed slot array, validating shape as it goes.
fn fill_sparse<T>(
    slots: &mut [T],
    index: &[u64],
    payloads: &[u64],
    counts: &[u64],
    overestimates: &[u64],
    build: impl Fn(u64, u32, u32) -> T,
    what: &str,
) -> Result<(), MergeError> {
    let invalid = |reason: String| MergeError::State { summary: "chh", reason };
    if index.len() != payloads.len()
        || index.len() != counts.len()
        || index.len() != overestimates.len()
    {
        return Err(invalid(format!("ragged {what} arrays")));
    }
    let mut prev: Option<u64> = None;
    for (((&idx, &payload), &count), &overestimate) in
        index.iter().zip(payloads).zip(counts).zip(overestimates)
    {
        if prev.is_some_and(|p| idx <= p) {
            return Err(invalid(format!("{what} indices must be strictly increasing")));
        }
        prev = Some(idx);
        if idx as usize >= slots.len() {
            return Err(invalid(format!("{what} index {idx} out of range {}", slots.len())));
        }
        if count == 0 || count > u64::from(u32::MAX) || overestimate > u64::from(u32::MAX) {
            return Err(invalid(format!("{what} count {count} out of range")));
        }
        slots[idx as usize] = build(payload, count as u32, overestimate as u32);
    }
    Ok(())
}

/// Serializable snapshot of a [`ChhSummary`] (the wire form of a
/// segmented worker's partial summary): configuration + sparse occupied
/// slots + the pair sketch.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChhState {
    /// Total byte budget ([`ChhConfig::budget_bytes`]).
    pub budget_bytes: u64,
    /// Inner summary capacity ([`ChhConfig::inner_capacity`]).
    pub inner_capacity: u64,
    /// Outer set associativity ([`ChhConfig::ways`]).
    pub ways: u64,
    /// Hash seed ([`ChhConfig::seed`]).
    pub seed: u64,
    /// Hash family wire code ([`HashKind::code`]), pinning the bucketing
    /// the snapshot was built with.
    pub hash: u64,
    /// Pairs observed.
    pub total: u64,
    /// Occupied outer entry indices, strictly increasing.
    pub outer_index: Vec<u64>,
    /// Monitored keys, parallel to `outer_index`.
    pub outer_keys: Vec<u64>,
    /// Key counts, parallel to `outer_index`.
    pub outer_counts: Vec<u64>,
    /// Key overestimates, parallel to `outer_index`.
    pub outer_overestimates: Vec<u64>,
    /// Occupied inner slot indices, strictly increasing.
    pub inner_index: Vec<u64>,
    /// Monitored values, parallel to `inner_index`.
    pub inner_values: Vec<u64>,
    /// Value counts, parallel to `inner_index`.
    pub inner_counts: Vec<u64>,
    /// Value overestimates, parallel to `inner_index`.
    pub inner_overestimates: Vec<u64>,
    /// The whole-pair sketch.
    pub pairs: CountMinState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChhSummary {
        ChhSummary::new(ChhConfig::with_budget(32 << 10))
    }

    #[test]
    fn tracks_dominant_correlation() {
        let mut chh = small();
        for _ in 0..100 {
            chh.observe(1, 0xaa);
            chh.observe(1, 0xaa);
            chh.observe(1, 0xbb);
            chh.observe(2, 0xcc);
        }
        let top = chh.correlated(1).unwrap();
        assert_eq!(top[0].value, 0xaa);
        assert!(top[0].estimate >= 200);
        assert_eq!(chh.correlated(2).unwrap()[0].value, 0xcc);
    }

    #[test]
    fn best_two_matches_correlated() {
        let mut chh = small();
        for _ in 0..50 {
            chh.observe(7, 0x10);
            chh.observe(7, 0x10);
            chh.observe(7, 0x20);
        }
        let (best, second) = chh.best_two(7).unwrap();
        let sorted = chh.correlated(7).unwrap();
        assert_eq!(best, sorted[0]);
        assert_eq!(second, sorted.get(1).copied());
        assert!(chh.best_two(999).is_none());
    }

    #[test]
    fn replacement_resets_inner_history() {
        // One-way sets make displacement directly observable: find a key
        // that collides with key 1's set, displace it, and check the old
        // value history did not leak.
        let mut chh = ChhSummary::new(ChhConfig {
            budget_bytes: 8 << 10,
            inner_capacity: 2,
            ways: 1,
            seed: 1,
        });
        for _ in 0..10 {
            chh.observe(1, 0xaa);
        }
        let collider = (2u64..).find(|&k| {
            let mut probe = chh.clone();
            probe.observe(k, 0xff);
            probe.key_estimate(1).is_none()
        });
        let collider = collider.expect("some key collides with key 1's set");
        chh.observe(collider, 0xff);
        let top = chh.correlated(collider).unwrap();
        assert_eq!(top.len(), 1, "old key's values must not leak");
        assert_eq!(top[0].value, 0xff);
        // The inner summary restarted for the fresh key, and the pair
        // sketch (which persists) caps the estimate at its true count.
        assert_eq!(top[0].estimate, 1);
        // The inherited outer count is recorded as overestimate.
        assert_eq!(chh.key_estimate(collider).unwrap().overestimate, 10);
    }

    #[test]
    fn memory_bounded_by_budget_for_any_stream_length() {
        let budget = 48 << 10;
        let mut chh = ChhSummary::new(ChhConfig::with_budget(budget));
        let cold = chh.memory_bytes();
        for i in 0..200_000u64 {
            chh.observe(i % 10_000, i % 97);
        }
        assert!(chh.memory_bytes() <= budget, "resident {} > budget {budget}", chh.memory_bytes());
        assert_eq!(chh.memory_bytes(), cold, "allocation is up front and constant");
    }

    #[test]
    fn holds_a_working_set_that_fits() {
        // 4k distinct keys recurring uniformly, capacity comfortably
        // above: every key must stay monitored with an exact count.
        let mut chh = ChhSummary::new(ChhConfig::with_budget(512 << 10));
        assert!(chh.key_capacity() >= 8_000, "512 KiB must hold ~8k keys");
        for pass in 1..=5u64 {
            for k in 0..4_000u64 {
                chh.observe(k, k + 1);
            }
            let _ = pass;
        }
        let monitored = (0..4_000u64).filter(|&k| chh.key_estimate(k).is_some()).count();
        assert!(monitored > 3_600, "only {monitored}/4000 keys retained");
        // A stable monitored key sees every pass: most estimates reach 5.
        let full_count =
            (0..4_000u64).filter(|&k| chh.key_estimate(k).is_some_and(|e| e.count >= 5)).count();
        assert!(full_count > 3_000, "only {full_count}/4000 keys counted all passes");
    }

    #[test]
    fn same_seed_same_summary() {
        let cfg = ChhConfig::with_budget(16 << 10).with_seed(99);
        let mut a = ChhSummary::new(cfg);
        let mut b = ChhSummary::new(cfg);
        for i in 0..5_000u64 {
            a.observe(i % 37, i % 11);
            b.observe(i % 37, i % 11);
        }
        assert_eq!(a.correlated(5), b.correlated(5));
        assert_eq!(a.memory_bytes(), b.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn impossible_budget_rejected() {
        let _ =
            ChhSummary::new(ChhConfig { budget_bytes: 64, inner_capacity: 4, ways: 8, seed: 0 });
    }

    #[test]
    fn merge_combines_split_streams() {
        let cfg = ChhConfig::with_budget(64 << 10).with_seed(3);
        let mut whole = ChhSummary::new(cfg);
        let mut left = ChhSummary::new(cfg);
        let mut right = ChhSummary::new(cfg);
        for i in 0..4_000u64 {
            // Two values per key: both the outer keys (23 « capacity) and
            // the inner values (2 = inner_capacity) fit, so no entry is
            // ever displaced and the merge must be exact.
            let (key, value) = (i % 23, (i % 23) * 2 + i % 2);
            whole.observe(key, value);
            if i < 2_000 {
                left.observe(key, value);
            } else {
                right.observe(key, value);
            }
        }
        left.merge(&right).unwrap();
        assert_eq!(left.total(), whole.total());
        for key in 0..23u64 {
            assert_eq!(
                left.key_estimate(key),
                whole.key_estimate(key),
                "merged key estimate diverged for {key}"
            );
            assert_eq!(left.correlated(key), whole.correlated(key));
        }
        assert_eq!(left.memory_bytes(), whole.memory_bytes());
    }

    #[test]
    fn merge_is_commutative() {
        let cfg = ChhConfig { budget_bytes: 8 << 10, inner_capacity: 2, ways: 2, seed: 5 };
        let mut a = ChhSummary::new(cfg);
        let mut b = ChhSummary::new(cfg);
        for i in 0..3_000u64 {
            a.observe(i % 41, i % 7);
            b.observe(i % 53, i % 5);
        }
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab.total(), ba.total());
        for key in 0..60u64 {
            assert_eq!(ab.key_estimate(key), ba.key_estimate(key), "key {key}");
            assert_eq!(ab.correlated(key), ba.correlated(key), "key {key}");
        }
    }

    #[test]
    fn merge_rejects_config_mismatches() {
        use crate::MergeError;
        let mut base = ChhSummary::new(ChhConfig::with_budget(16 << 10));
        let budget = ChhSummary::new(ChhConfig::with_budget(32 << 10));
        let err = base.merge(&budget).unwrap_err();
        assert!(matches!(err, MergeError::Shape { summary: "chh", field: "budget_bytes", .. }));
        let seeded = ChhSummary::new(ChhConfig::with_budget(16 << 10).with_seed(9));
        assert!(matches!(
            base.merge(&seeded).unwrap_err(),
            MergeError::Shape { field: "seed", .. }
        ));
        let mut cfg = ChhConfig::with_budget(16 << 10);
        cfg.ways = 4;
        assert!(matches!(
            base.merge(&ChhSummary::new(cfg)).unwrap_err(),
            MergeError::Shape { field: "ways", .. }
        ));
    }

    #[test]
    fn merge_and_state_respect_hash_family() {
        use crate::MergeError;
        let cfg = ChhConfig::with_budget(16 << 10);
        let mut ms = ChhSummary::try_new_with_hash(cfg, HashKind::MultiplyShift).unwrap();
        let legacy = ChhSummary::try_new_with_hash(cfg, HashKind::Mix64).unwrap();
        assert!(matches!(
            ms.merge(&legacy).unwrap_err(),
            MergeError::Shape { summary: "chh", field: "hash", .. }
        ));

        // Each family's snapshot revives that family, estimates intact.
        for kind in [HashKind::Mix64, HashKind::MultiplyShift] {
            let mut chh = ChhSummary::try_new_with_hash(cfg, kind).unwrap();
            for i in 0..3_000u64 {
                chh.observe(i % 31, i % 7);
            }
            let state = chh.to_state();
            assert_eq!(state.hash, kind.code());
            let revived = ChhSummary::from_state(&state).unwrap();
            assert_eq!(revived.hash_kind(), kind);
            for key in 0..31u64 {
                assert_eq!(revived.key_estimate(key), chh.key_estimate(key), "{}", kind.name());
                assert_eq!(revived.correlated(key), chh.correlated(key));
            }
        }

        let mut bad = ChhSummary::new(cfg).to_state();
        bad.hash = 77;
        assert!(ChhSummary::from_state(&bad).is_err(), "unknown hash code must be rejected");
    }

    #[test]
    fn state_round_trips_exactly() {
        let mut chh = ChhSummary::new(ChhConfig::with_budget(16 << 10).with_seed(11));
        for i in 0..5_000u64 {
            chh.observe(i % 67, i % 13);
        }
        let revived = ChhSummary::from_state(&chh.to_state()).unwrap();
        assert_eq!(revived.total(), chh.total());
        assert_eq!(revived.memory_bytes(), chh.memory_bytes());
        for key in 0..67u64 {
            assert_eq!(revived.key_estimate(key), chh.key_estimate(key));
            assert_eq!(revived.correlated(key), chh.correlated(key));
        }
    }

    #[test]
    fn invalid_states_are_typed_errors() {
        use crate::MergeError;
        let good = ChhSummary::new(ChhConfig::with_budget(16 << 10)).to_state();

        let mut tiny = good.clone();
        tiny.budget_bytes = 64;
        assert!(matches!(
            ChhSummary::from_state(&tiny),
            Err(MergeError::State { summary: "chh", .. })
        ));

        let mut chh = ChhSummary::new(ChhConfig::with_budget(16 << 10));
        chh.observe(1, 2);
        let mut ragged = chh.to_state();
        ragged.outer_counts.pop();
        assert!(ChhSummary::from_state(&ragged).is_err());

        let mut out_of_range = chh.to_state();
        out_of_range.inner_index[0] = u64::MAX;
        assert!(ChhSummary::from_state(&out_of_range).is_err());

        let mut alien_pairs = chh.to_state();
        alien_pairs.pairs.seed ^= 1;
        assert!(ChhSummary::from_state(&alien_pairs).is_err(), "pair sketch shape must match");
    }
}
