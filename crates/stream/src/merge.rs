//! The same-shape precondition for summary merging.
//!
//! Two summaries can only be combined when they were built identically:
//! a Space-Saving summary merges with one of the same capacity, a
//! Count-Min sketch with one of the same geometry and row seeds, a CHH
//! summary with one of the same budget/associativity/seed. Every summary
//! describes its own construction as a [`SketchShape`]; `merge` begins by
//! comparing shapes and returns a typed [`MergeError`] — never a panic —
//! when they disagree, because mismatches cross process boundaries (a
//! worker answering a segmented run) where a panic would be a protocol
//! failure rather than a diagnosable error.

use std::fmt;

/// The construction parameters of a summary, as comparable `(name,
/// value)` pairs. Two summaries merge iff their shapes are equal.
///
/// # Example
///
/// ```
/// use ltc_stream::SpaceSaving;
///
/// let a = SpaceSaving::<u64>::new(8);
/// let b = SpaceSaving::<u64>::new(9);
/// assert_ne!(a.shape(), b.shape());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchShape {
    /// Which summary kind this shape describes (`"space-saving"`, ...).
    pub summary: &'static str,
    /// Construction parameters in declaration order.
    pub params: Vec<(&'static str, u64)>,
}

impl SketchShape {
    /// A shape for `summary` with the given parameters.
    pub fn new(summary: &'static str, params: Vec<(&'static str, u64)>) -> Self {
        SketchShape { summary, params }
    }

    /// `Ok` iff `other` is the same shape; otherwise the first differing
    /// parameter as a [`MergeError`].
    pub fn ensure_matches(&self, other: &SketchShape) -> Result<(), MergeError> {
        if self.summary != other.summary {
            return Err(MergeError::Shape {
                summary: self.summary,
                field: "summary kind",
                left: 0,
                right: 1,
            });
        }
        for ((name, left), (_, right)) in self.params.iter().zip(&other.params) {
            if left != right {
                return Err(MergeError::Shape {
                    summary: self.summary,
                    field: name,
                    left: *left,
                    right: *right,
                });
            }
        }
        Ok(())
    }
}

/// Why two summaries could not be combined.
///
/// Returned (never panicked) by every `merge` and `from_state` in this
/// crate, and forwarded as a typed error through the analysis reduce step
/// and the engine's segmented scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The summaries were built with different parameters.
    Shape {
        /// Which summary kind refused the merge.
        summary: &'static str,
        /// The first differing construction parameter.
        field: &'static str,
        /// The left-hand (receiver) value.
        left: u64,
        /// The right-hand (argument) value.
        right: u64,
    },
    /// A serialized summary state was internally inconsistent.
    State {
        /// Which summary kind rejected the state.
        summary: &'static str,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Shape { summary, field, left, right } => write!(
                f,
                "cannot merge {summary} summaries of different shape: {field} {left} vs {right}"
            ),
            MergeError::State { summary, reason } => {
                write!(f, "invalid {summary} summary state: {reason}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shapes_match() {
        let a = SketchShape::new("count-min", vec![("width", 64), ("depth", 4)]);
        assert_eq!(a.ensure_matches(&a.clone()), Ok(()));
    }

    #[test]
    fn differing_param_names_the_field() {
        let a = SketchShape::new("count-min", vec![("width", 64), ("depth", 4)]);
        let b = SketchShape::new("count-min", vec![("width", 64), ("depth", 2)]);
        let err = a.ensure_matches(&b).unwrap_err();
        assert_eq!(
            err,
            MergeError::Shape { summary: "count-min", field: "depth", left: 4, right: 2 }
        );
        assert!(err.to_string().contains("depth 4 vs 2"), "{err}");
    }

    #[test]
    fn differing_kind_is_an_error() {
        let a = SketchShape::new("count-min", vec![]);
        let b = SketchShape::new("space-saving", vec![]);
        assert!(a.ensure_matches(&b).is_err());
    }
}
