//! Size-accounting audit (ISSUE 6 satellite d).
//!
//! `memory_bytes()` is the honest resident-footprint figure the budget
//! sweeps compare exact tables and sketches on — if it drifts from the
//! actual allocation layout, every "sketch X beats exact table at N KiB"
//! claim silently rots. These tests recompute each summary's footprint
//! from its public geometry and the documented per-slot packing and
//! assert exact agreement, plus the hard budget bound for any stream
//! length.

use ltc_stream::{ChhConfig, ChhSummary, CountMin, HashKind, SpaceSaving};

/// CountMin holds `width × depth` u64 counters plus one u64 row seed per
/// row — nothing else scales with the stream.
#[test]
fn countmin_memory_matches_layout() {
    for (width, depth, seed) in [(64usize, 4usize, 1u64), (1 << 12, 2, 9), (1, 3, 7)] {
        let mut cm = CountMin::new(width, depth, seed);
        let padded_width = width.next_power_of_two() as u64;
        let expected = padded_width * depth as u64 * 8 + depth as u64 * 8;
        assert_eq!(cm.memory_bytes(), expected, "{width}x{depth}");
        // Observations never change the footprint.
        for key in 0..10_000u64 {
            cm.observe(key);
        }
        assert_eq!(cm.memory_bytes(), expected);
    }
}

/// `with_budget` must honour the counter budget it was given.
#[test]
fn countmin_budget_is_a_hard_bound() {
    for budget in [256u64, 4 << 10, 1 << 16, (1 << 16) + 999] {
        let cm = CountMin::with_budget(budget, 2, 1);
        let counters = cm.width() as u64 * cm.depth() as u64 * 8;
        assert!(counters <= budget.max(2 * 8 * 2), "counters {counters} exceed budget {budget}");
    }
}

/// CHH's resident bytes are exactly: packed outer entries + packed inline
/// inner slots (together `key_capacity × bytes_per_key`) + the nested
/// pair sketch, which gets a quarter of the budget. The layout constant
/// is pinned too: 16-byte outer entries and 16-byte inner slots.
#[test]
fn chh_memory_matches_layout() {
    for budget in [16u64 << 10, 64 << 10, 100_000] {
        for hash in [HashKind::Mix64, HashKind::MultiplyShift] {
            let cfg = ChhConfig::with_budget(budget).with_seed(5);
            let mut chh = ChhSummary::try_new_with_hash(cfg, hash).unwrap();
            assert_eq!(
                cfg.bytes_per_key(),
                16 + cfg.inner_capacity as u64 * 16,
                "packed entry/slot sizes changed — update the budget math docs"
            );
            let pairs = CountMin::with_budget_hash(budget / 4, 2, cfg.seed, hash);
            let expected = chh.key_capacity() as u64 * cfg.bytes_per_key() + pairs.memory_bytes();
            assert_eq!(chh.memory_bytes(), expected, "budget {budget}");
            assert!(chh.memory_bytes() <= budget, "resident exceeds budget {budget}");
            // The allocation is up front: a long stream moves nothing.
            for i in 0..50_000u64 {
                chh.observe(i % 999, i % 31);
            }
            assert_eq!(chh.memory_bytes(), expected);
        }
    }
}

/// Space-Saving charges `entry_bytes()` per monitored key (entry payload
/// plus index/order bookkeeping), growing only until capacity.
#[test]
fn spacesaving_memory_matches_layout() {
    let mut ss: SpaceSaving<u64> = SpaceSaving::new(100);
    assert_eq!(ss.memory_bytes(), 0, "empty summary holds no entries");
    for key in 0..1_000u64 {
        ss.observe(key);
        assert_eq!(ss.memory_bytes(), ss.len() as u64 * SpaceSaving::<u64>::entry_bytes());
    }
    assert_eq!(ss.len(), 100, "capacity caps the entry count");
    let budgeted: SpaceSaving<u64> = SpaceSaving::with_budget(8 << 10);
    assert!(
        budgeted.capacity() as u64 * SpaceSaving::<u64>::entry_bytes() <= 8 << 10,
        "with_budget must fit the stated budget"
    );
}
