//! Property tests for the sketch guarantees: the Space-Saving ε·N bound,
//! CHH recall on skewed synthetic streams (driven by the `trace::gen`
//! workload generators), and seed-determinism of every summary.

use std::collections::HashMap;

use ltc_stream::{ChhConfig, ChhSummary, CountMin, SpaceSaving};
use ltc_trace::gen::{ChaseConfig, ChaseGen};
use ltc_trace::TraceSource;
use proptest::prelude::*;

/// Minimum fraction of the true top correlated pairs the CHH summary must
/// recover on a skewed recurring stream (the summary's configured
/// recall target for this budget).
const RECALL_THRESHOLD: f64 = 0.8;

/// A deterministic skewed miss-like stream: consecutive line-address
/// pairs from a pointer chase with a hot subset (the `trace::gen`
/// workload model for mcf-style codes).
fn chase_pairs(seed: u64, len: usize) -> Vec<(u64, u64)> {
    let mut gen = ChaseGen::new(ChaseConfig {
        nodes: 512,
        hot_fraction: 0.7,
        hot_set_fraction: 0.05,
        seed,
        ..ChaseConfig::default()
    });
    let lines: Vec<u64> = gen.collect_accesses(len + 1).iter().map(|a| a.addr.line(64).0).collect();
    lines.windows(2).map(|w| (w[0], w[1])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Space-Saving never undercounts and overcounts by at most ε·N
    /// (ε = 1/capacity), for arbitrary streams and capacities.
    #[test]
    fn space_saving_stays_within_epsilon_n(
        capacity in 1usize..24,
        stream in prop::collection::vec((0u64..40, 1u64..6), 1..300),
    ) {
        let mut ss = SpaceSaving::new(capacity);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(key, reps) in &stream {
            ss.observe_n(key, reps);
            *truth.entry(key).or_insert(0) += reps;
        }
        let n: u64 = truth.values().sum();
        prop_assert_eq!(ss.total(), n);
        let bound = ss.max_error();
        prop_assert_eq!(bound, n / capacity as u64);
        for (key, est) in ss.iter() {
            let t = truth[&key];
            prop_assert!(est.count >= t, "undercounted {key}: {} < {t}", est.count);
            prop_assert!(est.count - t <= bound, "ε·N violated for {key}");
            prop_assert!(est.count - t <= est.overestimate, "per-entry bound violated");
        }
        // Completeness half of the guarantee: anything truly above ε·N is
        // monitored.
        for (key, &t) in &truth {
            if t > bound {
                prop_assert!(ss.estimate(key).is_some(), "hot key {key} ({t} > {bound}) evicted");
            }
        }
    }

    /// The CHH summary recalls the dominant correlated pairs of a skewed
    /// recurring stream produced by the workload generators.
    #[test]
    fn chh_recall_meets_threshold_on_skewed_stream(seed in 0u64..12) {
        let pairs = chase_pairs(seed, 40_000);
        let mut chh = ChhSummary::new(ChhConfig::with_budget(96 << 10).with_seed(seed));
        let mut truth: HashMap<(u64, u64), u64> = HashMap::new();
        for &(k, v) in &pairs {
            chh.observe(k, v);
            *truth.entry((k, v)).or_insert(0) += 1;
        }
        // The true top-20 pairs, most frequent first.
        let mut ranked: Vec<(&(u64, u64), &u64)> = truth.iter().collect();
        ranked.sort_by_key(|&(pair, count)| (std::cmp::Reverse(*count), *pair));
        let top: Vec<(u64, u64)> = ranked.iter().take(20).map(|&(p, _)| *p).collect();
        let recalled = top
            .iter()
            .filter(|(k, v)| {
                chh.correlated(*k).is_some_and(|c| c.iter().any(|p| p.value == *v))
            })
            .count();
        let recall = recalled as f64 / top.len() as f64;
        prop_assert!(
            recall >= RECALL_THRESHOLD,
            "recall {recall:.2} below {RECALL_THRESHOLD} at seed {seed}"
        );
    }

    /// Summaries are pure functions of (configuration, stream): replaying
    /// the same generator stream into same-seeded summaries reproduces
    /// every estimate and the exact memory footprint.
    #[test]
    fn summaries_are_deterministic_for_a_fixed_seed(seed in 0u64..1000) {
        let pairs = chase_pairs(seed, 5_000);
        let mut cm_a = CountMin::with_budget(8 << 10, 3, seed);
        let mut cm_b = CountMin::with_budget(8 << 10, 3, seed);
        let cfg = ChhConfig::with_budget(32 << 10).with_seed(seed);
        let mut chh_a = ChhSummary::new(cfg);
        let mut chh_b = ChhSummary::new(cfg);
        for &(k, v) in &pairs {
            cm_a.observe(k);
            cm_b.observe(k);
            chh_a.observe(k, v);
            chh_b.observe(k, v);
        }
        for &(k, _) in pairs.iter().take(200) {
            prop_assert_eq!(cm_a.estimate(k), cm_b.estimate(k));
            prop_assert_eq!(chh_a.correlated(k), chh_b.correlated(k));
        }
        prop_assert_eq!(cm_a.memory_bytes(), cm_b.memory_bytes());
        prop_assert_eq!(chh_a.memory_bytes(), chh_b.memory_bytes());
    }
}

/// Resident memory is a function of the budget, not the stream: a 25x
/// longer stream leaves `memory_bytes()` under the same bound.
#[test]
fn chh_memory_is_independent_of_stream_length() {
    let budget = 64 << 10;
    let mut footprints = Vec::new();
    for len in [20_000usize, 500_000] {
        let mut chh = ChhSummary::new(ChhConfig::with_budget(budget));
        for (k, v) in chase_pairs(3, len) {
            chh.observe(k, v);
        }
        assert!(
            chh.memory_bytes() <= budget,
            "resident {} exceeds budget {budget} at len {len}",
            chh.memory_bytes()
        );
        footprints.push(chh.memory_bytes());
    }
    assert_eq!(footprints[0], footprints[1], "both lengths saturate the same summary size");
}
