//! Property tests for the sketch guarantees: the Space-Saving ε·N bound,
//! CHH recall on skewed synthetic streams (driven by the `trace::gen`
//! workload generators), seed-determinism of every summary — and the
//! merge guarantees: summaries built over stream segments and merged
//! must match a single-pass summary over the concatenated stream within
//! the documented merged error bounds, commutatively, and associatively
//! up to those bounds.

use std::collections::HashMap;

use ltc_stream::{ChhConfig, ChhSummary, CountMin, SpaceSaving};
use ltc_trace::gen::{ChaseConfig, ChaseGen};
use ltc_trace::TraceSource;
use proptest::prelude::*;

/// Minimum fraction of the true top correlated pairs the CHH summary must
/// recover on a skewed recurring stream (the summary's configured
/// recall target for this budget).
const RECALL_THRESHOLD: f64 = 0.8;

/// The recall floor after a segmented merge. Each segment summarizes in
/// isolation, so locally-hot noise earns counters that survive into the
/// merged truncation and the absent-bound inflation (the price of never
/// undercounting) further crowds borderline true pairs — a documented
/// step down from the single-pass target, recovered in practice by the
/// pair-sketch cap when budgets are sized for the merged stream.
const MERGED_RECALL_THRESHOLD: f64 = 0.6;

/// A deterministic skewed miss-like stream: consecutive line-address
/// pairs from a pointer chase with a hot subset (the `trace::gen`
/// workload model for mcf-style codes).
fn chase_pairs(seed: u64, len: usize) -> Vec<(u64, u64)> {
    let mut gen = ChaseGen::new(ChaseConfig {
        nodes: 512,
        hot_fraction: 0.7,
        hot_set_fraction: 0.05,
        seed,
        ..ChaseConfig::default()
    });
    let lines: Vec<u64> = gen.collect_accesses(len + 1).iter().map(|a| a.addr.line(64).0).collect();
    lines.windows(2).map(|w| (w[0], w[1])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Space-Saving never undercounts and overcounts by at most ε·N
    /// (ε = 1/capacity), for arbitrary streams and capacities.
    #[test]
    fn space_saving_stays_within_epsilon_n(
        capacity in 1usize..24,
        stream in prop::collection::vec((0u64..40, 1u64..6), 1..300),
    ) {
        let mut ss = SpaceSaving::new(capacity);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(key, reps) in &stream {
            ss.observe_n(key, reps);
            *truth.entry(key).or_insert(0) += reps;
        }
        let n: u64 = truth.values().sum();
        prop_assert_eq!(ss.total(), n);
        let bound = ss.max_error();
        prop_assert_eq!(bound, n / capacity as u64);
        for (key, est) in ss.iter() {
            let t = truth[&key];
            prop_assert!(est.count >= t, "undercounted {key}: {} < {t}", est.count);
            prop_assert!(est.count - t <= bound, "ε·N violated for {key}");
            prop_assert!(est.count - t <= est.overestimate, "per-entry bound violated");
        }
        // Completeness half of the guarantee: anything truly above ε·N is
        // monitored.
        for (key, &t) in &truth {
            if t > bound {
                prop_assert!(ss.estimate(key).is_some(), "hot key {key} ({t} > {bound}) evicted");
            }
        }
    }

    /// The CHH summary recalls the dominant correlated pairs of a skewed
    /// recurring stream produced by the workload generators.
    #[test]
    fn chh_recall_meets_threshold_on_skewed_stream(seed in 0u64..12) {
        let pairs = chase_pairs(seed, 40_000);
        let mut chh = ChhSummary::new(ChhConfig::with_budget(96 << 10).with_seed(seed));
        let mut truth: HashMap<(u64, u64), u64> = HashMap::new();
        for &(k, v) in &pairs {
            chh.observe(k, v);
            *truth.entry((k, v)).or_insert(0) += 1;
        }
        // The true top-20 pairs, most frequent first.
        let mut ranked: Vec<(&(u64, u64), &u64)> = truth.iter().collect();
        ranked.sort_by_key(|&(pair, count)| (std::cmp::Reverse(*count), *pair));
        let top: Vec<(u64, u64)> = ranked.iter().take(20).map(|&(p, _)| *p).collect();
        let recalled = top
            .iter()
            .filter(|(k, v)| {
                chh.correlated(*k).is_some_and(|c| c.iter().any(|p| p.value == *v))
            })
            .count();
        let recall = recalled as f64 / top.len() as f64;
        prop_assert!(
            recall >= RECALL_THRESHOLD,
            "recall {recall:.2} below {RECALL_THRESHOLD} at seed {seed}"
        );
    }

    /// Summaries are pure functions of (configuration, stream): replaying
    /// the same generator stream into same-seeded summaries reproduces
    /// every estimate and the exact memory footprint.
    #[test]
    fn summaries_are_deterministic_for_a_fixed_seed(seed in 0u64..1000) {
        let pairs = chase_pairs(seed, 5_000);
        let mut cm_a = CountMin::with_budget(8 << 10, 3, seed);
        let mut cm_b = CountMin::with_budget(8 << 10, 3, seed);
        let cfg = ChhConfig::with_budget(32 << 10).with_seed(seed);
        let mut chh_a = ChhSummary::new(cfg);
        let mut chh_b = ChhSummary::new(cfg);
        for &(k, v) in &pairs {
            cm_a.observe(k);
            cm_b.observe(k);
            chh_a.observe(k, v);
            chh_b.observe(k, v);
        }
        for &(k, _) in pairs.iter().take(200) {
            prop_assert_eq!(cm_a.estimate(k), cm_b.estimate(k));
            prop_assert_eq!(chh_a.correlated(k), chh_b.correlated(k));
        }
        prop_assert_eq!(cm_a.memory_bytes(), cm_b.memory_bytes());
        prop_assert_eq!(chh_a.memory_bytes(), chh_b.memory_bytes());
    }
}

/// Splits a generated stream into `k` contiguous segments at
/// proptest-chosen cut points (uneven on purpose — real segment splits
/// are only near-even).
fn cut<T: Clone>(stream: &[T], cuts: &[usize]) -> Vec<Vec<T>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
    bounds.sort_unstable();
    let mut out = Vec::new();
    let mut prev = 0;
    for b in bounds {
        out.push(stream[prev..b].to_vec());
        prev = b;
    }
    out.push(stream[prev..].to_vec());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Merging per-segment Space-Saving summaries matches a single-pass
    /// summary over the concatenated stream within the merged bounds:
    /// the total is the summed N, estimates never undercount the true
    /// counts, per-entry error stays within the summed ε·Nᵢ (= the
    /// merged `max_error`), and keys truly hotter than twice that bound
    /// always survive the merge.
    #[test]
    fn merged_space_saving_bounds_hold_with_summed_n(
        capacity in 2usize..16,
        stream in prop::collection::vec((0u64..40, 1u64..6), 4..300),
        cuts in prop::collection::vec(0usize..300, 1..4),
    ) {
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(key, reps) in &stream {
            *truth.entry(key).or_insert(0) += reps;
        }
        let segments = cut(&stream, &cuts);
        let mut merged: Option<SpaceSaving<u64>> = None;
        for seg in &segments {
            let mut ss = SpaceSaving::new(capacity);
            for &(key, reps) in seg {
                ss.observe_n(key, reps);
            }
            match merged.as_mut() {
                Some(m) => m.merge(&ss).expect("same capacity"),
                None => merged = Some(ss),
            }
        }
        let merged = merged.expect("at least one segment");
        let n: u64 = truth.values().sum();
        prop_assert_eq!(merged.total(), n, "total must be the summed N");
        let bound = merged.max_error();
        for (key, est) in merged.iter() {
            let t = truth.get(&key).copied().unwrap_or(0);
            prop_assert!(est.count >= t, "undercounted {key}: {} < {t}", est.count);
            prop_assert!(est.count - t <= bound, "merged ε·N violated for {key}");
            prop_assert!(est.count - t <= est.overestimate, "per-entry bound violated");
        }
        // Merged completeness: anything truly above 2·ε·N is monitored
        // (the documented post-merge survival bound).
        for (key, &t) in &truth {
            if t > 2 * bound {
                prop_assert!(merged.estimate(key).is_some(), "hot key {key} ({t}) evicted");
            }
        }
    }

    /// Space-Saving merging is commutative (exactly — deterministic
    /// tie-breaks) and associative up to the estimate bounds.
    #[test]
    fn space_saving_merge_is_commutative_and_associative(
        capacity in 2usize..12,
        stream in prop::collection::vec((0u64..30, 1u64..5), 6..200),
        cuts in prop::collection::vec(0usize..200, 2..3),
    ) {
        let segments = cut(&stream, &cuts);
        let summaries: Vec<SpaceSaving<u64>> = segments
            .iter()
            .map(|seg| {
                let mut ss = SpaceSaving::new(capacity);
                for &(key, reps) in seg {
                    ss.observe_n(key, reps);
                }
                ss
            })
            .collect();
        let [a, b, c] = &summaries[..] else { panic!("three segments") };

        let mut ab = a.clone();
        ab.merge(b).unwrap();
        let mut ba = b.clone();
        ba.merge(a).unwrap();
        prop_assert_eq!(ab.total(), ba.total());
        prop_assert_eq!(ab.top(), ba.top(), "merge must be commutative");

        let mut left = ab;
        left.merge(c).unwrap();
        let mut bc = b.clone();
        bc.merge(c).unwrap();
        let mut right = a.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(left.total(), right.total());
        // Association order may shuffle which borderline keys survive,
        // but surviving estimates agree within the merged error bound.
        let bound = left.max_error();
        for (key, l) in left.iter() {
            if let Some(r) = right.estimate(&key) {
                prop_assert!(
                    l.count.abs_diff(r.count) <= bound,
                    "association moved {key} by more than ε·N"
                );
            }
        }
    }

    /// Merged Count-Min sketches never underestimate — and in fact equal
    /// the single-pass sketch exactly (counter grids are linear).
    #[test]
    fn merged_count_min_never_underestimates(
        seed in 0u64..64,
        stream in prop::collection::vec(0u64..200, 4..400),
        cuts in prop::collection::vec(0usize..400, 1..4),
    ) {
        let mut single = CountMin::with_budget(4 << 10, 3, seed);
        for &key in &stream {
            single.observe(key);
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &key in &stream {
            *truth.entry(key).or_insert(0) += 1;
        }
        let mut merged: Option<CountMin> = None;
        for seg in cut(&stream, &cuts) {
            let mut cm = CountMin::with_budget(4 << 10, 3, seed);
            for &key in &seg {
                cm.observe(key);
            }
            match merged.as_mut() {
                Some(m) => m.merge(&cm).expect("same shape"),
                None => merged = Some(cm),
            }
        }
        let merged = merged.expect("at least one segment");
        prop_assert_eq!(merged.total(), single.total());
        for (&key, &t) in &truth {
            let est = merged.estimate(key);
            prop_assert!(est >= t, "merged sketch undercounted {key}: {est} < {t}");
            prop_assert_eq!(est, single.estimate(key), "linearity: merge must be exact");
        }
    }

    /// Merging per-segment CHH summaries keeps the recall guarantee on
    /// the skewed generator streams (within tolerance of the single-pass
    /// threshold) and is commutative.
    #[test]
    fn merged_chh_recall_stays_within_tolerance(seed in 0u64..8, segments in 2u64..5) {
        let pairs = chase_pairs(seed, 40_000);
        let cfg = ChhConfig::with_budget(96 << 10).with_seed(seed);
        let mut truth: HashMap<(u64, u64), u64> = HashMap::new();
        for &(k, v) in &pairs {
            *truth.entry((k, v)).or_insert(0) += 1;
        }
        let per = pairs.len() / segments as usize;
        let mut summaries: Vec<ChhSummary> = pairs
            .chunks(per.max(1))
            .map(|seg| {
                let mut chh = ChhSummary::new(cfg);
                for &(k, v) in seg {
                    chh.observe(k, v);
                }
                chh
            })
            .collect();
        let mut merged = summaries.remove(0);
        for s in &summaries {
            merged.merge(s).expect("same config");
        }
        prop_assert_eq!(merged.total(), pairs.len() as u64);

        let mut ranked: Vec<(&(u64, u64), &u64)> = truth.iter().collect();
        ranked.sort_by_key(|&(pair, count)| (std::cmp::Reverse(*count), *pair));
        let top: Vec<(u64, u64)> = ranked.iter().take(20).map(|&(p, _)| *p).collect();
        let recalled = top
            .iter()
            .filter(|(k, v)| {
                merged.correlated(*k).is_some_and(|c| c.iter().any(|p| p.value == *v))
            })
            .count();
        let recall = recalled as f64 / top.len() as f64;
        prop_assert!(
            recall >= MERGED_RECALL_THRESHOLD,
            "merged recall {recall:.2} below tolerance at seed {seed}, {segments} segments"
        );

        // Fold-order robustness: merging the segments back-to-front
        // keeps every hot key's estimate within the combined bound.
        let mut chunks: Vec<ChhSummary> = pairs
            .chunks(per.max(1))
            .map(|seg| {
                let mut chh = ChhSummary::new(cfg);
                for &(k, v) in seg {
                    chh.observe(k, v);
                }
                chh
            })
            .collect();
        let mut backward = chunks.pop().expect("nonempty");
        for s in chunks.iter().rev() {
            backward.merge(s).expect("same config");
        }
        prop_assert_eq!(backward.total(), merged.total());
        for (pair, _) in ranked.iter().take(10) {
            let k = pair.0;
            let a = merged.key_estimate(k).map(|e| e.count);
            let b = backward.key_estimate(k).map(|e| e.count);
            // Hot keys survive either fold with estimates within the
            // combined error bound.
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert!(
                    a.abs_diff(b) <= 2 * merged.max_key_error(),
                    "fold order moved key {k}: {a} vs {b}"
                );
            }
        }
    }
}

/// Merging a sketch with a differently-shaped peer is a typed error at
/// every level, and the receiver is left untouched.
#[test]
fn shape_mismatches_are_typed_errors_not_panics() {
    use ltc_stream::MergeError;

    let mut ss = SpaceSaving::new(4);
    ss.observe(1u64);
    let before = ss.top();
    assert!(matches!(
        ss.merge(&SpaceSaving::new(5)),
        Err(MergeError::Shape { summary: "space-saving", .. })
    ));
    assert_eq!(ss.top(), before, "failed merge must not disturb the receiver");

    let mut cm = CountMin::new(64, 2, 1);
    cm.observe(9);
    assert!(matches!(
        cm.merge(&CountMin::new(64, 2, 2)),
        Err(MergeError::Shape { summary: "count-min", field: "seed", .. })
    ));
    assert_eq!(cm.estimate(9), 1);

    let mut chh = ChhSummary::new(ChhConfig::with_budget(16 << 10));
    chh.observe(1, 2);
    let err = chh.merge(&ChhSummary::new(ChhConfig::with_budget(32 << 10))).unwrap_err();
    assert!(matches!(err, MergeError::Shape { summary: "chh", field: "budget_bytes", .. }));
    assert!(err.to_string().contains("budget_bytes"), "{err}");
    assert_eq!(chh.total(), 1, "failed merge must not disturb the receiver");
}

/// Resident memory is a function of the budget, not the stream: a 25x
/// longer stream leaves `memory_bytes()` under the same bound.
#[test]
fn chh_memory_is_independent_of_stream_length() {
    let budget = 64 << 10;
    let mut footprints = Vec::new();
    for len in [20_000usize, 500_000] {
        let mut chh = ChhSummary::new(ChhConfig::with_budget(budget));
        for (k, v) in chase_pairs(3, len) {
            chh.observe(k, v);
        }
        assert!(
            chh.memory_bytes() <= budget,
            "resident {} exceeds budget {budget} at len {len}",
            chh.memory_bytes()
        );
        footprints.push(chh.memory_bytes());
    }
    assert_eq!(footprints[0], footprints[1], "both lengths saturate the same summary size");
}
