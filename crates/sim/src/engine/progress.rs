//! Live progress and ETA reporting for backend execution.
//!
//! Backends call into a [`ProgressSink`] as they start and finish specs;
//! the engine wires the sink through its [`crate::engine::backend::RunObserver`]
//! so artifact persistence and progress share one event stream. Sinks are
//! called from worker threads concurrently and must be `Sync`.

use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::engine::spec::RunSpec;

/// How an engine invocation reports execution progress (`ltsim run
/// --progress`). Progress goes to stderr, so tables on stdout stay clean
/// for diffing and piping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// No progress output (library callers, tests).
    #[default]
    Off,
    /// One plain text line per completed spec (CI logs, pipes).
    Plain,
    /// A single status line rewritten in place (interactive terminals).
    Live,
    /// [`ProgressMode::Live`] when stderr is a terminal,
    /// [`ProgressMode::Plain`] otherwise.
    Auto,
}

impl ProgressMode {
    /// Parses a `--progress` argument.
    pub fn parse(name: &str) -> Option<ProgressMode> {
        match name {
            "off" => Some(ProgressMode::Off),
            "plain" => Some(ProgressMode::Plain),
            "live" => Some(ProgressMode::Live),
            "auto" => Some(ProgressMode::Auto),
            _ => None,
        }
    }

    /// Builds the sink implementing this mode.
    pub fn sink(self) -> Box<dyn ProgressSink> {
        match self {
            ProgressMode::Off => Box::new(NullProgress),
            ProgressMode::Plain => Box::new(TextProgress::new(false)),
            ProgressMode::Live => Box::new(TextProgress::new(true)),
            ProgressMode::Auto => Box::new(TextProgress::new(std::io::stderr().is_terminal())),
        }
    }
}

/// Receives execution progress events from whatever backend runs the
/// specs. All methods have no-op defaults so custom sinks implement only
/// what they report.
pub trait ProgressSink: Sync + Send {
    /// Execution is about to start on `total` specs.
    fn begin(&self, total: usize) {
        let _ = total;
    }

    /// A worker picked up `spec`.
    fn spec_started(&self, spec: &RunSpec) {
        let _ = spec;
    }

    /// A worker finished `spec` after `elapsed` of wall time.
    fn spec_finished(&self, spec: &RunSpec, elapsed: Duration) {
        let _ = (spec, elapsed);
    }

    /// Every spec has finished (or execution failed).
    fn end(&self) {}
}

/// The silent sink behind [`ProgressMode::Off`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgress;

impl ProgressSink for NullProgress {}

/// Plain-text (or live, in-place) progress lines on stderr:
///
/// ```text
/// [  3/17] timing/mcf/lt-cords/6000k/s1  1.84s  (eta 41s)
/// ```
///
/// The ETA extrapolates from wall-clock throughput so far — total wall
/// time divided by completed specs, times specs remaining — which
/// accounts for worker parallelism without modelling it.
pub struct TextProgress {
    live: bool,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    total: usize,
    completed: usize,
    started: Option<Instant>,
}

impl TextProgress {
    /// A sink printing one line per spec (`live: false`) or rewriting a
    /// single status line in place (`live: true`).
    pub fn new(live: bool) -> Self {
        TextProgress { live, state: Mutex::new(State { total: 0, completed: 0, started: None }) }
    }
}

impl ProgressSink for TextProgress {
    fn begin(&self, total: usize) {
        let mut state = self.state.lock().expect("progress lock");
        state.total = total;
        state.completed = 0;
        state.started = Some(Instant::now());
    }

    fn spec_finished(&self, spec: &RunSpec, elapsed: Duration) {
        let mut state = self.state.lock().expect("progress lock");
        state.completed += 1;
        let eta = state
            .started
            .map(|t| eta_after(t.elapsed(), state.completed, state.total))
            .unwrap_or_default();
        let line = status_line(state.completed, state.total, &spec.label(), elapsed, eta);
        let mut err = std::io::stderr().lock();
        let _ = if self.live {
            // \x1b[2K clears the previous (possibly longer) line.
            write!(err, "\r\x1b[2K{line}")
        } else {
            writeln!(err, "{line}")
        };
        let _ = err.flush();
    }

    fn end(&self) {
        let state = self.state.lock().expect("progress lock");
        if self.live && state.completed > 0 {
            let _ = writeln!(std::io::stderr());
        }
    }
}

/// Estimated time remaining from wall time spent and specs completed.
fn eta_after(wall: Duration, completed: usize, total: usize) -> Duration {
    if completed == 0 || total <= completed {
        return Duration::ZERO;
    }
    let per_spec = wall / completed as u32;
    per_spec * (total - completed) as u32
}

/// One progress line: counter, spec label, per-spec wall time, ETA.
fn status_line(
    completed: usize,
    total: usize,
    label: &str,
    elapsed: Duration,
    eta: Duration,
) -> String {
    let width = total.to_string().len();
    let mut line = format!("[{completed:>width$}/{total}] {label}  {:.2}s", elapsed.as_secs_f64());
    if completed < total {
        line.push_str(&format!("  (eta {})", fmt_duration(eta)));
    }
    line
}

/// Compact duration: `47s`, `3m02s`, `1h12m`.
fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs();
    if secs >= 3600 {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    } else if secs >= 60 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{secs}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PredictorKind;

    #[test]
    fn status_lines_show_counter_timing_and_eta() {
        let line = status_line(
            3,
            17,
            "timing/mcf/lt-cords/6000k/s1",
            Duration::from_millis(1840),
            Duration::from_secs(41),
        );
        assert_eq!(line, "[ 3/17] timing/mcf/lt-cords/6000k/s1  1.84s  (eta 41s)");
        // The final spec drops the ETA.
        let last = status_line(17, 17, "x", Duration::from_secs(1), Duration::ZERO);
        assert!(!last.contains("eta"));
    }

    #[test]
    fn eta_extrapolates_wall_clock_throughput() {
        // 10 s of wall time for 4 of 10 specs → 2.5 s each → 15 s left.
        let eta = eta_after(Duration::from_secs(10), 4, 10);
        assert_eq!(eta, Duration::from_secs(15));
        assert_eq!(eta_after(Duration::from_secs(10), 0, 10), Duration::ZERO);
        assert_eq!(eta_after(Duration::from_secs(10), 10, 10), Duration::ZERO);
    }

    #[test]
    fn durations_format_compactly() {
        assert_eq!(fmt_duration(Duration::from_secs(47)), "47s");
        assert_eq!(fmt_duration(Duration::from_secs(182)), "3m02s");
        assert_eq!(fmt_duration(Duration::from_secs(4320)), "1h12m");
    }

    #[test]
    fn sinks_build_for_every_mode() {
        for mode in [ProgressMode::Off, ProgressMode::Plain, ProgressMode::Live, ProgressMode::Auto]
        {
            let sink = mode.sink();
            sink.begin(0);
            sink.spec_started(&RunSpec::coverage("gzip", PredictorKind::Baseline, 10, 1));
            sink.end();
        }
        assert_eq!(ProgressMode::parse("plain"), Some(ProgressMode::Plain));
        assert_eq!(ProgressMode::parse("bogus"), None);
    }
}
