//! Live progress and ETA reporting for backend execution.
//!
//! Backends call into a [`ProgressSink`] as they start and finish specs;
//! the engine wires the sink through its [`crate::engine::backend::RunObserver`]
//! so artifact persistence and progress share one event stream. Sinks are
//! called from worker threads concurrently and must be `Sync`.
//!
//! The same rendering is also available as a telemetry subscriber:
//! [`ProgressSubscriber`] re-implements every [`ProgressMode`] on top of
//! the structured event stream (`run_begin` points, `spec` spans,
//! `run_end` points), so a CLI that installs telemetry subscribers gets
//! progress/ETA from the same events its JSON log records.

use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ltc_telemetry::{Event, EventKind};

use crate::engine::spec::RunSpec;

/// How an engine invocation reports execution progress (`ltsim run
/// --progress`). Progress goes to stderr, so tables on stdout stay clean
/// for diffing and piping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// No progress output (library callers, tests).
    #[default]
    Off,
    /// One plain text line per completed spec (CI logs, pipes).
    Plain,
    /// A single status line rewritten in place (interactive terminals).
    Live,
    /// [`ProgressMode::Live`] when stderr is a terminal,
    /// [`ProgressMode::Plain`] otherwise.
    Auto,
}

impl ProgressMode {
    /// Parses a `--progress` argument.
    pub fn parse(name: &str) -> Option<ProgressMode> {
        match name {
            "off" => Some(ProgressMode::Off),
            "plain" => Some(ProgressMode::Plain),
            "live" => Some(ProgressMode::Live),
            "auto" => Some(ProgressMode::Auto),
            _ => None,
        }
    }

    /// Builds the sink implementing this mode.
    pub fn sink(self) -> Box<dyn ProgressSink> {
        match self {
            ProgressMode::Off => Box::new(NullProgress),
            ProgressMode::Plain => Box::new(TextProgress::new(false)),
            ProgressMode::Live => Box::new(TextProgress::new(true)),
            ProgressMode::Auto => Box::new(TextProgress::new(std::io::stderr().is_terminal())),
        }
    }
}

/// Receives execution progress events from whatever backend runs the
/// specs. All methods have no-op defaults so custom sinks implement only
/// what they report.
pub trait ProgressSink: Sync + Send {
    /// Execution is about to start on `total` specs.
    fn begin(&self, total: usize) {
        let _ = total;
    }

    /// A worker picked up `spec`.
    fn spec_started(&self, spec: &RunSpec) {
        let _ = spec;
    }

    /// A worker finished `spec` after `elapsed` of wall time.
    fn spec_finished(&self, spec: &RunSpec, elapsed: Duration) {
        let _ = (spec, elapsed);
    }

    /// Every spec has finished (or execution failed).
    fn end(&self) {}
}

/// The silent sink behind [`ProgressMode::Off`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgress;

impl ProgressSink for NullProgress {}

/// Plain-text (or live, in-place) progress lines on stderr:
///
/// ```text
/// [  3/17] timing/mcf/lt-cords/6000k/s1  1.84s  (eta 41s)
/// ```
///
/// The ETA extrapolates from wall-clock throughput so far — total wall
/// time divided by completed specs, times specs remaining — which
/// accounts for worker parallelism without modelling it.
pub struct TextProgress {
    live: bool,
    state: Mutex<State>,
    /// `None` writes to stderr; tests inject a buffer to check rendering.
    out: Option<Mutex<Box<dyn Write + Send>>>,
}

#[derive(Debug)]
struct State {
    total: usize,
    completed: usize,
    started: Option<Instant>,
}

impl TextProgress {
    /// A sink printing one line per spec (`live: false`) or rewriting a
    /// single status line in place (`live: true`).
    pub fn new(live: bool) -> Self {
        TextProgress {
            live,
            state: Mutex::new(State { total: 0, completed: 0, started: None }),
            out: None,
        }
    }

    /// Like [`TextProgress::new`] but rendering into `out` instead of
    /// stderr, so tests can assert the exact bytes each mode produces.
    pub fn with_writer(live: bool, out: Box<dyn Write + Send>) -> Self {
        TextProgress { out: Some(Mutex::new(out)), ..TextProgress::new(live) }
    }

    /// Resets the counters for a run over `total` specs.
    pub fn begin_total(&self, total: usize) {
        let mut state = self.state.lock().expect("progress lock");
        state.total = total;
        state.completed = 0;
        state.started = Some(Instant::now());
    }

    /// Renders one completed spec, identified by its label.
    pub fn finish_line(&self, label: &str, elapsed: Duration) {
        let mut state = self.state.lock().expect("progress lock");
        state.completed += 1;
        let eta = state
            .started
            .map(|t| eta_after(t.elapsed(), state.completed, state.total))
            .unwrap_or_default();
        let line = status_line(state.completed, state.total, label, elapsed, eta);
        self.write(|w| {
            if self.live {
                // \x1b[2K clears the previous (possibly longer) line.
                write!(w, "\r\x1b[2K{line}")
            } else {
                writeln!(w, "{line}")
            }
        });
    }

    /// Finishes the run (terminates the live line, if any).
    pub fn finish_run(&self) {
        let state = self.state.lock().expect("progress lock");
        if self.live && state.completed > 0 {
            self.write(|w| writeln!(w));
        }
    }

    fn write(&self, f: impl FnOnce(&mut dyn Write) -> std::io::Result<()>) {
        match &self.out {
            Some(out) => {
                let mut out = out.lock().expect("progress writer lock");
                let _ = f(&mut **out);
                let _ = out.flush();
            }
            None => {
                let mut err = std::io::stderr().lock();
                let _ = f(&mut err);
                let _ = err.flush();
            }
        }
    }
}

impl ProgressSink for TextProgress {
    fn begin(&self, total: usize) {
        self.begin_total(total);
    }

    fn spec_finished(&self, spec: &RunSpec, elapsed: Duration) {
        self.finish_line(&spec.label(), elapsed);
    }

    fn end(&self) {
        self.finish_run();
    }
}

/// Re-implements a [`ProgressMode`] as a telemetry subscriber: the
/// scheduler's `run_begin`/`run_end` points and the backends' `spec`
/// spans drive the same [`TextProgress`] rendering the sink path uses,
/// so a run recording an event log needs no second progress channel.
///
/// The `spec` span-end's `run_us` field (pure execution time) feeds the
/// per-spec column, matching what [`ProgressSink::spec_finished`]
/// reports.
pub struct ProgressSubscriber {
    text: Option<TextProgress>,
}

impl ProgressSubscriber {
    /// A subscriber rendering `mode` to stderr ([`ProgressMode::Off`]
    /// renders nothing but still accepts events).
    pub fn new(mode: ProgressMode) -> Self {
        let text = match mode {
            ProgressMode::Off => None,
            ProgressMode::Plain => Some(TextProgress::new(false)),
            ProgressMode::Live => Some(TextProgress::new(true)),
            ProgressMode::Auto => Some(TextProgress::new(std::io::stderr().is_terminal())),
        };
        ProgressSubscriber { text }
    }

    /// A subscriber rendering through an injected [`TextProgress`]
    /// (tests).
    pub fn with_text(text: TextProgress) -> Self {
        ProgressSubscriber { text: Some(text) }
    }
}

impl ltc_telemetry::Subscriber for ProgressSubscriber {
    fn event(&self, event: &Event) {
        let Some(text) = &self.text else { return };
        match (event.kind, event.name.as_str()) {
            (EventKind::Point, "run_begin") => {
                let total = event.field("total").and_then(|f| f.as_u64()).unwrap_or(0);
                text.begin_total(total as usize);
            }
            (EventKind::SpanEnd, "spec") => {
                // A failed attempt closes its span too (so begin/end
                // stays balanced) but tags it with `outcome`; only the
                // untagged completion advances the [k/N] counter.
                if event.field("outcome").is_some() {
                    return;
                }
                let Some(label) = event.field("label").and_then(|f| f.as_str()) else { return };
                let run_us = event
                    .field("run_us")
                    .or_else(|| event.field("elapsed_us"))
                    .and_then(|f| f.as_u64())
                    .unwrap_or(0);
                text.finish_line(label, Duration::from_micros(run_us));
            }
            (EventKind::Point, "run_end") => text.finish_run(),
            _ => {}
        }
    }
}

/// Estimated time remaining from wall time spent and specs completed.
fn eta_after(wall: Duration, completed: usize, total: usize) -> Duration {
    if completed == 0 || total <= completed {
        return Duration::ZERO;
    }
    let per_spec = wall / completed as u32;
    per_spec * (total - completed) as u32
}

/// One progress line: counter, spec label, per-spec wall time, ETA.
fn status_line(
    completed: usize,
    total: usize,
    label: &str,
    elapsed: Duration,
    eta: Duration,
) -> String {
    let width = total.to_string().len();
    let mut line = format!("[{completed:>width$}/{total}] {label}  {:.2}s", elapsed.as_secs_f64());
    if completed < total {
        line.push_str(&format!("  (eta {})", fmt_duration(eta)));
    }
    line
}

/// Compact duration: `47s`, `3m02s`, `1h12m`.
fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs();
    if secs >= 3600 {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    } else if secs >= 60 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{secs}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PredictorKind;

    #[test]
    fn status_lines_show_counter_timing_and_eta() {
        let line = status_line(
            3,
            17,
            "timing/mcf/lt-cords/6000k/s1",
            Duration::from_millis(1840),
            Duration::from_secs(41),
        );
        assert_eq!(line, "[ 3/17] timing/mcf/lt-cords/6000k/s1  1.84s  (eta 41s)");
        // The final spec drops the ETA.
        let last = status_line(17, 17, "x", Duration::from_secs(1), Duration::ZERO);
        assert!(!last.contains("eta"));
    }

    #[test]
    fn eta_extrapolates_wall_clock_throughput() {
        // 10 s of wall time for 4 of 10 specs → 2.5 s each → 15 s left.
        let eta = eta_after(Duration::from_secs(10), 4, 10);
        assert_eq!(eta, Duration::from_secs(15));
        assert_eq!(eta_after(Duration::from_secs(10), 0, 10), Duration::ZERO);
        assert_eq!(eta_after(Duration::from_secs(10), 10, 10), Duration::ZERO);
    }

    #[test]
    fn durations_format_compactly() {
        assert_eq!(fmt_duration(Duration::from_secs(47)), "47s");
        assert_eq!(fmt_duration(Duration::from_secs(182)), "3m02s");
        assert_eq!(fmt_duration(Duration::from_secs(4320)), "1h12m");
    }

    /// A cloneable in-memory writer so tests can inspect what a
    /// [`TextProgress`] rendered.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    fn run_begin(total: u64) -> Event {
        let mut e = Event::now(EventKind::Point, "run_begin");
        e.fields.push(("total".to_string(), total.into()));
        e
    }

    fn spec_end(label: &str, run_us: u64) -> Event {
        let mut e = Event::now(EventKind::SpanEnd, "spec");
        e.span = Some(1);
        e.fields.push(("label".to_string(), label.into()));
        e.fields.push(("run_us".to_string(), run_us.into()));
        e
    }

    #[test]
    fn plain_subscriber_renders_one_line_per_spec_with_eta() {
        use ltc_telemetry::Subscriber;
        let buf = SharedBuf::default();
        let sub =
            ProgressSubscriber::with_text(TextProgress::with_writer(false, Box::new(buf.clone())));
        sub.event(&run_begin(3));
        sub.event(&spec_end("coverage/gzip/baseline/1000k/s1", 1_840_000));
        sub.event(&spec_end("coverage/mcf/baseline/1000k/s1", 500_000));
        sub.event(&spec_end("coverage/art/baseline/1000k/s1", 250_000));
        sub.event(&Event::now(EventKind::Point, "run_end"));
        let out = buf.contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "one plain line per spec:\n{out}");
        assert!(
            lines[0].starts_with("[1/3] coverage/gzip/baseline/1000k/s1  1.84s"),
            "first line: {:?}",
            lines[0]
        );
        // Incomplete specs carry an ETA; the final one drops it.
        assert!(lines[0].contains("(eta "), "eta on line 1: {:?}", lines[0]);
        assert!(!lines[2].contains("eta"), "no eta on final line: {:?}", lines[2]);
        assert!(!out.contains('\r'), "plain mode never rewrites in place");
    }

    #[test]
    fn live_subscriber_rewrites_in_place_and_terminates_the_line() {
        use ltc_telemetry::Subscriber;
        let buf = SharedBuf::default();
        let sub =
            ProgressSubscriber::with_text(TextProgress::with_writer(true, Box::new(buf.clone())));
        sub.event(&run_begin(2));
        sub.event(&spec_end("a/b/c", 100_000));
        sub.event(&spec_end("a/b/d", 100_000));
        sub.event(&Event::now(EventKind::Point, "run_end"));
        let out = buf.contents();
        // Each update rewrites the same line: carriage return + clear.
        assert_eq!(out.matches("\r\x1b[2K").count(), 2, "{out:?}");
        assert!(out.contains("[1/2] a/b/c  0.10s"), "{out:?}");
        assert!(out.contains("[2/2] a/b/d  0.10s"), "{out:?}");
        // run_end terminates the rewritten line exactly once.
        assert!(out.ends_with('\n'), "{out:?}");
        assert_eq!(out.matches('\n').count(), 1, "{out:?}");
    }

    #[test]
    fn off_subscriber_renders_nothing() {
        use ltc_telemetry::Subscriber;
        let sub = ProgressSubscriber::new(ProgressMode::Off);
        sub.event(&run_begin(5));
        sub.event(&spec_end("a/b/c", 1));
        sub.event(&Event::now(EventKind::Point, "run_end"));
        // Nothing to assert beyond "does not panic": Off has no writer.
    }

    #[test]
    fn subscriber_ignores_unrelated_events_and_missing_fields() {
        use ltc_telemetry::Subscriber;
        let buf = SharedBuf::default();
        let sub =
            ProgressSubscriber::with_text(TextProgress::with_writer(false, Box::new(buf.clone())));
        sub.event(&run_begin(1));
        // A spec end without a label cannot be rendered; skip, not panic.
        let mut unlabeled = Event::now(EventKind::SpanEnd, "spec");
        unlabeled.fields.push(("run_us".to_string(), 5u64.into()));
        sub.event(&unlabeled);
        sub.event(&Event::now(EventKind::Counter, "scheduler.cache_hits"));
        sub.event(&Event::now(EventKind::SpanEnd, "scheduler.plan"));
        assert_eq!(buf.contents(), "", "unrelated events render nothing");
        sub.event(&spec_end("x", 10_000));
        assert!(buf.contents().starts_with("[1/1] x  0.01s"));
    }

    #[test]
    fn failed_attempts_do_not_advance_the_counter() {
        use ltc_telemetry::Subscriber;
        let buf = SharedBuf::default();
        let sub =
            ProgressSubscriber::with_text(TextProgress::with_writer(false, Box::new(buf.clone())));
        sub.event(&run_begin(2));
        // A retried attempt ends its span with an outcome tag: rendered
        // nothing, counted nothing.
        let mut failed = spec_end("coverage/gzip/baseline/1000k/s1", 9_000);
        failed.fields.push(("outcome".to_string(), "retry".into()));
        sub.event(&failed);
        assert_eq!(buf.contents(), "");
        sub.event(&spec_end("coverage/gzip/baseline/1000k/s1", 11_000));
        sub.event(&spec_end("coverage/mcf/baseline/1000k/s1", 12_000));
        let out = buf.contents();
        assert!(out.starts_with("[1/2] coverage/gzip"), "{out}");
        assert!(out.contains("[2/2] coverage/mcf"), "{out}");
    }

    #[test]
    fn sinks_build_for_every_mode() {
        for mode in [ProgressMode::Off, ProgressMode::Plain, ProgressMode::Live, ProgressMode::Auto]
        {
            let sink = mode.sink();
            sink.begin(0);
            sink.spec_started(&RunSpec::coverage("gzip", PredictorKind::Baseline, 10, 1));
            sink.end();
        }
        assert_eq!(ProgressMode::parse("plain"), Some(ProgressMode::Plain));
        assert_eq!(ProgressMode::parse("bogus"), None);
    }
}
