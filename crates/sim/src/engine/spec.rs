//! Declarative experiment keys.

use ltc_analysis::{
    CorrelationAnalysis, DeadTimeTracker, LastTouchOrderAnalysis, StreamAnalysis, StreamConfig,
};
use ltc_trace::suite;
use ltcords::LtCordsConfig;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::engine::result::RunResult;
use crate::experiment::{run_coverage, run_multiprog, run_timing, PredictorKind};

/// What kind of simulation a [`RunSpec`] asks for.
///
/// The analysis modes (`DeadTime`, `Correlation`, `Ordering`) measure the
/// baseline machine and ignore the spec's predictor; their constructors
/// pin it to [`PredictorKind::Baseline`] so equal measurements dedupe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Trace-driven coverage run ([`run_coverage`]).
    Coverage,
    /// Cycle-approximate timing run ([`run_timing`]).
    Timing,
    /// Block dead-time measurement (Figure 2).
    DeadTime,
    /// Temporal miss-correlation study (Figure 6).
    Correlation,
    /// Last-touch vs miss-order disparity study (Figure 7).
    Ordering,
    /// Multi-programmed coverage, focus benchmark context-switched with an
    /// optional partner (Figure 11).
    MultiProg {
        /// Partner benchmark, or `None` for the standalone bar.
        partner: Option<String>,
    },
    /// One-pass bounded-memory miss/heavy-hitter analysis (`ltsim
    /// stream`). The summary byte budget is part of the key: runs with
    /// different budgets are different experiments.
    Stream {
        /// Summary byte budget.
        budget_bytes: u64,
    },
    /// One worker's slice of a segmented streaming run: replay segment
    /// `segment` of `segments` even slices of the trace and return the
    /// partial summaries ([`RunResult::StreamPartial`]). Budget, segment
    /// count **and** segment index are all part of the key, so
    /// `--segments 4` and `--segments 8` runs can never collide in the
    /// artifact cache.
    StreamSegment {
        /// Summary byte budget.
        budget_bytes: u64,
        /// Total segments the trace splits into.
        segments: u32,
        /// This slice's 0-based index.
        segment: u32,
        /// Warm-up accesses replayed (or image-restored) before the
        /// slice ([`ltc_analysis::StreamConfig::warmup`]). Part of the
        /// key: the warm-up length changes deep-segment results, so
        /// differently-configured runs must never share artifacts.
        warmup: u64,
    },
    /// A whole segmented streaming run: the merged report of `segments`
    /// [`Mode::StreamSegment`] children. The scheduler fans the children
    /// out across the selected backend and reduces them
    /// ([`crate::engine::segmented`]); executing the spec directly (a
    /// worker handed the parent) runs the segments sequentially.
    StreamSegmented {
        /// Summary byte budget (per worker).
        budget_bytes: u64,
        /// Segments the trace splits into.
        segments: u32,
        /// Per-segment warm-up accesses (inherited by every child
        /// [`Mode::StreamSegment`]).
        warmup: u64,
    },
}

impl Mode {
    /// Short name for tables and artifact listings.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Coverage => "coverage",
            Mode::Timing => "timing",
            Mode::DeadTime => "dead-time",
            Mode::Correlation => "correlation",
            Mode::Ordering => "ordering",
            Mode::MultiProg { .. } => "multiprog",
            Mode::Stream { .. } => "stream",
            Mode::StreamSegment { .. } => "stream-segment",
            Mode::StreamSegmented { .. } => "stream-segmented",
        }
    }
}

impl Serialize for Mode {
    fn to_value(&self) -> Value {
        match self {
            Mode::MultiProg { partner } => {
                Value::Map(vec![("multiprog".to_string(), partner.to_value())])
            }
            Mode::Stream { budget_bytes } => {
                Value::Map(vec![("stream".to_string(), Value::U64(*budget_bytes))])
            }
            Mode::StreamSegment { budget_bytes, segments, segment, warmup } => Value::Map(vec![(
                "stream-segment".to_string(),
                Value::Map(vec![
                    ("budget_bytes".to_string(), Value::U64(*budget_bytes)),
                    ("segments".to_string(), Value::U64(u64::from(*segments))),
                    ("segment".to_string(), Value::U64(u64::from(*segment))),
                    ("warmup".to_string(), Value::U64(*warmup)),
                ]),
            )]),
            Mode::StreamSegmented { budget_bytes, segments, warmup } => Value::Map(vec![(
                "stream-segmented".to_string(),
                Value::Map(vec![
                    ("budget_bytes".to_string(), Value::U64(*budget_bytes)),
                    ("segments".to_string(), Value::U64(u64::from(*segments))),
                    ("warmup".to_string(), Value::U64(*warmup)),
                ]),
            )]),
            simple => Value::Str(simple.name().to_string()),
        }
    }
}

impl<'de> Deserialize<'de> for Mode {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if let Some(partner) = value.get("multiprog") {
            return Ok(Mode::MultiProg { partner: Option::<String>::from_value(partner)? });
        }
        if let Some(budget) = value.get("stream") {
            return Ok(Mode::Stream { budget_bytes: u64::from_value(budget)? });
        }
        if let Some(seg) = value.get("stream-segment") {
            return Ok(Mode::StreamSegment {
                budget_bytes: serde::field(seg, "budget_bytes", "Mode::StreamSegment")?,
                segments: serde::field(seg, "segments", "Mode::StreamSegment")?,
                segment: serde::field(seg, "segment", "Mode::StreamSegment")?,
                // A missing warm-up (pre-field artifacts) is an error, so
                // those cache files degrade to misses instead of aliasing
                // differently-warmed runs.
                warmup: serde::field(seg, "warmup", "Mode::StreamSegment")?,
            });
        }
        if let Some(seg) = value.get("stream-segmented") {
            return Ok(Mode::StreamSegmented {
                budget_bytes: serde::field(seg, "budget_bytes", "Mode::StreamSegmented")?,
                segments: serde::field(seg, "segments", "Mode::StreamSegmented")?,
                warmup: serde::field(seg, "warmup", "Mode::StreamSegmented")?,
            });
        }
        match value.as_str() {
            Some("coverage") => Ok(Mode::Coverage),
            Some("timing") => Ok(Mode::Timing),
            Some("dead-time") => Ok(Mode::DeadTime),
            Some("correlation") => Ok(Mode::Correlation),
            Some("ordering") => Ok(Mode::Ordering),
            _ => Err(DeError::expected("a mode name or {\"multiprog\": ...}", "Mode")),
        }
    }
}

impl Serialize for PredictorKind {
    fn to_value(&self) -> Value {
        match self {
            // The parameterized kinds carry their configuration so that
            // differently-configured runs never collide under one key.
            PredictorKind::LtCordsWith(cfg) => {
                Value::Map(vec![("lt-cords-with".to_string(), cfg.to_value())])
            }
            PredictorKind::DbcpBytes(bytes) => {
                Value::Map(vec![("dbcp-bytes".to_string(), Value::U64(*bytes))])
            }
            PredictorKind::SketchDbcp(bytes) => {
                Value::Map(vec![("sketch-dbcp".to_string(), Value::U64(*bytes))])
            }
            simple => Value::Str(simple.name().to_string()),
        }
    }
}

impl<'de> Deserialize<'de> for PredictorKind {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if let Some(cfg) = value.get("lt-cords-with") {
            return Ok(PredictorKind::LtCordsWith(LtCordsConfig::from_value(cfg)?));
        }
        if let Some(bytes) = value.get("dbcp-bytes") {
            return Ok(PredictorKind::DbcpBytes(u64::from_value(bytes)?));
        }
        if let Some(bytes) = value.get("sketch-dbcp") {
            return Ok(PredictorKind::SketchDbcp(u64::from_value(bytes)?));
        }
        match value.as_str() {
            Some("baseline") => Ok(PredictorKind::Baseline),
            Some("perfect-l1") => Ok(PredictorKind::PerfectL1),
            Some("lt-cords") => Ok(PredictorKind::LtCords),
            Some("dbcp-unlimited") => Ok(PredictorKind::DbcpUnlimited),
            Some("dbcp") => Ok(PredictorKind::Dbcp2Mb),
            Some("ghb") => Ok(PredictorKind::Ghb),
            Some("stride") => Ok(PredictorKind::Stride),
            Some("4mb-l2") => Ok(PredictorKind::BigL2),
            _ => Err(DeError::expected("a predictor kind", "PredictorKind")),
        }
    }
}

/// Behavioural version of the simulation model, embedded in every
/// [`RunSpec`] key (and therefore every artifact-cache file name).
///
/// **Bump rule:** increment once per change that alters any simulation
/// *result* — predictor logic, cache/timing model, trace generation, or
/// report contents. Refactors, new backends, CLI and rendering changes do
/// not bump it. Bumping changes every spec key, so cached artifacts from
/// the previous model self-detect as stale (cache misses) and re-simulate
/// without `--force`. The rule is documented for operators in
/// EXPERIMENTS.md.
///
/// Version history: 2 — `CoverageReport` gained the `memory_bytes` field
/// (honest resident-memory accounting for the sketch budget sweep).
/// 3 — segmented streaming: mergeable sketch summaries, the
/// `stream-segment`/`stream-segmented` modes, and `StreamReport`
/// production routed through the shared merge/finalize path.
/// 4 — sketch hashing default switched from the SplitMix64 finalizer to
/// the cheaper multiply-shift family (`ltc_stream::HashKind`); stream
/// and sketch-predictor results rebucket, so the `stream` golden was
/// regenerated in the same change.
pub const MODEL_VERSION: u32 = 4;

/// The declarative key of one simulation: benchmark, predictor, mode,
/// access budget, seed — plus the model version the simulator had when
/// the spec was created.
///
/// Everything about a run is determined by these fields (the simulator is
/// deterministic), so the spec is simultaneously the dedup key, the
/// artifact cache key, and — via [`RunSpec::execute`] — the run itself.
/// Serialization is canonical (field order fixed, map order preserved)
/// and injective over the fields: distinct specs always have distinct
/// [`RunSpec::key`] strings, which `tests/engine.rs` asserts by property
/// test.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunSpec {
    /// Simulation-model version ([`MODEL_VERSION`] at creation time).
    pub model_version: u32,
    /// Suite benchmark name (the focus program for multi-programmed runs).
    pub benchmark: String,
    /// Predictor configuration under test.
    pub predictor: PredictorKind,
    /// Simulation mode.
    pub mode: Mode,
    /// Access budget.
    pub accesses: u64,
    /// Trace generator seed.
    pub seed: u64,
}

impl RunSpec {
    /// A coverage run.
    pub fn coverage(benchmark: &str, predictor: PredictorKind, accesses: u64, seed: u64) -> Self {
        RunSpec {
            model_version: MODEL_VERSION,
            benchmark: benchmark.to_string(),
            predictor,
            mode: Mode::Coverage,
            accesses,
            seed,
        }
    }

    /// A timing run.
    pub fn timing(benchmark: &str, predictor: PredictorKind, accesses: u64, seed: u64) -> Self {
        RunSpec {
            model_version: MODEL_VERSION,
            benchmark: benchmark.to_string(),
            predictor,
            mode: Mode::Timing,
            accesses,
            seed,
        }
    }

    /// A dead-time measurement (baseline machine).
    pub fn dead_time(benchmark: &str, accesses: u64, seed: u64) -> Self {
        RunSpec {
            model_version: MODEL_VERSION,
            benchmark: benchmark.to_string(),
            predictor: PredictorKind::Baseline,
            mode: Mode::DeadTime,
            accesses,
            seed,
        }
    }

    /// A temporal-correlation measurement (baseline machine).
    pub fn correlation(benchmark: &str, accesses: u64, seed: u64) -> Self {
        RunSpec {
            model_version: MODEL_VERSION,
            benchmark: benchmark.to_string(),
            predictor: PredictorKind::Baseline,
            mode: Mode::Correlation,
            accesses,
            seed,
        }
    }

    /// A last-touch ordering measurement (baseline machine).
    pub fn ordering(benchmark: &str, accesses: u64, seed: u64) -> Self {
        RunSpec {
            model_version: MODEL_VERSION,
            benchmark: benchmark.to_string(),
            predictor: PredictorKind::Baseline,
            mode: Mode::Ordering,
            accesses,
            seed,
        }
    }

    /// A one-pass streaming miss analysis (baseline machine) with the
    /// given summary byte budget.
    pub fn stream(benchmark: &str, budget_bytes: u64, accesses: u64, seed: u64) -> Self {
        RunSpec {
            model_version: MODEL_VERSION,
            benchmark: benchmark.to_string(),
            predictor: PredictorKind::Baseline,
            mode: Mode::Stream { budget_bytes },
            accesses,
            seed,
        }
    }

    /// One worker slice of a segmented streaming run (baseline machine):
    /// segment `segment` of `segments` even slices.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero or `segment` is out of range — the
    /// same partition preconditions as `ltc_trace::TraceSegment`.
    pub fn stream_segment(
        benchmark: &str,
        budget_bytes: u64,
        segments: u32,
        segment: u32,
        accesses: u64,
        seed: u64,
    ) -> Self {
        assert!(segments > 0, "a trace splits into at least one segment");
        assert!(segment < segments, "segment {segment} out of {segments}");
        RunSpec {
            model_version: MODEL_VERSION,
            benchmark: benchmark.to_string(),
            predictor: PredictorKind::Baseline,
            mode: Mode::StreamSegment {
                budget_bytes,
                segments,
                segment,
                warmup: ltc_analysis::SEGMENT_WARMUP,
            },
            accesses,
            seed,
        }
    }

    /// A whole segmented streaming run (baseline machine): `segments`
    /// parallel worker slices merged into one report.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn stream_segmented(
        benchmark: &str,
        budget_bytes: u64,
        segments: u32,
        accesses: u64,
        seed: u64,
    ) -> Self {
        assert!(segments > 0, "a trace splits into at least one segment");
        RunSpec {
            model_version: MODEL_VERSION,
            benchmark: benchmark.to_string(),
            predictor: PredictorKind::Baseline,
            mode: Mode::StreamSegmented {
                budget_bytes,
                segments,
                warmup: ltc_analysis::SEGMENT_WARMUP,
            },
            accesses,
            seed,
        }
    }

    /// The same spec with an explicit per-segment warm-up length
    /// (stream-segment modes only; other modes are returned unchanged).
    /// Non-default warm-ups key separately in the artifact cache.
    pub fn with_stream_warmup(mut self, warmup: u64) -> Self {
        match &mut self.mode {
            Mode::StreamSegment { warmup: w, .. } | Mode::StreamSegmented { warmup: w, .. } => {
                *w = warmup;
            }
            _ => {}
        }
        self
    }

    /// A multi-programmed coverage run.
    pub fn multiprog(
        focus: &str,
        partner: Option<&str>,
        predictor: PredictorKind,
        accesses: u64,
        seed: u64,
    ) -> Self {
        RunSpec {
            model_version: MODEL_VERSION,
            benchmark: focus.to_string(),
            predictor,
            mode: Mode::MultiProg { partner: partner.map(str::to_string) },
            accesses,
            seed,
        }
    }

    /// The canonical serialized form: compact single-line JSON, injective
    /// over the spec fields. This string *is* the spec's identity for
    /// dedup and caching.
    pub fn key(&self) -> String {
        serde_json::to_string(self)
    }

    /// FNV-1a 64-bit hash of [`RunSpec::key`], as 16 hex digits — the
    /// artifact cache file stem.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(self.key().as_bytes()))
    }

    /// A compact human-readable label for plans and progress output.
    pub fn label(&self) -> String {
        let mode = match &self.mode {
            Mode::MultiProg { partner: Some(p) } => format!("multiprog+{p}"),
            Mode::Stream { budget_bytes } => format!("stream[{budget_bytes}B]"),
            Mode::StreamSegment { budget_bytes, segments, segment, warmup } => {
                let w = warm_suffix(*warmup);
                format!("stream[{budget_bytes}B,seg {}/{segments}{w}]", segment + 1)
            }
            Mode::StreamSegmented { budget_bytes, segments, warmup } => {
                let w = warm_suffix(*warmup);
                format!("stream[{budget_bytes}B,{segments}seg{w}]")
            }
            m => m.name().to_string(),
        };
        let predictor = match self.predictor {
            PredictorKind::LtCordsWith(cfg) => format!(
                "lt-cords[sc={},frames={},frag={}]",
                cfg.sig_cache_entries, cfg.frames, cfg.fragment_len
            ),
            PredictorKind::DbcpBytes(b) => format!("dbcp[{b}B]"),
            PredictorKind::SketchDbcp(b) => format!("sketch-dbcp[{b}B]"),
            simple => simple.name().to_string(),
        };
        format!(
            "{}/{}/{}/{}k/s{}",
            mode,
            self.benchmark,
            predictor,
            self.accesses / 1000,
            self.seed
        )
    }

    /// Runs the simulation this spec describes.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark (or multiprog partner) is not in the suite.
    pub fn execute(&self) -> RunResult {
        match &self.mode {
            Mode::Coverage => RunResult::Coverage(run_coverage(
                &self.benchmark,
                self.predictor,
                self.accesses,
                self.seed,
            )),
            Mode::Timing => RunResult::Timing(run_timing(
                &self.benchmark,
                self.predictor,
                self.accesses,
                self.seed,
            )),
            Mode::DeadTime => {
                let mut src = self.build_source();
                RunResult::DeadTime(DeadTimeTracker::run(&mut src, self.accesses))
            }
            Mode::Correlation => {
                let mut src = self.build_source();
                RunResult::Correlation(CorrelationAnalysis::run(&mut src, self.accesses))
            }
            Mode::Ordering => {
                let mut src = self.build_source();
                RunResult::Ordering(LastTouchOrderAnalysis::run(&mut src, self.accesses))
            }
            Mode::MultiProg { partner } => RunResult::MultiProg(run_multiprog(
                &self.benchmark,
                partner.as_deref(),
                self.predictor,
                self.accesses,
                self.seed,
            )),
            Mode::Stream { budget_bytes } => {
                let mut src = self.build_source();
                RunResult::Stream(StreamAnalysis::run(
                    &mut src,
                    self.accesses,
                    StreamConfig::with_budget(*budget_bytes).with_seed(self.seed),
                ))
            }
            Mode::StreamSegment { budget_bytes, segments, segment, warmup } => {
                let mut src = self.build_source();
                let slice = ltc_trace::TraceSegment::nth(self.accesses, *segments, *segment);
                // A recorded warm image at the slice start (the
                // scheduler's ensure pass, or the parent spec in this
                // process) replaces the warm-up replay outright; the
                // generator checkpoint then seeks to the slice start
                // itself instead of the pre-warm-up point. Without either
                // the worker degrades gracefully: checkpoint-seek plus
                // replay, or the plain skip loop.
                let warm_image = match slice.start {
                    0 => None,
                    _ => {
                        crate::engine::checkpoints::lookup_warm(&self.benchmark, self.seed, *warmup)
                            .and_then(|store| store.at(slice.start).cloned())
                    }
                };
                let target = match &warm_image {
                    Some(_) => slice.start,
                    None => slice.start - slice.start.min(*warmup),
                };
                let checkpoint = match target {
                    0 => None,
                    _ => crate::engine::checkpoints::lookup(&self.benchmark, self.seed)
                        .and_then(|store| store.nearest_at_or_before(target).cloned()),
                };
                RunResult::StreamPartial(Box::new(StreamAnalysis::run_segment_with(
                    &mut src,
                    slice,
                    StreamConfig::with_budget(*budget_bytes)
                        .with_seed(self.seed)
                        .with_warmup(*warmup),
                    checkpoint.as_ref(),
                    warm_image.as_ref(),
                )))
            }
            Mode::StreamSegmented { segments, warmup, .. } => {
                // A worker handed the parent runs its children
                // sequentially; the scheduler path fans them out instead
                // (`crate::engine::segmented`). One recording pass up
                // front replaces the children's per-segment skip loops
                // and warm-up replays.
                crate::engine::checkpoints::prepare_segments(
                    &self.benchmark,
                    self.seed,
                    self.accesses,
                    *segments,
                    *warmup,
                );
                let children = crate::engine::segmented::children(self)
                    .expect("StreamSegmented always has children");
                let partials: Vec<_> = children
                    .iter()
                    .map(|child| match child.execute() {
                        RunResult::StreamPartial(p) => *p,
                        other => panic!("segment child produced a {} result", other.kind()),
                    })
                    .collect();
                RunResult::Stream(
                    ltc_analysis::merge_partials(&partials)
                        .expect("same-spec partials always share a shape"),
                )
            }
        }
    }

    fn build_source(&self) -> ltc_trace::BoxedSource {
        suite::by_name(&self.benchmark)
            .unwrap_or_else(|| panic!("unknown benchmark {}", self.benchmark))
            .build(self.seed)
    }
}

impl Serialize for RunSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("model_version".to_string(), Value::U64(u64::from(self.model_version))),
            ("benchmark".to_string(), self.benchmark.to_value()),
            ("predictor".to_string(), self.predictor.to_value()),
            ("mode".to_string(), self.mode.to_value()),
            ("accesses".to_string(), Value::U64(self.accesses)),
            ("seed".to_string(), Value::U64(self.seed)),
        ])
    }
}

impl<'de> Deserialize<'de> for RunSpec {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(RunSpec {
            // A missing field (pre-versioning artifacts) is an error, so
            // old cache files degrade to misses rather than aliasing the
            // current model.
            model_version: serde::field(value, "model_version", "RunSpec")?,
            benchmark: serde::field(value, "benchmark", "RunSpec")?,
            predictor: serde::field(value, "predictor", "RunSpec")?,
            mode: serde::field(value, "mode", "RunSpec")?,
            accesses: serde::field(value, "accesses", "RunSpec")?,
            seed: serde::field(value, "seed", "RunSpec")?,
        })
    }
}

/// The label suffix for a non-default segment warm-up (empty for the
/// default, keeping established labels stable).
fn warm_suffix(warmup: u64) -> String {
    if warmup == ltc_analysis::SEGMENT_WARMUP {
        String::new()
    } else {
        format!(",warm {warmup}")
    }
}

/// FNV-1a 64-bit hash (stable across platforms and runs, unlike
/// `DefaultHasher`), used to name artifact files.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_json() {
        let specs = [
            RunSpec::coverage("galgel", PredictorKind::LtCords, 100_000, 1),
            RunSpec::coverage("art", PredictorKind::DbcpBytes(2 << 20), 50_000, 3),
            RunSpec::timing("mcf", PredictorKind::BigL2, 30_000, 2),
            RunSpec::dead_time("swim", 25_000, 1),
            RunSpec::correlation("gcc", 25_000, 1),
            RunSpec::ordering("gcc", 25_000, 1),
            RunSpec::multiprog("gcc", Some("mcf"), PredictorKind::LtCords, 40_000, 1),
            RunSpec::multiprog("gcc", None, PredictorKind::LtCords, 40_000, 1),
            RunSpec::stream("mcf", 256 << 10, 60_000, 1),
            RunSpec::stream_segment("mcf", 256 << 10, 4, 2, 60_000, 1),
            RunSpec::stream_segment("mcf", 256 << 10, 4, 2, 60_000, 1).with_stream_warmup(9_000),
            RunSpec::stream_segmented("mcf", 256 << 10, 4, 60_000, 1),
            RunSpec::stream_segmented("mcf", 256 << 10, 4, 60_000, 1).with_stream_warmup(9_000),
            RunSpec::coverage("art", PredictorKind::SketchDbcp(128 << 10), 50_000, 2),
            RunSpec::coverage(
                "em3d",
                PredictorKind::LtCordsWith(LtCordsConfig::fig9_sweep(4096)),
                80_000,
                1,
            ),
        ];
        for spec in &specs {
            let parsed: RunSpec = serde_json::from_str(&spec.key()).expect("parses");
            assert_eq!(&parsed, spec, "round trip must be lossless: {}", spec.key());
        }
    }

    #[test]
    fn distinct_specs_have_distinct_keys() {
        let base = RunSpec::coverage("galgel", PredictorKind::LtCords, 100_000, 1);
        let variants = [
            RunSpec::coverage("galgel", PredictorKind::LtCords, 100_000, 2),
            RunSpec::coverage("galgel", PredictorKind::LtCords, 100_001, 1),
            RunSpec::coverage("galgel", PredictorKind::Dbcp2Mb, 100_000, 1),
            RunSpec::coverage("mcf", PredictorKind::LtCords, 100_000, 1),
            RunSpec::timing("galgel", PredictorKind::LtCords, 100_000, 1),
        ];
        for v in &variants {
            assert_ne!(base.key(), v.key());
        }
    }

    #[test]
    fn model_version_is_part_of_the_key() {
        let a = RunSpec::coverage("gzip", PredictorKind::Baseline, 1_000, 1);
        assert_eq!(a.model_version, MODEL_VERSION);
        let mut b = a.clone();
        b.model_version += 1;
        assert_ne!(a.key(), b.key());
        assert_ne!(a.hash_hex(), b.hash_hex());
        let parsed: RunSpec = serde_json::from_str(&b.key()).expect("parses");
        assert_eq!(parsed, b);
    }

    #[test]
    fn unversioned_spec_json_no_longer_parses() {
        // A pre-versioning artifact's stored spec must fail to parse, so
        // the cache load degrades to a miss instead of serving stale
        // model output.
        let legacy = r#"{"benchmark":"gzip","predictor":"baseline","mode":"coverage","accesses":1000,"seed":1}"#;
        assert!(serde_json::from_str::<RunSpec>(legacy).is_err());
    }

    #[test]
    fn stream_budget_is_part_of_the_key() {
        let a = RunSpec::stream("gzip", 128 << 10, 1000, 1);
        let b = RunSpec::stream("gzip", 256 << 10, 1000, 1);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.hash_hex(), b.hash_hex());
        let sketch_a = RunSpec::coverage("gzip", PredictorKind::SketchDbcp(64 << 10), 1000, 1);
        let sketch_b = RunSpec::coverage("gzip", PredictorKind::SketchDbcp(32 << 10), 1000, 1);
        assert_ne!(sketch_a.key(), sketch_b.key());
    }

    #[test]
    fn segment_count_and_index_are_part_of_the_key() {
        // The artifact-cache regression the segmented modes were designed
        // around: `--segments 4` and `--segments 8` runs (and each slice
        // within them) must never alias one another — or the unsegmented
        // stream run.
        let four = RunSpec::stream_segmented("gzip", 64 << 10, 4, 1000, 1);
        let eight = RunSpec::stream_segmented("gzip", 64 << 10, 8, 1000, 1);
        assert_ne!(four.key(), eight.key());
        assert_ne!(four.hash_hex(), eight.hash_hex());
        assert_ne!(four.key(), RunSpec::stream("gzip", 64 << 10, 1000, 1).key());

        let slice_a = RunSpec::stream_segment("gzip", 64 << 10, 4, 0, 1000, 1);
        let slice_b = RunSpec::stream_segment("gzip", 64 << 10, 4, 1, 1000, 1);
        let slice_other_split = RunSpec::stream_segment("gzip", 64 << 10, 8, 0, 1000, 1);
        assert_ne!(slice_a.key(), slice_b.key(), "segment index must key");
        assert_ne!(slice_a.key(), slice_other_split.key(), "segment count must key");
        assert_ne!(slice_a.hash_hex(), slice_other_split.hash_hex());
        assert_ne!(slice_a.key(), four.key(), "child and parent must not alias");
    }

    #[test]
    fn segment_warmup_is_part_of_the_key() {
        let child = RunSpec::stream_segment("gzip", 64 << 10, 4, 1, 1000, 1);
        let rewarmed = child.clone().with_stream_warmup(50_000);
        assert_ne!(child.key(), rewarmed.key());
        assert_ne!(child.hash_hex(), rewarmed.hash_hex());
        let parsed: RunSpec = serde_json::from_str(&rewarmed.key()).expect("parses");
        assert_eq!(parsed, rewarmed);

        let parent = RunSpec::stream_segmented("gzip", 64 << 10, 4, 1000, 1);
        assert_ne!(parent.key(), parent.clone().with_stream_warmup(50_000).key());

        // Labels surface only non-default warm-ups, keeping the
        // established default labels stable.
        assert!(!child.label().contains("warm"));
        assert!(rewarmed.label().contains("warm 50000"));

        // Warm-up only applies to stream-segment modes.
        let coverage = RunSpec::coverage("gzip", PredictorKind::Baseline, 1000, 1);
        assert_eq!(coverage.clone().with_stream_warmup(5).key(), coverage.key());

        // A pre-warm-up-field artifact spec must fail to parse, so stale
        // cache entries degrade to misses instead of aliasing.
        let legacy = r#"{"model_version":4,"benchmark":"gzip","predictor":"baseline","mode":{"stream-segment":{"budget_bytes":65536,"segments":4,"segment":1}},"accesses":1000,"seed":1}"#;
        assert!(serde_json::from_str::<RunSpec>(legacy).is_err());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_segment_rejected() {
        let _ = RunSpec::stream_segment("gzip", 64 << 10, 4, 4, 1000, 1);
    }

    #[test]
    fn multiprog_partner_is_part_of_the_key() {
        let alone = RunSpec::multiprog("gcc", None, PredictorKind::LtCords, 1000, 1);
        let paired = RunSpec::multiprog("gcc", Some("mcf"), PredictorKind::LtCords, 1000, 1);
        assert_ne!(alone.key(), paired.key());
        assert_ne!(alone.hash_hex(), paired.hash_hex());
    }

    #[test]
    fn config_differences_change_the_key() {
        let a = RunSpec::coverage(
            "art",
            PredictorKind::LtCordsWith(LtCordsConfig::fig10_sweep(2 << 20)),
            1000,
            1,
        );
        let b = RunSpec::coverage(
            "art",
            PredictorKind::LtCordsWith(LtCordsConfig::fig10_sweep(4 << 20)),
            1000,
            1,
        );
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
