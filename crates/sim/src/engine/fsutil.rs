//! Crash-safe filesystem primitives shared by the persistent stores.
//!
//! Every on-disk store the engine owns — the `results/` artifact cache,
//! generator checkpoints, warm hierarchy images — goes through
//! [`write_atomic`]: the bytes land in a `<file>.tmp.<pid>` sibling,
//! are fsynced, and only then renamed over the destination. A reader
//! can therefore never observe a truncated file, no matter where the
//! writer was killed. The window that *does* remain — a process dying
//! between write and rename — leaks the tmp file; [`sweep_stale_tmp`]
//! reclaims those on the next startup by deleting tmp files whose
//! embedded pid no longer names a live process.

use std::collections::HashSet;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// The tmp sibling `write_atomic` stages into: `<file name>.tmp.<pid>`.
/// The pid suffix keeps concurrent writers (several schedulers, a
/// scheduler racing its own subprocess workers) off each other's staging
/// files, and lets the sweeper prove a leftover is orphaned.
fn tmp_path(path: &Path) -> PathBuf {
    let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
    path.with_file_name(format!("{name}.tmp.{}", std::process::id()))
}

/// Writes `contents` to `path` atomically and durably: stage into a
/// pid-suffixed tmp sibling, fsync, rename over the destination, then
/// best-effort fsync the parent directory so the rename itself survives
/// a crash.
///
/// # Errors
///
/// Returns any filesystem error; on failure the tmp file is removed so
/// an I/O error cannot itself leak staging files.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let staged = File::create(&tmp).and_then(|mut file| {
        file.write_all(contents)?;
        file.sync_all()
    });
    if let Err(e) = staged.and_then(|()| fs::rename(&tmp, path)) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Durability of the rename needs the directory entry flushed too;
    // failure here is not a torn file, so it stays best-effort.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Parses the pid out of a `*.tmp.<pid>` file name.
fn stale_tmp_pid(name: &str) -> Option<u32> {
    let (stem, pid) = name.rsplit_once('.')?;
    if !stem.ends_with(".tmp") {
        return None;
    }
    pid.parse().ok()
}

/// Whether `pid` names a live process. Conservative on platforms
/// without `/proc`: every foreign pid is presumed alive, so nothing is
/// swept there and the leak (bounded, tiny JSON files) persists rather
/// than risking a racing writer's staging file.
fn process_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Deletes orphaned `*.tmp.<pid>` staging files in `dir` — leftovers
/// from a process that died between `write_atomic`'s write and rename.
/// Only files whose embedded pid is provably dead are removed; our own
/// and live processes' staging files are untouched. A missing `dir` is
/// a no-op. When anything is swept, one `stale_tmp` telemetry warning
/// reports the count (falling back to stderr without a subscriber).
///
/// # Errors
///
/// Returns directory-enumeration errors; individual remove failures
/// (a racing sweeper) are ignored.
pub fn sweep_stale_tmp(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut removed = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(stale_tmp_pid) else { continue };
        if pid == std::process::id() || process_alive(pid) {
            continue;
        }
        if fs::remove_file(entry.path()).is_ok() {
            removed.push(entry.path());
        }
    }
    if !removed.is_empty() {
        ltc_telemetry::warning(
            "stale_tmp",
            &format!(
                "swept {} orphaned tmp file(s) from {} (a previous process died mid-write)",
                removed.len(),
                dir.display()
            ),
            vec![
                ("dir".to_string(), dir.display().to_string().into()),
                ("count".to_string(), (removed.len() as u64).into()),
            ],
        );
    }
    Ok(removed)
}

/// Runs [`sweep_stale_tmp`] at most once per directory per process —
/// store lookups call this on their hot paths, so repeat calls must be
/// one lock + hash probe. Sweep errors are swallowed: reclaiming leaked
/// tmp files must never fail a run.
pub fn sweep_once(dir: &Path) {
    static SWEPT: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    let mut swept =
        SWEPT.get_or_init(Mutex::default).lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if swept.insert(dir.to_path_buf()) {
        let _ = sweep_stale_tmp(dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ltc-fsutil-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_round_trips_and_overwrites() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No staging file survives a successful write.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_dead_pid_tmp_files() {
        let dir = tmp_dir("sweep");
        // No pid this large exists (kernel pid_max caps well below u32::MAX).
        fs::write(dir.join("a.json.tmp.4294000000"), b"orphan").unwrap();
        fs::write(dir.join(format!("b.json.tmp.{}", std::process::id())), b"ours").unwrap();
        fs::write(dir.join("c.json.tmp.1"), b"init is alive").unwrap();
        fs::write(dir.join("d.json"), b"real artifact").unwrap();
        let removed = sweep_stale_tmp(&dir).unwrap();
        assert_eq!(removed.len(), 1);
        assert!(removed[0].ends_with("a.json.tmp.4294000000"));
        assert!(!dir.join("a.json.tmp.4294000000").exists());
        assert!(dir.join(format!("b.json.tmp.{}", std::process::id())).exists());
        assert!(dir.join("c.json.tmp.1").exists());
        assert!(dir.join("d.json").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_emits_a_stale_tmp_warning() {
        let dir = tmp_dir("warn");
        fs::write(dir.join("x.json.tmp.4294000001"), b"orphan").unwrap();
        let capture = std::sync::Arc::new(ltc_telemetry::Capture::new());
        ltc_telemetry::with_subscriber(capture.clone(), || {
            sweep_stale_tmp(&dir).unwrap();
        });
        let warnings: Vec<_> =
            capture.events().into_iter().filter(|e| e.name == "stale_tmp").collect();
        assert_eq!(warnings.len(), 1);
        assert_eq!(
            warnings[0].field("count"),
            Some(&ltc_telemetry::FieldValue::U64(1)),
            "{warnings:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_a_noop() {
        let dir = tmp_dir("missing");
        fs::remove_dir_all(&dir).unwrap();
        assert!(sweep_stale_tmp(&dir).unwrap().is_empty());
        sweep_once(&dir);
    }

    #[test]
    fn tmp_names_parse_back_to_pids() {
        assert_eq!(stale_tmp_pid("a.json.tmp.123"), Some(123));
        assert_eq!(stale_tmp_pid("ckpt_gzip_1.tmp.7"), Some(7));
        assert_eq!(stale_tmp_pid("a.json"), None);
        assert_eq!(stale_tmp_pid("a.tmp.notapid"), None);
        assert_eq!(stale_tmp_pid("tmp.9"), None);
    }
}
