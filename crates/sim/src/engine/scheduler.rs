//! Spec planning: collection, dedup, and cache probing.
//!
//! The [`Scheduler`] owns the *plan* — what must run — and delegates the
//! *execution* to whichever [`crate::engine::backend::ExecutionBackend`]
//! the [`EngineOptions`] select. Artifact persistence and progress
//! reporting hook into execution through a [`RunObserver`] implemented
//! here, so they behave identically across backends.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use std::collections::HashMap;

use crate::engine::artifact;
use crate::engine::backend::{BackendKind, FaultPolicy, RunObserver};
use crate::engine::checkpoints;
use crate::engine::fsutil;
use crate::engine::progress::{ProgressMode, ProgressSink};
use crate::engine::result::{ResultSet, RunResult};
use crate::engine::segmented;
use crate::engine::spec::{Mode, RunSpec};

/// Execution policy for a [`Scheduler`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads (or worker processes) for the simulation pool.
    pub threads: usize,
    /// Artifact cache directory (`results/`); `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// When `true`, ignore cached artifacts and re-simulate (artifacts are
    /// rewritten, so the cache heals itself after a model change).
    pub force: bool,
    /// Which execution backend runs the cache-missing specs.
    pub backend: BackendKind,
    /// How execution progress is reported (stderr).
    pub progress: ProgressMode,
    /// How worker faults are handled: retry budget, per-spec timeout,
    /// respawn backoff (see [`FaultPolicy`]).
    pub fault: FaultPolicy,
}

impl Default for EngineOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineOptions {
            threads,
            cache_dir: None,
            force: false,
            backend: BackendKind::default(),
            progress: ProgressMode::default(),
            fault: FaultPolicy::default(),
        }
    }
}

impl EngineOptions {
    /// No cache: every spec is simulated (tests, benches).
    pub fn in_memory(threads: usize) -> Self {
        EngineOptions { threads, ..EngineOptions::default() }
    }

    /// With an artifact cache rooted at `dir`.
    pub fn cached(threads: usize, dir: impl Into<PathBuf>) -> Self {
        EngineOptions { threads, cache_dir: Some(dir.into()), ..EngineOptions::default() }
    }

    /// The same options running on `backend`.
    pub fn with_backend(self, backend: BackendKind) -> Self {
        EngineOptions { backend, ..self }
    }

    /// The same options supervised under `fault`.
    pub fn with_fault(self, fault: FaultPolicy) -> Self {
        EngineOptions { fault, ..self }
    }
}

/// Collects [`RunSpec`]s from any number of consumers, dedupes them, and
/// executes the unique set once.
///
/// Duplicate requests are the normal case, not an error: every figure
/// declares the full set of runs it needs, and overlapping needs (table 3
/// and figure 12 both want `timing/*/lt-cords`, every timing figure wants
/// the baselines) collapse to single executions here.
#[derive(Debug, Default)]
pub struct Scheduler {
    requests: Vec<RunSpec>,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Requests one run.
    pub fn request(&mut self, spec: RunSpec) {
        self.requests.push(spec);
    }

    /// Requests a batch of runs.
    pub fn request_all(&mut self, specs: impl IntoIterator<Item = RunSpec>) {
        self.requests.extend(specs);
    }

    /// Total requests received (duplicates included).
    pub fn requested(&self) -> usize {
        self.requests.len()
    }

    /// The deduplicated spec set, in first-seen request order. Dedup is
    /// by reference; only the surviving specs are cloned (once).
    pub fn unique(&self) -> Vec<RunSpec> {
        let mut seen: HashSet<&RunSpec> = HashSet::with_capacity(self.requests.len());
        self.requests.iter().filter(|s| seen.insert(s)).cloned().collect()
    }

    /// Executes the unique spec set and returns a fresh [`ResultSet`].
    ///
    /// # Errors
    ///
    /// Returns any artifact-cache I/O error (a corrupt or mismatched
    /// artifact is treated as a cache miss, not an error) or backend
    /// transport error.
    pub fn execute(&self, opts: &EngineOptions) -> io::Result<ResultSet> {
        let mut results = ResultSet::new();
        self.execute_into(&mut results, opts)?;
        Ok(results)
    }

    /// Executes every unique spec not already present in `results`.
    ///
    /// Cached artifacts satisfy specs without simulation (unless
    /// [`EngineOptions::force`]); the rest go to the selected
    /// [`EngineOptions::backend`], then are written back to the cache.
    /// Figures with result-dependent spec sets call this in rounds.
    ///
    /// Segmented streaming parents ([`crate::engine::Mode::StreamSegmented`])
    /// never reach the backend themselves: a cache-missing parent expands
    /// into its per-segment child specs (which probe the cache
    /// individually), the children execute on the selected backend like
    /// any other spec — in parallel, over the worker protocol for
    /// `subprocess` — and the parent's merged report is reduced from
    /// their partial summaries and persisted under the parent's own key.
    ///
    /// # Errors
    ///
    /// Returns any artifact-cache I/O error, backend transport error, or
    /// segment-reduce error (shape-mismatched partials).
    pub fn execute_into(&self, results: &mut ResultSet, opts: &EngineOptions) -> io::Result<()> {
        let unique = self.unique();
        let plan_span = ltc_telemetry::span("scheduler.plan", Vec::new());
        ltc_telemetry::counter("scheduler.requested", self.requests.len() as u64);
        ltc_telemetry::counter("scheduler.deduped", (self.requests.len() - unique.len()) as u64);
        let hits_before = results.cache_hits;
        let pending: Vec<RunSpec> = unique.into_iter().filter(|s| !results.contains(s)).collect();

        let mut to_run = Vec::new();
        let mut queued: HashSet<RunSpec> = HashSet::new();
        let mut parents = Vec::new();
        for spec in pending {
            // A parent's expansion below may have satisfied this spec
            // (a directly-requested child) after `pending` was computed;
            // loading it again would double-count the cache hit.
            if results.contains(&spec) {
                continue;
            }
            let cached = match &opts.cache_dir {
                Some(dir) if !opts.force => artifact::load(dir, &spec)?,
                _ => None,
            };
            cache_probe(&spec, cached.is_some());
            match cached {
                Some(result) => {
                    results.cache_hits += 1;
                    results.insert(spec, result);
                }
                None => match segmented::children(&spec) {
                    Some(children) => {
                        for child in children {
                            if results.contains(&child) || queued.contains(&child) {
                                continue;
                            }
                            let cached = match &opts.cache_dir {
                                Some(dir) if !opts.force => artifact::load(dir, &child)?,
                                _ => None,
                            };
                            cache_probe(&child, cached.is_some());
                            match cached {
                                Some(result) => {
                                    results.cache_hits += 1;
                                    results.insert(child, result);
                                }
                                None => {
                                    queued.insert(child.clone());
                                    to_run.push(child);
                                }
                            }
                        }
                        parents.push(spec);
                    }
                    // A child spec requested directly may already be
                    // queued (or cache-satisfied) by its parent's
                    // expansion above, and vice versa.
                    None if !queued.contains(&spec) && !results.contains(&spec) => {
                        queued.insert(spec.clone());
                        to_run.push(spec);
                    }
                    None => {}
                },
            }
        }
        let pass_hits = results.cache_hits - hits_before;
        ltc_telemetry::counter("scheduler.cache_hits", pass_hits);
        plan_span.end_with(vec![
            ("cache_hits".to_string(), pass_hits.into()),
            ("to_run".to_string(), (to_run.len() as u64).into()),
        ]);

        // Record generator checkpoints and warm hierarchy images once per
        // trace before the backend fans segment workers out: one O(trace)
        // recording pass replaces every worker's O(start) skip loop, and
        // one warm-up replay per slice start replaces every worker's
        // O(warm-up) cache rebuild. In-process backends find the stores
        // in the process registry; subprocess workers read them from
        // `LTC_CHECKPOINT_DIR` when set. With warm images enabled the
        // generator checkpoints land at the slice starts themselves (the
        // image covers the window before); with `LTC_NO_WARM_IMAGES` set
        // they land at the pre-warm-up points and workers replay.
        let warm_enabled = !checkpoints::warm_images_disabled();
        let mut seek_targets: HashMap<(&str, u64), Vec<u64>> = HashMap::new();
        let mut warm_starts: HashMap<(&str, u64, u64), Vec<u64>> = HashMap::new();
        for spec in &to_run {
            if let Mode::StreamSegment { segments, segment, warmup, .. } = spec.mode {
                let start = ltc_trace::TraceSegment::nth(spec.accesses, segments, segment).start;
                if start == 0 {
                    continue;
                }
                let group = seek_targets.entry((&spec.benchmark, spec.seed)).or_default();
                let target = start - start.min(warmup);
                if target > 0 {
                    group.push(target);
                }
                if warm_enabled {
                    group.push(start);
                    warm_starts
                        .entry((&spec.benchmark, spec.seed, warmup))
                        .or_default()
                        .push(start);
                }
            }
        }
        let seek_span = ltc_telemetry::span("scheduler.checkpoints", Vec::new());
        if !seek_targets.is_empty() {
            // Default the on-disk hand-off next to the artifact cache so
            // subprocess workers inherit populated stores without the
            // caller exporting LTC_CHECKPOINT_DIR themselves.
            if std::env::var_os(checkpoints::CHECKPOINT_DIR_ENV).is_none() {
                if let Some(dir) = &opts.cache_dir {
                    std::env::set_var(checkpoints::CHECKPOINT_DIR_ENV, dir.join("checkpoints"));
                }
            }
            for ((benchmark, seed, warmup), starts) in &warm_starts {
                checkpoints::ensure_warm(benchmark, *seed, *warmup, starts);
            }
            for ((benchmark, seed), targets) in &seek_targets {
                checkpoints::ensure(benchmark, *seed, targets);
            }
        }
        seek_span.end_with(vec![("traces".to_string(), (seek_targets.len() as u64).into())]);

        // Each artifact persists from the worker that produced it (via
        // the observer), not after the backend returns: an interrupted
        // long run then keeps every completed simulation, making reruns
        // genuinely incremental — whichever backend ran them. The first
        // write error is carried out and reported after results are
        // collected.
        if let Some(dir) = &opts.cache_dir {
            std::fs::create_dir_all(dir)?;
            // Reclaim staging files leaked by a previous process that
            // died between write and rename (once per dir per process).
            fsutil::sweep_once(dir);
        }
        let backend = opts.backend.build(opts.threads, &opts.fault);
        ltc_telemetry::point(
            "run_begin",
            vec![
                ("total".to_string(), (to_run.len() as u64).into()),
                ("backend".to_string(), backend.name().into()),
            ],
        );
        let execute_span = ltc_telemetry::span("scheduler.execute", Vec::new());
        let sink = opts.progress.sink();
        sink.begin(to_run.len());
        let store_error: Mutex<Option<io::Error>> = Mutex::new(None);
        let observer = PersistingObserver {
            cache_dir: opts.cache_dir.as_deref(),
            store_error: &store_error,
            sink: sink.as_ref(),
        };
        let outcomes = backend.execute(&to_run, &observer);
        sink.end();
        execute_span.end_with(vec![("specs".to_string(), (to_run.len() as u64).into())]);
        let outcomes = outcomes.map_err(io::Error::from)?;
        ltc_telemetry::point(
            "run_end",
            vec![("completed".to_string(), (to_run.len() as u64).into())],
        );
        ltc_telemetry::counter("scheduler.simulated", to_run.len() as u64);
        for (spec, result) in to_run.into_iter().zip(outcomes) {
            results.simulated += 1;
            results.insert(spec, result);
        }
        // Reduce each segmented parent from its children's partial
        // summaries and persist the merged report under the parent's own
        // key, so the next pass serves the parent without touching the
        // children. The reduce itself is not a simulation — the counters
        // already reflect the child executions.
        for parent in parents {
            let merged = segmented::reduce(&parent, results)?;
            if let Some(dir) = &opts.cache_dir {
                artifact::store(dir, &parent, &merged)?;
            }
            results.insert(parent, merged);
        }
        match store_error.into_inner().expect("store-error lock") {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Loads every unique spec not in `results` from the cache **without
    /// simulating**; returns the specs that remained unsatisfied (for
    /// `ltsim render`, which must not silently recompute).
    ///
    /// # Errors
    ///
    /// Returns any artifact-cache I/O error.
    pub fn load_into(
        &self,
        results: &mut ResultSet,
        dir: &std::path::Path,
    ) -> io::Result<Vec<RunSpec>> {
        let mut missing = Vec::new();
        for spec in self.unique() {
            if results.contains(&spec) {
                continue;
            }
            match artifact::load(dir, &spec)? {
                Some(result) => {
                    results.cache_hits += 1;
                    results.insert(spec, result);
                }
                None => missing.push(spec),
            }
        }
        Ok(missing)
    }
}

/// Emits one `cache_probe` telemetry point per planned spec, recording
/// whether the artifact cache satisfied it. Probe outcomes depend only on
/// the plan and the cache, never on the backend, so comparing the
/// `cache_probe` streams of two runs checks backend equivalence.
fn cache_probe(spec: &RunSpec, hit: bool) {
    if ltc_telemetry::enabled() {
        ltc_telemetry::point(
            "cache_probe",
            vec![("label".to_string(), spec.label().into()), ("hit".to_string(), hit.into())],
        );
    }
}

/// The scheduler's [`RunObserver`]: persists each finished run to the
/// artifact cache from the worker that produced it, and forwards events
/// to the progress sink.
struct PersistingObserver<'a> {
    cache_dir: Option<&'a Path>,
    store_error: &'a Mutex<Option<io::Error>>,
    sink: &'a dyn ProgressSink,
}

impl RunObserver for PersistingObserver<'_> {
    fn started(&self, spec: &RunSpec) {
        self.sink.spec_started(spec);
    }

    fn finished(&self, spec: &RunSpec, result: &RunResult, elapsed: Duration) {
        if let Some(dir) = self.cache_dir {
            if let Err(e) = artifact::store(dir, spec, result) {
                self.store_error.lock().expect("store-error lock").get_or_insert(e);
            }
        }
        self.sink.spec_finished(spec, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PredictorKind;

    fn tiny(bench: &str, seed: u64) -> RunSpec {
        RunSpec::coverage(bench, PredictorKind::Baseline, 4_000, seed)
    }

    #[test]
    fn duplicate_requests_collapse() {
        let mut s = Scheduler::new();
        s.request(tiny("gzip", 1));
        s.request(tiny("mesa", 1));
        s.request(tiny("gzip", 1));
        assert_eq!(s.requested(), 3);
        assert_eq!(s.unique().len(), 2);
        let results = s.execute(&EngineOptions::in_memory(2)).unwrap();
        assert_eq!(results.simulated(), 2);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn unique_preserves_first_seen_order() {
        let mut s = Scheduler::new();
        for bench in ["mcf", "art", "gzip", "art", "mcf"] {
            s.request(tiny(bench, 1));
        }
        let order: Vec<String> = s.unique().into_iter().map(|s| s.benchmark).collect();
        assert_eq!(order, ["mcf", "art", "gzip"]);
    }

    #[test]
    fn execute_into_skips_present_results() {
        let mut s = Scheduler::new();
        s.request(tiny("gzip", 1));
        let opts = EngineOptions::in_memory(1);
        let mut results = s.execute(&opts).unwrap();
        assert_eq!(results.simulated(), 1);
        // Re-executing the same request set does nothing new.
        s.execute_into(&mut results, &opts).unwrap();
        assert_eq!(results.simulated(), 1);
    }

    #[test]
    fn execute_honours_the_selected_backend() {
        let mut s = Scheduler::new();
        s.request(tiny("gzip", 1));
        s.request(tiny("mesa", 1));
        let opts = EngineOptions::in_memory(2).with_backend(BackendKind::Sharded);
        let results = s.execute(&opts).unwrap();
        assert_eq!(results.simulated(), 2);
        assert!(results.coverage(&tiny("gzip", 1)).base_l1_misses > 0);
    }

    #[test]
    fn engine_runs_emit_scheduler_and_spec_events() {
        use ltc_telemetry::{Capture, EventKind};
        // Backend workers run on their own threads, so a thread-local
        // subscriber cannot see their events: install globally. Other
        // tests executing engines concurrently may emit into the capture
        // too, so assertions filter by this test's unique spec labels
        // (the 4001/4002-access coverage runs exist nowhere else) and use
        // lower bounds for unattributable counters.
        let spec_a = RunSpec::coverage("gzip", PredictorKind::Baseline, 4_001, 1);
        let spec_b = RunSpec::coverage("mesa", PredictorKind::Baseline, 4_002, 1);
        let capture = std::sync::Arc::new(Capture::new());
        let token = ltc_telemetry::install(capture.clone());
        let mut s = Scheduler::new();
        s.request(spec_a.clone());
        s.request(spec_a.clone()); // dedup fodder
        s.request(spec_b.clone());
        let results = s.execute(&EngineOptions::in_memory(2)).unwrap();
        ltc_telemetry::uninstall(token);
        assert_eq!(results.simulated(), 2);

        let events = capture.events();
        let mine = |label: &str| {
            events
                .iter()
                .filter(|e| e.field("label").and_then(|f| f.as_str()) == Some(label))
                .count()
        };
        for spec in [&spec_a, &spec_b] {
            let label = spec.label();
            // One cache probe (a miss: no cache dir) and one spec span
            // begin/end pair per unique spec.
            let probes: Vec<_> = events
                .iter()
                .filter(|e| {
                    e.name == "cache_probe"
                        && e.field("label").and_then(|f| f.as_str()) == Some(label.as_str())
                })
                .collect();
            assert_eq!(probes.len(), 1, "{label}");
            assert_eq!(probes[0].field("hit"), Some(&ltc_telemetry::FieldValue::Bool(false)));
            assert!(mine(&label) >= 3, "probe + span begin/end for {label}");
            let ends: Vec<_> = events
                .iter()
                .filter(|e| {
                    e.kind == EventKind::SpanEnd
                        && e.name == "spec"
                        && e.field("label").and_then(|f| f.as_str()) == Some(label.as_str())
                })
                .collect();
            assert_eq!(ends.len(), 1, "{label}");
            let end = ends[0];
            assert!(end.span.is_some(), "spec span ends carry their span id");
            assert!(end.worker.is_some(), "spec spans are stamped with a worker id");
            assert!(end.field("queue_wait_us").is_some());
            assert!(end.field("run_us").is_some());
        }
        // Scheduler lifecycle events exist (≥, in case a concurrent test
        // also ran an engine while the capture was installed).
        for name in ["run_begin", "run_end"] {
            assert!(events.iter().any(|e| e.name == name), "{name} missing");
        }
        for name in ["scheduler.requested", "scheduler.deduped", "scheduler.simulated"] {
            assert!(
                events.iter().any(|e| e.kind == EventKind::Counter && e.name == name),
                "{name} missing"
            );
        }
        let plan_ends = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd && e.name == "scheduler.plan")
            .count();
        assert!(plan_ends >= 1, "planning span closed");
    }
}
