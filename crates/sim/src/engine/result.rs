//! Typed run results and the spec-keyed result set.

use std::collections::HashMap;

use ltc_analysis::{
    CorrelationAnalysis, CoverageReport, DeadTimeTracker, LastTouchOrderAnalysis, StreamPartial,
    StreamReport,
};
use ltc_timing::TimingReport;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::engine::spec::RunSpec;
use crate::experiment::MultiProgReport;

/// The result of executing one [`RunSpec`], tagged by mode.
#[derive(Debug, Clone, PartialEq)]
pub enum RunResult {
    /// A coverage report ([`crate::engine::Mode::Coverage`]).
    Coverage(CoverageReport),
    /// A timing report ([`crate::engine::Mode::Timing`]).
    Timing(TimingReport),
    /// A dead-time measurement ([`crate::engine::Mode::DeadTime`]).
    DeadTime(DeadTimeTracker),
    /// A correlation study ([`crate::engine::Mode::Correlation`]).
    Correlation(CorrelationAnalysis),
    /// An ordering study ([`crate::engine::Mode::Ordering`]).
    Ordering(LastTouchOrderAnalysis),
    /// A multi-programmed run ([`crate::engine::Mode::MultiProg`]).
    MultiProg(MultiProgReport),
    /// A streaming sketch analysis ([`crate::engine::Mode::Stream`] or
    /// the merged report of a [`crate::engine::Mode::StreamSegmented`]
    /// run).
    Stream(StreamReport),
    /// One worker's partial summary of a trace segment
    /// ([`crate::engine::Mode::StreamSegment`]) — serializable sketch
    /// state awaiting the reduce step. Boxed: the sketch snapshot dwarfs
    /// every report variant.
    StreamPartial(Box<StreamPartial>),
}

impl RunResult {
    /// The tag under which this result serializes.
    pub fn kind(&self) -> &'static str {
        match self {
            RunResult::Coverage(_) => "coverage",
            RunResult::Timing(_) => "timing",
            RunResult::DeadTime(_) => "dead-time",
            RunResult::Correlation(_) => "correlation",
            RunResult::Ordering(_) => "ordering",
            RunResult::MultiProg(_) => "multiprog",
            RunResult::Stream(_) => "stream",
            RunResult::StreamPartial(_) => "stream-partial",
        }
    }

    /// The coverage report, if this is a coverage result.
    pub fn as_coverage(&self) -> Option<&CoverageReport> {
        match self {
            RunResult::Coverage(r) => Some(r),
            _ => None,
        }
    }

    /// The timing report, if this is a timing result.
    pub fn as_timing(&self) -> Option<&TimingReport> {
        match self {
            RunResult::Timing(r) => Some(r),
            _ => None,
        }
    }
}

impl Serialize for RunResult {
    fn to_value(&self) -> Value {
        let data = match self {
            RunResult::Coverage(r) => r.to_value(),
            RunResult::Timing(r) => r.to_value(),
            RunResult::DeadTime(r) => r.to_value(),
            RunResult::Correlation(r) => r.to_value(),
            RunResult::Ordering(r) => r.to_value(),
            RunResult::MultiProg(r) => r.to_value(),
            RunResult::Stream(r) => r.to_value(),
            RunResult::StreamPartial(r) => r.to_value(),
        };
        Value::Map(vec![
            ("kind".to_string(), Value::Str(self.kind().to_string())),
            ("data".to_string(), data),
        ])
    }
}

impl<'de> Deserialize<'de> for RunResult {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let kind: String = serde::field(value, "kind", "RunResult")?;
        let data = value
            .get("data")
            .ok_or_else(|| DeError("missing field `data` in RunResult".to_string()))?;
        match kind.as_str() {
            "coverage" => Ok(RunResult::Coverage(CoverageReport::from_value(data)?)),
            "timing" => Ok(RunResult::Timing(TimingReport::from_value(data)?)),
            "dead-time" => Ok(RunResult::DeadTime(DeadTimeTracker::from_value(data)?)),
            "correlation" => Ok(RunResult::Correlation(CorrelationAnalysis::from_value(data)?)),
            "ordering" => Ok(RunResult::Ordering(LastTouchOrderAnalysis::from_value(data)?)),
            "multiprog" => Ok(RunResult::MultiProg(MultiProgReport::from_value(data)?)),
            "stream" => Ok(RunResult::Stream(StreamReport::from_value(data)?)),
            "stream-partial" => {
                Ok(RunResult::StreamPartial(Box::new(StreamPartial::from_value(data)?)))
            }
            other => Err(DeError(format!("unknown result kind `{other}`"))),
        }
    }
}

/// Results keyed by [`RunSpec`], with provenance counters.
///
/// Figures read their rows out of the set with the typed accessors, which
/// panic (with the offending spec key) when a result is absent or of the
/// wrong mode — the scheduler contract guarantees presence, so absence is
/// a figure-authoring bug, not a runtime condition.
#[derive(Debug, Default)]
pub struct ResultSet {
    map: HashMap<RunSpec, RunResult>,
    pub(crate) simulated: u64,
    pub(crate) cache_hits: u64,
}

impl ResultSet {
    /// An empty set.
    pub fn new() -> Self {
        ResultSet::default()
    }

    /// Number of results held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Runs actually simulated (cumulative across `execute` calls).
    pub fn simulated(&self) -> u64 {
        self.simulated
    }

    /// Runs served from the artifact cache (cumulative).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Whether a result for `spec` is present.
    pub fn contains(&self, spec: &RunSpec) -> bool {
        self.map.contains_key(spec)
    }

    /// The result for `spec`, if present.
    pub fn get(&self, spec: &RunSpec) -> Option<&RunResult> {
        self.map.get(spec)
    }

    /// Inserts a result (scheduler-internal; counters are updated by the
    /// caller, which knows the provenance).
    pub(crate) fn insert(&mut self, spec: RunSpec, result: RunResult) {
        self.map.insert(spec, result);
    }

    /// Iterates over `(spec, result)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&RunSpec, &RunResult)> {
        self.map.iter()
    }

    fn demand<'a, T>(
        &'a self,
        spec: &RunSpec,
        what: &str,
        pick: impl FnOnce(&'a RunResult) -> Option<&'a T>,
    ) -> &'a T {
        let result =
            self.map.get(spec).unwrap_or_else(|| panic!("missing result for spec {}", spec.key()));
        pick(result).unwrap_or_else(|| {
            panic!("expected a {what} result for spec {} (got {})", spec.key(), result.kind())
        })
    }

    /// The coverage report for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the result is absent or not a coverage result.
    pub fn coverage(&self, spec: &RunSpec) -> &CoverageReport {
        self.demand(spec, "coverage", RunResult::as_coverage)
    }

    /// The timing report for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the result is absent or not a timing result.
    pub fn timing(&self, spec: &RunSpec) -> &TimingReport {
        self.demand(spec, "timing", RunResult::as_timing)
    }

    /// The dead-time measurement for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the result is absent or of the wrong mode.
    pub fn dead_time(&self, spec: &RunSpec) -> &DeadTimeTracker {
        self.demand(spec, "dead-time", |r| match r {
            RunResult::DeadTime(d) => Some(d),
            _ => None,
        })
    }

    /// The correlation study for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the result is absent or of the wrong mode.
    pub fn correlation(&self, spec: &RunSpec) -> &CorrelationAnalysis {
        self.demand(spec, "correlation", |r| match r {
            RunResult::Correlation(c) => Some(c),
            _ => None,
        })
    }

    /// The ordering study for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the result is absent or of the wrong mode.
    pub fn ordering(&self, spec: &RunSpec) -> &LastTouchOrderAnalysis {
        self.demand(spec, "ordering", |r| match r {
            RunResult::Ordering(o) => Some(o),
            _ => None,
        })
    }

    /// The multi-programmed report for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the result is absent or of the wrong mode.
    pub fn multiprog(&self, spec: &RunSpec) -> &MultiProgReport {
        self.demand(spec, "multiprog", |r| match r {
            RunResult::MultiProg(m) => Some(m),
            _ => None,
        })
    }

    /// The streaming sketch report for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the result is absent or of the wrong mode.
    pub fn stream(&self, spec: &RunSpec) -> &StreamReport {
        self.demand(spec, "stream", |r| match r {
            RunResult::Stream(s) => Some(s),
            _ => None,
        })
    }

    /// The partial segment summary for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the result is absent or of the wrong mode.
    pub fn stream_partial(&self, spec: &RunSpec) -> &StreamPartial {
        self.demand(spec, "stream-partial", |r| match r {
            RunResult::StreamPartial(p) => Some(p),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PredictorKind;

    #[test]
    fn result_round_trips_through_json() {
        let r = RunResult::Coverage(CoverageReport {
            predictor: "lt-cords".into(),
            accesses: 100,
            base_l1_misses: 10,
            correct: 6,
            ..Default::default()
        });
        let parsed: RunResult = serde_json::from_str(&serde_json::to_string(&r)).unwrap();
        assert_eq!(parsed, r);

        let m = RunResult::MultiProg(MultiProgReport { focus_misses: 8, eliminated: 4 });
        let parsed: RunResult = serde_json::from_str(&serde_json::to_string(&m)).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    #[should_panic(expected = "expected a timing result")]
    fn typed_accessor_rejects_wrong_mode() {
        let spec = RunSpec::coverage("gzip", PredictorKind::Baseline, 10, 1);
        let mut rs = ResultSet::new();
        rs.insert(spec.clone(), RunResult::Coverage(CoverageReport::default()));
        let _ = rs.timing(&spec);
    }
}
