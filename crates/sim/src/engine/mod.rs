//! The unified experiment engine.
//!
//! The paper's evaluation is one matrix — benchmark × predictor × mode ×
//! budget × seed — but the figure binaries used to re-run overlapping
//! simulations independently. The engine turns every experiment into a
//! declarative [`RunSpec`] key, collects the specs every requested figure
//! needs, dedupes them, executes the unique set once across a bounded
//! worker pool, and hands each figure a [`ResultSet`] to assemble its
//! table from:
//!
//! 1. [`spec`] — [`RunSpec`]: the canonical experiment key and its
//!    execution dispatch. Serialization is canonical and injective, so a
//!    spec's compact JSON doubles as its dedup and cache key — and as the
//!    wire format of the subprocess worker protocol. The key embeds
//!    [`spec::MODEL_VERSION`] so artifacts from older model behaviour
//!    self-detect as stale.
//! 2. [`scheduler`] — [`Scheduler`]: spec collection, dedup (first-seen
//!    order), and artifact-cache consultation — the *plan*.
//! 3. [`backend`] — [`ExecutionBackend`]: the *execution*, pluggable
//!    behind the scheduler seam: a scoped-thread pool, a work-stealing
//!    sharded pool, or a pool of `ltsim worker` subprocesses speaking
//!    JSON lines.
//! 4. [`progress`] — [`ProgressSink`]: live completed/total, per-spec
//!    timing and ETA reporting threaded through every backend.
//! 5. [`result`] — [`RunResult`]/[`ResultSet`]: typed results keyed by
//!    spec, with provenance counters (simulated vs served from cache).
//! 6. [`artifact`] — the `results/` cache: one JSON line per run, named
//!    by the spec's FNV-1a hash, plus JSON/CSV export helpers.
//! 7. [`segmented`] — fan-out/reduce for segmented streaming runs: a
//!    `stream-segmented` spec expands to per-segment child specs before
//!    backend dispatch and its report is merged from their partial
//!    summaries.
//! 8. [`checkpoints`] — shared generator checkpoints: the scheduler
//!    records each segment worker's pre-warm-up position once per
//!    `(benchmark, seed)` so workers restore a snapshot instead of
//!    regenerating an O(start) prefix (on-disk hand-off to subprocess
//!    workers via `LTC_CHECKPOINT_DIR`).
//! 9. [`fsutil`] — crash-safe persistence shared by the stores above:
//!    every on-disk write stages into a pid-suffixed tmp file, fsyncs,
//!    and renames; startup sweeps staging files leaked by dead
//!    processes.
//!
//! Execution is *supervised*: every backend runs under a [`FaultPolicy`]
//! (retry budget, per-spec timeout, respawn backoff, and the
//! `LTC_FAULT_INJECT` chaos knob). A panicking worker thread or a dead
//! `ltsim worker` child costs the in-flight spec one attempt and
//! requeues it onto a surviving worker; dead children are respawned
//! with exponential backoff. Since artifacts persist as each spec
//! completes and segment partials are mergeable, re-execution is
//! idempotent — a fault-injected run produces byte-identical artifacts
//! to a clean one. Exhausted budgets surface as typed [`BackendError`]s
//! naming the specs involved instead of panicking the pool.
//!
//! The whole pipeline is instrumented with `ltc_telemetry`: the
//! scheduler emits planning spans, dedup/cache counters, and per-spec
//! `cache_probe` points; every backend wraps each execution in a `spec`
//! span carrying queue-wait vs run time and tags its workers with ids;
//! subprocess children forward their own events over the worker protocol
//! as `{"event":…}` frames interleaved with result lines. With no
//! subscriber installed the instrumentation is inert (one atomic load on
//! the warm paths). [`ProgressSubscriber`] rebuilds every
//! [`ProgressMode`] from that event stream.
//!
//! # Example
//!
//! ```
//! use ltc_sim::engine::{EngineOptions, RunSpec, Scheduler};
//! use ltc_sim::experiment::PredictorKind;
//!
//! let mut sched = Scheduler::new();
//! // Two figures requesting the same run → one execution.
//! let spec = RunSpec::coverage("gzip", PredictorKind::Baseline, 20_000, 1);
//! sched.request(spec.clone());
//! sched.request(spec.clone());
//! let results = sched.execute(&EngineOptions::in_memory(2)).unwrap();
//! assert_eq!(results.simulated(), 1);
//! assert!(results.coverage(&spec).base_l1_misses > 0);
//! ```

pub mod artifact;
pub mod backend;
pub mod checkpoints;
pub mod fsutil;
pub mod progress;
pub mod result;
pub mod scheduler;
pub mod segmented;
pub mod spec;

pub use backend::{
    BackendError, BackendKind, ExecutionBackend, FaultInject, FaultPolicy, NullObserver,
    RunObserver, ShardedBackend, SubprocessBackend, ThreadPoolBackend, FAULT_INJECT_ENV,
};
pub use progress::{NullProgress, ProgressMode, ProgressSink, ProgressSubscriber, TextProgress};
pub use result::{ResultSet, RunResult};
pub use scheduler::{EngineOptions, Scheduler};
pub use spec::{Mode, RunSpec, MODEL_VERSION};
