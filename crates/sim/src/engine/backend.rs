//! Pluggable execution backends with supervised, fault-tolerant workers.
//!
//! The [`crate::engine::Scheduler`] *plans* — collects specs, dedupes
//! them, probes the artifact cache — and hands whatever must actually be
//! simulated to an [`ExecutionBackend`]:
//!
//! * [`ThreadPoolBackend`] — scoped threads claiming specs from a shared
//!   queue in input order. Simple and fair when spec costs are
//!   homogeneous.
//! * [`ShardedBackend`] — work stealing over per-worker deques, with the
//!   estimated-longest specs (timing runs) dealt out first so a straggler
//!   claimed late cannot serialize the tail of the run.
//! * [`SubprocessBackend`] — a pool of `ltsim worker` child processes
//!   speaking newline-delimited JSON ([`RunSpec`] in on stdin,
//!   [`RunResult`] out on stdout). This proves the spec wire format end
//!   to end; pointing the same protocol at a remote transport is the
//!   multi-machine path the ROADMAP names.
//!
//! Every backend runs under the same supervision discipline, governed by
//! a [`FaultPolicy`]: a spec whose attempt dies — a panicking worker
//! thread in the in-process pools, a child that exits, breaks the
//! protocol, or exceeds [`FaultPolicy::spec_timeout`] in the subprocess
//! pool — is requeued onto a surviving worker until its retry budget is
//! spent. Dead children are respawned with exponential backoff. Because
//! artifacts persist through the [`RunObserver`] as each spec completes
//! and segment partials are mergeable summaries, re-executing a lost
//! spec is idempotent by construction; the supervisor only supplies the
//! retry mechanics. When the budget is exhausted (or every worker is
//! gone) execution fails with a typed [`BackendError`] naming the specs
//! involved instead of panicking the pool. Fault paths emit structured
//! telemetry — `spec.retry` / `spec.timeout` points, `worker.respawn`
//! points, and `outcome`-tagged `spec` span ends — so `ltsim events
//! summarize` can report a fault histogram.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::panic::AssertUnwindSafe;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use ltc_telemetry::{Event, EventKind, FieldValue};
use serde::Value;

use crate::engine::result::RunResult;
use crate::engine::spec::{Mode, RunSpec};

/// Locks a mutex, recovering the guard from a poisoned lock instead of
/// panicking. A worker that panicked mid-spec must not cascade into
/// every thread that later touches the same slot or queue — the
/// protected data here is always a write-once result slot, a spec
/// queue, or an insert-only registry, all safe to observe after a
/// peer's panic.
pub(crate) fn lock_recover<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Environment variable holding a fault-injection directive for tests
/// and chaos runs (`panic-once:<label substring>`, `exit-after:<n>`,
/// `hang-before:<n>`). See [`FaultInject::parse`].
pub const FAULT_INJECT_ENV: &str = "LTC_FAULT_INJECT";

/// Ceiling on the exponential respawn backoff.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// How a run behaves when workers fail. Threaded from the `ltsim` CLI
/// (`--retries`, `--spec-timeout`) through
/// [`crate::engine::EngineOptions`] into every backend.
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    /// Extra attempts a spec gets after its first failed one (so a spec
    /// runs at most `retries + 1` times). Also bounds the *consecutive*
    /// failures one worker slot tolerates — spawn failures included —
    /// before it retires. `0` fails fast on the first fault.
    pub retries: u32,
    /// Wall-clock budget per spec attempt. Enforced by the subprocess
    /// backend, whose children can be killed; the in-process backends
    /// run trusted library code on threads that cannot be safely
    /// interrupted, so they ignore it. `None` (the default) never times
    /// a spec out.
    pub spec_timeout: Option<Duration>,
    /// Base delay before respawning after a worker failure; doubles per
    /// consecutive failure and caps at 2s, so a crash-looping worker
    /// cannot hot-spin the pool.
    pub backoff: Duration,
    /// Injected fault for tests and chaos runs (see [`FaultInject`]).
    pub inject: Option<FaultInject>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            retries: 2,
            spec_timeout: None,
            backoff: Duration::from_millis(100),
            inject: None,
        }
    }
}

impl FaultPolicy {
    /// The default policy plus any [`FAULT_INJECT_ENV`] directive from
    /// the environment. Called by the CLI at startup — deliberately not
    /// by `Default`, so library tests running in parallel cannot race on
    /// process-global environment mutations.
    pub fn from_env() -> Self {
        let inject = std::env::var(FAULT_INJECT_ENV).ok().as_deref().and_then(FaultInject::parse);
        FaultPolicy { inject, ..FaultPolicy::default() }
    }

    /// Backoff before the `consecutive`-th (1-based) respawn in a row:
    /// `backoff * 2^(consecutive-1)`, capped at 2 seconds.
    pub fn backoff_for(&self, consecutive: u32) -> Duration {
        let factor = 1u32 << consecutive.saturating_sub(1).min(16);
        self.backoff.checked_mul(factor).map_or(BACKOFF_CAP, |d| d.min(BACKOFF_CAP))
    }
}

/// A deliberately injected fault, for exercising the supervision paths.
#[derive(Debug, Clone)]
pub enum FaultInject {
    /// In-process backends: panic inside the first executed spec whose
    /// label contains the substring — exactly once per policy, so the
    /// retry must succeed.
    PanicOnce {
        /// Label substring selecting the victim spec.
        label: String,
        /// Set by the attempt that fires, making the injection one-shot.
        fired: Arc<AtomicBool>,
    },
    /// `ltsim worker`: exit abruptly (no EOF handshake) after answering
    /// this many specs. Every respawned child inherits the directive,
    /// so a chaos run kills workers continuously, not once.
    ExitAfter(u64),
    /// `ltsim worker`: hang instead of answering the n-th (1-based)
    /// spec, for exercising `--spec-timeout`.
    HangBefore(u64),
}

impl FaultInject {
    /// Parses a [`FAULT_INJECT_ENV`] directive: `panic-once:<substr>`,
    /// `exit-after:<n>`, or `hang-before:<n>` (`n` ≥ 1). Anything else
    /// is `None` — an unrecognized directive must not fail real runs.
    pub fn parse(directive: &str) -> Option<FaultInject> {
        let (kind, arg) = directive.split_once(':')?;
        match kind {
            "panic-once" => Some(FaultInject::PanicOnce {
                label: arg.to_string(),
                fired: Arc::new(AtomicBool::new(false)),
            }),
            "exit-after" => arg.parse().ok().filter(|&n| n >= 1).map(FaultInject::ExitAfter),
            "hang-before" => arg.parse().ok().filter(|&n| n >= 1).map(FaultInject::HangBefore),
            _ => None,
        }
    }
}

/// A typed execution failure: what was lost and why, instead of a
/// panicking pool or a stringly `io::Error`.
#[derive(Debug)]
pub enum BackendError {
    /// Transport-level failure outside any one spec's attempt (an empty
    /// worker command, protocol setup).
    Io(io::Error),
    /// One spec kept failing until its retry budget ran out.
    RetriesExhausted {
        /// The spec's canonical key.
        key: String,
        /// Attempts made (budget + 1).
        attempts: u32,
        /// The final attempt's failure.
        last_error: String,
    },
    /// One spec exceeded [`FaultPolicy::spec_timeout`] on its final
    /// permitted attempt.
    Timeout {
        /// The spec's canonical key.
        key: String,
        /// Attempts made (budget + 1).
        attempts: u32,
        /// The per-attempt budget that was exceeded.
        timeout: Duration,
    },
    /// Every worker retired (died faster than it could be respawned)
    /// with these specs never completed.
    LostSpecs {
        /// Canonical keys of the specs that never produced a result.
        keys: Vec<String>,
        /// Why the pool collapsed (e.g. the spawn error).
        reason: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Io(e) => write!(f, "backend transport error: {e}"),
            BackendError::RetriesExhausted { key, attempts, last_error } => write!(
                f,
                "spec {key} failed {attempts} attempt(s); retry budget exhausted: {last_error}"
            ),
            BackendError::Timeout { key, attempts, timeout } => write!(
                f,
                "spec {key} timed out on each of {attempts} attempt(s) of {:.3}s",
                timeout.as_secs_f64()
            ),
            BackendError::LostSpecs { keys, reason } => {
                write!(f, "{} spec(s) lost — {reason}: {}", keys.len(), keys.join(", "))
            }
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BackendError {
    fn from(e: io::Error) -> Self {
        BackendError::Io(e)
    }
}

impl From<BackendError> for io::Error {
    /// Lets the scheduler keep its `io::Result` boundary: transport
    /// errors unwrap to their original kind, typed failures wrap as the
    /// error's source so callers can still downcast.
    fn from(e: BackendError) -> io::Error {
        match e {
            BackendError::Io(e) => e,
            other => io::Error::other(other),
        }
    }
}

/// Observes per-spec lifecycle events from inside backend workers.
/// Implementations must be `Sync`: events arrive concurrently.
pub trait RunObserver: Sync {
    /// A worker began executing `spec`. A retried spec starts again.
    fn started(&self, spec: &RunSpec) {
        let _ = spec;
    }

    /// A worker finished `spec` with `result` after `elapsed` wall time.
    /// Fires exactly once per completed spec, however many attempts it
    /// took.
    fn finished(&self, spec: &RunSpec, result: &RunResult, elapsed: Duration) {
        let _ = (spec, result, elapsed);
    }
}

/// The no-op observer (tests, library callers without progress).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {}

/// Executes a planned set of specs.
///
/// The contract every backend upholds (and `crates/sim/tests/backends.rs`
/// checks): results come back in input order, every spec *completes*
/// exactly once (failed attempts may precede the completion), and
/// [`RunObserver::finished`] fires for each completed spec from the
/// worker that produced it.
pub trait ExecutionBackend {
    /// Short name for logs and `--backend` parsing.
    fn name(&self) -> &'static str;

    /// Executes every spec, returning results in `specs` order.
    ///
    /// # Errors
    ///
    /// Returns a typed [`BackendError`] when a spec's retry budget is
    /// exhausted, a spec times out, the worker pool collapses, or the
    /// transport cannot be set up. Specs completed before the failure
    /// have already been persisted through the observer.
    fn execute(
        &self,
        specs: &[RunSpec],
        observer: &dyn RunObserver,
    ) -> Result<Vec<RunResult>, BackendError>;
}

/// Which backend an [`crate::engine::EngineOptions`] selects; resolved to
/// a boxed [`ExecutionBackend`] at execution time by [`BackendKind::build`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// [`ThreadPoolBackend`].
    #[default]
    Threads,
    /// [`ShardedBackend`].
    Sharded,
    /// [`SubprocessBackend`] spawning `command` (argv) per worker.
    Subprocess {
        /// Worker argv, e.g. `["/path/to/ltsim", "worker"]`.
        command: Vec<String>,
    },
}

impl BackendKind {
    /// Builds the backend with `threads` workers supervised under
    /// `fault`.
    pub fn build(&self, threads: usize, fault: &FaultPolicy) -> Box<dyn ExecutionBackend> {
        match self {
            BackendKind::Threads => Box::new(ThreadPoolBackend { threads, fault: fault.clone() }),
            BackendKind::Sharded => {
                Box::new(ShardedBackend { workers: threads, fault: fault.clone() })
            }
            BackendKind::Subprocess { command } => Box::new(SubprocessBackend {
                command: command.clone(),
                workers: threads,
                fault: fault.clone(),
            }),
        }
    }
}

/// Opens the per-spec telemetry span all backends emit around execution.
fn spec_span(spec: &RunSpec) -> ltc_telemetry::Span {
    if !ltc_telemetry::enabled() {
        return ltc_telemetry::span("spec", Vec::new());
    }
    ltc_telemetry::span(
        "spec",
        vec![
            ("label".to_string(), spec.label().into()),
            ("benchmark".to_string(), spec.benchmark.clone().into()),
        ],
    )
}

/// Closes a per-spec span with the queue-wait / run-time split. The label
/// repeats on the end event so stream consumers (the progress adapter,
/// `ltsim events summarize`) need not correlate begin/end pairs. A
/// failed attempt still closes its span — the CI log validator checks
/// begin/end balance — but is tagged with an `outcome` field
/// (`"retry"`, `"timeout"`, `"panic"`) so progress counting and
/// per-spec statistics skip it; completions carry no `outcome`.
fn end_spec_span(
    span: ltc_telemetry::Span,
    spec: &RunSpec,
    queue_wait: Duration,
    run: Duration,
    outcome: Option<&'static str>,
) {
    if !ltc_telemetry::enabled() {
        return;
    }
    let mut fields = vec![
        ("label".to_string(), spec.label().into()),
        ("queue_wait_us".to_string(), (queue_wait.as_micros() as u64).into()),
        ("run_us".to_string(), (run.as_micros() as u64).into()),
    ];
    if let Some(outcome) = outcome {
        fields.push(("outcome".to_string(), outcome.into()));
    }
    span.end_with(fields);
}

/// Supervision state shared by one `execute` call's workers: result
/// slots, per-spec attempt counts, and the first fatal error. The
/// requeue policy lives here so the three backends cannot drift.
struct Supervisor<'a> {
    specs: &'a [RunSpec],
    policy: &'a FaultPolicy,
    slots: Vec<Mutex<Option<RunResult>>>,
    attempts: Vec<AtomicU32>,
    completed: AtomicUsize,
    fatal: Mutex<Option<BackendError>>,
    abort: AtomicBool,
}

impl<'a> Supervisor<'a> {
    fn new(specs: &'a [RunSpec], policy: &'a FaultPolicy) -> Self {
        Supervisor {
            specs,
            policy,
            slots: (0..specs.len()).map(|_| Mutex::new(None)).collect(),
            attempts: (0..specs.len()).map(|_| AtomicU32::new(0)).collect(),
            completed: AtomicUsize::new(0),
            fatal: Mutex::new(None),
            abort: AtomicBool::new(false),
        }
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    fn done(&self) -> bool {
        self.completed.load(Ordering::Relaxed) >= self.specs.len()
    }

    /// Records the first fatal error and tells every worker to stop
    /// claiming new specs: the execution is doomed to return the error
    /// anyway, and without a cache the remaining simulations would be
    /// wasted wall time.
    fn fail(&self, err: BackendError) {
        lock_recover(&self.fatal).get_or_insert(err);
        self.abort.store(true, Ordering::Relaxed);
    }

    /// Stores a completed result in input order.
    fn complete(&self, idx: usize, result: RunResult) {
        *lock_recover(&self.slots[idx]) = Some(result);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers a failed attempt of `specs[idx]`, emitting the
    /// `spec.retry` / `spec.timeout` telemetry point. Returns `true`
    /// when the spec should be requeued, `false` when its budget is
    /// spent and the corresponding fatal error has been recorded.
    fn spec_failed(&self, idx: usize, reason: &str, timed_out: bool) -> bool {
        let attempt = self.attempts[idx].fetch_add(1, Ordering::Relaxed) + 1;
        let spec = &self.specs[idx];
        if ltc_telemetry::enabled() {
            ltc_telemetry::point(
                if timed_out { "spec.timeout" } else { "spec.retry" },
                vec![
                    ("label".to_string(), spec.label().into()),
                    ("attempt".to_string(), attempt.into()),
                    ("reason".to_string(), reason.into()),
                ],
            );
        }
        if attempt > self.policy.retries {
            self.fail(if timed_out {
                BackendError::Timeout {
                    key: spec.key(),
                    attempts: attempt,
                    timeout: self.policy.spec_timeout.unwrap_or_default(),
                }
            } else {
                BackendError::RetriesExhausted {
                    key: spec.key(),
                    attempts: attempt,
                    last_error: reason.to_string(),
                }
            });
            return false;
        }
        true
    }

    /// Whether the next attempt of `specs[idx]` is its last permitted
    /// one.
    fn last_chance(&self, idx: usize) -> bool {
        self.attempts[idx].load(Ordering::Relaxed) >= self.policy.retries
    }

    /// Keys of specs that never completed (for [`BackendError::LostSpecs`]).
    fn incomplete_keys(&self) -> Vec<String> {
        self.specs
            .iter()
            .zip(&self.slots)
            .filter(|(_, slot)| lock_recover(slot).is_none())
            .map(|(spec, _)| spec.key())
            .collect()
    }

    /// Collects the final outcome: the recorded fatal error, a
    /// [`BackendError::LostSpecs`] naming any silently missing specs, or
    /// the results in input order.
    fn into_outcome(self) -> Result<Vec<RunResult>, BackendError> {
        if let Some(err) = lock_recover(&self.fatal).take() {
            return Err(err);
        }
        let mut out = Vec::with_capacity(self.specs.len());
        let mut lost = Vec::new();
        for (spec, slot) in self.specs.iter().zip(self.slots) {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(result) => out.push(result),
                None => lost.push(spec.key()),
            }
        }
        if lost.is_empty() {
            Ok(out)
        } else {
            Err(BackendError::LostSpecs {
                keys: lost,
                reason: "workers stopped before executing them".to_string(),
            })
        }
    }
}

/// Fires the `panic-once` injection when this spec is its victim.
fn maybe_inject_panic(policy: &FaultPolicy, spec: &RunSpec) {
    if let Some(FaultInject::PanicOnce { label, fired }) = &policy.inject {
        if spec.label().contains(label.as_str()) && !fired.swap(true, Ordering::Relaxed) {
            panic!("injected fault ({FAULT_INJECT_ENV}) in {}", spec.label());
        }
    }
}

/// Renders a caught panic payload for error messages.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// One supervised in-process attempt: runs the spec with observer and
/// span instrumentation, converting a panic into a retry/fatal decision
/// instead of poisoning the pool. Returns `true` when the caller should
/// requeue the spec.
fn attempt_in_process(
    sup: &Supervisor<'_>,
    idx: usize,
    observer: &dyn RunObserver,
    queued: Instant,
) -> bool {
    let spec = &sup.specs[idx];
    observer.started(spec);
    let queue_wait = queued.elapsed();
    let span = spec_span(spec);
    let start = Instant::now();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        maybe_inject_panic(sup.policy, spec);
        spec.execute()
    }));
    let elapsed = start.elapsed();
    match outcome {
        Ok(result) => {
            end_spec_span(span, spec, queue_wait, elapsed, None);
            observer.finished(spec, &result, elapsed);
            sup.complete(idx, result);
            false
        }
        Err(payload) => {
            end_spec_span(span, spec, queue_wait, elapsed, Some("panic"));
            sup.spec_failed(idx, &panic_message(payload), false)
        }
    }
}

/// The scoped-thread pool: workers claim specs from a shared queue in
/// input order; a failed attempt requeues at the back.
#[derive(Debug, Clone)]
pub struct ThreadPoolBackend {
    /// Worker thread count (clamped to at least 1).
    pub threads: usize,
    /// Supervision policy for panicking workers.
    pub fault: FaultPolicy,
}

impl ExecutionBackend for ThreadPoolBackend {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn execute(
        &self,
        specs: &[RunSpec],
        observer: &dyn RunObserver,
    ) -> Result<Vec<RunResult>, BackendError> {
        let n = specs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let sup = Supervisor::new(specs, &self.fault);
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
        let workers = self.threads.max(1).min(n);
        let queued = Instant::now();
        std::thread::scope(|scope| {
            for me in 0..workers {
                let (sup, queue) = (&sup, &queue);
                scope.spawn(move || {
                    if ltc_telemetry::enabled() {
                        ltc_telemetry::set_worker(me as u64 + 1);
                    }
                    while !sup.aborted() {
                        let Some(idx) = lock_recover(queue).pop_front() else { break };
                        if attempt_in_process(sup, idx, observer, queued) {
                            lock_recover(queue).push_back(idx);
                        }
                    }
                });
            }
        });
        sup.into_outcome()
    }
}

/// Relative cost estimate used to seed [`ShardedBackend`] deques
/// longest-first. Timing runs simulate a full out-of-order machine per
/// access and dominate real sweeps; a multi-programmed run with a partner
/// doubles its access budget and runs two hierarchies.
fn cost_estimate(spec: &RunSpec) -> u64 {
    let weight = match &spec.mode {
        Mode::Timing => 10,
        Mode::MultiProg { partner: Some(_) } => 4,
        // A segmented parent executed directly replays every segment
        // sequentially (the scheduler normally expands it instead).
        Mode::MultiProg { partner: None } | Mode::StreamSegmented { .. } => 2,
        Mode::Coverage
        | Mode::DeadTime
        | Mode::Correlation
        | Mode::Ordering
        | Mode::Stream { .. } => 1,
        // One slice: simulate `accesses / segments`, but generate up to
        // the slice's end to skip there — later slices cost more
        // generation, earlier ones more simulation; call it one unit of
        // the *slice* budget so a many-segment fan-out seeds fairly.
        Mode::StreamSegment { segments, .. } => {
            return (spec.accesses / u64::from(*segments).max(1)).max(1);
        }
    };
    spec.accesses.saturating_mul(weight).max(1)
}

/// Work stealing over per-worker deques.
///
/// Specs are sorted by `cost_estimate` descending and dealt round-robin
/// across the shards, so every worker starts on a long run and the cheap
/// tail gets stolen by whoever drains first — the classic fix for a pool
/// where one late-claimed timing run serializes the finish. A failed
/// attempt requeues at the back of the failing worker's own shard.
#[derive(Debug, Clone)]
pub struct ShardedBackend {
    /// Worker (and shard) count, clamped to at least 1.
    pub workers: usize,
    /// Supervision policy for panicking workers.
    pub fault: FaultPolicy,
}

impl ShardedBackend {
    /// Deals spec indices into per-worker deques, longest first.
    fn seed_shards(&self, specs: &[RunSpec], shards: usize) -> Vec<Mutex<VecDeque<usize>>> {
        let mut order: Vec<usize> = (0..specs.len()).collect();
        // Stable sort: equal-cost specs keep input order, so runs are
        // reproducible given a worker count.
        order.sort_by_key(|&i| std::cmp::Reverse(cost_estimate(&specs[i])));
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..shards).map(|_| Mutex::new(VecDeque::new())).collect();
        for (round, idx) in order.into_iter().enumerate() {
            lock_recover(&deques[round % shards]).push_back(idx);
        }
        deques
    }
}

/// Claims the next spec for worker `me`: own deque front first (its
/// longest remaining work), then victims' backs (their cheapest), which
/// keeps stolen work small and contention low.
fn steal(shards: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(idx) = lock_recover(&shards[me]).pop_front() {
        return Some(idx);
    }
    for offset in 1..shards.len() {
        let victim = (me + offset) % shards.len();
        if let Some(idx) = lock_recover(&shards[victim]).pop_back() {
            return Some(idx);
        }
    }
    None
}

impl ExecutionBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn execute(
        &self,
        specs: &[RunSpec],
        observer: &dyn RunObserver,
    ) -> Result<Vec<RunResult>, BackendError> {
        let n = specs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.workers.max(1).min(n);
        let shards = self.seed_shards(specs, workers);
        let sup = Supervisor::new(specs, &self.fault);
        let queued = Instant::now();
        std::thread::scope(|scope| {
            for me in 0..workers {
                let (sup, shards) = (&sup, &shards);
                scope.spawn(move || {
                    if ltc_telemetry::enabled() {
                        ltc_telemetry::set_worker(me as u64 + 1);
                    }
                    while !sup.aborted() {
                        let Some(idx) = steal(shards, me) else { break };
                        if attempt_in_process(sup, idx, observer, queued) {
                            lock_recover(&shards[me]).push_back(idx);
                        }
                    }
                });
            }
        });
        sup.into_outcome()
    }
}

/// A pool of worker child processes speaking the newline-delimited JSON
/// protocol: one canonical [`RunSpec`] JSON line in on stdin, one
/// [`RunResult`] JSON line out on stdout, repeated until stdin closes.
///
/// Each worker thread owns one child and feeds it specs from a shared
/// requeue-capable queue; stderr is inherited so worker panics surface
/// in the parent's output. A child that exits early, answers with
/// unparsable JSON, or exceeds [`FaultPolicy::spec_timeout`] costs its
/// spec one attempt; the spec requeues onto a surviving worker and the
/// child is respawned with exponential backoff, up to the policy's
/// budgets. A spec's *final* permitted attempt always runs on a freshly
/// spawned child, so accumulated protocol state from a flaky child
/// cannot doom it.
#[derive(Debug, Clone)]
pub struct SubprocessBackend {
    /// Worker argv (program plus arguments), e.g. `["ltsim", "worker"]`.
    pub command: Vec<String>,
    /// Concurrent worker processes, clamped to at least 1.
    pub workers: usize,
    /// Supervision policy: respawn budget, per-spec timeout, backoff.
    pub fault: FaultPolicy,
}

/// Shared state for one subprocess execution: the supervisor plus the
/// requeue queue, live-worker count, and the timeout watchdog.
struct ProcPool<'a> {
    sup: Supervisor<'a>,
    queue: Mutex<VecDeque<usize>>,
    live: AtomicUsize,
    watchdog: Watchdog,
}

/// One watchdog table entry: the attempt's deadline and the child to
/// kill if it passes.
type WatchEntry = (Instant, Arc<Mutex<Child>>);

/// Kills children whose in-flight spec exceeded the timeout. Drive
/// threads register a (deadline, child) entry per round trip and
/// release it when the answer arrives; the watchdog thread scans the
/// table and kills expired children, which surfaces to the drive thread
/// as EOF on the child's stdout.
#[derive(Default)]
struct Watchdog {
    entries: Mutex<HashMap<u64, WatchEntry>>,
    killed: Mutex<HashSet<u64>>,
    next_ticket: AtomicU64,
    done: AtomicBool,
}

impl Watchdog {
    fn register(&self, deadline: Instant, child: Arc<Mutex<Child>>) -> u64 {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        lock_recover(&self.entries).insert(ticket, (deadline, child));
        ticket
    }

    /// Retires a ticket, reporting whether the watchdog killed its
    /// child while the round trip was in flight.
    fn release(&self, ticket: u64) -> bool {
        lock_recover(&self.entries).remove(&ticket);
        lock_recover(&self.killed).remove(&ticket)
    }

    fn run(&self) {
        while !self.done.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(10));
            let now = Instant::now();
            let expired: Vec<(u64, Arc<Mutex<Child>>)> = {
                let mut entries = lock_recover(&self.entries);
                let tickets: Vec<u64> = entries
                    .iter()
                    .filter(|(_, (deadline, _))| *deadline <= now)
                    .map(|(&t, _)| t)
                    .collect();
                tickets
                    .into_iter()
                    .filter_map(|t| entries.remove(&t).map(|(_, child)| (t, child)))
                    .collect()
            };
            for (ticket, child) in expired {
                lock_recover(&self.killed).insert(ticket);
                let _ = lock_recover(&child).kill();
            }
        }
    }
}

impl ExecutionBackend for SubprocessBackend {
    fn name(&self) -> &'static str {
        "subprocess"
    }

    fn execute(
        &self,
        specs: &[RunSpec],
        observer: &dyn RunObserver,
    ) -> Result<Vec<RunResult>, BackendError> {
        if self.command.is_empty() {
            return Err(BackendError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "subprocess backend needs a worker command",
            )));
        }
        let n = specs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.workers.max(1).min(n);
        let pool = ProcPool {
            sup: Supervisor::new(specs, &self.fault),
            queue: Mutex::new((0..n).collect()),
            live: AtomicUsize::new(workers),
            watchdog: Watchdog::default(),
        };
        let queued = Instant::now();
        std::thread::scope(|scope| {
            if self.fault.spec_timeout.is_some() {
                let watchdog = &pool.watchdog;
                scope.spawn(move || watchdog.run());
            }
            for me in 0..workers {
                let (pool, command) = (&pool, &self.command);
                scope.spawn(move || drive_worker(me, command, pool, observer, queued));
            }
        });
        pool.sup.into_outcome()
    }
}

/// One supervised drive thread: keeps a child alive (respawning with
/// backoff within the consecutive-failure budget), feeds it specs
/// claimed from the shared queue, and requeues any spec whose attempt
/// died. The last thread out performs the pool post-mortem.
fn drive_worker(
    me: usize,
    command: &[String],
    pool: &ProcPool<'_>,
    observer: &dyn RunObserver,
    queued: Instant,
) {
    if ltc_telemetry::enabled() {
        ltc_telemetry::set_worker(me as u64 + 1);
    }
    drive_worker_loop(me, command, pool, observer, queued);
    let survivors = pool.live.fetch_sub(1, Ordering::Relaxed) - 1;
    if survivors == 0 {
        pool.watchdog.done.store(true, Ordering::Relaxed);
        if !pool.sup.done() {
            // Every worker is gone with work outstanding. fail() keeps
            // the first error, so a recorded timeout/exhaustion wins
            // over this collective post-mortem.
            pool.sup.fail(BackendError::LostSpecs {
                keys: pool.sup.incomplete_keys(),
                reason: "every subprocess worker retired".to_string(),
            });
        }
    }
}

/// The loop body of [`drive_worker`]; returning retires the worker (the
/// caller handles the live-count bookkeeping on every exit path).
fn drive_worker_loop(
    me: usize,
    command: &[String],
    pool: &ProcPool<'_>,
    observer: &dyn RunObserver,
    queued: Instant,
) {
    let sup = &pool.sup;
    let mut worker: Option<WorkerProcess> = None;
    let mut consecutive: u32 = 0;
    while !sup.aborted() && !sup.done() {
        let Some(idx) = lock_recover(&pool.queue).pop_front() else {
            // Peers may still fail and requeue their in-flight spec;
            // wait for the batch to settle rather than retiring early.
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        let spec = &sup.specs[idx];
        // Final-attempt isolation: run a spec's last permitted attempt
        // on a fresh child, so a child that deterministically dies
        // after N answers (or any accumulated protocol damage) cannot
        // doom the spec.
        if sup.last_chance(idx) && worker.as_ref().is_some_and(|w| w.answered > 0) {
            worker = None;
        }
        if worker.is_none() {
            match WorkerProcess::spawn(command) {
                Ok(fresh) => worker = Some(fresh),
                Err(e) => {
                    lock_recover(&pool.queue).push_front(idx);
                    consecutive += 1;
                    if consecutive > sup.policy.retries {
                        retire(me, &e.to_string());
                        return;
                    }
                    respawn_backoff(me, sup.policy, consecutive, &e.to_string());
                    continue;
                }
            }
        }
        let child = worker.as_mut().expect("spawned above");
        observer.started(spec);
        let queue_wait = queued.elapsed();
        let span = spec_span(spec);
        let ticket = sup
            .policy
            .spec_timeout
            .map(|t| pool.watchdog.register(Instant::now() + t, child.child.clone()));
        let start = Instant::now();
        let answer = child.round_trip(spec);
        let elapsed = start.elapsed();
        let timed_out = ticket.is_some_and(|t| pool.watchdog.release(t));
        match answer {
            Ok(result) if !timed_out => {
                end_spec_span(span, spec, queue_wait, elapsed, None);
                observer.finished(spec, &result, elapsed);
                sup.complete(idx, result);
                consecutive = 0;
            }
            answer => {
                // The attempt died: child exit/protocol error, or the
                // watchdog killed it (a post-kill answer is discarded —
                // the child is dead either way, and rerunning the spec
                // is idempotent).
                let reason = match answer {
                    Err(e) => e.to_string(),
                    Ok(_) => "answer arrived after the timeout kill".to_string(),
                };
                end_spec_span(
                    span,
                    spec,
                    queue_wait,
                    elapsed,
                    Some(if timed_out { "timeout" } else { "retry" }),
                );
                worker = None; // Drop kills and reaps the dead child.
                if !sup.spec_failed(idx, &reason, timed_out) {
                    return;
                }
                lock_recover(&pool.queue).push_back(idx);
                consecutive += 1;
                if consecutive > sup.policy.retries {
                    retire(me, &reason);
                    return;
                }
                respawn_backoff(me, sup.policy, consecutive, &reason);
            }
        }
    }
    // Normal exit: the batch finished (or a peer aborted it). A healthy
    // child gets the EOF handshake; one that already died mid-batch
    // only costs a warning here — its specs were requeued and completed
    // elsewhere, so a dirty exit must not fail the run.
    if let Some(mut child) = worker.take() {
        if let Err(e) = child.shutdown() {
            ltc_telemetry::warning(
                "worker_shutdown",
                &format!("worker {} exited uncleanly after the batch: {e}", me + 1),
                vec![("worker".to_string(), (me as u64 + 1).into())],
            );
        }
    }
}

/// Marks a drive thread as giving up after exhausting its consecutive-
/// failure budget.
fn retire(me: usize, reason: &str) {
    ltc_telemetry::warning(
        "worker_retired",
        &format!("worker {} retired: {reason}", me + 1),
        vec![("worker".to_string(), (me as u64 + 1).into())],
    );
}

/// Emits the `worker.respawn` telemetry point and sleeps the
/// exponential backoff before the next spawn attempt.
fn respawn_backoff(me: usize, policy: &FaultPolicy, consecutive: u32, reason: &str) {
    let delay = policy.backoff_for(consecutive);
    if ltc_telemetry::enabled() {
        ltc_telemetry::point(
            "worker.respawn",
            vec![
                ("worker".to_string(), (me as u64 + 1).into()),
                ("consecutive_failures".to_string(), consecutive.into()),
                ("backoff_ms".to_string(), (delay.as_millis() as u64).into()),
                ("reason".to_string(), reason.into()),
            ],
        );
    }
    std::thread::sleep(delay);
}

/// A spawned worker child with its protocol pipes.
struct WorkerProcess {
    /// Shared with the timeout watchdog, which kills expired children.
    child: Arc<Mutex<Child>>,
    /// `Option` so shutdown (and `Drop`) can close stdin to signal EOF.
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    /// Child telemetry span ids → parent span ids. Children number spans
    /// from their own counters, so forwarded frames are remapped into the
    /// parent's id space to stay collision-free across workers.
    span_map: HashMap<u64, u64>,
    /// Specs this child has answered (fresh children are preferred for
    /// final attempts).
    answered: u64,
}

impl WorkerProcess {
    fn spawn(command: &[String]) -> io::Result<Self> {
        let mut cmd = Command::new(&command[0]);
        cmd.args(&command[1..]).stdin(Stdio::piped()).stdout(Stdio::piped());
        if ltc_telemetry::enabled() {
            // Asks `ltsim worker` to interleave telemetry frames with its
            // result lines; without the variable children stay silent.
            cmd.env(ltc_telemetry::WIRE_ENV, "1");
        }
        let mut child = cmd.spawn().map_err(|e| {
            io::Error::new(e.kind(), format!("spawning worker `{}`: {e}", command[0]))
        })?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(WorkerProcess {
            child: Arc::new(Mutex::new(child)),
            stdin: Some(stdin),
            stdout,
            span_map: HashMap::new(),
            answered: 0,
        })
    }

    /// Sends one spec line, then reads until the result line arrives,
    /// forwarding any interleaved `{"event":…}` telemetry frames into the
    /// parent's event stream.
    fn round_trip(&mut self, spec: &RunSpec) -> io::Result<RunResult> {
        let stdin = self.stdin.as_mut().expect("stdin open until shutdown");
        writeln!(stdin, "{}", spec.key())?;
        stdin.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            if self.stdout.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("worker exited before answering spec {}", spec.key()),
                ));
            }
            let trimmed = line.trim();
            if trimmed.starts_with("{\"event\":") {
                forward_wire_frame(&mut self.span_map, trimmed);
                continue;
            }
            let result = serde_json::from_str(trimmed).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad RunResult line from worker for spec {}: {e}", spec.key()),
                )
            })?;
            self.answered += 1;
            return Ok(result);
        }
    }

    /// Closes stdin (the protocol's end-of-work signal), drains any
    /// telemetry the child flushes on exit, and reaps it, surfacing a
    /// non-zero exit as an error.
    fn shutdown(&mut self) -> io::Result<()> {
        drop(self.stdin.take());
        let mut line = String::new();
        while self.stdout.read_line(&mut line)? > 0 {
            let trimmed = line.trim();
            if trimmed.starts_with("{\"event\":") {
                forward_wire_frame(&mut self.span_map, trimmed);
            }
            line.clear();
        }
        let status = lock_recover(&self.child).wait()?;
        if status.success() {
            Ok(())
        } else {
            Err(io::Error::other(format!("worker exited with {status}")))
        }
    }
}

/// Re-emits one child telemetry frame into this process's event stream:
/// the timestamp is restamped on the parent clock, the span id remapped
/// through `span_map`, and the worker id replaced with the driving
/// thread's id (children don't know which pool slot they occupy).
/// Malformed frames are dropped — telemetry must never fail a run.
fn forward_wire_frame(span_map: &mut HashMap<u64, u64>, line: &str) {
    let Ok(value) = serde_json::parse(line) else { return };
    let Some(wrapped) = value.get("event") else { return };
    if let Some(event) = wire_event(wrapped, span_map) {
        ltc_telemetry::emit(&event);
    }
}

/// Rebuilds an [`Event`] from a parsed wire frame payload.
fn wire_event(v: &Value, span_map: &mut HashMap<u64, u64>) -> Option<Event> {
    let kind = EventKind::parse(v.get("kind")?.as_str()?)?;
    let mut event = Event::now(kind, v.get("name")?.as_str()?);
    if let Some(child_span) = v.get("span").and_then(Value::as_u64) {
        let id = *span_map.entry(child_span).or_insert_with(ltc_telemetry::next_span_id);
        event.span = Some(id);
    }
    if let Some(fields) = v.get("fields").and_then(Value::as_map) {
        for (key, field) in fields {
            let value = match field {
                Value::Bool(b) => FieldValue::Bool(*b),
                Value::U64(n) => FieldValue::U64(*n),
                Value::I64(n) => FieldValue::I64(*n),
                Value::F64(f) => FieldValue::F64(*f),
                Value::Str(s) => FieldValue::Str(s.clone()),
                Value::Null | Value::Seq(_) | Value::Map(_) => continue,
            };
            event.fields.push((key.clone(), value));
        }
    }
    Some(event)
}

impl Drop for WorkerProcess {
    /// Error-path cleanup: don't leave a zombie if `shutdown` was never
    /// reached (a successful `shutdown` makes both calls no-ops).
    fn drop(&mut self) {
        drop(self.stdin.take());
        let mut child = lock_recover(&self.child);
        let _ = child.kill();
        let _ = child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PredictorKind;

    fn tiny(bench: &str, accesses: u64) -> RunSpec {
        RunSpec::coverage(bench, PredictorKind::Baseline, accesses, 1)
    }

    /// A policy with a near-zero backoff so failure tests stay fast.
    fn fast_policy(retries: u32) -> FaultPolicy {
        FaultPolicy { retries, backoff: Duration::from_millis(1), ..FaultPolicy::default() }
    }

    #[test]
    fn timing_runs_cost_more_than_coverage() {
        let coverage = tiny("gzip", 10_000);
        let timing = RunSpec::timing("gzip", PredictorKind::Baseline, 10_000, 1);
        assert!(cost_estimate(&timing) > cost_estimate(&coverage));
        let paired = RunSpec::multiprog("gzip", Some("mcf"), PredictorKind::Baseline, 10_000, 1);
        let alone = RunSpec::multiprog("gzip", None, PredictorKind::Baseline, 10_000, 1);
        assert!(cost_estimate(&paired) > cost_estimate(&alone));
    }

    #[test]
    fn sharded_seeds_longest_first_round_robin() {
        let backend = ShardedBackend { workers: 2, fault: FaultPolicy::default() };
        let specs = vec![
            tiny("gzip", 1_000),
            RunSpec::timing("mcf", PredictorKind::Baseline, 1_000, 1),
            tiny("art", 2_000),
            RunSpec::timing("mesa", PredictorKind::Baseline, 2_000, 1),
        ];
        let shards = backend.seed_shards(&specs, 2);
        let front_costs: Vec<u64> = shards
            .iter()
            .map(|s| cost_estimate(&specs[*s.lock().unwrap().front().unwrap()]))
            .collect();
        // Every worker starts on a timing run, not a cheap coverage run.
        assert!(front_costs.iter().all(|&c| c >= 10_000), "fronts: {front_costs:?}");
    }

    #[test]
    fn backends_preserve_input_order() {
        let specs = vec![tiny("gzip", 2_000), tiny("mesa", 2_000), tiny("art", 2_000)];
        let fault = FaultPolicy::default();
        for backend in
            [BackendKind::Threads.build(2, &fault), BackendKind::Sharded.build(2, &fault)]
        {
            let results = backend.execute(&specs, &NullObserver).unwrap();
            assert_eq!(results.len(), specs.len(), "{}", backend.name());
            for (spec, result) in specs.iter().zip(&results) {
                // run_coverage reserves a quarter of the budget as warmup.
                assert_eq!(
                    result.as_coverage().expect("coverage result").accesses,
                    spec.accesses - spec.accesses / 4,
                    "{}: result out of order for {}",
                    backend.name(),
                    spec.key()
                );
            }
        }
    }

    #[test]
    fn observer_sees_every_spec_once() {
        #[derive(Default)]
        struct Counter {
            started: AtomicUsize,
            finished: AtomicUsize,
        }
        impl RunObserver for Counter {
            fn started(&self, _: &RunSpec) {
                self.started.fetch_add(1, Ordering::Relaxed);
            }
            fn finished(&self, _: &RunSpec, _: &RunResult, _: Duration) {
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
        }
        let specs: Vec<RunSpec> =
            ["gzip", "mesa", "art", "mcf", "swim"].iter().map(|b| tiny(b, 2_000)).collect();
        let fault = FaultPolicy::default();
        for kind in [BackendKind::Threads, BackendKind::Sharded] {
            let counter = Counter::default();
            kind.build(3, &fault).execute(&specs, &counter).unwrap();
            assert_eq!(counter.started.load(Ordering::Relaxed), specs.len());
            assert_eq!(counter.finished.load(Ordering::Relaxed), specs.len());
        }
    }

    #[test]
    fn fault_inject_directives_parse() {
        match FaultInject::parse("panic-once:mesa") {
            Some(FaultInject::PanicOnce { label, fired }) => {
                assert_eq!(label, "mesa");
                assert!(!fired.load(Ordering::Relaxed));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(FaultInject::parse("exit-after:3"), Some(FaultInject::ExitAfter(3))));
        assert!(matches!(FaultInject::parse("hang-before:1"), Some(FaultInject::HangBefore(1))));
        assert!(FaultInject::parse("exit-after:0").is_none(), "zero guarantees no progress");
        assert!(FaultInject::parse("exit-after:x").is_none());
        assert!(FaultInject::parse("unknown:1").is_none());
        assert!(FaultInject::parse("panic-once").is_none());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = FaultPolicy { backoff: Duration::from_millis(100), ..Default::default() };
        assert_eq!(policy.backoff_for(1), Duration::from_millis(100));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(200));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(400));
        assert_eq!(policy.backoff_for(10), BACKOFF_CAP);
    }

    #[test]
    fn in_process_backends_survive_an_injected_panic() {
        let specs = vec![tiny("gzip", 2_000), tiny("mesa", 2_000), tiny("art", 2_000)];
        let clean = BackendKind::Threads
            .build(2, &FaultPolicy::default())
            .execute(&specs, &NullObserver)
            .unwrap();
        for kind in [BackendKind::Threads, BackendKind::Sharded] {
            let fault =
                FaultPolicy { inject: FaultInject::parse("panic-once:mesa"), ..fast_policy(1) };
            let results = kind.build(2, &fault).execute(&specs, &NullObserver).unwrap();
            // The retried run completes and the results are identical to
            // a fault-free pass (simulation is deterministic per spec).
            assert_eq!(results, clean, "{kind:?}");
        }
    }

    #[test]
    fn exhausted_retry_budget_names_the_spec() {
        let specs = vec![tiny("gzip", 2_000), tiny("mesa", 2_000)];
        let fault = FaultPolicy { inject: FaultInject::parse("panic-once:mesa"), ..fast_policy(0) };
        let err = BackendKind::Threads.build(2, &fault).execute(&specs, &NullObserver).unwrap_err();
        match err {
            BackendError::RetriesExhausted { key, attempts, .. } => {
                assert!(key.contains("mesa"), "{key}");
                assert_eq!(attempts, 1);
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn retried_attempts_emit_fault_telemetry() {
        use ltc_telemetry::Capture;
        // 5k accesses renders as a "/5k/" label — unique among the fault
        // tests, which matters because install() is process-global and
        // sibling tests inject panics on "mesa" labels too.
        let specs = vec![tiny("gzip", 5_000), tiny("mesa", 5_000)];
        let fault = FaultPolicy { inject: FaultInject::parse("panic-once:mesa"), ..fast_policy(1) };
        // Global install: backend workers run on their own threads.
        let capture = Arc::new(Capture::new());
        let token = ltc_telemetry::install(capture.clone());
        let results = BackendKind::Threads.build(2, &fault).execute(&specs, &NullObserver).unwrap();
        ltc_telemetry::uninstall(token);
        assert_eq!(results.len(), 2);
        let mine: Vec<_> = capture
            .named("spec.retry")
            .into_iter()
            .filter(|e| {
                e.field("label").and_then(|f| f.as_str()).is_some_and(|l| l.contains("/5k/"))
            })
            .collect();
        assert_eq!(mine.len(), 1, "one retry point for the injected panic");
        assert_eq!(mine[0].field("attempt"), Some(&FieldValue::U64(1)));
        // The failed attempt's span still closes (balance) but carries
        // the outcome tag; the completion's span end does not.
        let ends: Vec<_> = capture
            .events()
            .into_iter()
            .filter(|e| {
                e.kind == EventKind::SpanEnd
                    && e.name == "spec"
                    && e.field("label")
                        .and_then(|f| f.as_str())
                        .is_some_and(|l| l.contains("/5k/") && l.contains("mesa"))
            })
            .collect();
        assert_eq!(ends.len(), 2, "failed attempt + completion: {ends:?}");
        let tagged = ends.iter().filter(|e| e.field("outcome").is_some()).count();
        assert_eq!(tagged, 1, "{ends:?}");
    }

    #[test]
    fn backend_errors_render_their_specifics() {
        let err = BackendError::Timeout {
            key: "k".into(),
            attempts: 3,
            timeout: Duration::from_millis(1500),
        };
        assert!(err.to_string().contains("timed out"), "{err}");
        assert!(err.to_string().contains("1.500s"), "{err}");
        let err = BackendError::LostSpecs {
            keys: vec!["a".into(), "b".into()],
            reason: "every subprocess worker retired".into(),
        };
        assert!(err.to_string().contains("2 spec(s) lost"), "{err}");
        assert!(err.to_string().contains("a, b"), "{err}");
        // The io::Error conversion keeps transport kinds and wraps the
        // rest with the typed error as source.
        let io_err: io::Error =
            BackendError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "pipe")).into();
        assert_eq!(io_err.kind(), io::ErrorKind::BrokenPipe);
        let io_err: io::Error = BackendError::RetriesExhausted {
            key: "k".into(),
            attempts: 2,
            last_error: "boom".into(),
        }
        .into();
        assert!(io_err.to_string().contains("retry budget"), "{io_err}");
    }

    #[test]
    fn subprocess_backend_rejects_an_empty_command() {
        let backend =
            SubprocessBackend { command: Vec::new(), workers: 2, fault: FaultPolicy::default() };
        let err = backend.execute(&[tiny("gzip", 1_000)], &NullObserver).unwrap_err();
        match err {
            BackendError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidInput),
            other => panic!("expected Io, got {other}"),
        }
    }

    #[test]
    fn subprocess_backend_surfaces_spawn_failure() {
        let backend = SubprocessBackend {
            command: vec!["/nonexistent/ltc-worker-binary".to_string(), "worker".to_string()],
            workers: 1,
            fault: fast_policy(0),
        };
        let err = backend.execute(&[tiny("gzip", 1_000)], &NullObserver).unwrap_err();
        // The pool collapses before any spec executes: a LostSpecs error
        // carrying the spawn failure and naming the unexecuted spec.
        match &err {
            BackendError::LostSpecs { keys, reason } => {
                assert_eq!(keys.len(), 1);
                assert!(reason.contains("retired"), "{reason}");
            }
            other => panic!("expected LostSpecs, got {other}"),
        }
    }

    #[test]
    fn spawn_failures_retry_within_the_budget() {
        use ltc_telemetry::Capture;
        let backend = SubprocessBackend {
            command: vec!["/nonexistent/ltc-worker-binary".to_string()],
            workers: 1,
            fault: fast_policy(2),
        };
        let capture = Arc::new(Capture::new());
        let token = ltc_telemetry::install(capture.clone());
        let err = backend.execute(&[tiny("gzip", 1_003)], &NullObserver).unwrap_err();
        ltc_telemetry::uninstall(token);
        assert!(matches!(err, BackendError::LostSpecs { .. }), "{err}");
        let respawns: Vec<_> = capture
            .named("worker.respawn")
            .into_iter()
            .filter(|e| {
                e.field("reason")
                    .and_then(|f| f.as_str())
                    .is_some_and(|r| r.contains("ltc-worker-binary"))
            })
            .collect();
        assert_eq!(respawns.len(), 2, "two backoff respawns before retiring");
    }
}
