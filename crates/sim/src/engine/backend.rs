//! Pluggable execution backends.
//!
//! The [`crate::engine::Scheduler`] *plans* — collects specs, dedupes
//! them, probes the artifact cache — and hands whatever must actually be
//! simulated to an [`ExecutionBackend`]:
//!
//! * [`ThreadPoolBackend`] — the classic scoped-thread pool over a shared
//!   work index (the pre-backend engine behaviour, ported).
//! * [`ShardedBackend`] — work stealing over per-worker deques, with the
//!   estimated-longest specs (timing runs) dealt out first so a straggler
//!   claimed late cannot serialize the tail of the run.
//! * [`SubprocessBackend`] — a pool of `ltsim worker` child processes
//!   speaking newline-delimited JSON ([`RunSpec`] in on stdin,
//!   [`RunResult`] out on stdout). This proves the spec wire format end
//!   to end; pointing the same protocol at a remote transport is the
//!   multi-machine path the ROADMAP names.
//!
//! Backends report per-spec lifecycle events through a [`RunObserver`],
//! which the scheduler uses for incremental artifact persistence and
//! progress/ETA reporting — so an interrupted run keeps every completed
//! simulation no matter which backend ran it.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ltc_telemetry::{Event, EventKind, FieldValue};
use serde::Value;

use crate::engine::result::RunResult;
use crate::engine::spec::{Mode, RunSpec};
use crate::experiment::sweep_bounded;

/// Observes per-spec lifecycle events from inside backend workers.
/// Implementations must be `Sync`: events arrive concurrently.
pub trait RunObserver: Sync {
    /// A worker began executing `spec`.
    fn started(&self, spec: &RunSpec) {
        let _ = spec;
    }

    /// A worker finished `spec` with `result` after `elapsed` wall time.
    fn finished(&self, spec: &RunSpec, result: &RunResult, elapsed: Duration) {
        let _ = (spec, result, elapsed);
    }
}

/// The no-op observer (tests, library callers without progress).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {}

/// Executes a planned set of specs.
///
/// The contract every backend upholds (and `crates/sim/tests/backends.rs`
/// checks): results come back in input order, every spec is executed
/// exactly once, and [`RunObserver::finished`] fires for each completed
/// spec from the worker that produced it.
pub trait ExecutionBackend {
    /// Short name for logs and `--backend` parsing.
    fn name(&self) -> &'static str;

    /// Executes every spec, returning results in `specs` order.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from worker transports (process spawn, pipe,
    /// protocol). In-process backends are infallible.
    fn execute(&self, specs: &[RunSpec], observer: &dyn RunObserver) -> io::Result<Vec<RunResult>>;
}

/// Which backend an [`crate::engine::EngineOptions`] selects; resolved to
/// a boxed [`ExecutionBackend`] at execution time by [`BackendKind::build`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// [`ThreadPoolBackend`].
    #[default]
    Threads,
    /// [`ShardedBackend`].
    Sharded,
    /// [`SubprocessBackend`] spawning `command` (argv) per worker.
    Subprocess {
        /// Worker argv, e.g. `["/path/to/ltsim", "worker"]`.
        command: Vec<String>,
    },
}

impl BackendKind {
    /// Builds the backend with `threads` workers.
    pub fn build(&self, threads: usize) -> Box<dyn ExecutionBackend> {
        match self {
            BackendKind::Threads => Box::new(ThreadPoolBackend { threads }),
            BackendKind::Sharded => Box::new(ShardedBackend { workers: threads }),
            BackendKind::Subprocess { command } => {
                Box::new(SubprocessBackend { command: command.clone(), workers: threads })
            }
        }
    }
}

/// Runs one spec with observer notifications; shared by all backends so
/// event semantics cannot drift between them. `queued` is when the
/// backend's `execute` accepted the batch, so the span's `queue_wait_us`
/// measures how long the spec sat behind its siblings before a worker
/// picked it up.
fn run_observed(spec: &RunSpec, observer: &dyn RunObserver, queued: Instant) -> RunResult {
    observer.started(spec);
    let queue_wait = queued.elapsed();
    let span = spec_span(spec);
    let start = Instant::now();
    let result = spec.execute();
    let elapsed = start.elapsed();
    end_spec_span(span, spec, queue_wait, elapsed);
    observer.finished(spec, &result, elapsed);
    result
}

/// Opens the per-spec telemetry span all backends emit around execution.
fn spec_span(spec: &RunSpec) -> ltc_telemetry::Span {
    if !ltc_telemetry::enabled() {
        return ltc_telemetry::span("spec", Vec::new());
    }
    ltc_telemetry::span(
        "spec",
        vec![
            ("label".to_string(), spec.label().into()),
            ("benchmark".to_string(), spec.benchmark.clone().into()),
        ],
    )
}

/// Closes a per-spec span with the queue-wait / run-time split. The label
/// repeats on the end event so stream consumers (the progress adapter,
/// `ltsim events summarize`) need not correlate begin/end pairs.
fn end_spec_span(span: ltc_telemetry::Span, spec: &RunSpec, queue_wait: Duration, run: Duration) {
    if !ltc_telemetry::enabled() {
        return;
    }
    span.end_with(vec![
        ("label".to_string(), spec.label().into()),
        ("queue_wait_us".to_string(), (queue_wait.as_micros() as u64).into()),
        ("run_us".to_string(), (run.as_micros() as u64).into()),
    ]);
}

/// Tags the calling backend worker thread with a stable 1-based
/// telemetry worker id, claiming one from `ids` the first time the
/// thread runs a spec. Workers are scoped threads that die with the
/// `execute` call, so ids never leak across executions.
fn claim_worker_id(ids: &AtomicU64) {
    if ltc_telemetry::enabled() && ltc_telemetry::current_worker().is_none() {
        ltc_telemetry::set_worker(ids.fetch_add(1, Ordering::Relaxed));
    }
}

/// The scoped-thread pool: workers claim specs from a shared atomic index
/// in input order. Simple and fair when spec costs are homogeneous.
#[derive(Debug, Clone)]
pub struct ThreadPoolBackend {
    /// Worker thread count (clamped to at least 1).
    pub threads: usize,
}

impl ExecutionBackend for ThreadPoolBackend {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn execute(&self, specs: &[RunSpec], observer: &dyn RunObserver) -> io::Result<Vec<RunResult>> {
        let queued = Instant::now();
        let worker_ids = AtomicU64::new(1);
        Ok(sweep_bounded(specs.to_vec(), self.threads, |spec| {
            claim_worker_id(&worker_ids);
            run_observed(spec, observer, queued)
        }))
    }
}

/// Relative cost estimate used to seed [`ShardedBackend`] deques
/// longest-first. Timing runs simulate a full out-of-order machine per
/// access and dominate real sweeps; a multi-programmed run with a partner
/// doubles its access budget and runs two hierarchies.
fn cost_estimate(spec: &RunSpec) -> u64 {
    let weight = match &spec.mode {
        Mode::Timing => 10,
        Mode::MultiProg { partner: Some(_) } => 4,
        // A segmented parent executed directly replays every segment
        // sequentially (the scheduler normally expands it instead).
        Mode::MultiProg { partner: None } | Mode::StreamSegmented { .. } => 2,
        Mode::Coverage
        | Mode::DeadTime
        | Mode::Correlation
        | Mode::Ordering
        | Mode::Stream { .. } => 1,
        // One slice: simulate `accesses / segments`, but generate up to
        // the slice's end to skip there — later slices cost more
        // generation, earlier ones more simulation; call it one unit of
        // the *slice* budget so a many-segment fan-out seeds fairly.
        Mode::StreamSegment { segments, .. } => {
            return (spec.accesses / u64::from(*segments).max(1)).max(1);
        }
    };
    spec.accesses.saturating_mul(weight).max(1)
}

/// Work stealing over per-worker deques.
///
/// Specs are sorted by `cost_estimate` descending and dealt round-robin
/// across the shards, so every worker starts on a long run and the cheap
/// tail gets stolen by whoever drains first — the classic fix for a pool
/// where one late-claimed timing run serializes the finish.
#[derive(Debug, Clone)]
pub struct ShardedBackend {
    /// Worker (and shard) count, clamped to at least 1.
    pub workers: usize,
}

impl ShardedBackend {
    /// Deals spec indices into per-worker deques, longest first.
    fn seed_shards(&self, specs: &[RunSpec], shards: usize) -> Vec<Mutex<VecDeque<usize>>> {
        let mut order: Vec<usize> = (0..specs.len()).collect();
        // Stable sort: equal-cost specs keep input order, so runs are
        // reproducible given a worker count.
        order.sort_by_key(|&i| std::cmp::Reverse(cost_estimate(&specs[i])));
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..shards).map(|_| Mutex::new(VecDeque::new())).collect();
        for (round, idx) in order.into_iter().enumerate() {
            deques[round % shards].lock().expect("shard lock").push_back(idx);
        }
        deques
    }
}

/// Claims the next spec for worker `me`: own deque front first (its
/// longest remaining work), then victims' backs (their cheapest), which
/// keeps stolen work small and contention low.
fn steal(shards: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(idx) = shards[me].lock().expect("shard lock").pop_front() {
        return Some(idx);
    }
    for offset in 1..shards.len() {
        let victim = (me + offset) % shards.len();
        if let Some(idx) = shards[victim].lock().expect("shard lock").pop_back() {
            return Some(idx);
        }
    }
    None
}

impl ExecutionBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn execute(&self, specs: &[RunSpec], observer: &dyn RunObserver) -> io::Result<Vec<RunResult>> {
        let n = specs.len();
        let workers = self.workers.max(1).min(n.max(1));
        let shards = self.seed_shards(specs, workers);
        let queued = Instant::now();
        let slots: Vec<Mutex<Option<RunResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for me in 0..workers {
                let (shards, slots) = (&shards, &slots);
                scope.spawn(move || {
                    if ltc_telemetry::enabled() {
                        ltc_telemetry::set_worker(me as u64 + 1);
                    }
                    while let Some(idx) = steal(shards, me) {
                        let result = run_observed(&specs[idx], observer, queued);
                        *slots[idx].lock().expect("slot lock") = Some(result);
                    }
                });
            }
        });
        Ok(slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot lock").expect("every spec executed"))
            .collect())
    }
}

/// A pool of worker child processes speaking the newline-delimited JSON
/// protocol: one canonical [`RunSpec`] JSON line in on stdin, one
/// [`RunResult`] JSON line out on stdout, repeated until stdin closes.
///
/// Each worker thread owns one child and feeds it specs from a shared
/// index; stderr is inherited so worker panics surface in the parent's
/// output. A child that exits early or answers with unparsable JSON fails
/// the execution with a descriptive error — results completed by other
/// workers have already been persisted through the observer.
#[derive(Debug, Clone)]
pub struct SubprocessBackend {
    /// Worker argv (program plus arguments), e.g. `["ltsim", "worker"]`.
    pub command: Vec<String>,
    /// Concurrent worker processes, clamped to at least 1.
    pub workers: usize,
}

impl ExecutionBackend for SubprocessBackend {
    fn name(&self) -> &'static str {
        "subprocess"
    }

    fn execute(&self, specs: &[RunSpec], observer: &dyn RunObserver) -> io::Result<Vec<RunResult>> {
        if self.command.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "subprocess backend needs a worker command",
            ));
        }
        let n = specs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.workers.max(1).min(n);
        let next = AtomicUsize::new(0);
        // Raised on the first worker failure so the surviving workers
        // stop claiming new specs: the execution is doomed to return the
        // error anyway, and without a cache the remaining simulations
        // would be wasted wall time.
        let abort = AtomicBool::new(false);
        let queued = Instant::now();
        let slots: Vec<Mutex<Option<RunResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let first_error: Mutex<Option<io::Error>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let (next, abort, slots, first_error) = (&next, &abort, &slots, &first_error);
                scope.spawn(move || {
                    if ltc_telemetry::enabled() {
                        ltc_telemetry::set_worker(me as u64 + 1);
                    }
                    if let Err(e) =
                        drive_worker(&self.command, specs, next, abort, slots, observer, queued)
                    {
                        abort.store(true, Ordering::Relaxed);
                        first_error.lock().expect("error lock").get_or_insert(e);
                    }
                });
            }
        });
        if let Some(e) = first_error.into_inner().expect("error lock") {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot lock").expect("every spec executed"))
            .collect())
    }
}

/// One worker thread's loop: spawn the child, round-trip specs claimed
/// from the shared index until none remain (or a peer fails), then shut
/// the child down.
fn drive_worker(
    command: &[String],
    specs: &[RunSpec],
    next: &AtomicUsize,
    abort: &AtomicBool,
    slots: &[Mutex<Option<RunResult>>],
    observer: &dyn RunObserver,
    queued: Instant,
) -> io::Result<()> {
    let mut worker = WorkerProcess::spawn(command)?;
    loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let idx = next.fetch_add(1, Ordering::Relaxed);
        let Some(spec) = specs.get(idx) else { break };
        observer.started(spec);
        let queue_wait = queued.elapsed();
        let span = spec_span(spec);
        let start = Instant::now();
        let result = worker.round_trip(spec)?;
        let elapsed = start.elapsed();
        end_spec_span(span, spec, queue_wait, elapsed);
        observer.finished(spec, &result, elapsed);
        *slots[idx].lock().expect("slot lock") = Some(result);
    }
    worker.shutdown()
}

/// A spawned worker child with its protocol pipes.
struct WorkerProcess {
    child: Child,
    /// `Option` so shutdown (and `Drop`) can close stdin to signal EOF.
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    /// Child telemetry span ids → parent span ids. Children number spans
    /// from their own counters, so forwarded frames are remapped into the
    /// parent's id space to stay collision-free across workers.
    span_map: HashMap<u64, u64>,
}

impl WorkerProcess {
    fn spawn(command: &[String]) -> io::Result<Self> {
        let mut cmd = Command::new(&command[0]);
        cmd.args(&command[1..]).stdin(Stdio::piped()).stdout(Stdio::piped());
        if ltc_telemetry::enabled() {
            // Asks `ltsim worker` to interleave telemetry frames with its
            // result lines; without the variable children stay silent.
            cmd.env(ltc_telemetry::WIRE_ENV, "1");
        }
        let mut child = cmd.spawn().map_err(|e| {
            io::Error::new(e.kind(), format!("spawning worker `{}`: {e}", command[0]))
        })?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(WorkerProcess { child, stdin: Some(stdin), stdout, span_map: HashMap::new() })
    }

    /// Sends one spec line, then reads until the result line arrives,
    /// forwarding any interleaved `{"event":…}` telemetry frames into the
    /// parent's event stream.
    fn round_trip(&mut self, spec: &RunSpec) -> io::Result<RunResult> {
        let stdin = self.stdin.as_mut().expect("stdin open until shutdown");
        writeln!(stdin, "{}", spec.key())?;
        stdin.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            if self.stdout.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("worker exited before answering spec {}", spec.key()),
                ));
            }
            let trimmed = line.trim();
            if trimmed.starts_with("{\"event\":") {
                forward_wire_frame(&mut self.span_map, trimmed);
                continue;
            }
            return serde_json::from_str(trimmed).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad RunResult line from worker for spec {}: {e}", spec.key()),
                )
            });
        }
    }

    /// Closes stdin (the protocol's end-of-work signal), drains any
    /// telemetry the child flushes on exit, and reaps it, surfacing a
    /// non-zero exit as an error.
    fn shutdown(&mut self) -> io::Result<()> {
        drop(self.stdin.take());
        let mut line = String::new();
        while self.stdout.read_line(&mut line)? > 0 {
            let trimmed = line.trim();
            if trimmed.starts_with("{\"event\":") {
                forward_wire_frame(&mut self.span_map, trimmed);
            }
            line.clear();
        }
        let status = self.child.wait()?;
        if status.success() {
            Ok(())
        } else {
            Err(io::Error::other(format!("worker exited with {status}")))
        }
    }
}

/// Re-emits one child telemetry frame into this process's event stream:
/// the timestamp is restamped on the parent clock, the span id remapped
/// through `span_map`, and the worker id replaced with the driving
/// thread's id (children don't know which pool slot they occupy).
/// Malformed frames are dropped — telemetry must never fail a run.
fn forward_wire_frame(span_map: &mut HashMap<u64, u64>, line: &str) {
    let Ok(value) = serde_json::parse(line) else { return };
    let Some(wrapped) = value.get("event") else { return };
    if let Some(event) = wire_event(wrapped, span_map) {
        ltc_telemetry::emit(&event);
    }
}

/// Rebuilds an [`Event`] from a parsed wire frame payload.
fn wire_event(v: &Value, span_map: &mut HashMap<u64, u64>) -> Option<Event> {
    let kind = EventKind::parse(v.get("kind")?.as_str()?)?;
    let mut event = Event::now(kind, v.get("name")?.as_str()?);
    if let Some(child_span) = v.get("span").and_then(Value::as_u64) {
        let id = *span_map.entry(child_span).or_insert_with(ltc_telemetry::next_span_id);
        event.span = Some(id);
    }
    if let Some(fields) = v.get("fields").and_then(Value::as_map) {
        for (key, field) in fields {
            let value = match field {
                Value::Bool(b) => FieldValue::Bool(*b),
                Value::U64(n) => FieldValue::U64(*n),
                Value::I64(n) => FieldValue::I64(*n),
                Value::F64(f) => FieldValue::F64(*f),
                Value::Str(s) => FieldValue::Str(s.clone()),
                Value::Null | Value::Seq(_) | Value::Map(_) => continue,
            };
            event.fields.push((key.clone(), value));
        }
    }
    Some(event)
}

impl Drop for WorkerProcess {
    /// Error-path cleanup: don't leave a zombie if `shutdown` was never
    /// reached (a successful `shutdown` makes both calls no-ops).
    fn drop(&mut self) {
        drop(self.stdin.take());
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PredictorKind;

    fn tiny(bench: &str, accesses: u64) -> RunSpec {
        RunSpec::coverage(bench, PredictorKind::Baseline, accesses, 1)
    }

    #[test]
    fn timing_runs_cost_more_than_coverage() {
        let coverage = tiny("gzip", 10_000);
        let timing = RunSpec::timing("gzip", PredictorKind::Baseline, 10_000, 1);
        assert!(cost_estimate(&timing) > cost_estimate(&coverage));
        let paired = RunSpec::multiprog("gzip", Some("mcf"), PredictorKind::Baseline, 10_000, 1);
        let alone = RunSpec::multiprog("gzip", None, PredictorKind::Baseline, 10_000, 1);
        assert!(cost_estimate(&paired) > cost_estimate(&alone));
    }

    #[test]
    fn sharded_seeds_longest_first_round_robin() {
        let backend = ShardedBackend { workers: 2 };
        let specs = vec![
            tiny("gzip", 1_000),
            RunSpec::timing("mcf", PredictorKind::Baseline, 1_000, 1),
            tiny("art", 2_000),
            RunSpec::timing("mesa", PredictorKind::Baseline, 2_000, 1),
        ];
        let shards = backend.seed_shards(&specs, 2);
        let front_costs: Vec<u64> = shards
            .iter()
            .map(|s| cost_estimate(&specs[*s.lock().unwrap().front().unwrap()]))
            .collect();
        // Every worker starts on a timing run, not a cheap coverage run.
        assert!(front_costs.iter().all(|&c| c >= 10_000), "fronts: {front_costs:?}");
    }

    #[test]
    fn backends_preserve_input_order() {
        let specs = vec![tiny("gzip", 2_000), tiny("mesa", 2_000), tiny("art", 2_000)];
        for backend in [BackendKind::Threads.build(2), BackendKind::Sharded.build(2)] {
            let results = backend.execute(&specs, &NullObserver).unwrap();
            assert_eq!(results.len(), specs.len(), "{}", backend.name());
            for (spec, result) in specs.iter().zip(&results) {
                // run_coverage reserves a quarter of the budget as warmup.
                assert_eq!(
                    result.as_coverage().expect("coverage result").accesses,
                    spec.accesses - spec.accesses / 4,
                    "{}: result out of order for {}",
                    backend.name(),
                    spec.key()
                );
            }
        }
    }

    #[test]
    fn observer_sees_every_spec_once() {
        #[derive(Default)]
        struct Counter {
            started: AtomicUsize,
            finished: AtomicUsize,
        }
        impl RunObserver for Counter {
            fn started(&self, _: &RunSpec) {
                self.started.fetch_add(1, Ordering::Relaxed);
            }
            fn finished(&self, _: &RunSpec, _: &RunResult, _: Duration) {
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
        }
        let specs: Vec<RunSpec> =
            ["gzip", "mesa", "art", "mcf", "swim"].iter().map(|b| tiny(b, 2_000)).collect();
        for kind in [BackendKind::Threads, BackendKind::Sharded] {
            let counter = Counter::default();
            kind.build(3).execute(&specs, &counter).unwrap();
            assert_eq!(counter.started.load(Ordering::Relaxed), specs.len());
            assert_eq!(counter.finished.load(Ordering::Relaxed), specs.len());
        }
    }

    #[test]
    fn subprocess_backend_rejects_an_empty_command() {
        let backend = SubprocessBackend { command: Vec::new(), workers: 2 };
        let err = backend.execute(&[tiny("gzip", 1_000)], &NullObserver).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn subprocess_backend_surfaces_spawn_failure() {
        let backend = SubprocessBackend {
            command: vec!["/nonexistent/ltc-worker-binary".to_string(), "worker".to_string()],
            workers: 1,
        };
        let err = backend.execute(&[tiny("gzip", 1_000)], &NullObserver).unwrap_err();
        assert!(err.to_string().contains("spawning worker"), "{err}");
    }
}
