//! Fan-out and reduce for segmented streaming runs.
//!
//! A [`Mode::StreamSegmented`] spec is a *composite* experiment: one
//! logical trace split into `segments` slices, each summarized by an
//! ordinary [`Mode::StreamSegment`] child spec, and the partial
//! summaries merged back (`ltc_analysis::merge_partials`) into the one
//! report the parent stands for. The scheduler expands parents into
//! children before handing work to the execution backend — so the
//! slices run in parallel on *any* backend, including `subprocess`,
//! where the partial summaries travel back over the worker JSON-lines
//! protocol as `stream-partial` results — and calls [`reduce`] once the
//! children are in.
//!
//! The split is deliberately visible in every key: a child's cache key
//! carries the budget, the segment count and the segment index, so
//! `--segments 4` and `--segments 8` runs (whose slices cover different
//! access ranges) can never alias each other's artifacts.

use std::io;

use ltc_analysis::merge_partials;

use crate::engine::result::{ResultSet, RunResult};
use crate::engine::spec::{Mode, RunSpec};

/// The per-segment child specs of a segmented parent, in segment order —
/// or `None` if `spec` is not a [`Mode::StreamSegmented`] run.
pub fn children(spec: &RunSpec) -> Option<Vec<RunSpec>> {
    match spec.mode {
        Mode::StreamSegmented { budget_bytes, segments, warmup } => Some(
            (0..segments)
                .map(|segment| {
                    RunSpec::stream_segment(
                        &spec.benchmark,
                        budget_bytes,
                        segments,
                        segment,
                        spec.accesses,
                        spec.seed,
                    )
                    .with_stream_warmup(warmup)
                })
                .collect(),
        ),
        _ => None,
    }
}

/// Merges a parent's child results out of `results` into the parent's
/// [`RunResult::Stream`] report.
///
/// # Errors
///
/// Returns `InvalidData` when a child result is missing or of the wrong
/// kind (a scheduler contract violation) or when the partial summaries
/// refuse to merge (`ltc_stream::MergeError`, e.g. shape-mismatched
/// partials smuggled in from a differently-configured worker) — typed
/// errors, never panics, because child results cross process boundaries.
pub fn reduce(parent: &RunSpec, results: &ResultSet) -> io::Result<RunResult> {
    let children = children(parent).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("spec {} is not a segmented streaming run", parent.key()),
        )
    })?;
    let partials: Vec<_> = children
        .iter()
        .map(|child| match results.get(child) {
            Some(RunResult::StreamPartial(p)) => Ok((**p).clone()),
            Some(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("segment {} answered with a {} result", child.key(), other.kind()),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("missing segment result for {}", child.key()),
            )),
        })
        .collect::<io::Result<_>>()?;
    let report = merge_partials(&partials).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cannot reduce segments of {}: {e}", parent.key()),
        )
    })?;
    Ok(RunResult::Stream(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_analysis::StreamReport;

    fn parent() -> RunSpec {
        RunSpec::stream_segmented("mcf", 64 << 10, 3, 6_000, 1)
    }

    #[test]
    fn children_cover_every_segment_in_order() {
        let kids = children(&parent()).unwrap();
        assert_eq!(kids.len(), 3);
        for (i, kid) in kids.iter().enumerate() {
            assert_eq!(
                kid.mode,
                Mode::StreamSegment {
                    budget_bytes: 64 << 10,
                    segments: 3,
                    segment: i as u32,
                    warmup: ltc_analysis::SEGMENT_WARMUP,
                }
            );
            assert_eq!(kid.benchmark, "mcf");
            assert_eq!((kid.accesses, kid.seed), (6_000, 1));
        }
        assert!(children(&RunSpec::stream("mcf", 64 << 10, 6_000, 1)).is_none());
        // A non-default warm-up is inherited by every child.
        for kid in children(&parent().with_stream_warmup(7_000)).unwrap() {
            assert!(matches!(kid.mode, Mode::StreamSegment { warmup: 7_000, .. }));
        }
    }

    #[test]
    fn reduce_demands_every_child() {
        let results = ResultSet::new();
        let err = reduce(&parent(), &results).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("missing segment"), "{err}");
    }

    #[test]
    fn reduce_rejects_wrong_result_kinds() {
        let mut results = ResultSet::new();
        for child in children(&parent()).unwrap() {
            results.insert(child, RunResult::Stream(StreamReport::default()));
        }
        let err = reduce(&parent(), &results).unwrap_err();
        assert!(err.to_string().contains("answered with a stream result"), "{err}");
    }

    #[test]
    fn reduce_matches_the_parent_spec_executed_directly() {
        let spec = RunSpec::stream_segmented("gzip", 64 << 10, 2, 4_000, 1);
        let mut results = ResultSet::new();
        for child in children(&spec).unwrap() {
            let result = child.execute();
            results.insert(child, result);
        }
        let reduced = reduce(&spec, &results).unwrap();
        assert_eq!(reduced, spec.execute(), "fan-out + reduce must equal sequential execution");
    }

    #[test]
    fn reduce_surfaces_shape_mismatch_as_typed_error() {
        // Smuggle in a partial from a differently-budgeted run: the
        // reduce step must refuse with an error naming the merge problem.
        let spec = RunSpec::stream_segmented("gzip", 64 << 10, 2, 4_000, 1);
        let kids = children(&spec).unwrap();
        let mut results = ResultSet::new();
        results.insert(kids[0].clone(), kids[0].execute());
        let alien = RunSpec::stream_segment("gzip", 128 << 10, 2, 1, 4_000, 1);
        results.insert(kids[1].clone(), alien.execute());
        let err = reduce(&spec, &results).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("cannot merge"), "{err}");
    }
}
