//! The `results/` artifact cache and serialized export formats.
//!
//! Layout: one file per run at `<dir>/<fnv1a64(spec key)>.json`, holding a
//! single JSON line `{"spec": ..., "result": ...}`. The spec is stored
//! alongside the result so a load can verify the file really belongs to
//! the requested spec (hash collisions or stale files degrade to cache
//! misses, never to wrong data), and so the directory is self-describing:
//! `cat results/*.json` is a valid JSON-lines dump of every run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Value};

use crate::engine::fsutil;
use crate::engine::result::RunResult;
use crate::engine::spec::RunSpec;

/// The artifact path for a spec.
pub fn path_for(dir: &Path, spec: &RunSpec) -> PathBuf {
    dir.join(format!("{}.json", spec.hash_hex()))
}

/// One `{"spec": ..., "result": ...}` JSON line.
pub fn json_line(spec: &RunSpec, result: &RunResult) -> String {
    serde_json::to_string(&Value::Map(vec![
        ("spec".to_string(), serde_json::to_value(spec)),
        ("result".to_string(), serde_json::to_value(result)),
    ]))
}

/// Writes the artifact for one run (creates `dir` as needed).
///
/// The write is atomic and durable ([`fsutil::write_atomic`]): a worker
/// killed mid-store — a crash, a chaos-test injection, a timeout kill —
/// can never leave a truncated `results/*.json` behind, only a staging
/// file the next startup sweeps.
///
/// # Errors
///
/// Returns any filesystem error.
pub fn store(dir: &Path, spec: &RunSpec, result: &RunResult) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut line = json_line(spec, result);
    line.push('\n');
    fsutil::write_atomic(&path_for(dir, spec), line.as_bytes())
}

/// Loads the artifact for `spec`, verifying the stored spec matches.
///
/// Returns `Ok(None)` when the file is absent, unparsable, or belongs to
/// a different spec — all degrade to a cache miss so the engine
/// re-simulates and overwrites.
///
/// # Errors
///
/// Returns filesystem errors other than "not found".
pub fn load(dir: &Path, spec: &RunSpec) -> io::Result<Option<RunResult>> {
    let text = match fs::read_to_string(path_for(dir, spec)) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let Ok(value) = serde_json::parse(text.trim()) else { return Ok(None) };
    let stored_spec = value.get("spec").map(RunSpec::from_value);
    if !matches!(stored_spec, Some(Ok(s)) if s == *spec) {
        return Ok(None);
    }
    match value.get("result").map(RunResult::from_value) {
        Some(Ok(result)) => Ok(Some(result)),
        _ => Ok(None),
    }
}

/// Flattens `(spec, result)` pairs into CSV.
///
/// Nested maps flatten to dot-joined column names (`result.traffic.
/// sequence_read_bytes`); the column set is the first-seen union across
/// rows, so heterogeneous modes can share one file with blanks where a
/// column does not apply. Sequences (histogram buckets) serialize as a
/// quoted JSON array in their cell.
pub fn to_csv<'a>(rows: impl IntoIterator<Item = (&'a RunSpec, &'a RunResult)>) -> String {
    let mut columns: Vec<String> = Vec::new();
    let mut flat_rows: Vec<Vec<(String, String)>> = Vec::new();
    for (spec, result) in rows {
        let mut cells = Vec::new();
        flatten("spec", &serde_json::to_value(spec), &mut cells);
        flatten("result", &serde_json::to_value(result), &mut cells);
        for (name, _) in &cells {
            if !columns.contains(name) {
                columns.push(name.clone());
            }
        }
        flat_rows.push(cells);
    }
    let mut out = String::new();
    out.push_str(&columns.iter().map(|c| csv_cell(c)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for cells in flat_rows {
        let row: Vec<String> = columns
            .iter()
            .map(|col| {
                cells
                    .iter()
                    .find(|(name, _)| name == col)
                    .map(|(_, v)| csv_cell(v))
                    .unwrap_or_default()
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn flatten(prefix: &str, value: &Value, out: &mut Vec<(String, String)>) {
    match value {
        Value::Map(entries) => {
            for (k, v) in entries {
                flatten(&format!("{prefix}.{k}"), v, out);
            }
        }
        Value::Null => out.push((prefix.to_string(), String::new())),
        Value::Str(s) => out.push((prefix.to_string(), s.clone())),
        scalar_or_seq => out.push((prefix.to_string(), serde_json::to_string(scalar_or_seq))),
    }
}

fn csv_cell(raw: &str) -> String {
    if raw.contains([',', '"', '\n']) {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{MultiProgReport, PredictorKind};
    use ltc_analysis::CoverageReport;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ltc-artifact-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (RunSpec, RunResult) {
        let spec = RunSpec::coverage("gzip", PredictorKind::LtCords, 10_000, 1);
        let result = RunResult::Coverage(CoverageReport {
            predictor: "lt-cords".into(),
            accesses: 7_500,
            base_l1_misses: 100,
            correct: 42,
            ..Default::default()
        });
        (spec, result)
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let (spec, result) = sample();
        store(&dir, &spec, &result).unwrap();
        assert_eq!(load(&dir, &spec).unwrap(), Some(result));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_and_corrupt_artifacts_are_misses() {
        let dir = tmp_dir("corrupt");
        let (spec, result) = sample();
        assert_eq!(load(&dir, &spec).unwrap(), None);
        store(&dir, &spec, &result).unwrap();
        fs::write(path_for(&dir, &spec), "not json").unwrap();
        assert_eq!(load(&dir, &spec).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_spec_in_file_is_a_miss() {
        let dir = tmp_dir("mismatch");
        let (spec, result) = sample();
        let other = RunSpec::coverage("mcf", PredictorKind::LtCords, 10_000, 1);
        store(&dir, &spec, &result).unwrap();
        // Copy gzip's artifact over mcf's slot: the stored spec disagrees.
        fs::copy(path_for(&dir, &spec), path_for(&dir, &other)).unwrap();
        assert_eq!(load(&dir, &other).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_flattens_nested_reports() {
        let (spec, result) = sample();
        let mspec = RunSpec::multiprog("gcc", Some("mcf"), PredictorKind::LtCords, 10_000, 1);
        let mresult = RunResult::MultiProg(MultiProgReport { focus_misses: 10, eliminated: 5 });
        let csv = to_csv([(&spec, &result), (&mspec, &mresult)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("spec.model_version,spec.benchmark"));
        assert!(lines[0].contains("result.data.correct"));
        assert!(lines[0].contains("result.data.eliminated"));
        let version = crate::engine::spec::MODEL_VERSION;
        assert!(lines[1].starts_with(&format!("{version},gzip,")));
        assert!(lines[2].starts_with(&format!("{version},gcc,")));
    }
}
