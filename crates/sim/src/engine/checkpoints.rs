//! Shared generator checkpoints and warm hierarchy images for segmented
//! streaming runs.
//!
//! A segmented worker used to pay O(start) generator work just to reach
//! its slice: segment `i` of `N` skips `i·S/N` accesses before the
//! warm-up window, so the *total* setup across a run grew quadratically
//! with the trace (≈ N·S/2 skipped accesses at N segments). The suite's
//! generators are now checkpointable ([`ltc_trace::SourceState`]), which
//! turns that into a one-time *recording* pass: walk one source to each
//! segment's pre-warm-up position, snapshot it there, and let every
//! worker restore its snapshot instead of regenerating the prefix —
//! O(S) total recording plus O(warm-up) per worker.
//!
//! The remaining per-worker cost — replaying the warm-up window through
//! a cold hierarchy — is removed the same way: the recording pass also
//! replays each window once and snapshots the *simulated hierarchy* at
//! the slice start (a [`WarmImage`]). A worker that finds an image for
//! its exact start restores the cache state directly and skips the
//! replay entirely; paired with a checkpoint at the start itself, its
//! setup collapses to O(1). The image holds the state the replay would
//! have produced, so results stay byte-identical either way (asserted
//! by the cross-backend equality tests and the nightly A/B diff).
//! Setting the `LTC_NO_WARM_IMAGES` environment variable (non-empty)
//! disables recording and lookup, forcing the replay path.
//!
//! Checkpoints are keyed by `(benchmark, seed)` — together with the
//! model version these fully determine the access stream — and warm
//! images additionally by the configured warm-up length
//! ([`ltc_analysis::StreamConfig::warmup`], which changes the window and
//! therefore the state). Both live in two tiers:
//!
//! 1. a process-global registry, which in-process backends (`threads`,
//!    `sharded`) hit directly, and
//! 2. an optional on-disk store under the directory named by the
//!    `LTC_CHECKPOINT_DIR` environment variable, which `subprocess`
//!    workers (separate processes that inherit the variable) read.
//!
//! Restoring a checkpoint reproduces the generator state exactly, so
//! the access stream a worker sees — and every report built from it —
//! is byte-identical to the skip-loop path ([`ltc_analysis::StreamAnalysis::
//! run_segment_with`] falls back to plain skipping whenever no usable
//! checkpoint exists, e.g. for non-checkpointable external sources). A
//! corrupt or truncated on-disk store is ignored with a warning — the
//! worker falls back rather than failing the run.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use ltc_analysis::WarmImage;
use ltc_cache::{Hierarchy, HierarchyConfig};
use ltc_trace::{suite, Checkpoint, CheckpointStore, TraceSource};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::engine::spec::{fnv1a64, MODEL_VERSION};

/// Environment variable naming the on-disk checkpoint directory.
///
/// When set, [`ensure`] persists recorded stores there and [`lookup`]
/// falls back to it, so `ltsim worker` subprocesses (which inherit the
/// variable) reuse the parent's recording pass.
pub const CHECKPOINT_DIR_ENV: &str = "LTC_CHECKPOINT_DIR";

/// Environment variable disabling warm hierarchy images (any non-empty
/// value). Workers then warm up by replay, the behaviour the images
/// must reproduce byte-identically — the nightly CI job runs every
/// backend both ways and diffs the reports.
pub const NO_WARM_IMAGES_ENV: &str = "LTC_NO_WARM_IMAGES";

/// Whether warm hierarchy images are disabled via [`NO_WARM_IMAGES_ENV`].
pub fn warm_images_disabled() -> bool {
    std::env::var_os(NO_WARM_IMAGES_ENV).is_some_and(|v| !v.is_empty())
}

/// Walks `source` from the beginning and snapshots it at each of
/// `targets` (positions in accesses produced), returning the recorded
/// store. This is the pure core of the subsystem: no registry, no
/// filesystem — benches and tests drive it directly.
///
/// Targets are visited in ascending order (duplicates collapse); a
/// position of zero is recorded without advancing. Recording stops
/// early — returning the checkpoints gathered so far — if the source
/// ends or does not support checkpointing.
pub fn record_targets<S: TraceSource + ?Sized>(source: &mut S, targets: &[u64]) -> CheckpointStore {
    let mut sorted: Vec<u64> = targets.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut store = CheckpointStore::default();
    let mut pos = 0u64;
    'targets: for &target in &sorted {
        while pos < target {
            if source.next_access().is_none() {
                break 'targets;
            }
            pos += 1;
        }
        let Some(state) = source.checkpoint() else { break };
        store.insert(Checkpoint { pos, state });
    }
    store
}

/// Warm hierarchy images for one `(benchmark, seed, warm-up)`, indexed
/// by slice-start position.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmStore {
    images: Vec<WarmImage>,
}

impl WarmStore {
    /// Adds an image, keeping positions sorted (last insert wins on a
    /// duplicate position).
    pub fn insert(&mut self, image: WarmImage) {
        match self.images.binary_search_by_key(&image.pos, |w| w.pos) {
            Ok(i) => self.images[i] = image,
            Err(i) => self.images.insert(i, image),
        }
    }

    /// The image recorded at exactly `pos`, if any.
    pub fn at(&self, pos: u64) -> Option<&WarmImage> {
        self.images.binary_search_by_key(&pos, |w| w.pos).ok().map(|i| &self.images[i])
    }

    /// Recorded images in position order.
    pub fn iter(&self) -> impl Iterator<Item = &WarmImage> {
        self.images.iter()
    }

    /// Number of recorded images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the store holds no images.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

/// Replays `source` once from the beginning and snapshots the simulated
/// hierarchy at each of `starts`, warming each snapshot on the
/// `warmup`-access window that precedes its position — exactly the
/// window a segment worker would replay. This is the pure core of warm
/// imaging: no registry, no filesystem, no environment.
///
/// Windows of nearby starts may overlap; each start gets its own
/// hierarchy fed only its own window, all from a single source walk.
/// Position zero is skipped (a slice starting at zero has no warm-up —
/// its cold hierarchy is already exact). If the source ends before a
/// start is reached, that image is simply not recorded and its worker
/// falls back to the replay path.
pub fn record_warm_images<S: TraceSource + ?Sized>(
    source: &mut S,
    warmup: u64,
    starts: &[u64],
) -> WarmStore {
    let mut sorted: Vec<u64> = starts.iter().copied().filter(|&s| s > 0).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut store = WarmStore::default();
    let mut active: Vec<(u64, Hierarchy)> = Vec::new();
    let mut next = 0usize;
    let mut pos = 0u64;
    loop {
        // Window starts are non-decreasing along `sorted`, so each opens
        // exactly when the walk reaches it.
        while next < sorted.len() && sorted[next] - sorted[next].min(warmup) <= pos {
            active.push((sorted[next], Hierarchy::new(HierarchyConfig::paper())));
            next += 1;
        }
        while let Some(i) = active.iter().position(|(start, _)| *start == pos) {
            let (start, hierarchy) = active.swap_remove(i);
            store.insert(WarmImage { pos: start, image: hierarchy.to_image() });
        }
        if next >= sorted.len() && active.is_empty() {
            break;
        }
        let Some(a) = source.next_access() else { break };
        for (_, hierarchy) in &mut active {
            hierarchy.access(a.addr, a.kind);
        }
        pos += 1;
    }
    store
}

/// Makes checkpoints for `(benchmark, seed)` at every position in
/// `targets` available to [`lookup`], recording them if needed.
///
/// Positions already covered by the registry or the on-disk store are
/// not re-recorded; a partially-covering store is extended by one
/// recording pass over the union of its positions and the missing
/// targets. The result lands in the process registry and — when
/// [`CHECKPOINT_DIR_ENV`] is set — on disk for subprocess workers.
/// Returns `None` for an unknown benchmark; zero targets are skipped
/// (a fresh source already *is* position zero).
pub fn ensure(benchmark: &str, seed: u64, targets: &[u64]) -> Option<Arc<CheckpointStore>> {
    let wanted: Vec<u64> = {
        let mut t: Vec<u64> = targets.iter().copied().filter(|&t| t > 0).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let existing = lookup(benchmark, seed);
    if let Some(store) = &existing {
        if wanted.iter().all(|&t| store.at(t).is_some()) {
            return existing;
        }
    }
    let entry = suite::by_name(benchmark)?;
    let mut union = wanted;
    if let Some(store) = &existing {
        union.extend(store.iter().map(|c| c.pos));
    }
    let store = Arc::new(record_targets(&mut entry.build(seed), &union));
    registry()
        .lock()
        .expect("checkpoint registry lock")
        .insert(key(benchmark, seed), store.clone());
    if let Some(dir) = dir_from_env() {
        // Best-effort persistence: a worker that cannot read the store
        // falls back to the skip loop, so disk errors are not fatal.
        let _ = persist(&dir, benchmark, seed, &store);
    }
    Some(store)
}

/// Makes warm images for `(benchmark, seed, warmup)` at every slice
/// start in `starts` available to [`lookup_warm`], recording them if
/// needed — the warm-image counterpart of [`ensure`].
///
/// Returns `None` for an unknown benchmark or when warm images are
/// disabled ([`NO_WARM_IMAGES_ENV`]). Start zero is skipped (no warm-up
/// window to capture).
pub fn ensure_warm(
    benchmark: &str,
    seed: u64,
    warmup: u64,
    starts: &[u64],
) -> Option<Arc<WarmStore>> {
    if warm_images_disabled() {
        return None;
    }
    let wanted: Vec<u64> = {
        let mut s: Vec<u64> = starts.iter().copied().filter(|&s| s > 0).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let existing = lookup_warm(benchmark, seed, warmup);
    if let Some(store) = &existing {
        if wanted.iter().all(|&s| store.at(s).is_some()) {
            return existing;
        }
    }
    let entry = suite::by_name(benchmark)?;
    let mut union = wanted;
    if let Some(store) = &existing {
        union.extend(store.iter().map(|w| w.pos));
    }
    let store = Arc::new(record_warm_images(&mut entry.build(seed), warmup, &union));
    warm_registry()
        .lock()
        .expect("warm-image registry lock")
        .insert(warm_key(benchmark, seed, warmup), store.clone());
    if let Some(dir) = dir_from_env() {
        let _ = persist_warm(&dir, benchmark, seed, warmup, &store);
    }
    Some(store)
}

/// The pre-warm-up checkpoint positions of a segmented streaming run:
/// for each of `segments` even slices of `accesses`, the point a worker
/// must reach before its `warmup`-access warm replay begins. Zero
/// positions (segments whose whole prefix is warm-up) are omitted —
/// those workers generate everything anyway.
pub fn segment_targets(accesses: u64, segments: u32, warmup: u64) -> Vec<u64> {
    (0..segments)
        .map(|segment| {
            let start = ltc_trace::TraceSegment::nth(accesses, segments, segment).start;
            start - start.min(warmup)
        })
        .filter(|&t| t > 0)
        .collect()
}

/// The slice-start positions of a segmented streaming run (zero
/// omitted): where warm images are snapshotted, and where the fast-path
/// generator checkpoints land when images are enabled.
pub fn segment_starts(accesses: u64, segments: u32) -> Vec<u64> {
    (0..segments)
        .map(|segment| ltc_trace::TraceSegment::nth(accesses, segments, segment).start)
        .filter(|&s| s > 0)
        .collect()
}

/// One-stop preparation for a segmented run over `(benchmark, seed)`:
/// records the pre-warm-up generator checkpoints, and — unless disabled
/// — the warm images at each slice start plus the slice-start
/// checkpoints that let an image-restoring worker seek straight to its
/// slice. Used by the sequential [`crate::engine::Mode::StreamSegmented`]
/// execution path; the scheduler performs the same preparation batched
/// across specs.
pub fn prepare_segments(benchmark: &str, seed: u64, accesses: u64, segments: u32, warmup: u64) {
    let mut targets = segment_targets(accesses, segments, warmup);
    if !warm_images_disabled() {
        let starts = segment_starts(accesses, segments);
        ensure_warm(benchmark, seed, warmup, &starts);
        targets.extend(starts);
    }
    ensure(benchmark, seed, &targets);
}

/// The checkpoint store for `(benchmark, seed)`, if one has been
/// recorded: the process registry first, then the on-disk store named
/// by [`CHECKPOINT_DIR_ENV`] (cached into the registry on hit).
pub fn lookup(benchmark: &str, seed: u64) -> Option<Arc<CheckpointStore>> {
    if let Some(store) =
        registry().lock().expect("checkpoint registry lock").get(&key(benchmark, seed))
    {
        return Some(store.clone());
    }
    let dir = dir_from_env()?;
    let store: CheckpointStore = load_disk_store(&store_path(&dir, benchmark, seed), "checkpoint")?;
    let store = Arc::new(store);
    registry()
        .lock()
        .expect("checkpoint registry lock")
        .insert(key(benchmark, seed), store.clone());
    Some(store)
}

/// The warm-image store for `(benchmark, seed, warmup)`, if one has
/// been recorded: process registry first, then the on-disk store under
/// [`CHECKPOINT_DIR_ENV`]. Always `None` when images are disabled via
/// [`NO_WARM_IMAGES_ENV`].
pub fn lookup_warm(benchmark: &str, seed: u64, warmup: u64) -> Option<Arc<WarmStore>> {
    if warm_images_disabled() {
        return None;
    }
    if let Some(store) = warm_registry()
        .lock()
        .expect("warm-image registry lock")
        .get(&warm_key(benchmark, seed, warmup))
    {
        return Some(store.clone());
    }
    let dir = dir_from_env()?;
    let store: WarmStore =
        load_disk_store(&warm_store_path(&dir, benchmark, seed, warmup), "warm-image")?;
    let store = Arc::new(store);
    warm_registry()
        .lock()
        .expect("warm-image registry lock")
        .insert(warm_key(benchmark, seed, warmup), store.clone());
    Some(store)
}

/// The on-disk path of the store for `(benchmark, seed)` under `dir`.
///
/// The stem hashes benchmark, seed **and** model version, so stores
/// recorded under older generator behaviour can never be restored into
/// a newer model.
pub fn store_path(dir: &Path, benchmark: &str, seed: u64) -> PathBuf {
    let id = format!("{benchmark}|{seed}|v{MODEL_VERSION}");
    dir.join(format!("ckpt_{:016x}.json", fnv1a64(id.as_bytes())))
}

/// The on-disk path of the warm-image store for `(benchmark, seed,
/// warmup)` under `dir`. The warm-up length is part of the identity: it
/// changes the captured window, so differently-configured runs must
/// never share images.
pub fn warm_store_path(dir: &Path, benchmark: &str, seed: u64, warmup: u64) -> PathBuf {
    let id = format!("{benchmark}|{seed}|w{warmup}|v{MODEL_VERSION}");
    dir.join(format!("warm_{:016x}.json", fnv1a64(id.as_bytes())))
}

/// Reads and parses a JSON store file, tolerating damage: a missing
/// file is a silent miss (the normal cold-cache case), while unparsable
/// or shape-mismatched content — a torn write from a crashed recorder,
/// manual truncation — emits one structured `corrupt_store` warning
/// event (which falls back to stderr when no telemetry subscriber is
/// installed) and degrades to a miss so the worker falls back to the
/// replay path instead of failing the run.
fn load_disk_store<T: for<'de> Deserialize<'de>>(path: &Path, what: &str) -> Option<T> {
    let text = fs::read_to_string(path).ok()?;
    let parsed = serde_json::parse(text.trim())
        .ok()
        .and_then(|value: Value| T::from_value(&value).map_err(|_: DeError| ()).ok());
    if parsed.is_none() {
        ltc_telemetry::warning(
            "corrupt_store",
            &format!(
                "ignoring corrupt {what} store at {}; workers fall back to replay",
                path.display()
            ),
            vec![
                ("store".to_string(), what.into()),
                ("path".to_string(), path.display().to_string().into()),
            ],
        );
    }
    parsed
}

fn persist(dir: &Path, benchmark: &str, seed: u64, store: &CheckpointStore) -> std::io::Result<()> {
    let path = store_path(dir, benchmark, seed);
    persist_at(dir, &path, serde_json::to_string(store))
}

fn persist_warm(
    dir: &Path,
    benchmark: &str,
    seed: u64,
    warmup: u64,
    store: &WarmStore,
) -> std::io::Result<()> {
    let path = warm_store_path(dir, benchmark, seed, warmup);
    persist_at(dir, &path, serde_json::to_string(store))
}

fn persist_at(dir: &Path, path: &Path, json: String) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    // Atomic, fsynced replace: concurrent ensure passes (several
    // schedulers, or a scheduler racing its own workers) must never
    // expose a half-written file to a reader, and a crash must not be
    // able to tear one.
    crate::engine::fsutil::write_atomic(path, json.as_bytes())
}

fn key(benchmark: &str, seed: u64) -> (String, u64) {
    (benchmark.to_string(), seed)
}

fn warm_key(benchmark: &str, seed: u64, warmup: u64) -> (String, u64, u64) {
    (benchmark.to_string(), seed, warmup)
}

fn dir_from_env() -> Option<PathBuf> {
    let dir = std::env::var_os(CHECKPOINT_DIR_ENV)?;
    if dir.is_empty() {
        return None;
    }
    let dir = PathBuf::from(dir);
    // First touch of the checkpoint dir in this process: reclaim any
    // staging files a crashed predecessor leaked (cheap after once).
    crate::engine::fsutil::sweep_once(&dir);
    Some(dir)
}

type Registry = Mutex<HashMap<(String, u64), Arc<CheckpointStore>>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

type WarmRegistry = Mutex<HashMap<(String, u64, u64), Arc<WarmStore>>>;

fn warm_registry() -> &'static WarmRegistry {
    static REGISTRY: OnceLock<WarmRegistry> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_analysis::SEGMENT_WARMUP;

    #[test]
    fn record_targets_resumes_streams_exactly() {
        let entry = suite::by_name("gcc").unwrap();
        let mut reference = entry.build(5);
        let expected = reference.collect_accesses(3_000);

        let store = record_targets(&mut entry.build(5), &[0, 1_000, 2_500]);
        assert_eq!(store.len(), 3);
        for &pos in &[0u64, 1_000, 2_500] {
            let c = store.at(pos).expect("target recorded");
            let mut resumed = entry.build(5);
            resumed.restore(&c.state).unwrap();
            assert_eq!(
                resumed.collect_accesses(100),
                expected[pos as usize..pos as usize + 100],
                "restored stream diverges at {pos}"
            );
        }
    }

    #[test]
    fn record_targets_collapses_duplicates_and_sorts() {
        let entry = suite::by_name("gzip").unwrap();
        let store = record_targets(&mut entry.build(1), &[500, 100, 500, 100]);
        assert_eq!(store.len(), 2);
        let positions: Vec<u64> = store.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![100, 500]);
    }

    #[test]
    fn ensure_registers_and_lookup_serves() {
        // Distinct seed so other tests sharing the process registry
        // cannot interfere.
        let seed = 0xc0fe;
        assert!(lookup("mcf", seed).is_none());
        let store = ensure("mcf", seed, &[0, 2_000]).expect("known benchmark");
        assert!(store.at(2_000).is_some(), "non-zero target recorded");
        assert!(store.at(0).is_none(), "zero targets are skipped");
        let again = lookup("mcf", seed).expect("registry hit");
        assert!(Arc::ptr_eq(&store, &again));
        // Covered targets do not trigger a new recording pass.
        let served = ensure("mcf", seed, &[2_000]).unwrap();
        assert!(Arc::ptr_eq(&store, &served));
        // A new target extends the store, keeping the old positions.
        let extended = ensure("mcf", seed, &[4_000]).unwrap();
        assert!(extended.at(2_000).is_some());
        assert!(extended.at(4_000).is_some());
        assert!(ensure("no-such-benchmark", seed, &[1]).is_none());
    }

    #[test]
    fn warm_images_match_the_replay_path_exactly() {
        // The recorded image must equal the hierarchy a worker builds by
        // the replay path: skip to start − warm, then replay the window.
        let entry = suite::by_name("gcc").unwrap();
        let warmup = 1_500u64;
        let starts = [800u64, 2_000, 2_600]; // overlapping + short-prefix windows
        let store = record_warm_images(&mut entry.build(7), warmup, &starts);
        assert_eq!(store.len(), starts.len());
        for &start in &starts {
            let image = store.at(start).expect("image recorded");
            let warm = start.min(warmup);
            let mut src = entry.build(7);
            for _ in 0..start - warm {
                src.next_access();
            }
            let mut h = Hierarchy::new(HierarchyConfig::paper());
            for _ in 0..warm {
                let a = src.next_access().expect("trace long enough");
                h.access(a.addr, a.kind);
            }
            assert_eq!(image.image, h.to_image(), "image diverges from replay at {start}");
        }
    }

    #[test]
    fn warm_store_round_trips_and_indexes_by_position() {
        let entry = suite::by_name("gzip").unwrap();
        let store = record_warm_images(&mut entry.build(3), 400, &[900, 300, 900, 0]);
        assert_eq!(store.len(), 2, "duplicates and zero collapse");
        assert!(store.at(300).is_some());
        assert!(store.at(900).is_some());
        assert!(store.at(600).is_none());
        let parsed: WarmStore =
            serde_json::from_str(&serde_json::to_string(&store)).expect("parses");
        assert_eq!(parsed, store);
    }

    #[test]
    fn ensure_warm_registers_and_extends() {
        let seed = 0xbeef;
        let warmup = SEGMENT_WARMUP;
        assert!(lookup_warm("swim", seed, warmup).is_none());
        let store = ensure_warm("swim", seed, warmup, &[1_000]).expect("known benchmark");
        assert!(store.at(1_000).is_some());
        let served = ensure_warm("swim", seed, warmup, &[1_000]).unwrap();
        assert!(Arc::ptr_eq(&store, &served), "covered starts are not re-recorded");
        let extended = ensure_warm("swim", seed, warmup, &[2_500]).unwrap();
        assert!(extended.at(1_000).is_some());
        assert!(extended.at(2_500).is_some());
        // A different warm-up length is a different store.
        assert!(lookup_warm("swim", seed, warmup + 1).is_none());
        assert!(ensure_warm("no-such-benchmark", seed, warmup, &[1]).is_none());
    }

    #[test]
    fn corrupt_disk_store_degrades_to_a_miss() {
        // Satellite regression: a half-written (torn) store file must be
        // ignored with a fallback, never a panic or a parse abort.
        let dir = std::env::temp_dir().join(format!("ltc-ckpt-corrupt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let entry = suite::by_name("mcf").unwrap();
        let store = record_warm_images(&mut entry.build(1), 500, &[1_200]);
        let full = serde_json::to_string(&store);

        // Truncate mid-document, as a crashed writer without the atomic
        // rename would leave it.
        let warm_path = warm_store_path(&dir, "mcf", 1, 500);
        fs::write(&warm_path, &full[..full.len() / 2]).unwrap();
        assert!(load_disk_store::<WarmStore>(&warm_path, "warm-image").is_none());

        let ckpt_path = store_path(&dir, "mcf", 1);
        fs::write(&ckpt_path, "{\"checkpoints\": [tr").unwrap();
        assert!(load_disk_store::<CheckpointStore>(&ckpt_path, "checkpoint").is_none());

        // Valid JSON of the wrong shape is also a miss, not a panic.
        fs::write(&warm_path, "{\"images\": 7}").unwrap();
        assert!(load_disk_store::<WarmStore>(&warm_path, "warm-image").is_none());

        // An intact file still loads.
        fs::write(&warm_path, &full).unwrap();
        let loaded = load_disk_store::<WarmStore>(&warm_path, "warm-image").expect("intact loads");
        assert_eq!(loaded, store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_warns_exactly_once_and_replay_fallback_succeeds() {
        use ltc_analysis::{StreamAnalysis, StreamConfig};
        use ltc_telemetry::{Capture, EventKind, FieldValue};
        use ltc_trace::TraceSegment;

        let dir = std::env::temp_dir().join(format!("ltc-ckpt-warn-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let entry = suite::by_name("gcc").unwrap();
        let warmup = 500u64;
        let start = 1_200u64;
        let store = record_warm_images(&mut entry.build(1), warmup, &[start]);
        let full = serde_json::to_string(&store);
        let warm_path = warm_store_path(&dir, "gcc", 1, warmup);
        fs::write(&warm_path, &full[..full.len() / 2]).unwrap();

        // The corrupt store is one miss and exactly one structured
        // warning event (no stderr-only path once a subscriber exists).
        let capture = std::sync::Arc::new(Capture::new());
        let loaded = ltc_telemetry::with_subscriber(capture.clone(), || {
            load_disk_store::<WarmStore>(&warm_path, "warm-image")
        });
        assert!(loaded.is_none());
        let warnings = capture.named("corrupt_store");
        assert_eq!(warnings.len(), 1, "exactly one warning event per corrupt load");
        assert_eq!(warnings[0].kind, EventKind::Warning);
        assert_eq!(warnings[0].field("store"), Some(&FieldValue::Str("warm-image".into())));
        match warnings[0].field("message") {
            Some(FieldValue::Str(m)) => assert!(m.contains("corrupt warm-image store")),
            other => panic!("missing message field: {other:?}"),
        }

        // The miss degrades to the replay path, which still produces the
        // byte-identical partial the intact image would have.
        let cfg = StreamConfig::with_budget(32 << 10).with_warmup(warmup);
        let seg = TraceSegment { index: 1, segments: 2, start, len: 400 };
        let via_image =
            StreamAnalysis::run_segment_with(&mut entry.build(1), seg, cfg, None, store.at(start));
        let fallback = StreamAnalysis::run_segment_with(&mut entry.build(1), seg, cfg, None, None);
        assert_eq!(fallback, via_image, "replay fallback diverged from the warm image");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_helpers_cover_starts_and_targets() {
        let targets = segment_targets(40_000, 4, 5_000);
        assert_eq!(targets, vec![5_000, 15_000, 25_000], "start − warm, zero omitted");
        let starts = segment_starts(40_000, 4);
        assert_eq!(starts, vec![10_000, 20_000, 30_000], "slice starts, zero omitted");
        // A warm-up longer than any prefix leaves nothing to seek to.
        assert!(segment_targets(40_000, 4, SEGMENT_WARMUP).is_empty());
    }
}
