//! Shared generator checkpoints for segmented streaming runs.
//!
//! A segmented worker used to pay O(start) generator work just to reach
//! its slice: segment `i` of `N` skips `i·S/N` accesses before the
//! warm-up window, so the *total* setup across a run grew quadratically
//! with the trace (≈ N·S/2 skipped accesses at N segments). The suite's
//! generators are now checkpointable ([`ltc_trace::SourceState`]), which
//! turns that into a one-time *recording* pass: walk one source to each
//! segment's pre-warm-up position, snapshot it there, and let every
//! worker restore its snapshot instead of regenerating the prefix —
//! O(S) total recording plus O(warm-up) per worker.
//!
//! Checkpoints are keyed by `(benchmark, seed)` — together with the
//! model version these fully determine the access stream — and live in
//! two tiers:
//!
//! 1. a process-global registry, which in-process backends (`threads`,
//!    `sharded`) hit directly, and
//! 2. an optional on-disk store under the directory named by the
//!    `LTC_CHECKPOINT_DIR` environment variable, which `subprocess`
//!    workers (separate processes that inherit the variable) read.
//!
//! Restoring a checkpoint reproduces the generator state exactly, so
//! the access stream a worker sees — and every report built from it —
//! is byte-identical to the skip-loop path ([`ltc_analysis::StreamAnalysis::
//! run_segment_with`] falls back to plain skipping whenever no usable
//! checkpoint exists, e.g. for non-checkpointable external sources).

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use ltc_trace::{suite, Checkpoint, CheckpointStore, TraceSource};
use serde::Deserialize;

use crate::engine::spec::{fnv1a64, MODEL_VERSION};

/// Environment variable naming the on-disk checkpoint directory.
///
/// When set, [`ensure`] persists recorded stores there and [`lookup`]
/// falls back to it, so `ltsim worker` subprocesses (which inherit the
/// variable) reuse the parent's recording pass.
pub const CHECKPOINT_DIR_ENV: &str = "LTC_CHECKPOINT_DIR";

/// Walks `source` from the beginning and snapshots it at each of
/// `targets` (positions in accesses produced), returning the recorded
/// store. This is the pure core of the subsystem: no registry, no
/// filesystem — benches and tests drive it directly.
///
/// Targets are visited in ascending order (duplicates collapse); a
/// position of zero is recorded without advancing. Recording stops
/// early — returning the checkpoints gathered so far — if the source
/// ends or does not support checkpointing.
pub fn record_targets<S: TraceSource + ?Sized>(source: &mut S, targets: &[u64]) -> CheckpointStore {
    let mut sorted: Vec<u64> = targets.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut store = CheckpointStore::default();
    let mut pos = 0u64;
    'targets: for &target in &sorted {
        while pos < target {
            if source.next_access().is_none() {
                break 'targets;
            }
            pos += 1;
        }
        let Some(state) = source.checkpoint() else { break };
        store.insert(Checkpoint { pos, state });
    }
    store
}

/// Makes checkpoints for `(benchmark, seed)` at every position in
/// `targets` available to [`lookup`], recording them if needed.
///
/// Positions already covered by the registry or the on-disk store are
/// not re-recorded; a partially-covering store is extended by one
/// recording pass over the union of its positions and the missing
/// targets. The result lands in the process registry and — when
/// [`CHECKPOINT_DIR_ENV`] is set — on disk for subprocess workers.
/// Returns `None` for an unknown benchmark; zero targets are skipped
/// (a fresh source already *is* position zero).
pub fn ensure(benchmark: &str, seed: u64, targets: &[u64]) -> Option<Arc<CheckpointStore>> {
    let wanted: Vec<u64> = {
        let mut t: Vec<u64> = targets.iter().copied().filter(|&t| t > 0).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let existing = lookup(benchmark, seed);
    if let Some(store) = &existing {
        if wanted.iter().all(|&t| store.at(t).is_some()) {
            return existing;
        }
    }
    let entry = suite::by_name(benchmark)?;
    let mut union = wanted;
    if let Some(store) = &existing {
        union.extend(store.iter().map(|c| c.pos));
    }
    let store = Arc::new(record_targets(&mut entry.build(seed), &union));
    registry()
        .lock()
        .expect("checkpoint registry lock")
        .insert(key(benchmark, seed), store.clone());
    if let Some(dir) = dir_from_env() {
        // Best-effort persistence: a worker that cannot read the store
        // falls back to the skip loop, so disk errors are not fatal.
        let _ = persist(&dir, benchmark, seed, &store);
    }
    Some(store)
}

/// The pre-warm-up checkpoint positions of a segmented streaming run:
/// for each of `segments` even slices of `accesses`, the point a worker
/// must reach before its [`ltc_analysis::SEGMENT_WARMUP`] warm replay
/// begins. Zero positions (segments whose whole prefix is warm-up) are
/// omitted — those workers generate everything anyway.
pub fn segment_targets(accesses: u64, segments: u32) -> Vec<u64> {
    (0..segments)
        .map(|segment| {
            let start = ltc_trace::TraceSegment::nth(accesses, segments, segment).start;
            start - start.min(ltc_analysis::SEGMENT_WARMUP)
        })
        .filter(|&t| t > 0)
        .collect()
}

/// The checkpoint store for `(benchmark, seed)`, if one has been
/// recorded: the process registry first, then the on-disk store named
/// by [`CHECKPOINT_DIR_ENV`] (cached into the registry on hit).
pub fn lookup(benchmark: &str, seed: u64) -> Option<Arc<CheckpointStore>> {
    if let Some(store) =
        registry().lock().expect("checkpoint registry lock").get(&key(benchmark, seed))
    {
        return Some(store.clone());
    }
    let dir = dir_from_env()?;
    let text = fs::read_to_string(store_path(&dir, benchmark, seed)).ok()?;
    let value = serde_json::parse(text.trim()).ok()?;
    let store = Arc::new(CheckpointStore::from_value(&value).ok()?);
    registry()
        .lock()
        .expect("checkpoint registry lock")
        .insert(key(benchmark, seed), store.clone());
    Some(store)
}

/// The on-disk path of the store for `(benchmark, seed)` under `dir`.
///
/// The stem hashes benchmark, seed **and** model version, so stores
/// recorded under older generator behaviour can never be restored into
/// a newer model.
pub fn store_path(dir: &Path, benchmark: &str, seed: u64) -> PathBuf {
    let id = format!("{benchmark}|{seed}|v{MODEL_VERSION}");
    dir.join(format!("ckpt_{:016x}.json", fnv1a64(id.as_bytes())))
}

fn persist(dir: &Path, benchmark: &str, seed: u64, store: &CheckpointStore) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = store_path(dir, benchmark, seed);
    // Atomic replace: concurrent ensure passes (several schedulers, or a
    // scheduler racing its own workers) must never expose a half-written
    // file to a reader.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, serde_json::to_string(store))?;
    fs::rename(&tmp, &path)
}

fn key(benchmark: &str, seed: u64) -> (String, u64) {
    (benchmark.to_string(), seed)
}

fn dir_from_env() -> Option<PathBuf> {
    let dir = std::env::var_os(CHECKPOINT_DIR_ENV)?;
    if dir.is_empty() {
        return None;
    }
    Some(PathBuf::from(dir))
}

type Registry = Mutex<HashMap<(String, u64), Arc<CheckpointStore>>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_targets_resumes_streams_exactly() {
        let entry = suite::by_name("gcc").unwrap();
        let mut reference = entry.build(5);
        let expected = reference.collect_accesses(3_000);

        let store = record_targets(&mut entry.build(5), &[0, 1_000, 2_500]);
        assert_eq!(store.len(), 3);
        for &pos in &[0u64, 1_000, 2_500] {
            let c = store.at(pos).expect("target recorded");
            let mut resumed = entry.build(5);
            resumed.restore(&c.state).unwrap();
            assert_eq!(
                resumed.collect_accesses(100),
                expected[pos as usize..pos as usize + 100],
                "restored stream diverges at {pos}"
            );
        }
    }

    #[test]
    fn record_targets_collapses_duplicates_and_sorts() {
        let entry = suite::by_name("gzip").unwrap();
        let store = record_targets(&mut entry.build(1), &[500, 100, 500, 100]);
        assert_eq!(store.len(), 2);
        let positions: Vec<u64> = store.iter().map(|c| c.pos).collect();
        assert_eq!(positions, vec![100, 500]);
    }

    #[test]
    fn ensure_registers_and_lookup_serves() {
        // Distinct seed so other tests sharing the process registry
        // cannot interfere.
        let seed = 0xc0fe;
        assert!(lookup("mcf", seed).is_none());
        let store = ensure("mcf", seed, &[0, 2_000]).expect("known benchmark");
        assert!(store.at(2_000).is_some(), "non-zero target recorded");
        assert!(store.at(0).is_none(), "zero targets are skipped");
        let again = lookup("mcf", seed).expect("registry hit");
        assert!(Arc::ptr_eq(&store, &again));
        // Covered targets do not trigger a new recording pass.
        let served = ensure("mcf", seed, &[2_000]).unwrap();
        assert!(Arc::ptr_eq(&store, &served));
        // A new target extends the store, keeping the old positions.
        let extended = ensure("mcf", seed, &[4_000]).unwrap();
        assert!(extended.at(2_000).is_some());
        assert!(extended.at(4_000).is_some());
        assert!(ensure("no-such-benchmark", seed, &[1]).is_none());
    }
}
