//! Fixed-width table output for paper-style rows.

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use ltc_sim::Table;
///
/// let mut t = Table::new(vec!["bench", "coverage"]);
/// t.row(vec!["mcf".to_string(), "69%".to_string()]);
/// let s = t.render();
/// assert!(s.contains("mcf"));
/// assert!(s.contains("coverage"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numbers, left-align the first column.
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with no decimals (paper style).
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct1(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a byte count using binary units.
pub fn bytes(v: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = v as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{v}B")
    } else if value < 10.0 && value.fract() != 0.0 {
        // One decimal for small non-integral values (1.5MB, not "2MB").
        format!("{value:.1}{}", UNITS[unit])
    } else {
        format!("{value:.0}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with('a'));
    }

    #[test]
    fn short_rows_pad() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn pct_rounds() {
        assert_eq!(pct(0.69), "69%");
        assert_eq!(pct1(0.695), "69.5%");
    }

    #[test]
    fn bytes_scales_units() {
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2KB");
        assert_eq!(bytes(160 << 20), "160MB");
        assert_eq!(bytes(1536 << 10), "1.5MB");
    }
}
