//! Named predictor configurations and experiment drivers.

use ltc_analysis::{run_coverage as run_coverage_inner, CoverageConfig, CoverageReport};
use ltc_cache::Hierarchy;
use ltc_predictors::{
    DbcpConfig, DbcpPrefetcher, GhbConfig, GhbPrefetcher, NullPrefetcher, PrefetchLevel,
    Prefetcher, SketchDbcp, SketchDbcpConfig, StrideConfig, StridePrefetcher,
};
use ltc_timing::{TimingConfig, TimingReport, TimingSim};
use ltc_trace::{suite, MultiProgram};
use ltcords::{LtCords, LtCordsConfig};
use serde::{Deserialize, Serialize};

/// Default access budget for coverage (trace-driven) experiments.
pub const COVERAGE_ACCESSES: u64 = 2_000_000;

/// Default access budget for timing experiments.
pub const TIMING_ACCESSES: u64 = 400_000;

/// The predictor configurations compared in the paper.
///
/// `Eq`/`Hash` make a kind usable as part of an engine [`crate::engine::RunSpec`]
/// dedup key (possible because no configuration field is a float).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// No predictor (Table 1 baseline).
    Baseline,
    /// Perfect L1D (Table 3 upper bound; timing only).
    PerfectL1,
    /// LT-cords with the Section 5.6 configuration.
    LtCords,
    /// LT-cords with an explicit configuration (sensitivity sweeps).
    LtCordsWith(LtCordsConfig),
    /// DBCP with unlimited correlation storage (Figure 8 oracle).
    DbcpUnlimited,
    /// DBCP with the realistic 2 MB table (Tables 1/3).
    Dbcp2Mb,
    /// DBCP with an arbitrary table budget in bytes (Figure 4 sweep).
    DbcpBytes(u64),
    /// Sketch-backed DBCP with a correlated-heavy-hitter summary fitting
    /// the given byte budget (the sketch budget-sweep figure).
    SketchDbcp(u64),
    /// GHB PC/DC (Table 1: 256-entry IT/GHB, depth 4).
    Ghb,
    /// Classic per-PC stride prefetcher.
    Stride,
    /// Baseline machine with the 4 MB L2 (Table 3; timing only).
    BigL2,
}

impl PredictorKind {
    /// Short name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            PredictorKind::Baseline => "baseline",
            PredictorKind::PerfectL1 => "perfect-l1",
            PredictorKind::LtCords | PredictorKind::LtCordsWith(_) => "lt-cords",
            PredictorKind::DbcpUnlimited => "dbcp-unlimited",
            PredictorKind::Dbcp2Mb => "dbcp",
            PredictorKind::DbcpBytes(_) => "dbcp-sized",
            PredictorKind::SketchDbcp(_) => "sketch-dbcp",
            PredictorKind::Ghb => "ghb",
            PredictorKind::Stride => "stride",
            PredictorKind::BigL2 => "4mb-l2",
        }
    }

    /// Instantiates the prefetcher for this configuration. The hierarchy
    /// variants ([`PredictorKind::PerfectL1`], [`PredictorKind::BigL2`])
    /// use the null prefetcher — their effect lives in the machine config,
    /// see [`PredictorKind::timing_config`].
    pub fn build(&self) -> Box<dyn Prefetcher + Send> {
        match self {
            PredictorKind::Baseline | PredictorKind::PerfectL1 | PredictorKind::BigL2 => {
                Box::new(NullPrefetcher::new())
            }
            PredictorKind::LtCords => Box::new(LtCords::new(LtCordsConfig::paper())),
            PredictorKind::LtCordsWith(cfg) => Box::new(LtCords::new(*cfg)),
            PredictorKind::DbcpUnlimited => Box::new(DbcpPrefetcher::new(DbcpConfig::unlimited())),
            PredictorKind::Dbcp2Mb => Box::new(DbcpPrefetcher::new(DbcpConfig::paper_2mb())),
            PredictorKind::DbcpBytes(bytes) => {
                Box::new(DbcpPrefetcher::new(DbcpConfig::with_table_bytes(*bytes)))
            }
            PredictorKind::SketchDbcp(bytes) => {
                Box::new(SketchDbcp::new(SketchDbcpConfig::with_budget_bytes(*bytes)))
            }
            PredictorKind::Ghb => Box::new(GhbPrefetcher::new(GhbConfig::default())),
            PredictorKind::Stride => Box::new(StridePrefetcher::new(StrideConfig::default())),
        }
    }

    /// The machine configuration this kind runs on.
    pub fn timing_config(&self) -> TimingConfig {
        match self {
            PredictorKind::PerfectL1 => TimingConfig::perfect_l1(),
            PredictorKind::BigL2 => TimingConfig::big_l2(),
            _ => TimingConfig::paper(),
        }
    }
}

/// Runs a coverage experiment for one benchmark.
///
/// # Panics
///
/// Panics if `benchmark` is not in the suite.
pub fn run_coverage(
    benchmark: &str,
    kind: PredictorKind,
    accesses: u64,
    seed: u64,
) -> CoverageReport {
    let entry =
        suite::by_name(benchmark).unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
    let mut source = entry.build(seed);
    let mut predictor = kind.build();
    // A quarter of the budget warms caches and trains the predictor; the
    // paper's whole-benchmark traces are steady-state-dominated, scaled
    // runs are not.
    let mut report = run_coverage_inner(
        &mut source,
        predictor.as_mut(),
        CoverageConfig::paper(accesses).with_warmup(accesses / 4),
    );
    report.predictor = kind.name().to_string();
    report
}

/// Runs a timing experiment for one benchmark.
///
/// # Panics
///
/// Panics if `benchmark` is not in the suite.
pub fn run_timing(benchmark: &str, kind: PredictorKind, accesses: u64, seed: u64) -> TimingReport {
    let entry =
        suite::by_name(benchmark).unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
    let mut source = entry.build(seed);
    let mut predictor = kind.build();
    let cfg = kind.timing_config().with_warmup(accesses / 4);
    let mut report = TimingSim::new(cfg).run(&mut source, predictor.as_mut(), accesses);
    report.predictor = kind.name().to_string();
    report
}

/// Result of a multi-programmed coverage run (the Figure 11 methodology):
/// the focus program's share of the context-switched machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiProgReport {
    /// Focus-program baseline L1D misses.
    pub focus_misses: u64,
    /// Focus-program misses eliminated by the predictor.
    pub eliminated: u64,
}

impl MultiProgReport {
    /// Fraction of the focus program's misses eliminated.
    pub fn coverage(&self) -> f64 {
        if self.focus_misses == 0 {
            0.0
        } else {
            self.eliminated as f64 / self.focus_misses as f64
        }
    }
}

/// OS scheduling quantum in accesses: FP codes get the paper's longer
/// quantum (fewer context switches per instruction).
fn multiprog_quantum(name: &str) -> u64 {
    if suite::by_name(name).map(|e| e.is_fp()).unwrap_or(false) {
        1_200_000
    } else {
        600_000
    }
}

/// Runs a multi-programmed coverage experiment: the `focus` benchmark
/// context-switched against an optional `partner`, sharing one hierarchy
/// and one predictor (Figure 11's methodology). The partner's address
/// space is offset so the programs compete for cache and predictor state
/// without aliasing; with a partner the access budget is doubled so the
/// focus program sees a comparable number of its own accesses.
///
/// # Panics
///
/// Panics if `focus` or `partner` is not in the suite.
pub fn run_multiprog(
    focus: &str,
    partner: Option<&str>,
    kind: PredictorKind,
    accesses: u64,
    seed: u64,
) -> MultiProgReport {
    let ef = suite::by_name(focus).unwrap_or_else(|| panic!("unknown benchmark {focus}"));
    let mut predictor = kind.build();
    let cfg = CoverageConfig::paper(accesses);
    let mut base = Hierarchy::new(cfg.hierarchy);
    let mut pf = Hierarchy::new(cfg.hierarchy);
    let mut requests = Vec::new();
    let mut report = MultiProgReport::default();

    let mut programs = vec![(ef.build(seed), multiprog_quantum(focus), 0)];
    let mut total = accesses;
    if let Some(p) = partner {
        let ep = suite::by_name(p).unwrap_or_else(|| panic!("unknown benchmark {p}"));
        programs.push((ep.build(seed + 1), multiprog_quantum(p), 1 << 40));
        total = accesses * 2;
    }
    let mut multi = MultiProgram::new(programs);

    for _ in 0..total {
        let Some((prog, acc)) = multi.next_tagged() else { break };
        let b_out = base.access(acc.addr, acc.kind);
        let p_out = pf.access(acc.addr, acc.kind);
        if prog == 0 {
            report.focus_misses += u64::from(!b_out.l1.hit);
            report.eliminated += u64::from(!b_out.l1.hit && p_out.l1.hit);
        }
        predictor.on_access(&acc, &p_out, &mut requests);
        for req in requests.drain(..) {
            if req.level == PrefetchLevel::L1 && !pf.l1().contains(req.target) {
                let (out, src) = pf.prefetch_into_l1(req.target, req.victim);
                predictor.on_prefetch_applied(&req, &out, src);
            }
        }
    }
    report
}

/// Runs `job` for every input in parallel (bounded by the available
/// parallelism), preserving input order in the output.
pub fn sweep<I, O, F>(inputs: Vec<I>, job: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    sweep_bounded(inputs, threads, job)
}

/// Like [`sweep`] but with an explicit thread cap (memory-heavy experiments
/// such as the Figure 4 DBCP table sweep bound their working set this way).
pub fn sweep_bounded<I, O, F>(inputs: Vec<I>, threads: usize, job: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.max(1);
    let n = inputs.len();
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<O>>> =
        out.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = job(&inputs[i]);
                // Poisoning is impossible: the lock is held only for this
                // infallible assignment (a panic in `job` happens unlocked
                // and propagates via the scope's implicit join).
                **slots[i].lock().expect("sweep worker panicked") = Some(result);
            });
        }
    });
    drop(slots);
    out.into_iter().map(|o| o.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_instantiate() {
        for kind in [
            PredictorKind::Baseline,
            PredictorKind::PerfectL1,
            PredictorKind::LtCords,
            PredictorKind::DbcpUnlimited,
            PredictorKind::Dbcp2Mb,
            PredictorKind::DbcpBytes(1 << 20),
            PredictorKind::SketchDbcp(256 << 10),
            PredictorKind::Ghb,
            PredictorKind::Stride,
            PredictorKind::BigL2,
        ] {
            let p = kind.build();
            let _ = p.storage_bytes();
            let _ = kind.name();
            let _ = kind.timing_config();
        }
    }

    #[test]
    fn coverage_experiment_runs() {
        let r = run_coverage("gzip", PredictorKind::Baseline, 20_000, 1);
        // A quarter of the budget is warm-up, excluded from statistics.
        assert_eq!(r.accesses, 15_000);
        assert!(r.base_l1_misses > 0);
    }

    #[test]
    fn timing_experiment_runs() {
        let r = run_timing("mesa", PredictorKind::Baseline, 20_000, 1);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn perfect_l1_beats_baseline() {
        let base = run_timing("mcf", PredictorKind::Baseline, 30_000, 1);
        let ideal = run_timing("mcf", PredictorKind::PerfectL1, 30_000, 1);
        assert!(ideal.ipc() > base.ipc());
    }

    #[test]
    fn sweep_preserves_order() {
        let outputs = sweep(vec![1u64, 2, 3, 4, 5], |&x| x * 10);
        assert_eq!(outputs, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = run_coverage("vpr", PredictorKind::Baseline, 10, 1);
    }
}
