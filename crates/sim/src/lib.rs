//! Facade and experiment runner for the LT-cords reproduction.
//!
//! This crate re-exports the workspace's public API under one roof and adds
//! the experiment harness used by the examples, integration tests, CLI and
//! figure/table benches:
//!
//! * [`experiment`] — named predictor configurations ([`PredictorKind`]),
//!   coverage and timing experiment drivers, and a parallel sweep helper.
//! * [`report`] — fixed-width table formatting for paper-style output.
//!
//! # Example
//!
//! ```
//! use ltc_sim::experiment::{run_coverage, PredictorKind};
//!
//! let report = run_coverage("mcf", PredictorKind::LtCords, 50_000, 1);
//! assert!(report.base_l1_misses > 0);
//! ```

pub mod experiment;
pub mod report;

pub use experiment::{
    run_coverage, run_timing, sweep, PredictorKind, COVERAGE_ACCESSES, TIMING_ACCESSES,
};
pub use report::Table;

pub use ltc_analysis as analysis;
pub use ltc_cache as cache;
pub use ltc_lasttouch as lasttouch;
pub use ltc_predictors as predictors;
pub use ltc_timing as timing;
pub use ltc_trace as trace;
pub use ltcords as core;
