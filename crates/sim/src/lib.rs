//! Facade and experiment runner for the LT-cords reproduction.
//!
//! This crate re-exports the workspace's public API under one roof and adds
//! the experiment harness used by the examples, integration tests, CLI and
//! figure/table benches:
//!
//! * [`experiment`] — named predictor configurations ([`PredictorKind`]),
//!   coverage, timing and multi-programmed experiment drivers, and a
//!   parallel sweep helper.
//! * [`engine`] — the unified experiment engine: declarative [`RunSpec`]
//!   keys, a deduplicating [`engine::Scheduler`] planning over pluggable
//!   [`engine::ExecutionBackend`]s (thread pool, work-stealing shards,
//!   subprocess workers), spec-keyed [`engine::ResultSet`]s and the
//!   serialized `results/` artifact cache.
//! * [`report`] — fixed-width table formatting for paper-style output.
//!
//! # Example
//!
//! ```
//! use ltc_sim::experiment::{run_coverage, PredictorKind};
//!
//! let report = run_coverage("mcf", PredictorKind::LtCords, 50_000, 1);
//! assert!(report.base_l1_misses > 0);
//! ```

pub mod engine;
pub mod experiment;
pub mod report;

pub use engine::{
    BackendKind, EngineOptions, ExecutionBackend, Mode, ProgressMode, ProgressSink, ResultSet,
    RunResult, RunSpec, Scheduler,
};
pub use experiment::{
    run_coverage, run_multiprog, run_timing, sweep, MultiProgReport, PredictorKind,
    COVERAGE_ACCESSES, TIMING_ACCESSES,
};
pub use report::Table;

// The serde_json shim, re-exported for worker-protocol peers (`ltsim
// worker` parses spec lines with the same parser the engine writes with).
pub use serde_json;

pub use ltc_analysis as analysis;
pub use ltc_cache as cache;
pub use ltc_lasttouch as lasttouch;
pub use ltc_predictors as predictors;
pub use ltc_stream as stream;
pub use ltc_timing as timing;
pub use ltc_trace as trace;
pub use ltcords as core;
