//! Warm-image parity: a hierarchy + predictor pair restored from its
//! serialized state images must continue **byte-identically** to the
//! instance that kept running — across hierarchy configurations, every
//! predictor kind, and a JSON round trip of the images. This is the
//! property that lets segment workers restore recorded warm state
//! instead of replaying the warm-up window.

use ltc_cache::{Hierarchy, HierarchyConfig, HierarchyImage};
use ltc_predictors::{PredictorImage, PrefetchLevel, Prefetcher};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::trace::suite;
use ltcords::LtCordsConfig;
use proptest::prelude::*;

/// Every standard predictor configuration, image-supporting or not.
fn kinds() -> Vec<PredictorKind> {
    vec![
        PredictorKind::Baseline,
        PredictorKind::PerfectL1,
        PredictorKind::LtCords,
        PredictorKind::LtCordsWith(LtCordsConfig::paper()),
        PredictorKind::DbcpUnlimited,
        PredictorKind::Dbcp2Mb,
        PredictorKind::DbcpBytes(4 << 10),
        PredictorKind::SketchDbcp(32 << 10),
        PredictorKind::Ghb,
        PredictorKind::Stride,
        PredictorKind::BigL2,
    ]
}

/// Drives `n` accesses from `source` through the hierarchy and
/// predictor with the same request-application discipline as the
/// coverage driver.
fn drive(
    hierarchy: &mut Hierarchy,
    predictor: &mut dyn Prefetcher,
    source: &mut dyn ltc_trace::TraceSource,
    n: u64,
) {
    let mut requests = Vec::new();
    for _ in 0..n {
        let Some(a) = source.next_access() else { break };
        let out = hierarchy.access(a.addr, a.kind);
        predictor.on_access(&a, &out, &mut requests);
        for req in requests.drain(..) {
            match req.level {
                PrefetchLevel::L1 => {
                    if hierarchy.l1().contains(req.target) {
                        continue;
                    }
                    let (out, src) = hierarchy.prefetch_into_l1(req.target, req.victim);
                    predictor.on_prefetch_applied(&req, &out, src);
                }
                PrefetchLevel::L2 => {
                    if hierarchy.l2().contains(req.target) {
                        continue;
                    }
                    let (out, src) = hierarchy.prefetch_into_l2(req.target);
                    predictor.on_prefetch_applied(&req, &out, src);
                }
            }
        }
    }
}

/// The continue-vs-restore experiment for one (kind, config, trace)
/// combination: warm an instance, image it, restore a twin from the
/// JSON-round-tripped images, drive both over the same continuation,
/// and demand identical final images.
fn assert_restore_parity(
    kind: PredictorKind,
    config: HierarchyConfig,
    benchmark: &str,
    seed: u64,
    warm_n: u64,
    cont_n: u64,
) {
    let entry = suite::by_name(benchmark).expect("suite benchmark");
    let mut source = entry.build(seed);
    let mut hierarchy = Hierarchy::new(config);
    let mut predictor = kind.build();
    drive(&mut hierarchy, predictor.as_mut(), source.as_mut(), warm_n);

    let h_image = hierarchy.to_image();
    let p_image = predictor.image();
    match kind {
        PredictorKind::LtCords | PredictorKind::LtCordsWith(_) => {
            assert!(p_image.is_none(), "LT-cords does not support warm images");
            assert!(predictor.restore_image(&PredictorImage::Null).is_err());
            return;
        }
        _ => assert!(p_image.is_some(), "{} must support warm images", kind.name()),
    }

    // Both images survive canonical JSON unchanged.
    let h_image: HierarchyImage =
        serde_json::from_str(&serde_json::to_string(&h_image)).expect("hierarchy image parses");
    let p_image: PredictorImage = serde_json::from_str(&serde_json::to_string(&p_image.unwrap()))
        .expect("predictor image parses");

    let mut twin_h = Hierarchy::from_image(config, &h_image).expect("hierarchy restores");
    let mut twin_p = kind.build();
    twin_p.restore_image(&p_image).expect("predictor restores");

    // The twin's source reaches the same position by plain skipping.
    let mut twin_source = entry.build(seed);
    for _ in 0..warm_n {
        twin_source.next_access();
    }

    drive(&mut hierarchy, predictor.as_mut(), source.as_mut(), cont_n);
    drive(&mut twin_h, twin_p.as_mut(), twin_source.as_mut(), cont_n);

    assert_eq!(
        hierarchy.to_image(),
        twin_h.to_image(),
        "{} hierarchy diverged after restore",
        kind.name()
    );
    assert_eq!(
        predictor.image(),
        twin_p.image(),
        "{} predictor diverged after restore",
        kind.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Continue-vs-restore parity over proptest-chosen predictor kind,
    /// hierarchy configuration, trace, seed, and cut point.
    #[test]
    fn restored_state_continues_byte_identically(
        kind_idx in 0usize..11,
        big_l2 in any::<bool>(),
        bench_idx in 0usize..3,
        seed in 1u64..500,
        warm_n in 500u64..3_000,
        cont_n in 200u64..1_500,
    ) {
        let kind = kinds()[kind_idx];
        let config =
            if big_l2 { HierarchyConfig::paper_4mb_l2() } else { HierarchyConfig::paper() };
        let benchmark = ["gcc", "mcf", "swim"][bench_idx];
        assert_restore_parity(kind, config, benchmark, seed, warm_n, cont_n);
    }
}

/// A deterministic smoke pass over every kind, so a single plain test
/// run exercises the full matrix even without proptest exploration.
#[test]
fn every_kind_round_trips_on_both_hierarchies() {
    for kind in kinds() {
        for config in [HierarchyConfig::paper(), HierarchyConfig::paper_4mb_l2()] {
            assert_restore_parity(kind, config, "gzip", 7, 1_500, 600);
        }
    }
}

/// A predictor image restored into a differently-shaped instance is a
/// typed error, never silent corruption.
#[test]
fn mismatched_restores_are_typed_errors() {
    let entry = suite::by_name("gcc").expect("suite benchmark");
    let mut source = entry.build(3);
    let mut hierarchy = Hierarchy::new(HierarchyConfig::paper());
    let mut ghb = PredictorKind::Ghb.build();
    drive(&mut hierarchy, ghb.as_mut(), source.as_mut(), 1_000);
    let ghb_image = ghb.image().expect("ghb images");

    // Wrong predictor kind.
    let mut stride = PredictorKind::Stride.build();
    assert!(stride.restore_image(&ghb_image).is_err(), "kind mismatch must be refused");

    // Wrong summary configuration for the sketch predictor.
    let small = PredictorKind::SketchDbcp(16 << 10).build();
    let mut big = PredictorKind::SketchDbcp(64 << 10).build();
    let image = small.image().expect("sketch images");
    assert!(big.restore_image(&image).is_err(), "budget mismatch must be refused");

    // Wrong hierarchy configuration for a cache image.
    let image = hierarchy.to_image();
    assert!(
        Hierarchy::from_image(HierarchyConfig::paper_4mb_l2(), &image).is_err(),
        "hierarchy config mismatch must be refused"
    );
}

/// Size accounting: `image_bytes` matches the documented per-entry
/// costs for the fixed-geometry predictors and stays under an asserted
/// ceiling for the largest standard configuration.
#[test]
fn image_sizes_are_accounted_and_bounded() {
    let entry = suite::by_name("mcf").expect("suite benchmark");

    // Fixed-geometry predictors: cold image sizes are exact functions of
    // their table shapes (256-entry tables, 512-frame history).
    let ghb = PredictorKind::Ghb.build().image().unwrap();
    assert_eq!(ghb.image_bytes(), 256 * 17 + 256 * 16 + 8);
    let stride = PredictorKind::Stride.build().image().unwrap();
    assert_eq!(stride.image_bytes(), 256 * 26);
    assert_eq!(PredictorImage::Null.image_bytes(), 0);

    // Trained images of budget-bounded predictors never outgrow their
    // cold image by more than the in-flight bookkeeping allowance: the
    // table and history snapshots are pre-sized by geometry, so training
    // fills slots in place instead of growing the image.
    for kind in [PredictorKind::SketchDbcp(64 << 10), PredictorKind::Dbcp2Mb] {
        let ceiling = kind.build().image().unwrap().image_bytes() + (64 << 10);
        let mut source = entry.build(11);
        let mut hierarchy = Hierarchy::new(HierarchyConfig::paper());
        let mut predictor = kind.build();
        drive(&mut hierarchy, predictor.as_mut(), source.as_mut(), 30_000);
        let bytes = predictor.image().unwrap().image_bytes();
        assert!(
            bytes <= ceiling,
            "{} image grew to {bytes} bytes (ceiling {ceiling})",
            kind.name()
        );
    }

    // The largest standard hierarchy image (4 MB L2) stays under the
    // ceiling the engine's disk stores are sized around.
    let big = Hierarchy::new(HierarchyConfig::paper_4mb_l2()).to_image();
    assert!(big.image_bytes() < 1_250_000, "4 MB-L2 image is {} bytes", big.image_bytes());
}
