//! Backend parity and robustness: every execution backend must produce
//! the same `ResultSet` for the same plan, and the work-stealing sharded
//! backend must complete every spec no matter how adversarially the spec
//! list is ordered.
//!
//! (The subprocess backend joins the parity matrix in
//! `crates/bench/tests/worker_protocol.rs`, which can locate the built
//! `ltsim` binary.)

use ltc_sim::engine::{BackendKind, EngineOptions, ResultSet, RunSpec, Scheduler};
use ltc_sim::experiment::PredictorKind;
use proptest::prelude::*;

/// A mode mix small enough to run many times: coverage, timing,
/// analysis-only and multi-programmed specs.
fn mixed_specs() -> Vec<RunSpec> {
    vec![
        RunSpec::coverage("gzip", PredictorKind::Baseline, 4_000, 1),
        RunSpec::coverage("mesa", PredictorKind::LtCords, 4_000, 1),
        RunSpec::timing("mcf", PredictorKind::Baseline, 3_000, 1),
        RunSpec::timing("art", PredictorKind::LtCords, 3_000, 1),
        RunSpec::dead_time("swim", 4_000, 1),
        RunSpec::correlation("gcc", 4_000, 1),
        RunSpec::multiprog("gcc", Some("mcf"), PredictorKind::LtCords, 3_000, 1),
        RunSpec::stream("mcf", 64 << 10, 4_000, 1),
        RunSpec::coverage("art", PredictorKind::SketchDbcp(64 << 10), 4_000, 1),
    ]
}

fn run_with(backend: BackendKind, specs: &[RunSpec], threads: usize) -> ResultSet {
    let mut sched = Scheduler::new();
    sched.request_all(specs.iter().cloned());
    sched
        .execute(&EngineOptions::in_memory(threads).with_backend(backend))
        .expect("in-process backends cannot hit I/O errors")
}

/// The thread-pool and sharded backends agree result-for-result on the
/// same plan (the deterministic-simulation contract behind `--backend`
/// being a pure performance choice).
#[test]
fn threads_and_sharded_backends_agree() {
    let specs = mixed_specs();
    let baseline = run_with(BackendKind::Threads, &specs, 3);
    let sharded = run_with(BackendKind::Sharded, &specs, 3);
    assert_eq!(baseline.simulated(), specs.len() as u64);
    assert_eq!(sharded.simulated(), specs.len() as u64);
    for spec in &specs {
        assert_eq!(
            baseline.get(spec).expect("baseline result"),
            sharded.get(spec).expect("sharded result"),
            "backends disagree on {}",
            spec.key()
        );
    }
}

/// Parity holds when the plan mixes cache hits and fresh work: a cache
/// warmed by one backend serves another byte-for-byte.
#[test]
fn backends_share_one_artifact_cache() {
    let dir = std::env::temp_dir().join(format!("ltc-backend-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let specs = mixed_specs();
    let opts = EngineOptions::cached(3, &dir);

    let mut sched = Scheduler::new();
    sched.request_all(specs.iter().cloned());
    let warm = sched.execute(&opts).unwrap();
    assert_eq!(warm.simulated(), specs.len() as u64);

    let served = sched.execute(&opts.clone().with_backend(BackendKind::Sharded)).unwrap();
    assert_eq!(served.simulated(), 0, "a warm cache must satisfy every backend");
    assert_eq!(served.cache_hits(), specs.len() as u64);
    for spec in &specs {
        assert_eq!(warm.get(spec), served.get(spec));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Builds an adversarial spec list from proptest-chosen shape parameters:
/// duplicates allowed, expensive timing runs salted anywhere in the
/// order, benchmark/seed variety to defeat dedup.
fn adversarial_specs(raw: &[(usize, usize, u64)]) -> Vec<RunSpec> {
    let benches = ["gzip", "mesa", "art", "mcf", "swim", "gcc"];
    raw.iter()
        .map(|&(bench, mode, seed)| {
            let name = benches[bench % benches.len()];
            match mode % 4 {
                // Timing is the expensive straggler the sharded backend
                // schedules first; everything else is cheap filler.
                0 => RunSpec::timing(name, PredictorKind::Baseline, 2_000, seed),
                1 => RunSpec::coverage(name, PredictorKind::Baseline, 1_500, seed),
                2 => RunSpec::dead_time(name, 1_500, seed),
                _ => RunSpec::multiprog(name, Some("gzip"), PredictorKind::Baseline, 1_000, seed),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded backend completes every spec — results for the whole
    /// plan, in request order, none lost to a straggling or starved
    /// shard — under adversarial orderings and worker counts.
    #[test]
    fn sharded_backend_completes_adversarial_orderings(
        raw in prop::collection::vec((0usize..6, 0usize..4, 1u64..4), 1..14),
        threads in 1usize..5,
    ) {
        let specs = adversarial_specs(&raw);
        let mut sched = Scheduler::new();
        sched.request_all(specs.iter().cloned());
        let unique = sched.unique();
        let results = sched
            .execute(&EngineOptions::in_memory(threads).with_backend(BackendKind::Sharded))
            .expect("in-memory execution cannot fail");
        prop_assert_eq!(results.simulated(), unique.len() as u64);
        prop_assert_eq!(results.len(), unique.len());
        for spec in &unique {
            prop_assert!(results.get(spec).is_some(), "missing result for {}", spec.key());
        }
    }
}
