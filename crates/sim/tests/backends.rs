//! Backend parity and robustness: every execution backend must produce
//! the same `ResultSet` for the same plan, and the work-stealing sharded
//! backend must complete every spec no matter how adversarially the spec
//! list is ordered.
//!
//! (The subprocess backend joins the parity matrix in
//! `crates/bench/tests/worker_protocol.rs`, which can locate the built
//! `ltsim` binary.)

use ltc_sim::engine::{BackendKind, EngineOptions, ResultSet, RunSpec, Scheduler};
use ltc_sim::experiment::PredictorKind;
use proptest::prelude::*;

/// A mode mix small enough to run many times: coverage, timing,
/// analysis-only and multi-programmed specs.
fn mixed_specs() -> Vec<RunSpec> {
    vec![
        RunSpec::coverage("gzip", PredictorKind::Baseline, 4_000, 1),
        RunSpec::coverage("mesa", PredictorKind::LtCords, 4_000, 1),
        RunSpec::timing("mcf", PredictorKind::Baseline, 3_000, 1),
        RunSpec::timing("art", PredictorKind::LtCords, 3_000, 1),
        RunSpec::dead_time("swim", 4_000, 1),
        RunSpec::correlation("gcc", 4_000, 1),
        RunSpec::multiprog("gcc", Some("mcf"), PredictorKind::LtCords, 3_000, 1),
        RunSpec::stream("mcf", 64 << 10, 4_000, 1),
        RunSpec::coverage("art", PredictorKind::SketchDbcp(64 << 10), 4_000, 1),
    ]
}

fn run_with(backend: BackendKind, specs: &[RunSpec], threads: usize) -> ResultSet {
    let mut sched = Scheduler::new();
    sched.request_all(specs.iter().cloned());
    sched
        .execute(&EngineOptions::in_memory(threads).with_backend(backend))
        .expect("in-process backends cannot hit I/O errors")
}

/// The thread-pool and sharded backends agree result-for-result on the
/// same plan (the deterministic-simulation contract behind `--backend`
/// being a pure performance choice).
#[test]
fn threads_and_sharded_backends_agree() {
    let specs = mixed_specs();
    let baseline = run_with(BackendKind::Threads, &specs, 3);
    let sharded = run_with(BackendKind::Sharded, &specs, 3);
    assert_eq!(baseline.simulated(), specs.len() as u64);
    assert_eq!(sharded.simulated(), specs.len() as u64);
    for spec in &specs {
        assert_eq!(
            baseline.get(spec).expect("baseline result"),
            sharded.get(spec).expect("sharded result"),
            "backends disagree on {}",
            spec.key()
        );
    }
}

/// Parity holds when the plan mixes cache hits and fresh work: a cache
/// warmed by one backend serves another byte-for-byte.
#[test]
fn backends_share_one_artifact_cache() {
    let dir = std::env::temp_dir().join(format!("ltc-backend-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let specs = mixed_specs();
    let opts = EngineOptions::cached(3, &dir);

    let mut sched = Scheduler::new();
    sched.request_all(specs.iter().cloned());
    let warm = sched.execute(&opts).unwrap();
    assert_eq!(warm.simulated(), specs.len() as u64);

    let served = sched.execute(&opts.clone().with_backend(BackendKind::Sharded)).unwrap();
    assert_eq!(served.simulated(), 0, "a warm cache must satisfy every backend");
    assert_eq!(served.cache_hits(), specs.len() as u64);
    for spec in &specs {
        assert_eq!(warm.get(spec), served.get(spec));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Segmented streaming parity: the in-process backends produce the same
/// merged report — byte-for-byte as canonical JSON — for the same
/// segmented plan, and it matches executing the parent spec sequentially.
/// (The subprocess backend joins this matrix in
/// `crates/bench/tests/worker_protocol.rs`.)
#[test]
fn segmented_streaming_is_backend_invariant() {
    let specs = vec![
        RunSpec::stream_segmented("mcf", 64 << 10, 4, 6_000, 1),
        RunSpec::stream_segmented("swim", 64 << 10, 3, 6_000, 1),
    ];
    let threads = run_with(BackendKind::Threads, &specs, 3);
    let sharded = run_with(BackendKind::Sharded, &specs, 3);
    // 4 + 3 segment children simulate; the parents are reduced, not run.
    assert_eq!(threads.simulated(), 7);
    assert_eq!(sharded.simulated(), 7);
    for spec in &specs {
        let a = threads.get(spec).expect("threads merged report");
        let b = sharded.get(spec).expect("sharded merged report");
        assert_eq!(
            ltc_sim::serde_json::to_string(a),
            ltc_sim::serde_json::to_string(b),
            "canonical JSON differs across backends for {}",
            spec.key()
        );
        assert_eq!(a, b);
        // The fan-out/reduce path equals sequential execution of the
        // parent — the backend is purely a performance choice.
        assert_eq!(a, &spec.execute(), "scheduler reduce diverged for {}", spec.key());
    }
}

/// A segmented run and its per-segment children share one artifact
/// cache: after a segmented pass, both the parent's merged report and
/// each child's partial summary are served without simulation, across
/// backends.
#[test]
fn segmented_runs_cache_parent_and_children() {
    let dir = std::env::temp_dir().join(format!("ltc-segmented-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let parent = RunSpec::stream_segmented("mcf", 64 << 10, 4, 6_000, 1);
    let opts = EngineOptions::cached(3, &dir);

    let mut sched = Scheduler::new();
    sched.request(parent.clone());
    let warm = sched.execute(&opts).unwrap();
    assert_eq!(warm.simulated(), 4, "each segment simulates once");

    // Second pass: the parent artifact alone satisfies the plan.
    let served = sched.execute(&opts.clone().with_backend(BackendKind::Sharded)).unwrap();
    assert_eq!(served.simulated(), 0, "warm cache must satisfy the parent");
    assert_eq!(served.cache_hits(), 1);
    assert_eq!(warm.get(&parent), served.get(&parent));

    // The children were persisted too: requesting one directly is a pure
    // cache hit with the partial summary intact.
    let child = RunSpec::stream_segment("mcf", 64 << 10, 4, 2, 6_000, 1);
    let mut direct = Scheduler::new();
    direct.request(child.clone());
    let results = direct.execute(&opts).unwrap();
    assert_eq!(results.simulated(), 0, "child artifacts must be reusable");
    assert_eq!(results.cache_hits(), 1);
    assert!(results.stream_partial(&child).accesses > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Cache provenance stays honest when a parent's expansion satisfies a
/// directly-requested child mid-plan: the child's artifact is loaded
/// once, not once per mention.
#[test]
fn expansion_served_children_count_one_cache_hit() {
    let dir = std::env::temp_dir().join(format!("ltc-segmented-hits-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = EngineOptions::cached(2, &dir);
    let parent = RunSpec::stream_segmented("gzip", 64 << 10, 2, 4_000, 1);
    let children = [
        RunSpec::stream_segment("gzip", 64 << 10, 2, 0, 4_000, 1),
        RunSpec::stream_segment("gzip", 64 << 10, 2, 1, 4_000, 1),
    ];
    // Persist only the children (a run that died before its reduce).
    let mut warm = Scheduler::new();
    warm.request_all(children.iter().cloned());
    assert_eq!(warm.execute(&opts).unwrap().simulated(), 2);

    // Parent first, then a direct request for one of its children: the
    // expansion serves both children from cache; the direct mention must
    // not reload (or recount) the already-satisfied child.
    let mut sched = Scheduler::new();
    sched.request(parent.clone());
    sched.request(children[0].clone());
    let results = sched.execute(&opts).unwrap();
    assert_eq!(results.simulated(), 0);
    assert_eq!(results.cache_hits(), 2, "one hit per child artifact, no double count");
    assert!(results.get(&parent).is_some(), "parent reduced from cached children");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Requesting a parent alongside its own children (or the children of a
/// differently-cut run) never double-executes a slice, and every key
/// stays distinct.
#[test]
fn parent_and_direct_children_dedupe() {
    let parent = RunSpec::stream_segmented("gzip", 64 << 10, 2, 4_000, 1);
    let child = RunSpec::stream_segment("gzip", 64 << 10, 2, 0, 4_000, 1);
    let other_cut = RunSpec::stream_segment("gzip", 64 << 10, 4, 0, 4_000, 1);
    let mut sched = Scheduler::new();
    sched.request(child.clone());
    sched.request(parent.clone());
    sched.request(other_cut.clone());
    let results = sched.execute(&EngineOptions::in_memory(3)).unwrap();
    // 2 parent children (one shared with the direct request) + the
    // 4-way slice: the shared child runs once.
    assert_eq!(results.simulated(), 3);
    assert!(results.get(&parent).is_some());
    assert_eq!(
        results.stream_partial(&child),
        &*match child.execute() {
            ltc_sim::engine::RunResult::StreamPartial(p) => p,
            other => panic!("unexpected result kind {}", other.kind()),
        },
    );
    assert_ne!(
        results.stream_partial(&child),
        results.stream_partial(&other_cut),
        "different segment counts cover different slices"
    );
}

/// Builds an adversarial spec list from proptest-chosen shape parameters:
/// duplicates allowed, expensive timing runs salted anywhere in the
/// order, benchmark/seed variety to defeat dedup.
fn adversarial_specs(raw: &[(usize, usize, u64)]) -> Vec<RunSpec> {
    let benches = ["gzip", "mesa", "art", "mcf", "swim", "gcc"];
    raw.iter()
        .map(|&(bench, mode, seed)| {
            let name = benches[bench % benches.len()];
            match mode % 4 {
                // Timing is the expensive straggler the sharded backend
                // schedules first; everything else is cheap filler.
                0 => RunSpec::timing(name, PredictorKind::Baseline, 2_000, seed),
                1 => RunSpec::coverage(name, PredictorKind::Baseline, 1_500, seed),
                2 => RunSpec::dead_time(name, 1_500, seed),
                _ => RunSpec::multiprog(name, Some("gzip"), PredictorKind::Baseline, 1_000, seed),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded backend completes every spec — results for the whole
    /// plan, in request order, none lost to a straggling or starved
    /// shard — under adversarial orderings and worker counts.
    #[test]
    fn sharded_backend_completes_adversarial_orderings(
        raw in prop::collection::vec((0usize..6, 0usize..4, 1u64..4), 1..14),
        threads in 1usize..5,
    ) {
        let specs = adversarial_specs(&raw);
        let mut sched = Scheduler::new();
        sched.request_all(specs.iter().cloned());
        let unique = sched.unique();
        let results = sched
            .execute(&EngineOptions::in_memory(threads).with_backend(BackendKind::Sharded))
            .expect("in-memory execution cannot fail");
        prop_assert_eq!(results.simulated(), unique.len() as u64);
        prop_assert_eq!(results.len(), unique.len());
        for spec in &unique {
            prop_assert!(results.get(spec).is_some(), "missing result for {}", spec.key());
        }
    }
}
