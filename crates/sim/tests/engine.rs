//! Engine integration tests: dedup, ordering, artifact cache round trips,
//! and the injectivity of `RunSpec` serialization.

use std::path::PathBuf;

use ltc_sim::engine::{artifact, EngineOptions, RunSpec, Scheduler};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::trace::suite;
use ltcords::LtCordsConfig;
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltc-engine-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny(bench: &str) -> RunSpec {
    RunSpec::coverage(bench, PredictorKind::Baseline, 4_000, 1)
}

/// N figures requesting the same spec produce exactly one execution.
#[test]
fn shared_specs_execute_once() {
    let mut sched = Scheduler::new();
    // Three "figures", each wanting the same gzip baseline plus one
    // private run.
    for private in ["mesa", "gcc", "art"] {
        sched.request(tiny("gzip"));
        sched.request(tiny(private));
    }
    assert_eq!(sched.requested(), 6);
    let results = sched.execute(&EngineOptions::in_memory(4)).unwrap();
    assert_eq!(results.simulated(), 4, "gzip must run once, not three times");
    assert_eq!(results.len(), 4);
    assert!(results.coverage(&tiny("gzip")).base_l1_misses > 0);
}

/// Dedup preserves first-seen input order.
#[test]
fn unique_preserves_input_order() {
    let mut sched = Scheduler::new();
    for bench in ["swim", "mcf", "gzip", "mcf", "swim", "art"] {
        sched.request(tiny(bench));
    }
    let order: Vec<String> = sched.unique().into_iter().map(|s| s.benchmark).collect();
    assert_eq!(order, ["swim", "mcf", "gzip", "art"]);
}

/// A second execution against the same cache directory simulates nothing
/// and reproduces identical results.
#[test]
fn cache_round_trip_serves_second_pass() {
    let dir = tmp_dir("roundtrip");
    let specs = [
        tiny("gzip"),
        RunSpec::timing("mesa", PredictorKind::Baseline, 4_000, 1),
        RunSpec::dead_time("swim", 4_000, 1),
        RunSpec::multiprog("gcc", Some("mcf"), PredictorKind::LtCords, 4_000, 1),
    ];
    let opts = EngineOptions::cached(4, &dir);

    let mut sched = Scheduler::new();
    sched.request_all(specs.iter().cloned());
    let first = sched.execute(&opts).unwrap();
    assert_eq!(first.simulated(), specs.len() as u64);
    assert_eq!(first.cache_hits(), 0);

    let second = sched.execute(&opts).unwrap();
    assert_eq!(second.simulated(), 0, "everything must come from the artifact cache");
    assert_eq!(second.cache_hits(), specs.len() as u64);
    for spec in &specs {
        assert_eq!(
            first.get(spec).unwrap(),
            second.get(spec).unwrap(),
            "cached result differs for {}",
            spec.key()
        );
    }

    // `force` bypasses the cache (and rewrites it).
    let forced = sched.execute(&EngineOptions { force: true, ..opts.clone() }).unwrap();
    assert_eq!(forced.simulated(), specs.len() as u64);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The artifact survives the full store → parse → typed-load path with
/// every field intact (JSON line round trip through the serde shim).
#[test]
fn artifact_json_round_trips_full_reports() {
    let dir = tmp_dir("fields");
    let spec = RunSpec::coverage("galgel", PredictorKind::LtCords, 30_000, 7);
    let mut sched = Scheduler::new();
    sched.request(spec.clone());
    let live = sched.execute(&EngineOptions::cached(2, &dir)).unwrap();
    let cached = artifact::load(&dir, &spec).unwrap().expect("artifact written");
    assert_eq!(live.get(&spec).unwrap(), &cached);
    let report = cached.as_coverage().expect("coverage result");
    assert!(report.base_l1_misses > 0, "non-trivial payload should round trip");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Builds a spec from raw proptest-chosen integers, covering every mode
/// and predictor shape.
fn spec_from(raw: (usize, usize, usize, u64, u64, usize)) -> RunSpec {
    let (bench_idx, mode, kind, accesses, seed, partner_idx) = raw;
    let benches = suite::benchmarks();
    let bench = benches[bench_idx % benches.len()].name;
    let predictor = match kind % 6 {
        0 => PredictorKind::Baseline,
        1 => PredictorKind::LtCords,
        2 => PredictorKind::DbcpUnlimited,
        3 => PredictorKind::DbcpBytes(((kind as u64) + 1) << 16),
        4 => PredictorKind::LtCordsWith(LtCordsConfig::fig9_sweep(128 << (kind % 8))),
        _ => PredictorKind::Ghb,
    };
    match mode % 6 {
        0 => RunSpec::coverage(bench, predictor, accesses, seed),
        1 => RunSpec::timing(bench, predictor, accesses, seed),
        2 => RunSpec::dead_time(bench, accesses, seed),
        3 => RunSpec::correlation(bench, accesses, seed),
        4 => RunSpec::ordering(bench, accesses, seed),
        _ => {
            let partner = if partner_idx % 2 == 0 {
                None
            } else {
                Some(benches[partner_idx % benches.len()].name)
            };
            RunSpec::multiprog(bench, partner, predictor, accesses, seed)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serialization is injective over the spec fields: distinct specs
    /// never share a canonical key (the dedup/cache identity).
    #[test]
    fn spec_serialization_is_injective(
        a in (0usize..28, 0usize..6, 0usize..12, 1u64..1_000_000, 0u64..64, 0usize..28),
        b in (0usize..28, 0usize..6, 0usize..12, 1u64..1_000_000, 0u64..64, 0usize..28),
    ) {
        let (sa, sb) = (spec_from(a), spec_from(b));
        prop_assert_eq!(sa == sb, sa.key() == sb.key(), "key equality must match spec equality: {} / {}", sa.key(), sb.key());
    }

    /// The canonical key round-trips losslessly for every generated spec.
    #[test]
    fn spec_keys_round_trip(
        raw in (0usize..28, 0usize..6, 0usize..12, 1u64..1_000_000, 0u64..64, 0usize..28),
    ) {
        let spec = spec_from(raw);
        let parsed: RunSpec = serde_json::from_str(&spec.key()).expect("canonical key parses");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.key(), spec.key());
    }
}

/// Bumping the model version invalidates cached artifacts without
/// `--force`: the versioned spec keys to a different artifact, and even a
/// stale file copied into its slot fails the stored-spec check. An
/// unchanged version keeps serving pure cache hits.
#[test]
fn model_version_bump_invalidates_cache_without_force() {
    let dir = tmp_dir("model-version");
    let spec = tiny("gzip");
    let opts = EngineOptions::cached(2, &dir);

    let mut sched = Scheduler::new();
    sched.request(spec.clone());
    assert_eq!(sched.execute(&opts).unwrap().simulated(), 1);
    // Unchanged version: the second pass is pure cache.
    let warm = sched.execute(&opts).unwrap();
    assert_eq!(warm.simulated(), 0);
    assert_eq!(warm.cache_hits(), 1);

    // Simulate a model-behaviour change: the same experiment under a
    // bumped MODEL_VERSION. Its key (and artifact file name) differ, so
    // the old artifact is invisible...
    let mut bumped = spec.clone();
    bumped.model_version += 1;
    assert_eq!(artifact::load(&dir, &bumped).unwrap(), None);
    // ...and even a stale file squatting on the new name degrades to a
    // miss via the stored-spec comparison.
    std::fs::copy(artifact::path_for(&dir, &spec), artifact::path_for(&dir, &bumped)).unwrap();
    assert_eq!(artifact::load(&dir, &bumped).unwrap(), None);

    // The engine therefore re-simulates the bumped spec with no --force.
    let mut fresh = Scheduler::new();
    fresh.request(bumped.clone());
    let results = fresh.execute(&opts).unwrap();
    assert_eq!(results.simulated(), 1, "stale cache must self-detect");
    assert_eq!(results.cache_hits(), 0);
    // The bumped artifact now stands on its own for future runs.
    assert!(artifact::load(&dir, &bumped).unwrap().is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `ResultSet` counters distinguish provenance across mixed passes.
#[test]
fn counters_split_simulated_and_cached() {
    let dir = tmp_dir("counters");
    let opts = EngineOptions::cached(2, &dir);
    let mut warm = Scheduler::new();
    warm.request(tiny("gzip"));
    warm.execute(&opts).unwrap();

    // One warm spec + one cold spec in a fresh pass.
    let mut sched = Scheduler::new();
    sched.request(tiny("gzip"));
    sched.request(tiny("mesa"));
    let results = sched.execute(&opts).unwrap();
    assert_eq!(results.cache_hits(), 1);
    assert_eq!(results.simulated(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
