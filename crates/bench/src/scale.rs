//! Experiment scale selection (full vs quick runs).

/// Access budgets for the experiment kernels.
///
/// The paper traces each benchmark in its entirety (billions of
/// instructions); the full scale here is sized so the complete harness runs
/// in minutes while giving large-footprint workloads several recurrences to
/// train on. Quick scale is for smoke runs and `cargo bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Accesses per benchmark for trace-driven (coverage/analysis) kernels.
    pub coverage_accesses: u64,
    /// Accesses per benchmark for timing kernels.
    pub timing_accesses: u64,
    /// Worker threads for parallel sweeps.
    pub threads: usize,
}

impl Scale {
    /// Full-scale runs (the EXPERIMENTS.md numbers).
    pub fn full() -> Self {
        Scale { coverage_accesses: 12_000_000, timing_accesses: 6_000_000, threads: 12 }
    }

    /// Quick smoke-scale runs.
    pub fn quick() -> Self {
        Scale { coverage_accesses: 2_000_000, timing_accesses: 800_000, threads: 12 }
    }

    /// Tiny scale for Criterion iterations.
    pub fn bench() -> Self {
        Scale { coverage_accesses: 150_000, timing_accesses: 60_000, threads: 4 }
    }

    /// Parses `--quick` from command-line arguments (full otherwise).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::quick()
        } else {
            Scale::full()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::full().coverage_accesses > Scale::quick().coverage_accesses);
        assert!(Scale::quick().coverage_accesses > Scale::bench().coverage_accesses);
    }
}
