//! Rendering `--events` JSON-lines logs (`ltsim events summarize`).
//!
//! An event log recorded by `ltsim run --events FILE` holds one
//! `ltc_telemetry` schema-v1 event per line: scheduler planning spans
//! and counters, per-spec execution spans (queue wait vs run time,
//! worker ids), segment-restore outcomes, sketch occupancy gauges, and
//! structured warnings — including events forwarded from subprocess
//! workers. [`summarize`] digests such a log into the operator-facing
//! breakdown tables: per-phase span totals, the slowest specs, the
//! artifact-cache hit ratio, the restore-outcome histogram, the fault
//! histogram (`spec.retry` / `spec.timeout` / `worker.respawn` points
//! emitted by the supervised backends), and peak gauge levels (e.g.
//! peak worker summary memory).
//!
//! Failed execution attempts close their `spec` spans with an `outcome`
//! field (`"panic"`, `"retry"`, `"timeout"`); those ends count toward
//! span balance and phase totals but are excluded from the slowest-spec
//! table so retries do not masquerade as slow completions.

use std::collections::HashMap;

use ltc_sim::report::Table;
use ltc_sim::serde_json;
use serde::Value;

/// Parses and renders an event log in one step.
///
/// # Errors
///
/// Returns a message naming the first malformed line (bad JSON, missing
/// required fields, or an unsupported schema version).
pub fn summarize(text: &str) -> Result<String, String> {
    EventLog::parse(text).map(|log| log.render())
}

/// How many of the slowest specs the summary lists.
const SLOWEST: usize = 5;

/// Aggregated view of one event log.
#[derive(Default)]
pub struct EventLog {
    events: u64,
    kinds: HashMap<String, u64>,
    /// Open spans keyed by `(worker, span id)`; used for balance only.
    open: HashMap<(Option<u64>, u64), u64>,
    /// Span ends that never saw a begin (or vice versa at the end).
    unmatched_ends: u64,
    begun: u64,
    ended: u64,
    /// Per span name: (count, total elapsed µs) across span ends.
    phases: Vec<(String, u64, u64)>,
    specs: Vec<SpecRow>,
    cache_hits: u64,
    cache_probes: u64,
    restores: Vec<(String, u64)>,
    /// Fault-path points keyed by event name (`spec.retry`, …).
    faults: Vec<(String, u64)>,
    gauges: Vec<(String, u64, Option<u64>)>,
    counters: Vec<(String, u64)>,
    warnings: Vec<String>,
}

/// One completed `spec` (or `worker.spec`) span.
struct SpecRow {
    label: String,
    run_us: u64,
    queue_us: u64,
    worker: Option<u64>,
}

fn field_u64(event: &Value, name: &str) -> Option<u64> {
    event.get("fields").and_then(|f| f.get(name)).and_then(Value::as_u64)
}

fn field_str<'a>(event: &'a Value, name: &str) -> Option<&'a str> {
    event.get("fields").and_then(|f| f.get(name)).and_then(Value::as_str)
}

/// Increments `key`'s slot in an insertion-ordered association list
/// (keeps first-seen order, unlike a `HashMap`, so output is stable).
fn bump(list: &mut Vec<(String, u64)>, key: &str, delta: u64) {
    match list.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v += delta,
        None => list.push((key.to_string(), delta)),
    }
}

impl EventLog {
    /// Parses a JSON-lines event log (blank lines ignored).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<EventLog, String> {
        let mut log = EventLog::default();
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let event = serde_json::parse(trimmed).map_err(|e| format!("line {}: {e}", i + 1))?;
            log.ingest(&event).map_err(|what| format!("line {}: {what}", i + 1))?;
        }
        Ok(log)
    }

    fn ingest(&mut self, event: &Value) -> Result<(), String> {
        match event.get("v").and_then(Value::as_u64) {
            Some(1) => {}
            Some(v) => return Err(format!("unsupported event schema v{v}")),
            None => return Err("missing schema version field `v`".to_string()),
        }
        let kind = event
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing `kind`".to_string())?;
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing `name`".to_string())?;
        self.events += 1;
        *self.kinds.entry(kind.to_string()).or_insert(0) += 1;
        let worker = event.get("worker").and_then(Value::as_u64);
        let span = event.get("span").and_then(Value::as_u64);
        match kind {
            "span_begin" => {
                self.begun += 1;
                if let Some(id) = span {
                    *self.open.entry((worker, id)).or_insert(0) += 1;
                }
            }
            "span_end" => {
                self.ended += 1;
                match span.map(|id| (worker, id)) {
                    Some(key) if self.open.get(&key).copied().unwrap_or(0) > 0 => {
                        let open = self.open.get_mut(&key).expect("checked above");
                        *open -= 1;
                        if *open == 0 {
                            self.open.remove(&key);
                        }
                    }
                    _ => self.unmatched_ends += 1,
                }
                let elapsed = field_u64(event, "elapsed_us").unwrap_or(0);
                match self.phases.iter_mut().find(|(n, _, _)| n == name) {
                    Some((_, count, total)) => {
                        *count += 1;
                        *total += elapsed;
                    }
                    None => self.phases.push((name.to_string(), 1, elapsed)),
                }
                // Failed attempts (outcome-tagged ends) are not
                // completions; keep them out of the slowest-spec table.
                if (name == "spec" || name == "worker.spec")
                    && field_str(event, "outcome").is_none()
                {
                    if let Some(label) = field_str(event, "label") {
                        self.specs.push(SpecRow {
                            label: format!(
                                "{label}{}",
                                if name == "worker.spec" { " (worker)" } else { "" }
                            ),
                            run_us: field_u64(event, "run_us").unwrap_or(elapsed),
                            queue_us: field_u64(event, "queue_wait_us").unwrap_or(0),
                            worker,
                        });
                    }
                }
            }
            "counter" => {
                bump(&mut self.counters, name, field_u64(event, "value").unwrap_or(0));
            }
            "gauge" => {
                let value = field_u64(event, "value").unwrap_or(0);
                match self.gauges.iter_mut().find(|(n, _, _)| n == name) {
                    Some((_, peak, at)) => {
                        if value > *peak {
                            *peak = value;
                            *at = worker;
                        }
                    }
                    None => self.gauges.push((name.to_string(), value, worker)),
                }
            }
            "warning" => {
                let message = field_str(event, "message").unwrap_or("(no message)");
                self.warnings.push(format!("{name}: {message}"));
            }
            "point" => match name {
                "cache_probe" => {
                    self.cache_probes += 1;
                    if event
                        .get("fields")
                        .and_then(|f| f.get("hit"))
                        .is_some_and(|v| *v == Value::Bool(true))
                    {
                        self.cache_hits += 1;
                    }
                }
                "segment_restore" => {
                    let outcome = field_str(event, "outcome").unwrap_or("unknown");
                    bump(&mut self.restores, outcome, 1);
                }
                "spec.retry" | "spec.timeout" | "worker.respawn" => {
                    bump(&mut self.faults, name, 1);
                }
                _ => {}
            },
            other => return Err(format!("unknown event kind `{other}`")),
        }
        Ok(())
    }

    /// Spans that begun but never ended plus ends without begins.
    pub fn unbalanced_spans(&self) -> u64 {
        self.open.values().sum::<u64>() + self.unmatched_ends
    }

    /// Renders the breakdown tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let kind = |k: &str| self.kinds.get(k).copied().unwrap_or(0);
        out.push_str(&format!(
            "event log: {} events ({} span pairs, {} counters, {} gauges, {} points, {} warnings)\n",
            self.events,
            self.ended.min(self.begun),
            kind("counter"),
            kind("gauge"),
            kind("point"),
            kind("warning"),
        ));
        out.push_str(&format!(
            "span balance: {} begun, {} ended, {} unbalanced\n\n",
            self.begun,
            self.ended,
            self.unbalanced_spans()
        ));

        if !self.phases.is_empty() {
            let mut phases = self.phases.clone();
            phases.sort_by_key(|(_, _, total)| std::cmp::Reverse(*total));
            let mut t = Table::new(vec!["phase (span)", "count", "total ms"]);
            for (name, count, total_us) in &phases {
                t.row(vec![
                    name.clone(),
                    count.to_string(),
                    format!("{:.2}", *total_us as f64 / 1e3),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        if !self.specs.is_empty() {
            let mut specs: Vec<&SpecRow> = self.specs.iter().collect();
            specs.sort_by_key(|s| std::cmp::Reverse(s.run_us));
            let mut t = Table::new(vec!["slowest specs", "run ms", "queue ms", "worker"]);
            for s in specs.iter().take(SLOWEST) {
                t.row(vec![
                    s.label.clone(),
                    format!("{:.2}", s.run_us as f64 / 1e3),
                    format!("{:.2}", s.queue_us as f64 / 1e3),
                    s.worker.map_or_else(|| "-".to_string(), |w| w.to_string()),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        if self.cache_probes > 0 {
            out.push_str(&format!(
                "artifact cache: {} hits / {} probes ({:.0}%)\n\n",
                self.cache_hits,
                self.cache_probes,
                self.cache_hits as f64 / self.cache_probes as f64 * 100.0
            ));
        }

        if !self.restores.is_empty() {
            let mut t = Table::new(vec!["segment restore", "count"]);
            for (outcome, count) in &self.restores {
                t.row(vec![outcome.clone(), count.to_string()]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        if !self.faults.is_empty() {
            let mut t = Table::new(vec!["fault", "count"]);
            for (name, count) in &self.faults {
                t.row(vec![name.clone(), count.to_string()]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        if !self.gauges.is_empty() {
            let mut t = Table::new(vec!["gauge", "peak", "worker"]);
            for (name, peak, at) in &self.gauges {
                t.row(vec![
                    name.clone(),
                    peak.to_string(),
                    at.map_or_else(|| "-".to_string(), |w| w.to_string()),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        if !self.counters.is_empty() {
            let mut t = Table::new(vec!["counter", "total"]);
            for (name, total) in &self.counters {
                t.row(vec![name.clone(), total.to_string()]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        if !self.warnings.is_empty() {
            out.push_str(&format!("warnings ({}):\n", self.warnings.len()));
            for w in self.warnings.iter().take(5) {
                out.push_str(&format!("  {w}\n"));
            }
            if self.warnings.len() > 5 {
                out.push_str(&format!("  ... and {} more\n", self.warnings.len() - 5));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but representative log: a plan span, two spec spans on
    /// two workers, cache probes, a segment restore, gauges, counters,
    /// and a warning.
    fn sample_log() -> String {
        [
            r#"{"v":1,"t":10,"kind":"span_begin","name":"scheduler.plan","span":1,"fields":{}}"#,
            r#"{"v":1,"t":90,"kind":"span_end","name":"scheduler.plan","span":1,"fields":{"elapsed_us":80,"cache_hits":1,"to_run":2}}"#,
            r#"{"v":1,"t":95,"kind":"counter","name":"scheduler.cache_hits","fields":{"value":1}}"#,
            r#"{"v":1,"t":96,"kind":"point","name":"cache_probe","fields":{"label":"a","hit":true}}"#,
            r#"{"v":1,"t":97,"kind":"point","name":"cache_probe","fields":{"label":"b","hit":false}}"#,
            r#"{"v":1,"t":98,"kind":"point","name":"cache_probe","fields":{"label":"c","hit":false}}"#,
            r#"{"v":1,"t":100,"kind":"point","name":"run_begin","fields":{"total":2,"backend":"threads"}}"#,
            r#"{"v":1,"t":101,"kind":"span_begin","name":"spec","span":2,"worker":1,"fields":{"label":"b"}}"#,
            r#"{"v":1,"t":102,"kind":"span_begin","name":"spec","span":3,"worker":2,"fields":{"label":"c"}}"#,
            r#"{"v":1,"t":150,"kind":"point","name":"segment_restore","worker":1,"fields":{"outcome":"warm_image","checkpoint":true,"index":1,"start":500,"warm":true}}"#,
            r#"{"v":1,"t":180,"kind":"gauge","name":"sketch.memory_bytes","worker":1,"fields":{"value":4096}}"#,
            r#"{"v":1,"t":181,"kind":"gauge","name":"sketch.memory_bytes","worker":2,"fields":{"value":8192}}"#,
            r#"{"v":1,"t":190,"kind":"counter","name":"sketch.evictions","worker":2,"fields":{"value":7}}"#,
            r#"{"v":1,"t":200,"kind":"span_end","name":"spec","span":2,"worker":1,"fields":{"elapsed_us":99,"label":"b","queue_wait_us":5,"run_us":99}}"#,
            r#"{"v":1,"t":300,"kind":"span_end","name":"spec","span":3,"worker":2,"fields":{"elapsed_us":198,"label":"c","queue_wait_us":6,"run_us":198}}"#,
            r#"{"v":1,"t":310,"kind":"warning","name":"corrupt_store","fields":{"message":"ignoring corrupt checkpoint store"}}"#,
            r#"{"v":1,"t":320,"kind":"point","name":"run_end","fields":{"completed":2}}"#,
        ]
        .join("\n")
    }

    #[test]
    fn summarize_renders_every_section() {
        let out = summarize(&sample_log()).unwrap();
        assert!(out.contains("event log: 17 events"), "{out}");
        assert!(out.contains("span balance: 3 begun, 3 ended, 0 unbalanced"), "{out}");
        // Phase totals: scheduler.plan and the two spec spans.
        assert!(out.contains("scheduler.plan"), "{out}");
        assert!(out.contains("spec"), "{out}");
        // Slowest spec first: c ran 198 µs on worker 2.
        let c_pos = out.find("c ").or_else(|| out.find("| c")).unwrap_or(usize::MAX);
        let b_pos = out.find("b ").or_else(|| out.find("| b")).unwrap_or(usize::MAX);
        assert!(c_pos < b_pos, "slowest spec listed first:\n{out}");
        assert!(out.contains("artifact cache: 1 hits / 3 probes (33%)"), "{out}");
        assert!(out.contains("warm_image"), "{out}");
        assert!(out.contains("sketch.memory_bytes"), "{out}");
        assert!(out.contains("8192"), "peak gauge keeps the max: {out}");
        assert!(out.contains("sketch.evictions"), "{out}");
        assert!(out.contains("corrupt_store: ignoring corrupt checkpoint store"), "{out}");
    }

    #[test]
    fn fault_points_build_the_fault_histogram() {
        let log = [
            r#"{"v":1,"t":1,"kind":"point","name":"spec.retry","fields":{"label":"a","attempt":1,"reason":"worker died"}}"#,
            r#"{"v":1,"t":2,"kind":"point","name":"spec.retry","fields":{"label":"b","attempt":1,"reason":"worker died"}}"#,
            r#"{"v":1,"t":3,"kind":"point","name":"spec.timeout","fields":{"label":"a","attempt":2,"reason":"timed out"}}"#,
            r#"{"v":1,"t":4,"kind":"point","name":"worker.respawn","fields":{"worker":0,"consecutive_failures":1,"backoff_ms":1,"reason":"exited"}}"#,
        ]
        .join("\n");
        let out = summarize(&log).unwrap();
        assert!(out.contains("fault"), "{out}");
        assert!(out.contains("spec.retry"), "{out}");
        assert!(out.contains("spec.timeout"), "{out}");
        assert!(out.contains("worker.respawn"), "{out}");
        // spec.retry appeared twice, the others once.
        let retry_row = out.lines().find(|l| l.contains("spec.retry")).unwrap();
        assert!(retry_row.contains('2'), "{retry_row}");
    }

    #[test]
    fn outcome_tagged_spec_ends_stay_out_of_the_slowest_table() {
        let log = [
            r#"{"v":1,"t":1,"kind":"span_begin","name":"spec","span":1,"worker":1,"fields":{"label":"failing"}}"#,
            r#"{"v":1,"t":2,"kind":"span_end","name":"spec","span":1,"worker":1,"fields":{"elapsed_us":999,"label":"failing","run_us":999,"outcome":"retry"}}"#,
            r#"{"v":1,"t":3,"kind":"span_begin","name":"spec","span":2,"worker":1,"fields":{"label":"completed"}}"#,
            r#"{"v":1,"t":4,"kind":"span_end","name":"spec","span":2,"worker":1,"fields":{"elapsed_us":10,"label":"completed","run_us":10}}"#,
        ]
        .join("\n");
        let parsed = EventLog::parse(&log).unwrap();
        // Failed attempts still balance their spans...
        assert_eq!(parsed.unbalanced_spans(), 0);
        let out = parsed.render();
        // ...but only the completion makes the slowest-spec table.
        assert!(out.contains("completed"), "{out}");
        assert!(!out.contains("failing"), "{out}");
    }

    #[test]
    fn unbalanced_spans_are_counted() {
        let log = EventLog::parse(
            &[
                r#"{"v":1,"t":1,"kind":"span_begin","name":"spec","span":1,"worker":1,"fields":{}}"#,
                r#"{"v":1,"t":2,"kind":"span_end","name":"spec","span":9,"worker":1,"fields":{"elapsed_us":1}}"#,
            ]
            .join("\n"),
        )
        .unwrap();
        // One begin never ended, one end never begun.
        assert_eq!(log.unbalanced_spans(), 2);
        // The same span id on different workers is two distinct spans.
        let log = EventLog::parse(
            &[
                r#"{"v":1,"t":1,"kind":"span_begin","name":"spec","span":1,"worker":1,"fields":{}}"#,
                r#"{"v":1,"t":2,"kind":"span_end","name":"spec","span":1,"worker":2,"fields":{"elapsed_us":1}}"#,
            ]
            .join("\n"),
        )
        .unwrap();
        assert_eq!(log.unbalanced_spans(), 2);
    }

    #[test]
    fn bad_lines_are_reported_with_their_line_number() {
        let err = summarize("{\"v\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = summarize(r#"{"v":2,"t":1,"kind":"point","name":"x","fields":{}}"#).unwrap_err();
        assert!(err.contains("unsupported event schema v2"), "{err}");
        let err = summarize(r#"{"v":1,"t":1,"kind":"bogus","name":"x","fields":{}}"#).unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn real_telemetry_events_round_trip_into_the_summary() {
        // Events produced by the actual emitter parse and summarize.
        use ltc_telemetry::{Capture, EventKind};
        let capture = std::sync::Arc::new(Capture::new());
        ltc_telemetry::with_subscriber(capture.clone(), || {
            let span = ltc_telemetry::span(
                "spec",
                vec![("label".to_string(), "coverage/gzip/baseline/1000k/s1".into())],
            );
            ltc_telemetry::counter("scheduler.cache_hits", 2);
            ltc_telemetry::gauge("sketch.memory_bytes", 1024, Vec::new());
            span.end_with(vec![
                ("label".to_string(), "coverage/gzip/baseline/1000k/s1".into()),
                ("run_us".to_string(), 42u64.into()),
                ("queue_wait_us".to_string(), 1u64.into()),
            ]);
        });
        let text: String = capture.events().iter().map(|e| e.to_json_line() + "\n").collect();
        let log = EventLog::parse(&text).unwrap();
        assert_eq!(log.unbalanced_spans(), 0);
        let out = log.render();
        assert!(out.contains("coverage/gzip/baseline/1000k/s1"), "{out}");
        assert_eq!(capture.events().iter().filter(|e| e.kind == EventKind::SpanEnd).count(), 1);
    }
}
