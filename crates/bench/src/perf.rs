//! Hot-path microbenchmarks and the `BENCH_<date>.json` perf trajectory.
//!
//! `ltsim bench` (and the `kernel_bench` bin) time the simulator's three
//! measured hot paths — raw trace decode, the coverage kernel, and the
//! stream/sketch path — in accesses per second, and serialize the
//! measurements as a machine-readable [`BenchReport`]. Committing one
//! report per optimization PR (`bench/BENCH_<date>.json`) gives the repo
//! a perf *trajectory*; nightly CI re-runs the kernels and
//! [`compare`]s against the committed baseline, failing on regressions
//! beyond a tolerance.
//!
//! Timing is deliberately simple and dependency-free: each kernel runs
//! once to warm caches, then `rounds` measured repetitions, keeping the
//! **best** wall time (minimum is the standard noise-robust statistic
//! for throughput benches). Absolute numbers are machine-dependent —
//! the committed baseline describes the CI machine class, and local
//! comparisons are only meaningful against local baselines.

use std::time::{Duration, Instant, SystemTime};

use ltc_sim::analysis::{
    run_coverage, CoverageConfig, StreamAnalysis, StreamConfig, SEGMENT_WARMUP,
};
use ltc_sim::cache::{Hierarchy, HierarchyConfig};
use ltc_sim::engine::checkpoints::{record_targets, record_warm_images};
use ltc_sim::engine::MODEL_VERSION;
use ltc_sim::experiment::PredictorKind;
use ltc_sim::trace::{io, suite, Replay, TraceSegment, TraceSource};
use ltc_telemetry::JsonLinesWriter;
use serde::{Deserialize, Serialize};

/// Schema version of the serialized [`BenchReport`].
pub const BENCH_SCHEMA: u64 = 1;

/// Default access budget for a full bench run.
pub const FULL_ACCESSES: u64 = 1_000_000;

/// Access budget under `--quick` (CI smoke scale).
pub const QUICK_ACCESSES: u64 = 200_000;

/// Default regression tolerance for [`compare`], in percent.
pub const DEFAULT_TOLERANCE_PCT: f64 = 10.0;

/// What to measure.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Accesses each kernel processes per repetition.
    pub accesses: u64,
    /// Suite benchmark supplying the trace.
    pub benchmark: String,
    /// Trace generator seed.
    pub seed: u64,
    /// Measured repetitions per kernel (best is kept).
    pub rounds: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions { accesses: FULL_ACCESSES, benchmark: "gcc".to_string(), seed: 1, rounds: 3 }
    }
}

impl BenchOptions {
    /// The reduced-scale options used by nightly CI.
    pub fn quick() -> Self {
        BenchOptions { accesses: QUICK_ACCESSES, ..BenchOptions::default() }
    }
}

/// One kernel's measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchResult {
    /// Stable kernel name (the key [`compare`] matches on).
    pub name: String,
    /// Items (accesses or records) processed per repetition.
    pub items: u64,
    /// Best wall time over the measured repetitions, nanoseconds.
    pub nanos: u64,
    /// Throughput: `items / (nanos / 1e9)`.
    pub per_sec: f64,
}

impl BenchResult {
    fn new(name: &str, items: u64, best: Duration) -> Self {
        let nanos = (best.as_nanos() as u64).max(1);
        BenchResult {
            name: name.to_string(),
            items,
            nanos,
            per_sec: items as f64 * 1e9 / nanos as f64,
        }
    }
}

/// Telemetry cost of the coverage kernel: the same closure timed with
/// a JSON-lines subscriber installed (writing to a sink) versus the
/// uninstrumented `coverage_baseline` measurement. Simulation code only
/// emits per *run*, never per access, so the delta documents that the
/// event log is effectively free — nightly CI holds it under 2%.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryOverhead {
    /// Events the instrumented repetitions wrote (one `coverage.run`
    /// point each).
    pub events: u64,
    /// JSON-lines bytes those events serialized to.
    pub bytes: u64,
    /// Best-of-rounds throughput with telemetry off, from off/on
    /// repetitions interleaved in the same measurement window.
    pub off_per_sec: f64,
    /// Throughput with the JSON-lines subscriber installed.
    pub instrumented_per_sec: f64,
    /// Relative slowdown in percent (positive = telemetry cost).
    pub overhead_pct: f64,
}

/// A full bench run: the perf-trajectory file format.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchReport {
    /// Serialization schema version ([`BENCH_SCHEMA`]).
    pub schema: u64,
    /// Simulation model version the kernels were built from.
    pub model_version: u64,
    /// Suite benchmark supplying the trace.
    pub benchmark: String,
    /// Accesses per kernel repetition.
    pub accesses: u64,
    /// Trace generator seed.
    pub seed: u64,
    /// Per-kernel measurements.
    pub results: Vec<BenchResult>,
    /// Telemetry cost of the coverage kernel. `None` in reports written
    /// before the event log existed.
    pub telemetry: Option<TelemetryOverhead>,
}

// Hand-written (not derived) because the shim's derive errors on absent
// keys: baselines committed before `telemetry` existed must still parse.
impl<'de> Deserialize<'de> for BenchReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(BenchReport {
            schema: serde::field(value, "schema", "BenchReport")?,
            model_version: serde::field(value, "model_version", "BenchReport")?,
            benchmark: serde::field(value, "benchmark", "BenchReport")?,
            accesses: serde::field(value, "accesses", "BenchReport")?,
            seed: serde::field(value, "seed", "BenchReport")?,
            results: serde::field(value, "results", "BenchReport")?,
            telemetry: match value.get("telemetry") {
                None => None,
                Some(v) => Option::<TelemetryOverhead>::from_value(v)
                    .map_err(|e| serde::DeError(format!("BenchReport.telemetry: {e}")))?,
            },
        })
    }
}

impl BenchReport {
    /// Looks up a kernel's measurement by name.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Canonical single-line JSON (the on-disk form).
    pub fn to_json(&self) -> String {
        ltc_sim::serde_json::to_string(self)
    }

    /// Parses a serialized report.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON does not parse or the schema is
    /// unknown.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let report: BenchReport =
            ltc_sim::serde_json::from_str(text.trim()).map_err(|e| e.to_string())?;
        if report.schema != BENCH_SCHEMA {
            return Err(format!("unsupported BENCH schema {}", report.schema));
        }
        Ok(report)
    }
}

/// Times `work` (which must return the items it processed): one warm-up
/// repetition, then `rounds` measured ones, keeping the best.
fn time_kernel(rounds: usize, mut work: impl FnMut() -> u64) -> (u64, Duration) {
    let mut items = std::hint::black_box(work());
    let mut best = Duration::MAX;
    for _ in 0..rounds.max(1) {
        let start = Instant::now();
        items = std::hint::black_box(work());
        best = best.min(start.elapsed());
    }
    (items, best)
}

/// Runs every kernel and assembles the report.
///
/// Kernels (stable names — [`compare`] matches on them):
///
/// * `decode` — deserialize the binary trace format ([`io::read_trace`]).
/// * `coverage_baseline` — the coverage kernel with the passive baseline
///   predictor.
/// * `coverage_dbcp` — the coverage kernel with the unlimited DBCP
///   predictor (trains and prefetches).
/// * `stream_sketch` — the one-pass stream/sketch analysis (64 KiB
///   budget).
/// * `decode_kernel` — decode **plus** baseline coverage end to end, the
///   headline single-thread throughput number the ≥2× acceptance
///   criterion tracks.
/// * `segment_skip` — worker setup for a 16-segment run the
///   pre-checkpoint way: one fresh source skipped to each slice start
///   (O(start) each, quadratic in total).
/// * `segment_seek` — the same 16 placements via one checkpoint
///   recording pass plus per-worker restores. All `segment_*` kernels
///   report `items = accesses`, so the `segment_seek` / `segment_skip`
///   `per_sec` ratio **is** the setup-time reduction — the ≥5× bar
///   nightly CI enforces.
/// * `segment_seek_x1` / `segment_seek_x4` / `segment_seek_x64` — the
///   seek path at 1/4/64 segments, charting how recording cost scales
///   with fan-out.
/// * `segment_replay` — worker setup including the cache warm-up, paid
///   the pre-image way: checkpoint-seek to `start − warmup`, then
///   re-simulate the warm-up window into a fresh hierarchy. Checkpoint
///   recording happens outside the timed region (it is a one-time,
///   disk-cached cost), so the timing is steady-state worker setup.
/// * `segment_warm` — the same 16 placements restoring pre-recorded
///   warm hierarchy images instead: checkpoint-seek straight to
///   `start`, then `Hierarchy::from_image`. The `segment_warm` /
///   `segment_replay` ratio is the warm-up elimination; nightly CI
///   also asserts `segment_warm` ≥ 2× `segment_seek`.
///
/// # Panics
///
/// Panics if `opts.benchmark` is not in the suite.
pub fn run_all(opts: &BenchOptions) -> BenchReport {
    let entry = suite::by_name(&opts.benchmark)
        .unwrap_or_else(|| panic!("unknown benchmark {}", opts.benchmark));
    let mut encoded = Vec::new();
    let written =
        io::write_trace(&mut entry.build(opts.seed), &mut encoded, opts.accesses).unwrap();
    let accesses = entry.build(opts.seed).collect_accesses(written as usize);
    let rounds = opts.rounds;
    let mut results = Vec::new();

    let (items, best) = time_kernel(rounds, || {
        let replay = io::read_trace(encoded.as_slice()).expect("bench trace decodes");
        replay.len() as u64
    });
    results.push(BenchResult::new("decode", items, best));

    let coverage_cfg = CoverageConfig::paper(u64::MAX);
    let (items, best) = time_kernel(rounds, || {
        let mut replay = Replay::once(accesses.clone());
        let mut predictor = PredictorKind::Baseline.build();
        let report = run_coverage(&mut replay, predictor.as_mut(), coverage_cfg);
        report.accesses
    });
    results.push(BenchResult::new("coverage_baseline", items, best));

    // Telemetry overhead: the identical baseline-coverage closure timed
    // twice per round — subscriber off, then with a JSON-lines
    // subscriber (thread-local, so concurrently running tests are
    // unaffected) writing to a sink. The off/on repetitions interleave
    // so clock-frequency drift between two separate measurement windows
    // cannot masquerade as telemetry cost. A report *field* rather than
    // a 13th kernel, so [`compare`] against pre-telemetry baselines
    // keeps matching the same kernel set.
    let writer = std::sync::Arc::new(JsonLinesWriter::new(Box::new(std::io::sink())));
    let coverage_once = || {
        let mut replay = Replay::once(accesses.clone());
        let mut predictor = PredictorKind::Baseline.build();
        let report = run_coverage(&mut replay, predictor.as_mut(), coverage_cfg);
        report.accesses
    };
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    let mut measured = std::hint::black_box(coverage_once());
    // Alternate which side of each pair runs first: under cgroup CPU
    // throttling the second run of a pair systematically lands in the
    // throttled part of the quota period, which would otherwise read as
    // telemetry cost.
    for round in 0..rounds.max(1) {
        if round % 2 == 0 {
            let start = Instant::now();
            measured = std::hint::black_box(coverage_once());
            best_off = best_off.min(start.elapsed());
        }
        ltc_telemetry::with_subscriber(writer.clone(), || {
            let start = Instant::now();
            measured = std::hint::black_box(coverage_once());
            best_on = best_on.min(start.elapsed());
        });
        if round % 2 == 1 {
            let start = Instant::now();
            measured = std::hint::black_box(coverage_once());
            best_off = best_off.min(start.elapsed());
        }
    }
    let off_per_sec = BenchResult::new("coverage_off", measured, best_off).per_sec;
    let instrumented_per_sec = BenchResult::new("coverage_instrumented", measured, best_on).per_sec;
    let telemetry = Some(TelemetryOverhead {
        events: writer.events_written(),
        bytes: writer.bytes_written(),
        off_per_sec,
        instrumented_per_sec,
        overhead_pct: (1.0 - instrumented_per_sec / off_per_sec) * 100.0,
    });

    let (items, best) = time_kernel(rounds, || {
        let mut replay = Replay::once(accesses.clone());
        let mut predictor = PredictorKind::DbcpUnlimited.build();
        let report = run_coverage(&mut replay, predictor.as_mut(), coverage_cfg);
        report.accesses
    });
    results.push(BenchResult::new("coverage_dbcp", items, best));

    let stream_cfg = StreamConfig::with_budget(64 << 10).with_seed(opts.seed);
    let (items, best) = time_kernel(rounds, || {
        let mut replay = Replay::once(accesses.clone());
        let report = StreamAnalysis::run(&mut replay, u64::MAX, stream_cfg);
        report.accesses
    });
    results.push(BenchResult::new("stream_sketch", items, best));

    let (items, best) = time_kernel(rounds, || {
        let mut replay = io::read_trace(encoded.as_slice()).expect("bench trace decodes");
        let mut predictor = PredictorKind::Baseline.build();
        let report = run_coverage(&mut replay, predictor.as_mut(), coverage_cfg);
        report.accesses
    });
    results.push(BenchResult::new("decode_kernel", items, best));

    // Worker-placement kernels: put one fresh worker at each of N even
    // slice starts, by plain skipping vs by checkpointed seeking. Each
    // repetition "processes" the whole trace budget, so per_sec ratios
    // between these kernels equal inverse setup-time ratios directly.
    let (items, best) = time_kernel(rounds, || {
        for segment in 0..16 {
            let start = TraceSegment::nth(opts.accesses, 16, segment).start;
            let mut src = entry.build(opts.seed);
            for _ in 0..start {
                src.next_access();
            }
            std::hint::black_box(src.next_access());
        }
        opts.accesses
    });
    results.push(BenchResult::new("segment_skip", items, best));

    let seek = |segments: u32| {
        let starts: Vec<u64> =
            (0..segments).map(|s| TraceSegment::nth(opts.accesses, segments, s).start).collect();
        let store = record_targets(&mut entry.build(opts.seed), &starts);
        for &start in &starts {
            let mut src = entry.build(opts.seed);
            let mut pos = 0;
            if let Some(c) = store.nearest_at_or_before(start) {
                if src.restore(&c.state).is_ok() {
                    pos = c.pos;
                }
            }
            for _ in pos..start {
                src.next_access();
            }
            std::hint::black_box(src.next_access());
        }
        opts.accesses
    };
    let (items, best) = time_kernel(rounds, || seek(16));
    results.push(BenchResult::new("segment_seek", items, best));
    for segments in [1u32, 4, 64] {
        let (items, best) = time_kernel(rounds, || seek(segments));
        results.push(BenchResult::new(&format!("segment_seek_x{segments}"), items, best));
    }

    // Warm-up cost kernels: the same 16 placements, now counting the
    // cache warm-up each worker pays after seeking. Checkpoint and
    // warm-image recording stay outside the timed region — both are
    // one-time, disk-cached costs — so these time steady-state worker
    // setup: re-simulating the warm-up window (`segment_replay`) versus
    // restoring a recorded warm image (`segment_warm`).
    let starts: Vec<u64> = (0..16).map(|s| TraceSegment::nth(opts.accesses, 16, s).start).collect();
    let replay_targets: Vec<u64> =
        starts.iter().map(|&s| s - s.min(SEGMENT_WARMUP)).filter(|&t| t > 0).collect();
    let replay_ckpts = record_targets(&mut entry.build(opts.seed), &replay_targets);
    let (items, best) = time_kernel(rounds, || {
        for &start in &starts {
            let warm = start.min(SEGMENT_WARMUP);
            let target = start - warm;
            let mut src = entry.build(opts.seed);
            let mut pos = 0;
            if let Some(c) = replay_ckpts.nearest_at_or_before(target) {
                if src.restore(&c.state).is_ok() {
                    pos = c.pos;
                }
            }
            for _ in pos..target {
                src.next_access();
            }
            let mut hierarchy = Hierarchy::new(HierarchyConfig::paper());
            for _ in 0..warm {
                let Some(a) = src.next_access() else { break };
                hierarchy.access(a.addr, a.kind);
            }
            std::hint::black_box(&hierarchy);
        }
        opts.accesses
    });
    results.push(BenchResult::new("segment_replay", items, best));

    let start_ckpts: Vec<u64> = starts.iter().copied().filter(|&s| s > 0).collect();
    let warm_ckpts = record_targets(&mut entry.build(opts.seed), &start_ckpts);
    let warm_store = record_warm_images(&mut entry.build(opts.seed), SEGMENT_WARMUP, &starts);
    let (items, best) = time_kernel(rounds, || {
        for &start in &starts {
            let mut src = entry.build(opts.seed);
            let mut pos = 0;
            if let Some(c) = warm_ckpts.nearest_at_or_before(start) {
                if src.restore(&c.state).is_ok() {
                    pos = c.pos;
                }
            }
            for _ in pos..start {
                src.next_access();
            }
            let hierarchy = match warm_store.at(start) {
                Some(w) => Hierarchy::from_image(HierarchyConfig::paper(), &w.image)
                    .expect("recorded warm image restores"),
                None => Hierarchy::new(HierarchyConfig::paper()),
            };
            std::hint::black_box(&hierarchy);
        }
        opts.accesses
    });
    results.push(BenchResult::new("segment_warm", items, best));

    BenchReport {
        schema: BENCH_SCHEMA,
        model_version: u64::from(MODEL_VERSION),
        benchmark: opts.benchmark.clone(),
        accesses: opts.accesses,
        seed: opts.seed,
        results,
        telemetry,
    }
}

/// One kernel's current-vs-baseline delta.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Kernel name.
    pub name: String,
    /// Baseline throughput (items/sec).
    pub baseline_per_sec: f64,
    /// Current throughput (items/sec).
    pub current_per_sec: f64,
    /// Relative change in percent (positive = faster).
    pub change_pct: f64,
    /// Whether the slowdown exceeds the tolerance.
    pub regressed: bool,
}

/// Diffs `current` against `baseline` kernel by kernel (intersection of
/// names, baseline order). A kernel regresses when its throughput drops
/// more than `tolerance_pct` percent below the baseline.
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance_pct: f64,
) -> Vec<BenchDelta> {
    baseline
        .results
        .iter()
        .filter_map(|base| current.result(&base.name).map(|cur| (base, cur)))
        .map(|(base, cur)| {
            let change_pct =
                if base.per_sec > 0.0 { (cur.per_sec / base.per_sec - 1.0) * 100.0 } else { 0.0 };
            BenchDelta {
                name: base.name.clone(),
                baseline_per_sec: base.per_sec,
                current_per_sec: cur.per_sec,
                change_pct,
                regressed: change_pct < -tolerance_pct,
            }
        })
        .collect()
}

/// Today's UTC date as `YYYY-MM-DD` (for default `BENCH_<date>.json`
/// file names), from the system clock — no calendar dependency.
pub fn utc_date_string() -> String {
    let secs =
        SystemTime::now().duration_since(SystemTime::UNIX_EPOCH).unwrap_or_default().as_secs();
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to civil date (Howard Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((if m <= 2 { y + 1 } else { y }), m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(names_and_rates: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA,
            model_version: u64::from(MODEL_VERSION),
            benchmark: "gcc".into(),
            accesses: 1000,
            seed: 1,
            results: names_and_rates
                .iter()
                .map(|(n, r)| BenchResult {
                    name: n.to_string(),
                    items: 1000,
                    nanos: (1000.0 * 1e9 / r) as u64,
                    per_sec: *r,
                })
                .collect(),
            telemetry: None,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let opts = BenchOptions { accesses: 2_000, benchmark: "gzip".into(), seed: 1, rounds: 1 };
        let report = run_all(&opts);
        assert_eq!(report.results.len(), 12);
        assert!(report.results.iter().all(|r| r.items > 0 && r.per_sec > 0.0));
        let overhead = report.telemetry.as_ref().expect("run_all measures telemetry overhead");
        // One `coverage.run` point per instrumented repetition (1 round).
        assert_eq!(overhead.events, 1);
        assert!(overhead.bytes > 0);
        assert!(overhead.off_per_sec > 0.0 && overhead.instrumented_per_sec > 0.0);
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn pre_telemetry_reports_still_parse() {
        // Baselines committed before the `telemetry` field existed have
        // no such key at all; they must keep parsing (to `None`).
        let mut report = tiny_report(&[("decode", 1e6)]);
        let legacy = report.to_json().replace(",\"telemetry\":null", "");
        assert!(!legacy.contains("telemetry"), "key must be absent, not null");
        let parsed = BenchReport::from_json(&legacy).unwrap();
        assert_eq!(parsed, report);

        // And a report that does carry the field round-trips it.
        report.telemetry = Some(TelemetryOverhead {
            events: 4,
            bytes: 512,
            off_per_sec: 2e6,
            instrumented_per_sec: 1.99e6,
            overhead_pct: 0.5,
        });
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.telemetry, report.telemetry);
    }

    #[test]
    fn unknown_schema_is_an_error() {
        let mut report = tiny_report(&[("decode", 1e6)]);
        report.schema = 999;
        assert!(BenchReport::from_json(&report.to_json()).is_err());
    }

    #[test]
    fn compare_flags_regressions_beyond_tolerance() {
        let baseline = tiny_report(&[("decode", 1e6), ("coverage_baseline", 2e6)]);
        let current = tiny_report(&[("decode", 0.5e6), ("coverage_baseline", 1.95e6)]);
        let deltas = compare(&current, &baseline, DEFAULT_TOLERANCE_PCT);
        assert_eq!(deltas.len(), 2);
        assert!(deltas[0].regressed, "a 2x slowdown must regress");
        assert!(!deltas[1].regressed, "a 2.5% dip is within tolerance");
    }

    #[test]
    fn compare_matches_on_name_intersection() {
        let baseline = tiny_report(&[("decode", 1e6), ("retired_kernel", 1e6)]);
        let current = tiny_report(&[("decode", 2e6), ("new_kernel", 1e6)]);
        let deltas = compare(&current, &baseline, DEFAULT_TOLERANCE_PCT);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].name, "decode");
        assert!(deltas[0].change_pct > 90.0);
    }

    #[test]
    fn civil_date_matches_known_epochs() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        let today = utc_date_string();
        assert_eq!(today.len(), 10);
        assert_eq!(today.as_bytes()[4], b'-');
    }
}
