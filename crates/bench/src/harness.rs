//! The figure registry and its engine driver.
//!
//! Every paper figure/table is registered here as a [`FigureDef`]: a pure
//! function from ([`Scale`], results so far) to the [`RunSpec`]s it needs,
//! plus a renderer over the completed [`ResultSet`]. The driver loop
//! ([`collect`]) gathers specs from *all* requested figures each round,
//! hands them to one deduplicating [`Scheduler`], and repeats until no
//! figure wants anything more — so a spec shared by five figures runs
//! once, and figures whose spec set depends on earlier results (Figure 4
//! filters benchmarks by oracle coverage) simply declare their next wave
//! when the previous one is satisfied.

use std::io;
use std::path::Path;

use ltc_sim::engine::{EngineOptions, ResultSet, RunSpec, Scheduler};

use crate::figures::*;
use crate::scale::Scale;

/// One paper artifact: how to plan it and how to render it.
pub struct FigureDef {
    /// Registry name (`fig08`, `table3`, `ablations`, ...).
    pub name: &'static str,
    /// Human title printed above the table.
    pub title: &'static str,
    /// The specs this figure needs, given what has already been computed.
    /// Must be pure and monotone: with more results it may request more
    /// specs, never different ones.
    pub specs: fn(Scale, &ResultSet) -> Vec<RunSpec>,
    /// Renders the figure from a result set containing every requested
    /// spec.
    pub render: fn(Scale, &ResultSet) -> String,
}

/// Every figure and table of the paper, in presentation order.
pub fn registry() -> &'static [FigureDef] {
    &[
        FigureDef {
            name: "table1",
            title: "Table 1: system configuration",
            specs: |_, _| Vec::new(),
            render: |_, _| table1::render(),
        },
        FigureDef {
            name: "table2",
            title: "Table 2: benchmarks, base miss rates and IPCs",
            specs: table2::specs,
            render: |scale, rs| table2::render(&table2::rows(scale, rs)),
        },
        FigureDef {
            name: "fig02",
            title: "Figure 2: CDF of block dead times",
            specs: fig02::specs,
            render: |scale, rs| fig02::render(&fig02::dead_times(scale, rs)),
        },
        FigureDef {
            name: "fig04",
            title: "Figure 4: DBCP coverage vs on-chip table size",
            specs: fig04::specs,
            render: |scale, rs| fig04::render(&fig04::sensitivity(scale, rs)),
        },
        FigureDef {
            name: "fig06",
            title: "Figure 6: temporal correlation distance and sequence lengths",
            specs: fig06::specs,
            render: |scale, rs| fig06::render(&fig06::rows(scale, rs)),
        },
        FigureDef {
            name: "fig07",
            title: "Figure 7: last-touch to miss order distance",
            specs: fig07::specs,
            render: |scale, rs| fig07::render(&fig07::ordering(scale, rs)),
        },
        FigureDef {
            name: "fig08",
            title: "Figure 8: coverage and accuracy, LT-cords (A) vs unlimited DBCP (B)",
            specs: fig08::specs,
            render: |scale, rs| fig08::render(&fig08::rows(scale, rs)),
        },
        FigureDef {
            name: "fig09",
            title: "Figure 9: coverage vs signature cache size",
            specs: fig09::specs,
            render: |scale, rs| fig09::render(&fig09::sensitivity(scale, rs)),
        },
        FigureDef {
            name: "fig10",
            title: "Figure 10: coverage vs off-chip sequence storage",
            specs: fig10::specs,
            render: |scale, rs| fig10::render(&fig10::storage_demand(scale, rs)),
        },
        FigureDef {
            name: "fig11",
            title: "Figure 11: multi-programmed coverage",
            specs: fig11::specs,
            render: |scale, rs| fig11::render(&fig11::bars(scale, rs)),
        },
        FigureDef {
            name: "table3",
            title: "Table 3: percent speedup over the baseline processor",
            specs: table3::specs,
            render: |scale, rs| table3::render(&table3::rows(scale, rs)),
        },
        FigureDef {
            name: "fig12",
            title: "Figure 12: memory bus utilization breakdown",
            specs: fig12::specs,
            render: |scale, rs| fig12::render(&fig12::rows(scale, rs)),
        },
        FigureDef {
            name: "ablations",
            title: "Design-choice ablations (beyond the paper's figures)",
            specs: ablations::specs,
            render: |scale, rs| ablations::render(&ablations::points(scale, rs)),
        },
        FigureDef {
            name: "sketch",
            title: "Sketch budget sweep: SketchDbcp coverage vs exact DBCP",
            specs: sketch::specs,
            render: |scale, rs| sketch::render(&sketch::points(scale, rs)),
        },
        FigureDef {
            name: "merge",
            title: "Merge scaling sweep: segmented streaming vs single pass",
            specs: merge::specs,
            render: |scale, rs| merge::render(&merge::points(scale, rs)),
        },
    ]
}

/// Looks a figure up by registry name.
pub fn by_name(name: &str) -> Option<&'static FigureDef> {
    registry().iter().find(|f| f.name == name)
}

/// Upper bound on spec-declaration rounds; figures are at most two-stage
/// today (Figure 4), so hitting this means a `specs` fn is not monotone.
const MAX_ROUNDS: usize = 8;

/// Computes everything the given figures need, deduplicated across
/// figures, reusing (and refilling) the artifact cache in `opts`.
///
/// # Errors
///
/// Returns artifact-cache I/O errors.
///
/// # Panics
///
/// Panics if a figure keeps requesting new specs after `MAX_ROUNDS`
/// rounds (a broken `specs` implementation).
pub fn collect(
    figures: &[&FigureDef],
    scale: Scale,
    opts: &EngineOptions,
    results: &mut ResultSet,
) -> io::Result<()> {
    for _ in 0..MAX_ROUNDS {
        let sched = gather(figures, scale, results);
        if sched.unique().iter().all(|s| results.contains(s)) {
            return Ok(());
        }
        sched.execute_into(results, opts)?;
    }
    panic!("figure spec sets did not converge after {MAX_ROUNDS} rounds");
}

/// Loads everything the given figures need from the artifact cache
/// without simulating. Returns the specs that are not cached (empty means
/// the figures are fully renderable).
///
/// # Errors
///
/// Returns artifact-cache I/O errors.
pub fn load_cached(
    figures: &[&FigureDef],
    scale: Scale,
    dir: &Path,
    results: &mut ResultSet,
) -> io::Result<Vec<RunSpec>> {
    for _ in 0..MAX_ROUNDS {
        let sched = gather(figures, scale, results);
        let missing = sched.load_into(results, dir)?;
        if !missing.is_empty() {
            return Ok(missing);
        }
        // Everything declared so far is cached; stop once satisfying it
        // declared nothing further.
        if gather(figures, scale, results).unique().iter().all(|s| results.contains(s)) {
            return Ok(Vec::new());
        }
    }
    panic!("figure spec sets did not converge after {MAX_ROUNDS} rounds");
}

/// One scheduler holding every requested figure's current spec set.
fn gather(figures: &[&FigureDef], scale: Scale, results: &ResultSet) -> Scheduler {
    let mut sched = Scheduler::new();
    for f in figures {
        sched.request_all((f.specs)(scale, results));
    }
    sched
}

/// The deduplicated first-round plan for the given figures (what
/// `ltsim plan` prints). Later rounds may add result-dependent specs.
pub fn plan(figures: &[&FigureDef], scale: Scale) -> Vec<RunSpec> {
    gather(figures, scale, &ResultSet::new()).unique()
}

/// Computes a single figure in memory at the given scale (bench/test
/// convenience; no cache, threads from the scale).
///
/// # Panics
///
/// Panics if the figure's benchmarks are unknown (suite authoring bug).
pub fn compute(def: &FigureDef, scale: Scale) -> ResultSet {
    let mut results = ResultSet::new();
    collect(&[def], scale, &EngineOptions::in_memory(scale.threads), &mut results)
        .expect("in-memory execution cannot hit I/O errors");
    results
}

/// Entry point shared by the per-figure binaries: runs one figure through
/// the engine and prints its table.
///
/// Flags: `--quick` (reduced scale), `--out DIR` (artifact cache),
/// `--force` (ignore cached artifacts), `--threads N`.
///
/// # Panics
///
/// Panics if `name` is not registered or the cache directory is unusable.
pub fn figure_main(name: &str) {
    let def = by_name(name).unwrap_or_else(|| panic!("unregistered figure {name}"));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, opts) = match parse_figure_flags(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: {name} [--quick] [--out DIR] [--force] [--threads N]");
            std::process::exit(2);
        }
    };
    let mut results = ResultSet::new();
    println!("{}\n", def.title);
    collect(&[def], scale, &opts, &mut results).expect("artifact cache I/O failed");
    print!("{}", (def.render)(scale, &results));
    eprintln!("\nengine: {} simulated, {} from cache", results.simulated(), results.cache_hits());
}

/// Parses the figure binaries' shared flags, rejecting unknown flags and
/// malformed values (a typo must not silently fall back to a full-scale
/// uncached run).
fn parse_figure_flags(args: &[String]) -> Result<(Scale, EngineOptions), String> {
    let scale = if args.iter().any(|a| a == "--quick") { Scale::quick() } else { Scale::full() };
    let mut opts = EngineOptions { threads: scale.threads, ..EngineOptions::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {}
            "--out" => {
                opts.cache_dir = Some(it.next().ok_or("--out needs a directory")?.into());
            }
            "--force" => opts.force = true,
            "--threads" => {
                let raw = it.next().ok_or("--threads needs a positive number")?;
                opts.threads = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--threads needs a positive number, got `{raw}`"))?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok((scale, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = registry().iter().map(|f| f.name).collect();
        for name in &names {
            assert!(by_name(name).is_some());
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate figure names");
        assert!(by_name("fig99").is_none());
    }

    #[test]
    fn shared_specs_dedupe_across_figures() {
        // Table 2 (baseline timing) is a strict subset of Table 3's grid:
        // requesting both must not grow the unique set beyond Table 3's.
        let scale = Scale::bench();
        let t3 = by_name("table3").unwrap();
        let t2 = by_name("table2").unwrap();
        let both = plan(&[t2, t3], scale);
        let alone = plan(&[t3], scale);
        assert_eq!(both.len(), alone.len(), "table2 must ride along for free");
    }
}
