//! Figure 8 — LT-cords vs unlimited-storage DBCP coverage and accuracy.

use ltc_sim::analysis::CoverageReport;
use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::harness;
use crate::scale::Scale;

/// The paired breakdowns for one benchmark.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// LT-cords breakdown.
    pub ltcords: CoverageReport,
    /// Unlimited-DBCP (oracle) breakdown.
    pub oracle: CoverageReport,
}

fn spec_for(name: &str, kind: PredictorKind, scale: Scale) -> RunSpec {
    RunSpec::coverage(name, kind, scale.coverage_accesses, 1)
}

/// Declares both predictors over the whole suite.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    suite::benchmarks()
        .iter()
        .flat_map(|e| {
            [
                spec_for(e.name, PredictorKind::LtCords, scale),
                spec_for(e.name, PredictorKind::DbcpUnlimited, scale),
            ]
        })
        .collect()
}

/// Assembles the paired rows from engine results.
pub fn rows(scale: Scale, results: &ResultSet) -> Vec<Row> {
    suite::benchmarks()
        .iter()
        .map(|e| Row {
            name: e.name,
            ltcords: results.coverage(&spec_for(e.name, PredictorKind::LtCords, scale)).clone(),
            oracle: results
                .coverage(&spec_for(e.name, PredictorKind::DbcpUnlimited, scale))
                .clone(),
        })
        .collect()
}

/// Runs both predictors over the whole suite (engine, in memory).
pub fn run(scale: Scale) -> Vec<Row> {
    let results = harness::compute(harness::by_name("fig08").expect("registered"), scale);
    rows(scale, &results)
}

/// Renders the stacked-bar data of Figure 8 (A = LT-cords, B = oracle DBCP).
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "A correct",
        "A incorrect",
        "A train",
        "A early",
        "B correct",
        "B incorrect",
        "B train",
        "B early",
    ]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.0}%", r.ltcords.correct_pct() * 100.0),
            format!("{:.0}%", r.ltcords.incorrect_pct() * 100.0),
            format!("{:.0}%", r.ltcords.train_pct() * 100.0),
            format!("{:.0}%", r.ltcords.early_pct() * 100.0),
            format!("{:.0}%", r.oracle.correct_pct() * 100.0),
            format!("{:.0}%", r.oracle.incorrect_pct() * 100.0),
            format!("{:.0}%", r.oracle.train_pct() * 100.0),
            format!("{:.0}%", r.oracle.early_pct() * 100.0),
        ]);
    }
    let mut s = t.render();
    let avg_lt = rows.iter().map(|r| r.ltcords.correct_pct()).sum::<f64>() / rows.len() as f64;
    let avg_or = rows.iter().map(|r| r.oracle.correct_pct()).sum::<f64>() / rows.len() as f64;
    s.push_str(&format!(
        "\naverage coverage: LT-cords {:.0}%, unlimited DBCP {:.0}% (paper: 69% vs oracle)\n",
        avg_lt * 100.0,
        avg_or * 100.0
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_sim::experiment::run_coverage;

    #[test]
    fn ltcords_tracks_the_oracle_on_recurring_codes() {
        let scale = Scale { coverage_accesses: 1_500_000, ..Scale::bench() };
        let galgel = Row {
            name: "galgel",
            ltcords: run_coverage("galgel", PredictorKind::LtCords, scale.coverage_accesses, 1),
            oracle: run_coverage(
                "galgel",
                PredictorKind::DbcpUnlimited,
                scale.coverage_accesses,
                1,
            ),
        };
        assert!(galgel.oracle.correct_pct() > 0.5);
        assert!(
            galgel.ltcords.correct_pct() > galgel.oracle.correct_pct() * 0.7,
            "LT-cords {:.2} must track oracle {:.2}",
            galgel.ltcords.correct_pct(),
            galgel.oracle.correct_pct()
        );
        let s = render(&[galgel]);
        assert!(s.contains("galgel"));
    }
}
