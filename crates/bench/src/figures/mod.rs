//! One module per paper table/figure.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — system configuration |
//! | [`table2`] | Table 2 — benchmarks, base miss rates and IPCs |
//! | [`fig02`] | Figure 2 — CDF of block dead times |
//! | [`fig04`] | Figure 4 — DBCP coverage vs on-chip table size |
//! | [`fig06`] | Figure 6 — temporal correlation distance + sequence lengths |
//! | [`fig07`] | Figure 7 — last-touch to miss order distance |
//! | [`fig08`] | Figure 8 — LT-cords vs unlimited DBCP coverage breakdown |
//! | [`fig09`] | Figure 9 — coverage vs signature cache size |
//! | [`fig10`] | Figure 10 — coverage vs off-chip sequence storage |
//! | [`fig11`] | Figure 11 — multi-programmed coverage |
//! | [`table3`] | Table 3 — speedup comparison |
//! | [`fig12`] | Figure 12 — memory bus utilization breakdown |
//! | [`ablations`] | design-choice ablations beyond the paper's figures |
//! | [`sketch`] | sketch budget sweep — `SketchDbcp` vs exact DBCP |
//! | [`merge`] | merge scaling sweep — segmented streaming vs single pass |

pub mod ablations;
pub mod fig02;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod merge;
pub mod sketch;
pub mod table1;
pub mod table2;
pub mod table3;
