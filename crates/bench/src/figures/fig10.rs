//! Figure 10 — off-chip sequence storage size needed for coverage.

use ltc_sim::core::LtCordsConfig;
use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::report::Table;

use crate::harness;
use crate::scale::Scale;

/// Storage sizes swept, in signatures (the paper's 2M→32M series).
pub const SIZES: [usize; 5] = [2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20];

/// The paper's Figure 10 benchmark list: the codes with the largest
/// sequence storage requirements.
pub const BENCHMARKS: [&str; 13] = [
    "lucas", "mgrid", "applu", "wupwise", "swim", "fma3d", "ammp", "parser", "gcc", "equake",
    "facerec", "mcf", "art",
];

/// Coverage fraction achieved per storage size, per benchmark.
#[derive(Debug, Clone)]
pub struct StorageDemand {
    /// `(benchmark, [normalized coverage per size in SIZES])`.
    pub rows: Vec<(&'static str, Vec<f64>)>,
}

fn spec_for(bench: &str, sigs: usize, scale: Scale) -> RunSpec {
    let cfg = LtCordsConfig::fig10_sweep(sigs);
    RunSpec::coverage(bench, PredictorKind::LtCordsWith(cfg), scale.coverage_accesses, 1)
}

/// Declares the (benchmark × storage size) grid.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    BENCHMARKS.iter().flat_map(|&b| SIZES.iter().map(move |&s| spec_for(b, s, scale))).collect()
}

/// Assembles the normalized rows from engine results.
pub fn storage_demand(scale: Scale, results: &ResultSet) -> StorageDemand {
    let mut rows = Vec::new();
    for &bench in &BENCHMARKS {
        let per: Vec<f64> = SIZES
            .iter()
            .map(|&sigs| results.coverage(&spec_for(bench, sigs, scale)).coverage())
            .collect();
        let best = per.iter().copied().fold(0.0f64, f64::max).max(1e-9);
        rows.push((bench, per.iter().map(|c| (c / best).clamp(0.0, 1.0)).collect()));
    }
    StorageDemand { rows }
}

/// Runs the sweep (engine, in memory).
pub fn run(scale: Scale) -> StorageDemand {
    let results = harness::compute(harness::by_name("fig10").expect("registered"), scale);
    storage_demand(scale, &results)
}

/// Renders Figure 10 as the percentage of potential predictions achieved.
pub fn render(d: &StorageDemand) -> String {
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(SIZES.iter().map(|s| format!("{}M sigs", s >> 20)));
    let mut t = Table::new(headers);
    for (bench, per) in &d.rows {
        let mut row = vec![bench.to_string()];
        row.extend(per.iter().map(|f| format!("{:.0}%", f * 100.0)));
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_sim::experiment::run_coverage;

    #[test]
    fn storage_demand_is_monotone_for_streaming_code() {
        let scale = Scale { coverage_accesses: 1_500_000, ..Scale::bench() };
        // art's per-pass signature volume exceeds small stores.
        let small = run_coverage(
            "art",
            PredictorKind::LtCordsWith(LtCordsConfig::fig10_sweep(128 << 10)),
            scale.coverage_accesses,
            1,
        );
        let big = run_coverage(
            "art",
            PredictorKind::LtCordsWith(LtCordsConfig::fig10_sweep(8 << 20)),
            scale.coverage_accesses,
            1,
        );
        assert!(
            big.coverage() + 0.02 >= small.coverage(),
            "{:.2} vs {:.2}",
            big.coverage(),
            small.coverage()
        );
    }
}
