//! Table 1 — system configuration.

use ltc_sim::report::Table;
use ltc_sim::timing::TimingConfig;

/// Renders the simulated machine configuration (paper Table 1).
pub fn render() -> String {
    let c = TimingConfig::paper();
    let mut t = Table::new(vec!["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("clock rate", "4 GHz (all latencies in core cycles)".into()),
        ("issue/retire width", format!("{} instructions/cycle", c.issue_width)),
        ("reorder buffer", format!("{} entries", c.rob_entries)),
        (
            "L1 D",
            format!(
                "{} KB, 64-byte line, 2-way, {}-cycle",
                c.hierarchy.l1.total_bytes >> 10,
                c.l1_latency
            ),
        ),
        ("L1 D MSHRs", format!("{}", c.mshrs)),
        (
            "L2 (unified)",
            format!("{} MB, 8-way, {}-cycle", c.hierarchy.l2.total_bytes >> 20, c.l2_latency),
        ),
        (
            "L1/L2 bus",
            format!("{} channels, {} cycles/line", c.l2_bus_channels, c.l2_bus_occupancy),
        ),
        ("memory", format!("{} cycles/line (200 first 32 B + 3 per extra 32 B)", c.mem_latency)),
        ("memory bus", format!("32-byte, {} core cycles/line", c.mem_bus_occupancy)),
        ("prefetch queue", format!("{} entries, circular", c.prefetch_queue)),
        ("DBCP", "2 MB correlation table".into()),
        ("GHB", "PC/DC, 4-deep, 256-entry IT, 256-entry GHB".into()),
        ("LT-cords", "32K-entry signature cache, 4K frames x 8K signatures (160 MB)".into()),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_key_parameters() {
        let s = super::render();
        assert!(s.contains("reorder buffer"));
        assert!(s.contains("256 entries"));
        assert!(s.contains("64 KB"));
    }
}
