//! Table 2 — benchmarks, base miss rates and IPCs.

use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::harness;
use crate::scale::Scale;

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline L1D miss rate (0..1).
    pub l1_miss: f64,
    /// Baseline L2 local miss rate (0..1).
    pub l2_miss: f64,
    /// Baseline IPC.
    pub ipc: f64,
}

fn spec_for(name: &str, scale: Scale) -> RunSpec {
    RunSpec::timing(name, PredictorKind::Baseline, scale.timing_accesses, 1)
}

/// Declares the baseline timing run for every suite benchmark.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    suite::benchmarks().iter().map(|e| spec_for(e.name, scale)).collect()
}

/// Assembles the rows from engine results.
pub fn rows(scale: Scale, results: &ResultSet) -> Vec<Row> {
    suite::benchmarks()
        .iter()
        .map(|e| {
            let r = results.timing(&spec_for(e.name, scale));
            Row { name: e.name, l1_miss: r.l1_miss_rate(), l2_miss: r.l2_miss_rate(), ipc: r.ipc() }
        })
        .collect()
}

/// Runs the baseline machine over the whole suite (engine, in memory).
pub fn run(scale: Scale) -> Vec<Row> {
    let results = harness::compute(harness::by_name("table2").expect("registered"), scale);
    rows(scale, &results)
}

/// Renders rows in the paper's format.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["benchmark", "L1 miss %", "L2 miss %", "IPC"]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.0}", r.l1_miss * 100.0),
            format!("{:.0}", r.l2_miss * 100.0),
            format!("{:.2}", r.ipc),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_entire_suite_and_orders_extremes() {
        let rows = run(Scale::bench());
        assert_eq!(rows.len(), 28);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        // Table 2's defining contrasts.
        assert!(get("mcf").ipc < get("crafty").ipc);
        assert!(get("art").l1_miss > get("gzip").l1_miss);
        assert!(render(&rows).contains("mcf"));
    }
}
