//! Table 2 — benchmarks, base miss rates and IPCs.

use ltc_sim::experiment::{run_timing, sweep_bounded, PredictorKind};
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::scale::Scale;

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline L1D miss rate (0..1).
    pub l1_miss: f64,
    /// Baseline L2 local miss rate (0..1).
    pub l2_miss: f64,
    /// Baseline IPC.
    pub ipc: f64,
}

/// Runs the baseline machine over the whole suite.
pub fn run(scale: Scale) -> Vec<Row> {
    let names: Vec<&'static str> = suite::benchmarks().iter().map(|e| e.name).collect();
    sweep_bounded(names, scale.threads, |name| {
        let r = run_timing(name, PredictorKind::Baseline, scale.timing_accesses, 1);
        Row { name, l1_miss: r.l1_miss_rate(), l2_miss: r.l2_miss_rate(), ipc: r.ipc() }
    })
}

/// Renders rows in the paper's format.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["benchmark", "L1 miss %", "L2 miss %", "IPC"]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.0}", r.l1_miss * 100.0),
            format!("{:.0}", r.l2_miss * 100.0),
            format!("{:.2}", r.ipc),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_entire_suite_and_orders_extremes() {
        let rows = run(Scale::bench());
        assert_eq!(rows.len(), 28);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        // Table 2's defining contrasts.
        assert!(get("mcf").ipc < get("crafty").ipc);
        assert!(get("art").l1_miss > get("gzip").l1_miss);
        assert!(render(&rows).contains("mcf"));
    }
}
