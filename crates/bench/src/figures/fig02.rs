//! Figure 2 — cumulative distribution of block dead times.

use ltc_sim::analysis::LogHistogram;
use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::harness;
use crate::scale::Scale;

/// The suite-average dead-time distribution.
#[derive(Debug, Clone)]
pub struct DeadTimes {
    /// Merged histogram across all benchmarks (instructions).
    pub merged: LogHistogram,
    /// Fraction of dead times exceeding the ~memory-latency equivalent
    /// (the paper reports over 85 % exceed the 200-cycle latency).
    pub beyond_memory_latency: f64,
}

/// Instructions roughly equivalent to the 200-cycle memory latency at the
/// suite's typical baseline IPC (~1.5).
pub const MEMORY_LATENCY_INSTRUCTIONS: u64 = 300;

fn spec_for(name: &str, scale: Scale) -> RunSpec {
    RunSpec::dead_time(name, scale.coverage_accesses / 4, 1)
}

/// Declares the dead-time measurement for every suite benchmark.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    suite::benchmarks().iter().map(|e| spec_for(e.name, scale)).collect()
}

/// Merges the per-benchmark measurements into the Figure 2 distribution.
pub fn dead_times(scale: Scale, results: &ResultSet) -> DeadTimes {
    let mut merged = LogHistogram::new();
    for e in suite::benchmarks() {
        merged.merge(&results.dead_time(&spec_for(e.name, scale)).dead_times);
    }
    let beyond = 1.0 - merged.cdf_at(MEMORY_LATENCY_INSTRUCTIONS);
    DeadTimes { merged, beyond_memory_latency: beyond }
}

/// Measures dead times over the whole suite (engine, in memory).
pub fn run(scale: Scale) -> DeadTimes {
    let results = harness::compute(harness::by_name("fig02").expect("registered"), scale);
    dead_times(scale, &results)
}

/// Renders the CDF series (the Figure 2 curve).
pub fn render(d: &DeadTimes) -> String {
    let mut t = Table::new(vec!["dead time <= (instructions)", "CDF of blocks"]);
    for (bound, frac) in d.merged.cdf() {
        t.row(vec![bound.to_string(), format!("{:.1}%", frac * 100.0)]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "\ndead times beyond the memory-latency equivalent (~{} instructions): {:.1}%\n",
        MEMORY_LATENCY_INSTRUCTIONS,
        d.beyond_memory_latency * 100.0
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_dead_times_are_long() {
        let d = run(Scale::bench());
        assert!(d.merged.total() > 10_000);
        assert!(
            d.beyond_memory_latency > 0.5,
            "long dead times are the paper's premise, got {:.2}",
            d.beyond_memory_latency
        );
        assert!(render(&d).contains("CDF"));
    }
}
