//! Figure 9 — coverage sensitivity to signature cache size.

use ltc_sim::core::LtCordsConfig;
use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::report::Table;

use crate::harness;
use crate::scale::Scale;

/// Signature cache sizes swept (entries), as in the paper's x axis.
pub const SIZES: [usize; 11] = [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072];

/// Benchmarks used for the sweep: a representative mix of recurring codes
/// whose footprints let the budget cover several passes.
pub const BENCHMARKS: [&str; 6] = ["galgel", "art", "mcf", "em3d", "gcc", "facerec"];

/// Normalized coverage per signature cache size.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// `(entries, average coverage normalized to the largest size)`.
    pub points: Vec<(usize, f64)>,
}

fn spec_for(bench: &str, entries: usize, scale: Scale) -> RunSpec {
    let cfg = LtCordsConfig::fig9_sweep(entries);
    RunSpec::coverage(bench, PredictorKind::LtCordsWith(cfg), scale.coverage_accesses, 1)
}

/// Declares the (size × benchmark) grid with the paper's Figure 9
/// methodology: effectively unlimited 512-signature fragments, 8-way
/// signature cache.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    SIZES.iter().flat_map(|&s| BENCHMARKS.iter().map(move |&b| spec_for(b, s, scale))).collect()
}

/// Assembles the normalized curve from engine results.
pub fn sensitivity(scale: Scale, results: &ResultSet) -> Sensitivity {
    let largest = *SIZES.last().expect("non-empty sweep");
    let mut points = Vec::new();
    for &entries in &SIZES {
        let mut sum = 0.0;
        for &bench in &BENCHMARKS {
            let this = results.coverage(&spec_for(bench, entries, scale)).coverage();
            let best = results.coverage(&spec_for(bench, largest, scale)).coverage().max(1e-9);
            sum += (this / best).clamp(0.0, 1.0);
        }
        points.push((entries, sum / BENCHMARKS.len() as f64));
    }
    Sensitivity { points }
}

/// Runs the sweep (engine, in memory).
pub fn run(scale: Scale) -> Sensitivity {
    let results = harness::compute(harness::by_name("fig09").expect("registered"), scale);
    sensitivity(scale, &results)
}

/// Renders the Figure 9 curve.
pub fn render(s: &Sensitivity) -> String {
    let mut t = Table::new(vec!["signature cache (entries)", "% of achievable coverage"]);
    for &(entries, frac) in &s.points {
        t.row(vec![entries.to_string(), format!("{:.0}%", frac * 100.0)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_sim::experiment::run_coverage;

    #[test]
    fn bigger_caches_do_not_hurt_much() {
        let scale = Scale { coverage_accesses: 1_000_000, ..Scale::bench() };
        let small = run_coverage(
            "galgel",
            PredictorKind::LtCordsWith(LtCordsConfig::fig9_sweep(128)),
            scale.coverage_accesses,
            1,
        );
        let large = run_coverage(
            "galgel",
            PredictorKind::LtCordsWith(LtCordsConfig::fig9_sweep(32 << 10)),
            scale.coverage_accesses,
            1,
        );
        assert!(large.coverage() > small.coverage(), "capacity must matter");
    }
}
