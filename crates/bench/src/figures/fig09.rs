//! Figure 9 — coverage sensitivity to signature cache size.

use ltc_sim::core::LtCordsConfig;
use ltc_sim::experiment::{run_coverage, sweep_bounded, PredictorKind};
use ltc_sim::report::Table;

use crate::scale::Scale;

/// Signature cache sizes swept (entries), as in the paper's x axis.
pub const SIZES: [usize; 11] = [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072];

/// Benchmarks used for the sweep: a representative mix of recurring codes
/// whose footprints let the budget cover several passes.
pub const BENCHMARKS: [&str; 6] = ["galgel", "art", "mcf", "em3d", "gcc", "facerec"];

/// Normalized coverage per signature cache size.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// `(entries, average coverage normalized to the largest size)`.
    pub points: Vec<(usize, f64)>,
}

/// Runs the sweep with the paper's Figure 9 methodology: effectively
/// unlimited 512-signature fragments, 8-way signature cache.
pub fn run(scale: Scale) -> Sensitivity {
    let jobs: Vec<(usize, &str)> =
        SIZES.iter().flat_map(|&s| BENCHMARKS.iter().map(move |&b| (s, b))).collect();
    let coverages = sweep_bounded(jobs.clone(), scale.threads, |&(entries, bench)| {
        let cfg = LtCordsConfig::fig9_sweep(entries);
        run_coverage(bench, PredictorKind::LtCordsWith(cfg), scale.coverage_accesses, 1).coverage()
    });
    // Normalize per benchmark to the largest size.
    let mut points = Vec::new();
    for (si, &entries) in SIZES.iter().enumerate() {
        let mut sum = 0.0;
        for (bi, _) in BENCHMARKS.iter().enumerate() {
            let this = coverages[si * BENCHMARKS.len() + bi];
            let best = coverages[(SIZES.len() - 1) * BENCHMARKS.len() + bi].max(1e-9);
            sum += (this / best).clamp(0.0, 1.0);
        }
        points.push((entries, sum / BENCHMARKS.len() as f64));
    }
    Sensitivity { points }
}

/// Renders the Figure 9 curve.
pub fn render(s: &Sensitivity) -> String {
    let mut t = Table::new(vec!["signature cache (entries)", "% of achievable coverage"]);
    for &(entries, frac) in &s.points {
        t.row(vec![entries.to_string(), format!("{:.0}%", frac * 100.0)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_caches_do_not_hurt_much() {
        let scale = Scale { coverage_accesses: 1_000_000, ..Scale::bench() };
        let small = run_coverage(
            "galgel",
            PredictorKind::LtCordsWith(LtCordsConfig::fig9_sweep(128)),
            scale.coverage_accesses,
            1,
        );
        let large = run_coverage(
            "galgel",
            PredictorKind::LtCordsWith(LtCordsConfig::fig9_sweep(32 << 10)),
            scale.coverage_accesses,
            1,
        );
        assert!(large.coverage() > small.coverage(), "capacity must matter");
    }
}
