//! Sketch budget sweep — `SketchDbcp` coverage vs the exact 2 MB DBCP.
//!
//! Not a paper artifact: the sketch subsystem's accuracy-vs-memory axis.
//! Every benchmark runs under the exact 2 MB DBCP table and under
//! `SketchDbcp` at a ladder of summary budgets; the figure reports how
//! much coverage the sketch gives up per budget, on honest resident-byte
//! counts (`CoverageReport::memory_bytes`). The exact table's *resident*
//! footprint is ~6x its nominal 2 MB (a 524k-slot array of 24-byte
//! entries, ~12.6 MB), so the ladder's 1.5 MiB headline point buys the
//! sketch at most 1/8 of the exact predictor's real memory.

use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::harness;
use crate::scale::Scale;

/// The exact table the sweep is judged against (the paper's 2 MB DBCP).
pub const EXACT_BYTES: u64 = 2 << 20;

/// Summary budgets swept: 1/32 of the exact table's nominal bytes up to
/// the 1.5 MiB headline point (64 KiB – 1.5 MiB).
pub const BUDGETS: [u64; 6] = [
    EXACT_BYTES / 32,
    EXACT_BYTES / 16,
    EXACT_BYTES / 8,
    EXACT_BYTES / 4,
    EXACT_BYTES / 2,
    HEADLINE_BUDGET,
];

/// The headline budget the summary line below the table reports:
/// 1.5 MiB — exactly 1/8 of the exact table's *resident* array (524288
/// slots x 24 bytes = 12 MiB; the honest comparison the `memory_bytes`
/// columns show, asserted by test).
pub const HEADLINE_BUDGET: u64 = EXACT_BYTES * 3 / 4;

/// One budget's aggregate comparison across the suite.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPoint {
    /// Summary byte budget.
    pub budget: u64,
    /// Average `SketchDbcp` coverage.
    pub sketch_coverage: f64,
    /// Average exact-DBCP coverage (same across budgets).
    pub exact_coverage: f64,
    /// Average coverage delta `exact − sketch` in fractional points
    /// (positive = the sketch trails).
    pub delta: f64,
    /// Worst per-benchmark delta.
    pub worst_delta: f64,
    /// Average resident predictor memory of the sketch runs (bytes).
    pub sketch_memory: u64,
    /// Average resident predictor memory of the exact runs (bytes).
    pub exact_memory: u64,
}

fn exact_spec(name: &str, scale: Scale) -> RunSpec {
    RunSpec::coverage(name, PredictorKind::Dbcp2Mb, scale.coverage_accesses / 2, 1)
}

fn sketch_spec(name: &str, budget: u64, scale: Scale) -> RunSpec {
    RunSpec::coverage(name, PredictorKind::SketchDbcp(budget), scale.coverage_accesses / 2, 1)
}

/// The sweep is one wave: exact + every budget for every benchmark.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for e in suite::benchmarks() {
        specs.push(exact_spec(e.name, scale));
        specs.extend(BUDGETS.iter().map(|&b| sketch_spec(e.name, b, scale)));
    }
    specs
}

/// Aggregates the sweep into one [`BudgetPoint`] per budget.
pub fn points(scale: Scale, results: &ResultSet) -> Vec<BudgetPoint> {
    let benchmarks: Vec<&str> = suite::benchmarks().iter().map(|e| e.name).collect();
    let n = benchmarks.len() as f64;
    BUDGETS
        .iter()
        .map(|&budget| {
            let mut p = BudgetPoint {
                budget,
                sketch_coverage: 0.0,
                exact_coverage: 0.0,
                delta: 0.0,
                // Seeded below the first real delta, so a sketch that
                // beats exact everywhere reports its true (negative)
                // worst rather than a clamped 0.
                worst_delta: f64::NEG_INFINITY,
                sketch_memory: 0,
                exact_memory: 0,
            };
            for name in &benchmarks {
                let exact = results.coverage(&exact_spec(name, scale));
                let sketch = results.coverage(&sketch_spec(name, budget, scale));
                let delta = exact.coverage() - sketch.coverage();
                p.exact_coverage += exact.coverage() / n;
                p.sketch_coverage += sketch.coverage() / n;
                p.delta += delta / n;
                p.worst_delta = p.worst_delta.max(delta);
                p.exact_memory += exact.memory_bytes / benchmarks.len() as u64;
                p.sketch_memory += sketch.memory_bytes / benchmarks.len() as u64;
            }
            p
        })
        .collect()
}

/// Runs the sweep (engine, in memory).
pub fn run(scale: Scale) -> Vec<BudgetPoint> {
    let results = harness::compute(harness::by_name("sketch").expect("registered"), scale);
    points(scale, &results)
}

/// Renders the budget table plus the headline 1/8-budget summary line.
pub fn render(points: &[BudgetPoint]) -> String {
    let mut t = Table::new(vec![
        "sketch budget",
        "coverage (sketch)",
        "coverage (exact dbcp)",
        "delta (avg)",
        "delta (worst)",
        "resident bytes (sketch)",
        "resident bytes (exact)",
    ]);
    for p in points {
        t.row(vec![
            ltc_sim::report::bytes(p.budget),
            format!("{:.1}%", p.sketch_coverage * 100.0),
            format!("{:.1}%", p.exact_coverage * 100.0),
            format!("{:+.1} pp", p.delta * 100.0),
            format!("{:+.1} pp", p.worst_delta * 100.0),
            ltc_sim::report::bytes(p.sketch_memory),
            ltc_sim::report::bytes(p.exact_memory),
        ]);
    }
    let mut out = t.render();
    if let Some(p) = points.iter().find(|p| p.budget == HEADLINE_BUDGET) {
        out.push_str(&format!(
            "\nat a {} budget ({:.1}x less resident memory than the exact table's {}): \
             sketch coverage within {:.1} pp of exact DBCP\n",
            ltc_sim::report::bytes(HEADLINE_BUDGET),
            p.exact_memory as f64 / p.sketch_memory.max(1) as f64,
            ltc_sim::report::bytes(p.exact_memory),
            p.delta * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_sim::experiment::run_coverage;

    #[test]
    fn budgets_ladder_up_to_the_headline_point() {
        assert!(BUDGETS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(BUDGETS[0], 64 << 10);
        assert_eq!(*BUDGETS.last().unwrap(), HEADLINE_BUDGET);
    }

    #[test]
    fn headline_budget_is_at_most_an_eighth_of_exact_resident_bytes() {
        // The honest-memory claim the render line makes: the exact 2 MB
        // table's resident memory is ≥ 8x the headline sketch budget.
        let exact =
            ltc_sim::predictors::DbcpPrefetcher::new(ltc_sim::predictors::DbcpConfig::paper_2mb());
        use ltc_sim::predictors::Prefetcher;
        assert!(
            exact.memory_bytes() >= 8 * HEADLINE_BUDGET,
            "exact resident {} vs headline budget {}",
            exact.memory_bytes(),
            HEADLINE_BUDGET
        );
    }

    #[test]
    fn specs_cover_every_benchmark_and_budget() {
        let scale = Scale::bench();
        let specs = specs(scale, &ResultSet::new());
        assert_eq!(specs.len(), suite::benchmarks().len() * (1 + BUDGETS.len()));
    }

    #[test]
    fn sketch_tracks_exact_dbcp_on_a_recurring_workload() {
        // One benchmark at bench scale: the sketch at the headline budget
        // must land within a sane delta of the exact table while holding
        // at most 1/8 of its resident memory.
        let scale = Scale::bench();
        let exact = run_coverage("galgel", PredictorKind::Dbcp2Mb, scale.coverage_accesses * 4, 1);
        let sketch = run_coverage(
            "galgel",
            PredictorKind::SketchDbcp(HEADLINE_BUDGET),
            scale.coverage_accesses * 4,
            1,
        );
        assert!(
            sketch.coverage() > exact.coverage() - 0.35,
            "sketch {:.2} too far below exact {:.2}",
            sketch.coverage(),
            exact.coverage()
        );
        // The summary fits 1/8 of the exact table's resident array; the
        // shared history table rides on both sides, so compare with a
        // 7x floor on the total.
        assert!(
            sketch.memory_bytes * 7 <= exact.memory_bytes,
            "sketch resident {} not well under exact's {}",
            sketch.memory_bytes,
            exact.memory_bytes
        );
    }
}
