//! Figure 12 — memory bus utilization breakdown under LT-cords.

use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::report::Table;
use ltc_sim::timing::BandwidthBreakdown;
use ltc_sim::trace::suite;

use crate::harness;
use crate::scale::Scale;

/// One benchmark's bus utilization in bytes per instruction.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// The four Figure 12 components.
    pub breakdown: BandwidthBreakdown,
    /// Instructions in the measured region.
    pub instructions: u64,
}

impl Row {
    /// Base application data traffic (bytes/instruction).
    pub fn base_bpi(&self) -> f64 {
        self.breakdown.base_data_bytes as f64 / self.instructions.max(1) as f64
    }

    /// LT-cords overhead (bytes/instruction): incorrect predictions plus
    /// sequence creation and fetch.
    pub fn overhead_bpi(&self) -> f64 {
        (self.breakdown.incorrect_prediction_bytes
            + self.breakdown.sequence_creation_bytes
            + self.breakdown.sequence_fetch_bytes) as f64
            / self.instructions.max(1) as f64
    }
}

fn spec_for(name: &str, scale: Scale) -> RunSpec {
    RunSpec::timing(name, PredictorKind::LtCords, scale.timing_accesses, 1)
}

/// Declares the LT-cords timing run for every suite benchmark. These are
/// the same specs as Table 3's LT-cords column, so regenerating both
/// figures together simulates the grid once.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    suite::benchmarks().iter().map(|e| spec_for(e.name, scale)).collect()
}

/// Assembles the rows from engine results.
pub fn rows(scale: Scale, results: &ResultSet) -> Vec<Row> {
    suite::benchmarks()
        .iter()
        .map(|e| {
            let r = results.timing(&spec_for(e.name, scale));
            Row { name: e.name, breakdown: r.bandwidth, instructions: r.instructions }
        })
        .collect()
}

/// Runs LT-cords timing over the whole suite (engine, in memory).
pub fn run(scale: Scale) -> Vec<Row> {
    let results = harness::compute(harness::by_name("fig12").expect("registered"), scale);
    rows(scale, &results)
}

/// Renders Figure 12's stacked bars as bytes/instruction columns.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "base data",
        "incorrect",
        "seq creation",
        "seq fetch",
        "total B/instr",
    ]);
    for r in rows {
        let i = r.instructions.max(1) as f64;
        t.row(vec![
            r.name.to_string(),
            format!("{:.2}", r.breakdown.base_data_bytes as f64 / i),
            format!("{:.2}", r.breakdown.incorrect_prediction_bytes as f64 / i),
            format!("{:.2}", r.breakdown.sequence_creation_bytes as f64 / i),
            format!("{:.2}", r.breakdown.sequence_fetch_bytes as f64 / i),
            format!("{:.2}", r.breakdown.bytes_per_instruction(r.instructions)),
        ]);
    }
    let mut s = t.render();
    // The paper's summary statistic: overhead for bandwidth-hungry codes.
    let hungry: Vec<&Row> = rows.iter().filter(|r| r.base_bpi() > 1.0).collect();
    if !hungry.is_empty() {
        let avg = hungry.iter().map(|r| r.overhead_bpi() / r.base_bpi()).sum::<f64>()
            / hungry.len() as f64;
        s.push_str(&format!(
            "\noverhead for >1 B/instr applications: {:.0}% of base traffic (paper: ~17%)\n",
            avg * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_sim::experiment::run_timing;

    #[test]
    fn overhead_is_fraction_of_base_for_streaming_code() {
        let scale = Scale { timing_accesses: 400_000, ..Scale::bench() };
        let r = run_timing("swim", PredictorKind::LtCords, scale.timing_accesses, 1);
        let row = Row { name: "swim", breakdown: r.bandwidth, instructions: r.instructions };
        assert!(row.base_bpi() > 0.5, "swim is bandwidth hungry, got {:.2}", row.base_bpi());
        assert!(row.overhead_bpi() < row.base_bpi(), "metadata must stay below data traffic");
        assert!(render(&[row]).contains("swim"));
    }
}
