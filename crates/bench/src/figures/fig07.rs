//! Figure 7 — last-touch to cache-miss order correlation distance.

use ltc_sim::analysis::LogHistogram;
use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::harness;
use crate::scale::Scale;

/// Suite-average ordering disparity.
#[derive(Debug, Clone)]
pub struct Ordering {
    /// Merged |distance| histogram.
    pub merged: LogHistogram,
    /// Average fraction of perfectly ordered (+1) misses — the paper
    /// reports only 21 % on average.
    pub perfect_avg: f64,
    /// Distance bound capturing 98 % of misses — the paper reports ~1 K,
    /// sizing the signature cache (Section 5.2).
    pub p98_distance: u64,
}

fn spec_for(name: &str, scale: Scale) -> RunSpec {
    RunSpec::ordering(name, scale.coverage_accesses / 2, 1)
}

/// Declares the ordering study for every suite benchmark.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    suite::benchmarks().iter().map(|e| spec_for(e.name, scale)).collect()
}

/// Merges the per-benchmark studies into the Figure 7 distribution.
pub fn ordering(scale: Scale, results: &ResultSet) -> Ordering {
    let mut merged = LogHistogram::new();
    let mut perfect_sum = 0.0;
    let mut counted = 0usize;
    for e in suite::benchmarks() {
        let p = results.ordering(&spec_for(e.name, scale));
        if p.misses > 100 {
            merged.merge(&p.distances);
            perfect_sum += p.perfect_fraction();
            counted += 1;
        }
    }
    Ordering {
        p98_distance: merged.quantile(0.98),
        merged,
        perfect_avg: perfect_sum / counted.max(1) as f64,
    }
}

/// Runs the Figure 7 study over the whole suite (engine, in memory).
pub fn run(scale: Scale) -> Ordering {
    let results = harness::compute(harness::by_name("fig07").expect("registered"), scale);
    ordering(scale, &results)
}

/// Renders the Figure 7 CDF.
pub fn render(o: &Ordering) -> String {
    let mut t = Table::new(vec!["|last-touch to miss distance| <=", "CDF of misses"]);
    for (bound, frac) in o.merged.cdf() {
        t.row(vec![bound.to_string(), format!("{:.1}%", frac * 100.0)]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "\naverage perfectly ordered (+1): {:.0}% (paper: 21%)\n98% of misses within: ±{}\n",
        o.perfect_avg * 100.0,
        o.p98_distance
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_exists_but_is_bounded() {
        let o = run(Scale::bench());
        assert!(o.merged.total() > 10_000);
        assert!(o.perfect_avg < 0.9, "some reordering must exist");
        assert!(o.p98_distance <= 1 << 16, "but it is bounded");
    }
}
