//! Figure 7 — last-touch to cache-miss order correlation distance.

use ltc_sim::analysis::{LastTouchOrderAnalysis, LogHistogram};
use ltc_sim::experiment::sweep_bounded;
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::scale::Scale;

/// Suite-average ordering disparity.
#[derive(Debug, Clone)]
pub struct Ordering {
    /// Merged |distance| histogram.
    pub merged: LogHistogram,
    /// Average fraction of perfectly ordered (+1) misses — the paper
    /// reports only 21 % on average.
    pub perfect_avg: f64,
    /// Distance bound capturing 98 % of misses — the paper reports ~1 K,
    /// sizing the signature cache (Section 5.2).
    pub p98_distance: u64,
}

/// Runs the Figure 7 study over the whole suite.
pub fn run(scale: Scale) -> Ordering {
    let names: Vec<&'static str> = suite::benchmarks().iter().map(|e| e.name).collect();
    let parts = sweep_bounded(names, scale.threads, |name| {
        let mut src = suite::by_name(name).expect("suite name").build(1);
        LastTouchOrderAnalysis::run(&mut src, scale.coverage_accesses / 2)
    });
    let mut merged = LogHistogram::new();
    let mut perfect_sum = 0.0;
    let mut counted = 0usize;
    for p in &parts {
        if p.misses > 100 {
            merged.merge(&p.distances);
            perfect_sum += p.perfect_fraction();
            counted += 1;
        }
    }
    Ordering {
        p98_distance: merged.quantile(0.98),
        merged,
        perfect_avg: perfect_sum / counted.max(1) as f64,
    }
}

/// Renders the Figure 7 CDF.
pub fn render(o: &Ordering) -> String {
    let mut t = Table::new(vec!["|last-touch to miss distance| <=", "CDF of misses"]);
    for (bound, frac) in o.merged.cdf() {
        t.row(vec![bound.to_string(), format!("{:.1}%", frac * 100.0)]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "\naverage perfectly ordered (+1): {:.0}% (paper: 21%)\n98% of misses within: ±{}\n",
        o.perfect_avg * 100.0,
        o.p98_distance
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_exists_but_is_bounded() {
        let o = run(Scale::bench());
        assert!(o.merged.total() > 10_000);
        assert!(o.perfect_avg < 0.9, "some reordering must exist");
        assert!(o.p98_distance <= 1 << 16, "but it is bounded");
    }
}
