//! Figure 6 — temporal correlation distance and correlated-sequence lengths.

use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::harness;
use crate::scale::Scale;

/// Per-benchmark correlation summary.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Fraction of misses with perfect (+1) correlation.
    pub perfect: f64,
    /// CDF of |distance| at selected bounds (1, 16, 256).
    pub cdf_1: f64,
    /// CDF at 16.
    pub cdf_16: f64,
    /// CDF at 256.
    pub cdf_256: f64,
    /// Fraction of misses never seen before (uncorrelated).
    pub uncorrelated: f64,
    /// Median correlated-sequence length (misses), for the right-hand plot.
    pub median_seq_len: u64,
}

fn spec_for(name: &str, scale: Scale) -> RunSpec {
    RunSpec::correlation(name, scale.coverage_accesses / 2, 1)
}

/// Declares the correlation study for every suite benchmark.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    suite::benchmarks().iter().map(|e| spec_for(e.name, scale)).collect()
}

/// Assembles the rows from engine results.
pub fn rows(scale: Scale, results: &ResultSet) -> Vec<Row> {
    suite::benchmarks()
        .iter()
        .map(|e| {
            let a = results.correlation(&spec_for(e.name, scale));
            Row {
                name: e.name,
                perfect: a.perfect_fraction(),
                cdf_1: a.cdf_at(1),
                cdf_16: a.cdf_at(16),
                cdf_256: a.cdf_at(256),
                uncorrelated: 1.0 - a.correlated_fraction(),
                median_seq_len: a.sequence_lengths.lengths.quantile(0.5),
            }
        })
        .collect()
}

/// Runs the Figure 6 study over the whole suite (engine, in memory).
pub fn run(scale: Scale) -> Vec<Row> {
    let results = harness::compute(harness::by_name("fig06").expect("registered"), scale);
    rows(scale, &results)
}

/// Renders both panels of Figure 6.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "perfect(+1)",
        "|d|<=1",
        "|d|<=16",
        "|d|<=256",
        "uncorrelated",
        "median seq len",
    ]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.0}%", r.perfect * 100.0),
            format!("{:.0}%", r.cdf_1 * 100.0),
            format!("{:.0}%", r.cdf_16 * 100.0),
            format!("{:.0}%", r.cdf_256 * 100.0),
            format!("{:.0}%", r.uncorrelated * 100.0),
            if r.uncorrelated > 0.05 && r.median_seq_len != u64::MAX {
                r.median_seq_len.to_string()
            } else {
                "-".into()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_codes_beat_hash_codes() {
        // Use a small-footprint pair so the bench budget sees recurrences.
        let scale = Scale { coverage_accesses: 1_500_000, ..Scale::bench() };
        let rows = run(scale);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        assert!(
            get("galgel").perfect > get("twolf").perfect,
            "recurring sweeps must out-correlate random probes"
        );
        assert!(get("twolf").uncorrelated > 0.5);
    }
}
