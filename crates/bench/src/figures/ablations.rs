//! Ablations of LT-cords design choices (beyond the paper's own figures).
//!
//! The paper fixes several design parameters with qualitative argument:
//! FIFO signature-cache replacement (Section 4.3), 2-bit confidence
//! counters (Section 4.4), a head lookahead of "several hundred"
//! signatures (Section 4.2), and a shared transfer unit for recording and
//! streaming (Section 4.1). These ablations quantify each choice on a
//! representative workload mix.

use ltc_sim::cache::ReplacementPolicy;
use ltc_sim::core::LtCordsConfig;
use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::report::Table;

use crate::harness;
use crate::scale::Scale;

/// Workloads used for the ablations: a recurring sweep, a pointer chase
/// with a mutating structure (stale signatures), and a hot-set chase.
pub const BENCHMARKS: [&str; 3] = ["galgel", "parser", "mcf"];

/// One ablation data point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Ablation axis label (e.g. `"fifo"`, `"lookahead=64"`).
    pub variant: String,
    /// Benchmark measured.
    pub benchmark: &'static str,
    /// LT-cords coverage under the variant.
    pub coverage: f64,
    /// Early evictions as a fraction of opportunity.
    pub early: f64,
}

/// The `(label, config)` grid of variants. The paper configuration
/// appears under several labels (one per axis), which costs nothing: the
/// engine dedupes the identical underlying specs.
fn variants() -> Vec<(String, LtCordsConfig)> {
    let paper = LtCordsConfig::paper();
    let mut jobs: Vec<(String, LtCordsConfig)> = vec![
        ("replacement=fifo (paper)".into(), paper),
        (
            "replacement=lru".into(),
            LtCordsConfig { sig_cache_policy: ReplacementPolicy::Lru, ..paper },
        ),
        ("confidence=on (paper)".into(), paper),
        ("confidence=off".into(), LtCordsConfig { use_confidence: false, ..paper }),
    ];
    for lookahead in [16usize, 64, 256, 1024] {
        let label = if lookahead == 256 {
            format!("lookahead={lookahead} (paper)")
        } else {
            format!("lookahead={lookahead}")
        };
        jobs.push((label, LtCordsConfig { head_lookahead: lookahead, ..paper }));
    }
    for unit in [1usize, 4, 16, 64] {
        let label = if unit == 16 {
            format!("transfer_unit={unit} (paper)")
        } else {
            format!("transfer_unit={unit}")
        };
        jobs.push((label, LtCordsConfig { transfer_unit: unit, ..paper }));
    }
    for window in [128usize, 512, 1024, 4096] {
        let label = if window == 1024 {
            format!("stream_window={window} (paper)")
        } else {
            format!("stream_window={window}")
        };
        jobs.push((label, LtCordsConfig { stream_window: window, ..paper }));
    }
    jobs
}

fn spec_for(benchmark: &str, cfg: LtCordsConfig, scale: Scale) -> RunSpec {
    RunSpec::coverage(benchmark, PredictorKind::LtCordsWith(cfg), scale.coverage_accesses / 2, 1)
}

/// Declares the (variant × benchmark) grid. The four axes sharing the
/// paper configuration dedupe to a single run per benchmark.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    variants()
        .into_iter()
        .flat_map(|(_, cfg)| BENCHMARKS.iter().map(move |&b| spec_for(b, cfg, scale)))
        .collect()
}

/// Assembles the ablation points from engine results.
pub fn points(scale: Scale, results: &ResultSet) -> Vec<Point> {
    let mut out = Vec::new();
    for (variant, cfg) in variants() {
        for &benchmark in &BENCHMARKS {
            let r = results.coverage(&spec_for(benchmark, cfg, scale));
            out.push(Point {
                variant: variant.clone(),
                benchmark,
                coverage: r.coverage(),
                early: r.early_pct(),
            });
        }
    }
    out
}

/// Runs all ablations (engine, in memory).
pub fn run(scale: Scale) -> Vec<Point> {
    let results = harness::compute(harness::by_name("ablations").expect("registered"), scale);
    points(scale, &results)
}

/// Renders the ablation grid.
pub fn render(points: &[Point]) -> String {
    let mut headers = vec!["variant".to_string()];
    for b in BENCHMARKS {
        headers.push(format!("{b} cov"));
        headers.push(format!("{b} early"));
    }
    let mut t = Table::new(headers);
    let mut variants: Vec<&String> = points.iter().map(|p| &p.variant).collect();
    variants.dedup();
    for variant in variants {
        let mut row = vec![variant.clone()];
        for b in BENCHMARKS {
            let p = points
                .iter()
                .find(|p| &p.variant == variant && p.benchmark == b)
                .expect("grid is complete");
            row.push(format!("{:.0}%", p.coverage * 100.0));
            row.push(format!("{:.1}%", p.early * 100.0));
        }
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_sim::experiment::run_coverage;

    #[test]
    fn confidence_off_increases_aggression() {
        // parser mutates its structure: without confidence gating, stale
        // signatures keep firing, so prefetch volume (and typically early
        // evictions or wrong fetches) cannot go down.
        let accesses = 2_000_000;
        let on = run_coverage("parser", PredictorKind::LtCords, accesses, 1);
        let off = run_coverage(
            "parser",
            PredictorKind::LtCordsWith(LtCordsConfig {
                use_confidence: false,
                ..LtCordsConfig::paper()
            }),
            accesses,
            1,
        );
        assert!(
            off.prefetch_fills >= on.prefetch_fills,
            "disabling confidence must not reduce prefetch volume ({} vs {})",
            off.prefetch_fills,
            on.prefetch_fills
        );
    }

    #[test]
    fn tiny_lookahead_does_not_beat_paper_choice() {
        let accesses = 1_500_000;
        let paper = run_coverage("galgel", PredictorKind::LtCords, accesses, 1);
        let tiny = run_coverage(
            "galgel",
            PredictorKind::LtCordsWith(LtCordsConfig {
                head_lookahead: 2,
                ..LtCordsConfig::paper()
            }),
            accesses,
            1,
        );
        assert!(
            tiny.coverage() <= paper.coverage() + 0.05,
            "a 2-signature lookahead should not outperform the paper's 256"
        );
    }

    #[test]
    fn paper_variants_dedupe_in_the_spec_set() {
        let scale = Scale::bench();
        let declared = specs(scale, &ResultSet::new());
        let mut unique = declared.clone();
        unique.sort_by_key(RunSpec::key);
        unique.dedup();
        assert!(
            unique.len() < declared.len(),
            "the four paper-config axes must share underlying runs"
        );
    }

    #[test]
    fn render_produces_grid() {
        let points = vec![
            Point { variant: "x".into(), benchmark: "galgel", coverage: 0.5, early: 0.0 },
            Point { variant: "x".into(), benchmark: "parser", coverage: 0.2, early: 0.01 },
            Point { variant: "x".into(), benchmark: "mcf", coverage: 0.3, early: 0.0 },
        ];
        let s = render(&points);
        assert!(s.contains("galgel cov"));
        assert!(s.contains("50%"));
    }
}
