//! Figure 4 — DBCP coverage sensitivity to on-chip correlation table size.

use ltc_sim::experiment::{run_coverage, sweep_bounded, PredictorKind};
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::scale::Scale;

/// Table sizes swept (bytes). The paper sweeps 160 KB → 320 MB against
/// ~100 MB application footprints; our footprints are ~8x smaller, so the
/// sweep tops out at 40 MB — crossovers land proportionally earlier
/// (see EXPERIMENTS.md).
pub const SIZES: [u64; 9] =
    [160 << 10, 320 << 10, 640 << 10, 1 << 20, 2 << 20, 5 << 20, 10 << 20, 20 << 20, 40 << 20];

/// Normalized DBCP coverage per table size.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// `(size bytes, average normalized coverage, worst-case normalized)`.
    pub points: Vec<(u64, f64, f64)>,
    /// Benchmarks included (those with meaningful oracle coverage).
    pub benchmarks: Vec<&'static str>,
}

/// Runs the sweep: per benchmark, finite-table coverage normalized to the
/// unlimited-table oracle.
pub fn run(scale: Scale) -> Sensitivity {
    let accesses = scale.coverage_accesses / 2;
    let names: Vec<&'static str> = suite::benchmarks().iter().map(|e| e.name).collect();
    let oracle = sweep_bounded(names.clone(), scale.threads, |name| {
        run_coverage(name, PredictorKind::DbcpUnlimited, accesses, 1).coverage()
    });
    // Only benchmarks the oracle can cover are meaningful to normalize.
    let included: Vec<(usize, &'static str)> =
        names.iter().enumerate().filter(|(i, _)| oracle[*i] > 0.10).map(|(i, n)| (i, *n)).collect();

    let mut points = Vec::new();
    for &size in &SIZES {
        let runs = sweep_bounded(included.clone(), scale.threads.min(8), |(_, name)| {
            run_coverage(name, PredictorKind::DbcpBytes(size), accesses, 1).coverage()
        });
        let normalized: Vec<f64> = runs
            .iter()
            .zip(&included)
            .map(|(c, (i, _))| (c / oracle[*i]).clamp(0.0, 1.0))
            .collect();
        let avg = normalized.iter().sum::<f64>() / normalized.len().max(1) as f64;
        let worst = normalized.iter().copied().fold(1.0f64, f64::min);
        points.push((size, avg, worst));
    }
    Sensitivity { points, benchmarks: included.into_iter().map(|(_, n)| n).collect() }
}

/// Renders the Figure 4 series.
pub fn render(s: &Sensitivity) -> String {
    let mut t = Table::new(vec!["table size", "% of achievable coverage (avg)", "worst-case"]);
    for &(size, avg, worst) in &s.points {
        t.row(vec![
            ltc_sim::report::bytes(size),
            format!("{:.0}%", avg * 100.0),
            format!("{:.0}%", worst * 100.0),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!("\nbenchmarks included: {}\n", s.benchmarks.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_grows_with_table_size() {
        // Bench scale with a reduced size set via direct calls.
        let scale = Scale::bench();
        let small = run_coverage(
            "galgel",
            PredictorKind::DbcpBytes(40 << 10),
            scale.coverage_accesses * 4,
            1,
        );
        let big = run_coverage(
            "galgel",
            PredictorKind::DbcpBytes(10 << 20),
            scale.coverage_accesses * 4,
            1,
        );
        assert!(
            big.coverage() >= small.coverage(),
            "bigger table cannot hurt: {:.2} vs {:.2}",
            big.coverage(),
            small.coverage()
        );
    }
}
