//! Figure 4 — DBCP coverage sensitivity to on-chip correlation table size.

use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::harness;
use crate::scale::Scale;

/// Table sizes swept (bytes). The paper sweeps 160 KB → 320 MB against
/// ~100 MB application footprints; our footprints are ~8x smaller, so the
/// sweep tops out at 40 MB — crossovers land proportionally earlier
/// (see EXPERIMENTS.md).
pub const SIZES: [u64; 9] =
    [160 << 10, 320 << 10, 640 << 10, 1 << 20, 2 << 20, 5 << 20, 10 << 20, 20 << 20, 40 << 20];

/// Normalized DBCP coverage per table size.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// `(size bytes, average normalized coverage, worst-case normalized)`.
    pub points: Vec<(u64, f64, f64)>,
    /// Benchmarks included (those with meaningful oracle coverage).
    pub benchmarks: Vec<&'static str>,
}

fn oracle_spec(name: &str, scale: Scale) -> RunSpec {
    RunSpec::coverage(name, PredictorKind::DbcpUnlimited, scale.coverage_accesses / 2, 1)
}

fn sized_spec(name: &str, size: u64, scale: Scale) -> RunSpec {
    RunSpec::coverage(name, PredictorKind::DbcpBytes(size), scale.coverage_accesses / 2, 1)
}

/// Benchmarks the oracle can meaningfully cover (the normalization
/// denominators), derivable once the oracle wave has run.
fn included(scale: Scale, results: &ResultSet) -> Vec<&'static str> {
    suite::benchmarks()
        .iter()
        .filter(|e| results.coverage(&oracle_spec(e.name, scale)).coverage() > 0.10)
        .map(|e| e.name)
        .collect()
}

/// Declares the sweep in two waves: first the unlimited-table oracle over
/// the whole suite, then — once those results exist — the finite-table
/// sweep over only the benchmarks the oracle can cover. The engine's
/// round loop executes wave one, re-asks, and executes wave two.
pub fn specs(scale: Scale, have: &ResultSet) -> Vec<RunSpec> {
    let mut specs: Vec<RunSpec> =
        suite::benchmarks().iter().map(|e| oracle_spec(e.name, scale)).collect();
    if specs.iter().all(|s| have.contains(s)) {
        for name in included(scale, have) {
            specs.extend(SIZES.iter().map(|&size| sized_spec(name, size, scale)));
        }
    }
    specs
}

/// Assembles the normalized sensitivity curve from engine results.
pub fn sensitivity(scale: Scale, results: &ResultSet) -> Sensitivity {
    let benchmarks = included(scale, results);
    let mut points = Vec::new();
    for &size in &SIZES {
        let normalized: Vec<f64> = benchmarks
            .iter()
            .map(|name| {
                let oracle = results.coverage(&oracle_spec(name, scale)).coverage();
                let this = results.coverage(&sized_spec(name, size, scale)).coverage();
                (this / oracle).clamp(0.0, 1.0)
            })
            .collect();
        let avg = normalized.iter().sum::<f64>() / normalized.len().max(1) as f64;
        let worst = normalized.iter().copied().fold(1.0f64, f64::min);
        points.push((size, avg, worst));
    }
    Sensitivity { points, benchmarks }
}

/// Runs the sweep (engine, in memory).
pub fn run(scale: Scale) -> Sensitivity {
    let results = harness::compute(harness::by_name("fig04").expect("registered"), scale);
    sensitivity(scale, &results)
}

/// Renders the Figure 4 series.
pub fn render(s: &Sensitivity) -> String {
    let mut t = Table::new(vec!["table size", "% of achievable coverage (avg)", "worst-case"]);
    for &(size, avg, worst) in &s.points {
        t.row(vec![
            ltc_sim::report::bytes(size),
            format!("{:.0}%", avg * 100.0),
            format!("{:.0}%", worst * 100.0),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!("\nbenchmarks included: {}\n", s.benchmarks.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_sim::experiment::run_coverage;

    #[test]
    fn coverage_grows_with_table_size() {
        // Bench scale with a reduced size set via direct calls.
        let scale = Scale::bench();
        let small = run_coverage(
            "galgel",
            PredictorKind::DbcpBytes(40 << 10),
            scale.coverage_accesses * 4,
            1,
        );
        let big = run_coverage(
            "galgel",
            PredictorKind::DbcpBytes(10 << 20),
            scale.coverage_accesses * 4,
            1,
        );
        assert!(
            big.coverage() >= small.coverage(),
            "bigger table cannot hurt: {:.2} vs {:.2}",
            big.coverage(),
            small.coverage()
        );
    }

    #[test]
    fn specs_declare_the_sweep_in_two_waves() {
        let scale = Scale::bench();
        let first = specs(scale, &ResultSet::new());
        assert_eq!(first.len(), suite::benchmarks().len(), "wave one is the oracle only");
    }
}
