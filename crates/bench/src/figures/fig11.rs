//! Figure 11 — LT-cords coverage in a multi-programmed environment.

use ltc_sim::core::LtCordsConfig;
use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::{run_multiprog, PredictorKind};
use ltc_sim::report::Table;

use crate::harness;
use crate::scale::Scale;

/// The paper's Figure 11 pairings: each focus benchmark standalone and with
/// three partners (lucas pairs with the two other storage-hungry codes).
pub const PAIRINGS: [(&str, &[&str]); 5] = [
    ("gcc", &["mcf", "gzip", "swim"]),
    ("mcf", &["gcc", "vortex", "fma3d"]),
    ("swim", &["fma3d", "mesa", "gcc"]),
    ("fma3d", &["swim", "facerec", "mcf"]),
    ("lucas", &["applu", "mgrid"]),
];

/// One measured bar of Figure 11.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Focus benchmark.
    pub focus: &'static str,
    /// Partner, or `None` for the standalone bar.
    pub with: Option<&'static str>,
    /// Focus program's coverage.
    pub coverage: f64,
}

/// Scaled quanta/fragments preserving the paper's quantum:fragment ratio
/// (see `tests/multiprog.rs` for the rationale).
fn config() -> LtCordsConfig {
    LtCordsConfig { fragment_len: 1 << 10, frames: 1 << 13, ..LtCordsConfig::paper() }
}

fn jobs() -> Vec<(&'static str, Option<&'static str>)> {
    let mut jobs = Vec::new();
    for (focus, partners) in PAIRINGS {
        jobs.push((focus, None));
        for &p in partners {
            jobs.push((focus, Some(p)));
        }
    }
    jobs
}

fn spec_for(focus: &str, with: Option<&str>, accesses: u64) -> RunSpec {
    RunSpec::multiprog(focus, with, PredictorKind::LtCordsWith(config()), accesses, 1)
}

/// Declares every Figure 11 bar.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    jobs().into_iter().map(|(f, w)| spec_for(f, w, scale.coverage_accesses)).collect()
}

/// Assembles the bars from engine results.
pub fn bars(scale: Scale, results: &ResultSet) -> Vec<Bar> {
    jobs()
        .into_iter()
        .map(|(focus, with)| {
            let r = results.multiprog(&spec_for(focus, with, scale.coverage_accesses));
            Bar { focus, with, coverage: r.coverage() }
        })
        .collect()
}

/// Runs one bar directly: focus coverage, alone or context-switched with a
/// partner (bench/test convenience).
pub fn coverage_bar(focus: &'static str, with: Option<&'static str>, accesses: u64) -> Bar {
    let r = run_multiprog(focus, with, PredictorKind::LtCordsWith(config()), accesses, 1);
    Bar { focus, with, coverage: r.coverage() }
}

/// Runs all Figure 11 bars (engine, in memory).
pub fn run(scale: Scale) -> Vec<Bar> {
    let results = harness::compute(harness::by_name("fig11").expect("registered"), scale);
    bars(scale, &results)
}

/// Renders the Figure 11 bars.
pub fn render(bars: &[Bar]) -> String {
    let mut t = Table::new(vec!["configuration", "focus coverage"]);
    for b in bars {
        let label = match b.with {
            None => format!("{} standalone", b.focus),
            Some(w) => format!("{} w/ {}", b.focus, w),
        };
        t.row(vec![label, format!("{:.0}%", b.coverage * 100.0)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_bar_matches_pairing_shape() {
        let alone = coverage_bar("galgel", None, 1_500_000);
        let paired = coverage_bar("galgel", Some("gzip"), 1_500_000);
        assert!(alone.coverage > 0.3, "galgel must train, got {:.2}", alone.coverage);
        assert!(
            paired.coverage > alone.coverage * 0.5,
            "pairing must not destroy coverage: {:.2} vs {:.2}",
            paired.coverage,
            alone.coverage
        );
        assert!(render(&[alone, paired]).contains("galgel"));
    }
}
