//! Figure 11 — LT-cords coverage in a multi-programmed environment.

use ltc_sim::analysis::CoverageConfig;
use ltc_sim::cache::Hierarchy;
use ltc_sim::core::{LtCords, LtCordsConfig};
use ltc_sim::experiment::sweep_bounded;
use ltc_sim::predictors::{PrefetchLevel, Prefetcher};
use ltc_sim::report::Table;
use ltc_sim::trace::{suite, MultiProgram};

use crate::scale::Scale;

/// The paper's Figure 11 pairings: each focus benchmark standalone and with
/// three partners (lucas pairs with the two other storage-hungry codes).
pub const PAIRINGS: [(&str, &[&str]); 5] = [
    ("gcc", &["mcf", "gzip", "swim"]),
    ("mcf", &["gcc", "vortex", "fma3d"]),
    ("swim", &["fma3d", "mesa", "gcc"]),
    ("fma3d", &["swim", "facerec", "mcf"]),
    ("lucas", &["applu", "mgrid"]),
];

/// One measured bar of Figure 11.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Focus benchmark.
    pub focus: &'static str,
    /// Partner, or `None` for the standalone bar.
    pub with: Option<&'static str>,
    /// Focus program's coverage.
    pub coverage: f64,
}

/// Scaled quanta/fragments preserving the paper's quantum:fragment ratio
/// (see `tests/multiprog.rs` for the rationale).
fn config() -> LtCordsConfig {
    LtCordsConfig { fragment_len: 1 << 10, frames: 1 << 13, ..LtCordsConfig::paper() }
}

fn quantum(name: &str) -> u64 {
    if suite::by_name(name).map(|e| e.is_fp()).unwrap_or(false) {
        1_200_000
    } else {
        600_000
    }
}

/// Runs one bar: focus coverage, alone or context-switched with a partner.
pub fn coverage_bar(focus: &'static str, with: Option<&'static str>, accesses: u64) -> Bar {
    let ef = suite::by_name(focus).expect("focus exists");
    let mut lt = LtCords::new(config());
    let cfg = CoverageConfig::paper(accesses);
    let mut base = Hierarchy::new(cfg.hierarchy);
    let mut pf = Hierarchy::new(cfg.hierarchy);
    let mut requests = Vec::new();
    let (mut misses, mut eliminated) = (0u64, 0u64);

    let mut run = |multi: &mut MultiProgram, total: u64| {
        for _ in 0..total {
            let Some((prog, acc)) = multi.next_tagged() else { break };
            let b_out = base.access(acc.addr, acc.kind);
            let p_out = pf.access(acc.addr, acc.kind);
            if prog == 0 {
                misses += u64::from(!b_out.l1.hit);
                eliminated += u64::from(!b_out.l1.hit && p_out.l1.hit);
            }
            lt.on_access(&acc, &p_out, &mut requests);
            for req in requests.drain(..) {
                if req.level == PrefetchLevel::L1 && !pf.l1().contains(req.target) {
                    let (out, src) = pf.prefetch_into_l1(req.target, req.victim);
                    lt.on_prefetch_applied(&req, &out, src);
                }
            }
        }
    };

    match with {
        None => {
            let mut multi = MultiProgram::new(vec![(ef.build(1), quantum(focus), 0)]);
            run(&mut multi, accesses);
        }
        Some(partner) => {
            let ep = suite::by_name(partner).expect("partner exists");
            let mut multi = MultiProgram::new(vec![
                (ef.build(1), quantum(focus), 0),
                (ep.build(2), quantum(partner), 1 << 40),
            ]);
            // Double the budget so the focus program sees a comparable
            // number of its own accesses.
            run(&mut multi, accesses * 2);
        }
    }
    Bar { focus, with, coverage: if misses == 0 { 0.0 } else { eliminated as f64 / misses as f64 } }
}

/// Runs all Figure 11 bars.
pub fn run(scale: Scale) -> Vec<Bar> {
    let mut jobs: Vec<(&'static str, Option<&'static str>)> = Vec::new();
    for (focus, partners) in PAIRINGS {
        jobs.push((focus, None));
        for &p in partners {
            jobs.push((focus, Some(p)));
        }
    }
    sweep_bounded(jobs, scale.threads, |&(focus, with)| {
        coverage_bar(focus, with, scale.coverage_accesses)
    })
}

/// Renders the Figure 11 bars.
pub fn render(bars: &[Bar]) -> String {
    let mut t = Table::new(vec!["configuration", "focus coverage"]);
    for b in bars {
        let label = match b.with {
            None => format!("{} standalone", b.focus),
            Some(w) => format!("{} w/ {}", b.focus, w),
        };
        t.row(vec![label, format!("{:.0}%", b.coverage * 100.0)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_bar_matches_pairing_shape() {
        let alone = coverage_bar("galgel", None, 1_500_000);
        let paired = coverage_bar("galgel", Some("gzip"), 1_500_000);
        assert!(alone.coverage > 0.3, "galgel must train, got {:.2}", alone.coverage);
        assert!(
            paired.coverage > alone.coverage * 0.5,
            "pairing must not destroy coverage: {:.2} vs {:.2}",
            paired.coverage,
            alone.coverage
        );
        assert!(render(&[alone, paired]).contains("galgel"));
    }
}
