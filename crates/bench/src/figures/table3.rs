//! Table 3 — percent speedup over the baseline processor.

use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::report::Table;
use ltc_sim::trace::{suite, WorkloadClass};

use crate::harness;
use crate::scale::Scale;

/// The Table 3 comparison columns, in paper order.
pub const CONFIGS: [PredictorKind; 5] = [
    PredictorKind::PerfectL1,
    PredictorKind::LtCords,
    PredictorKind::Ghb,
    PredictorKind::Dbcp2Mb,
    PredictorKind::BigL2,
];

/// One benchmark's speedup row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite grouping (for the means).
    pub class: WorkloadClass,
    /// Percent speedup over baseline, per entry of [`CONFIGS`].
    pub speedups: Vec<f64>,
}

fn spec_for(name: &str, kind: PredictorKind, scale: Scale) -> RunSpec {
    RunSpec::timing(name, kind, scale.timing_accesses, 1)
}

/// Declares the full (benchmark × config) timing grid plus baselines.
/// The baseline column is the same spec Table 2 declares, so running both
/// figures together simulates it once.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    suite::benchmarks()
        .iter()
        .flat_map(|e| {
            std::iter::once(spec_for(e.name, PredictorKind::Baseline, scale))
                .chain(CONFIGS.iter().map(move |&kind| spec_for(e.name, kind, scale)))
        })
        .collect()
}

/// Assembles the speedup grid from engine results.
pub fn rows(scale: Scale, results: &ResultSet) -> Vec<Row> {
    suite::benchmarks()
        .iter()
        .map(|entry| {
            let base = results.timing(&spec_for(entry.name, PredictorKind::Baseline, scale));
            let speedups = CONFIGS
                .iter()
                .map(|&kind| {
                    results.timing(&spec_for(entry.name, kind, scale)).speedup_pct_over(base)
                })
                .collect();
            Row { name: entry.name, class: entry.class, speedups }
        })
        .collect()
}

/// Runs the full Table 3 grid (engine, in memory).
pub fn run(scale: Scale) -> Vec<Row> {
    let results = harness::compute(harness::by_name("table3").expect("registered"), scale);
    rows(scale, &results)
}

fn mean(rows: &[&Row], idx: usize) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.speedups[idx]).sum::<f64>() / rows.len() as f64
}

/// Renders the Table 3 grid with per-class and overall means.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["benchmark", "Perfect L1", "LT-cords", "GHB", "DBCP", "4MB L2"]);
    for r in rows {
        let mut cells = vec![r.name.to_string()];
        cells.extend(r.speedups.iter().map(|s| format!("{s:+.0}%")));
        t.row(cells);
    }
    for (label, class) in [
        ("SPECint mean", Some(WorkloadClass::SpecInt)),
        ("SPECfp mean", Some(WorkloadClass::SpecFp)),
        ("Olden mean", Some(WorkloadClass::Olden)),
        ("overall mean", None),
    ] {
        let subset: Vec<&Row> =
            rows.iter().filter(|r| class.map(|c| r.class == c).unwrap_or(true)).collect();
        let mut cells = vec![label.to_string()];
        cells.extend((0..CONFIGS.len()).map(|i| format!("{:+.0}%", mean(&subset, i))));
        t.row(cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_sim::experiment::run_timing;

    #[test]
    fn perfect_l1_column_dominates_on_memory_bound_code() {
        let scale = Scale::bench();
        let base = run_timing("mcf", PredictorKind::Baseline, scale.timing_accesses, 1);
        let ideal = run_timing("mcf", PredictorKind::PerfectL1, scale.timing_accesses, 1);
        assert!(ideal.speedup_pct_over(&base) > 100.0, "mcf's opportunity is enormous");
    }

    #[test]
    fn render_includes_means() {
        let rows = vec![Row {
            name: "mcf",
            class: WorkloadClass::SpecInt,
            speedups: vec![100.0, 50.0, 10.0, 40.0, 5.0],
        }];
        let s = render(&rows);
        assert!(s.contains("overall mean"));
        assert!(s.contains("+50%"));
    }
}
