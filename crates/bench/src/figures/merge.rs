//! Merge scaling sweep — segmented streaming vs the single-pass report.
//!
//! Not a paper artifact: the mergeable-sketch subsystem's accuracy axis.
//! Every benchmark runs the bounded-memory stream analysis single-pass
//! (`--segments 1`) and segmented across a ladder of worker counts; the
//! figure reports how much of the single-pass picture survives the
//! split-and-merge — miss-count drift from the residual cold state at
//! segment boundaries, the fraction of reported heavy hitters whose
//! merged estimates stay consistent with the single pass within the
//! documented sketch bounds, the heavy-hitter miss share — and the
//! maximum per-worker resident summary bytes, which must stay under
//! the budget no matter how many ways the trace is cut. (Plain top-k
//! recall is not reported: on the suite's flat, cache-exceeding
//! streams every line sits at the ε·N noise floor, so *which* eight
//! lines a summary reports is arbitrary; consistency-within-bounds is
//! the property the merge actually guarantees.)

use ltc_sim::engine::{ResultSet, RunSpec};
use ltc_sim::report::Table;
use ltc_sim::trace::suite;

use crate::harness;
use crate::scale::Scale;

/// Summary byte budget every run uses (the `ltsim stream` default:
/// 256 KiB).
pub const BUDGET: u64 = 256 << 10;

/// Worker counts swept; 1 is the single-pass reference.
pub const SEGMENTS: [u32; 4] = [1, 2, 4, 8];

/// One segment count's aggregate comparison across the suite.
#[derive(Debug, Clone, Copy)]
pub struct MergePoint {
    /// Segments (parallel workers) the trace was split into.
    pub segments: u32,
    /// Average relative miss-count drift vs the single pass (fractional;
    /// positive = segmented counts more misses, from residual cold
    /// state past the warm-up window).
    pub miss_drift: f64,
    /// Average fraction of single-pass heavy-hitter lines whose merged
    /// story is consistent within the combined sketch bounds: present
    /// with an estimate inside the tolerance, or absent while never
    /// having exceeded it (1.0 = nothing the bounds could distinguish
    /// was lost).
    pub heavy_consistency: f64,
    /// Average fraction of misses attributed to the reported heavy
    /// hitters.
    pub heavy_fraction: f64,
    /// Worst per-worker resident summary bytes across the suite.
    pub worker_memory: u64,
}

fn spec_for(name: &str, segments: u32, scale: Scale) -> RunSpec {
    let accesses = scale.coverage_accesses / 2;
    if segments == 1 {
        RunSpec::stream(name, BUDGET, accesses, 1)
    } else {
        RunSpec::stream_segmented(name, BUDGET, segments, accesses, 1)
    }
}

/// The sweep is one wave: every benchmark at every segment count.
pub fn specs(scale: Scale, _have: &ResultSet) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for e in suite::benchmarks() {
        specs.extend(SEGMENTS.iter().map(|&s| spec_for(e.name, s, scale)));
    }
    specs
}

/// Aggregates the sweep into one [`MergePoint`] per segment count.
pub fn points(scale: Scale, results: &ResultSet) -> Vec<MergePoint> {
    let benchmarks: Vec<&str> = suite::benchmarks().iter().map(|e| e.name).collect();
    let n = benchmarks.len() as f64;
    SEGMENTS
        .iter()
        .map(|&segments| {
            let mut p = MergePoint {
                segments,
                miss_drift: 0.0,
                heavy_consistency: 0.0,
                heavy_fraction: 0.0,
                worker_memory: 0,
            };
            for name in &benchmarks {
                let single = results.stream(&spec_for(name, 1, scale));
                let merged = results.stream(&spec_for(name, segments, scale));
                if single.misses > 0 {
                    p.miss_drift += (merged.misses as f64 / single.misses as f64 - 1.0) / n;
                }
                let tolerance =
                    merged.error_bound + single.error_bound + merged.misses.abs_diff(single.misses);
                let consistent = single
                    .heavy
                    .iter()
                    .filter(|s| match merged.heavy.iter().find(|m| m.line == s.line) {
                        Some(m) => m.estimate.abs_diff(s.estimate) <= tolerance,
                        None => s.estimate <= tolerance,
                    })
                    .count();
                p.heavy_consistency += consistent as f64 / single.heavy.len().max(1) as f64 / n;
                p.heavy_fraction += merged.heavy_fraction() / n;
                p.worker_memory = p.worker_memory.max(merged.memory_bytes);
            }
            p
        })
        .collect()
}

/// Runs the sweep (engine, in memory).
pub fn run(scale: Scale) -> Vec<MergePoint> {
    let results = harness::compute(harness::by_name("merge").expect("registered"), scale);
    points(scale, &results)
}

/// Renders the merge-scaling table plus a summary line.
pub fn render(points: &[MergePoint]) -> String {
    let mut t = Table::new(vec![
        "segments",
        "miss drift vs 1-pass",
        "heavy hitters within bounds",
        "heavy share of misses",
        "worker resident bytes",
    ]);
    for p in points {
        t.row(vec![
            p.segments.to_string(),
            format!("{:+.2}%", p.miss_drift * 100.0),
            format!("{:.1}%", p.heavy_consistency * 100.0),
            format!("{:.1}%", p.heavy_fraction * 100.0),
            ltc_sim::report::bytes(p.worker_memory),
        ]);
    }
    let mut out = t.render();
    if let Some(p) = points.iter().max_by_key(|p| p.segments) {
        out.push_str(&format!(
            "\nat {} segments: every worker held ≤ {} of summary state ({} budget), miss \
             counts drifted {:+.2}%, and {:.1}% of reported heavy hitters stayed within the \
             documented sketch bounds of the single pass\n",
            p.segments,
            ltc_sim::report::bytes(p.worker_memory),
            ltc_sim::report::bytes(BUDGET),
            p.miss_drift * 100.0,
            p.heavy_consistency * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_starts_at_the_single_pass_reference() {
        assert_eq!(SEGMENTS[0], 1);
        assert!(SEGMENTS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn specs_cover_every_benchmark_and_segment_count() {
        let scale = Scale::bench();
        let specs = specs(scale, &ResultSet::new());
        assert_eq!(specs.len(), suite::benchmarks().len() * SEGMENTS.len());
        // Exactly one single-pass reference per benchmark.
        let plain =
            specs.iter().filter(|s| matches!(s.mode, ltc_sim::engine::Mode::Stream { .. })).count();
        assert_eq!(plain, suite::benchmarks().len());
    }

    #[test]
    fn merged_reports_track_the_single_pass() {
        // One benchmark at bench scale through the real engine path:
        // the merged report must stay close to the single pass and every
        // worker must respect the budget.
        let scale = Scale::bench();
        let mut sched = ltc_sim::engine::Scheduler::new();
        let single = spec_for("mcf", 1, scale);
        let merged = spec_for("mcf", 4, scale);
        sched.request(single.clone());
        sched.request(merged.clone());
        let results = sched
            .execute(&ltc_sim::engine::EngineOptions::in_memory(4))
            .expect("in-memory execution");
        let s = results.stream(&single);
        let m = results.stream(&merged);
        assert!(m.memory_bytes <= BUDGET, "worker resident {} over budget", m.memory_bytes);
        assert!(m.misses >= s.misses, "segmenting can only add cold misses");
        assert!(
            (m.misses as f64) < s.misses as f64 * 1.1,
            "cold-start drift too large: {} vs {}",
            m.misses,
            s.misses
        );
        // Any line that left the reported top set must have been
        // indistinguishable from the field within the sketch bounds
        // (the suite's streams are flat at this scale; skewed-stream
        // exact recall is asserted in `ltc_analysis::stream`).
        let tolerance = m.error_bound + s.error_bound + (m.misses - s.misses);
        for h in &s.heavy {
            if !m.heavy.iter().any(|x| x.line == h.line) {
                assert!(
                    h.estimate <= tolerance,
                    "genuinely heavy line {:#x} (est {}) lost in the merge",
                    h.line,
                    h.estimate
                );
            }
        }
    }
}
