//! Prints Figure 7 (last-touch to miss order distance) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("fig07");
}
