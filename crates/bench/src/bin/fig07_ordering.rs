//! Prints Figure 7 (last-touch to miss order correlation distance).
use ltc_bench::{figures::fig07, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Figure 7: last-touch to cache-miss correlation distance\n");
    let o = fig07::run(scale);
    print!("{}", fig07::render(&o));
}
