//! Prints Table 1 (system configuration) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("table1");
}
