//! Prints Table 1 (system configuration).
fn main() {
    println!("Table 1: system configuration\n");
    print!("{}", ltc_bench::figures::table1::render());
}
