//! Prints the LT-cords design-choice ablation grid.
use ltc_bench::{figures::ablations, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Ablations: LT-cords design choices (coverage / early evictions)\n");
    let points = ablations::run(scale);
    print!("{}", ablations::render(&points));
}
