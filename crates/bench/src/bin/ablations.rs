//! Prints design-choice ablations beyond the paper's figures via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("ablations");
}
