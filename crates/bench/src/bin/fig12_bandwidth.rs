//! Prints Figure 12 (memory bus utilization breakdown) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("fig12");
}
