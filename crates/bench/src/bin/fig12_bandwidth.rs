//! Prints Figure 12 (memory bus utilization breakdown).
use ltc_bench::{figures::fig12, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Figure 12: memory bus utilization (bytes/instruction)\n");
    let rows = fig12::run(scale);
    print!("{}", fig12::render(&rows));
}
