//! Prints Figure 9 (coverage vs signature cache size).
use ltc_bench::{figures::fig09, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Figure 9: coverage sensitivity to signature cache size\n");
    let s = fig09::run(scale);
    print!("{}", fig09::render(&s));
}
