//! Prints Figure 9 (coverage vs signature cache size) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("fig09");
}
