//! Prints Figure 11 (multi-programmed coverage) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("fig11");
}
