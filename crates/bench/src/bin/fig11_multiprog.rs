//! Prints Figure 11 (multi-programmed coverage).
use ltc_bench::{figures::fig11, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Figure 11: LT-cords coverage in a multi-programmed environment\n");
    let bars = fig11::run(scale);
    print!("{}", fig11::render(&bars));
}
