//! Prints Figure 4 (DBCP coverage vs on-chip table size) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("fig04");
}
