//! Prints Figure 4 (DBCP sensitivity to correlation table size).
use ltc_bench::{figures::fig04, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Figure 4: DBCP coverage vs on-chip table size (normalized to unlimited)\n");
    let s = fig04::run(scale);
    print!("{}", fig04::render(&s));
}
