//! Prints the sketch budget sweep (SketchDbcp vs exact DBCP coverage) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("sketch");
}
