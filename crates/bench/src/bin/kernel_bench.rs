//! `kernel_bench` — standalone hot-path kernel timings.
//!
//! The bin form of `ltsim bench` for profiling workflows that want one
//! binary with no subcommand dispatch (e.g. `perf record
//! target/release/kernel_bench --quick`). Prints each kernel's
//! throughput; does not write or diff `BENCH_*.json` files — use
//! `ltsim bench` for the tracked trajectory.

use ltc_bench::perf::{self, BenchOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = BenchOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.accesses = perf::QUICK_ACCESSES,
            "--accesses" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.accesses = n,
                _ => die("--accesses needs a positive number"),
            },
            "--benchmark" => match it.next() {
                Some(name) => opts.benchmark = name.clone(),
                None => die("--benchmark needs a suite benchmark name"),
            },
            "--rounds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.rounds = n,
                _ => die("--rounds needs a positive number"),
            },
            other => die(&format!("unknown flag: {other}")),
        }
    }
    let report = perf::run_all(&opts);
    println!(
        "# {} accesses of {} (seed {}), best of {} rounds",
        report.accesses, report.benchmark, report.seed, opts.rounds
    );
    for r in &report.results {
        println!("{:<20} {:>12.0} items/sec  ({:.2} ms)", r.name, r.per_sec, r.nanos as f64 / 1e6);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: kernel_bench [--quick] [--accesses N] [--benchmark NAME] [--rounds N]");
    std::process::exit(2);
}
