//! Prints the merge scaling sweep (segmented streaming vs the single-pass
//! report) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("merge");
}
