//! Prints Table 3 (percent speedup over the baseline).
use ltc_bench::{figures::table3, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Table 3: percent performance improvement over the baseline\n");
    let rows = table3::run(scale);
    print!("{}", table3::render(&rows));
}
