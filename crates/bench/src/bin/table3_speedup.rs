//! Prints Table 3 (percent speedup over the baseline processor) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("table3");
}
