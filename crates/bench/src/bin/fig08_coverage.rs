//! Prints Figure 8 (LT-cords vs unlimited DBCP coverage breakdown) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("fig08");
}
