//! Prints Figure 8 (LT-cords vs unlimited DBCP coverage breakdown).
use ltc_bench::{figures::fig08, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Figure 8: coverage and accuracy, LT-cords (A) vs unlimited DBCP (B)\n");
    let rows = fig08::run(scale);
    print!("{}", fig08::render(&rows));
}
