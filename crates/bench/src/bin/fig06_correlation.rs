//! Prints Figure 6 (temporal correlation distance + sequence lengths) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("fig06");
}
