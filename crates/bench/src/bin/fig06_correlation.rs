//! Prints Figure 6 (temporal correlation distance + sequence lengths).
use ltc_bench::{figures::fig06, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Figure 6: temporal correlation of L1D misses\n");
    let rows = fig06::run(scale);
    print!("{}", fig06::render(&rows));
}
