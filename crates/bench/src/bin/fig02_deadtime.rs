//! Prints Figure 2 (CDF of block dead times) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("fig02");
}
