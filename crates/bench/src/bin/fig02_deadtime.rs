//! Prints Figure 2 (CDF of cache-block dead times).
use ltc_bench::{figures::fig02, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Figure 2: cumulative distribution of block dead times\n");
    let d = fig02::run(scale);
    print!("{}", fig02::render(&d));
}
