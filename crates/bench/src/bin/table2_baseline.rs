//! Prints Table 2 (benchmarks, base miss rates and IPCs).
use ltc_bench::{figures::table2, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Table 2: benchmarks, baseline miss rates and IPCs\n");
    let rows = table2::run(scale);
    print!("{}", table2::render(&rows));
}
