//! Prints Table 2 (benchmarks, base miss rates and IPCs) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("table2");
}
