//! Prints Figure 10 (off-chip sequence storage demand).
use ltc_bench::{figures::fig10, Scale};
fn main() {
    let scale = Scale::from_args();
    println!("Figure 10: off-chip storage needed to reach coverage\n");
    let d = fig10::run(scale);
    print!("{}", fig10::render(&d));
}
