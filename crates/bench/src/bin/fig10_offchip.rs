//! Prints Figure 10 (coverage vs off-chip sequence storage) via the experiment engine.
//! Flags: `--quick`, `--out DIR`, `--force`, `--threads N`.
fn main() {
    ltc_bench::harness::figure_main("fig10");
}
