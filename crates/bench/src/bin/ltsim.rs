//! `ltsim` — command-line driver for LT-cords experiments.
//!
//! ```text
//! ltsim list
//! ltsim coverage <benchmark> [predictor] [accesses] [seed]
//! ltsim timing   <benchmark> [predictor] [accesses] [seed]
//! ltsim compare  <benchmark> [accesses]
//! ltsim power    [l1-miss-rate]
//! ltsim record   <benchmark> <file> [accesses] [seed]
//! ltsim replay   <file> [predictor]
//! ltsim plan     [--figures a,b,..] [--quick]
//! ltsim run      [--figures a,b,..] [--out DIR] [--quick] [--force] [--threads N]
//!                [--backend threads|sharded|subprocess] [--progress off|plain|live|auto]
//!                [--events FILE] [--retries N] [--spec-timeout SECS]
//! ltsim render   [--figures a,b,..] [--out DIR] [--format table|json|csv]
//! ltsim stream   <benchmark|all> [--budget BYTES] [--segments N] [--accesses N] [--seed N]
//!                [--out DIR] [--force] [--threads N] [--backend ...] [--progress ...]
//!                [--events FILE] [--retries N] [--spec-timeout SECS]
//! ltsim bench    [--quick] [--accesses N] [--benchmark NAME] [--seed N] [--rounds N]
//!                [--out FILE] [--compare FILE] [--tolerance PCT]
//! ltsim events   summarize <file>
//! ltsim worker
//! ```
//!
//! Predictors: `baseline`, `lt-cords`, `dbcp`, `dbcp-unlimited`,
//! `sketch-dbcp`, `ghb`, `stride`, `perfect-l1`, `4mb-l2`.
//!
//! The figure subcommands route through `ltc_sim::engine`: `plan` prints
//! the deduplicated spec set the figures need, `run` executes it (reusing
//! the `--out` artifact cache) and prints every table, `render` rebuilds
//! tables — or JSON lines, or CSV — purely from cached artifacts without
//! simulating anything.
//!
//! `run --backend` selects the execution backend (see EXPERIMENTS.md
//! "Choosing a backend"); `subprocess` re-invokes this binary's `worker`
//! subcommand, which reads one canonical `RunSpec` JSON line per request
//! from stdin and answers each with one `RunResult` JSON line on stdout
//! until stdin closes.
//!
//! Execution is supervised (see EXPERIMENTS.md "Fault tolerance"):
//! `--retries N` sets the per-spec retry budget (default 2) and
//! `--spec-timeout SECS` arms a per-spec wall-clock timeout on the
//! subprocess backend. A dead worker's in-flight spec requeues onto a
//! survivor and the child is respawned with exponential backoff. The
//! `LTC_FAULT_INJECT` environment variable injects faults for chaos
//! testing (`panic-once:<label>`, `exit-after:<n>`, `hang-before:<n>`).
//!
//! `run --events FILE` (also on `stream`) records the structured
//! telemetry stream — scheduler planning, per-spec spans with queue-wait
//! vs run time, segment-restore outcomes, sketch occupancy gauges,
//! warnings — as JSON lines (`ltc_telemetry` schema v1), including
//! events forwarded from subprocess workers. `events summarize` renders
//! a recorded log as per-phase/per-spec breakdown tables. Progress/ETA
//! rendering itself rides the same event stream (a
//! [`ProgressSubscriber`] is installed instead of handing the engine a
//! sink), and every `run`/`stream` ends with a one-line summary from the
//! in-memory aggregator even under `--progress off`.
//!
//! `stream` runs the bounded-memory one-pass miss analysis. Its runs are
//! ordinary `RunSpec`s (mode `stream`, budget in the key), so they
//! dedupe, cache and execute through the same scheduler and backends as
//! the figures. `--segments N` splits each trace into N slices that the
//! selected backend summarizes in parallel (each worker within the byte
//! budget) and merges into one report — see EXPERIMENTS.md "Segmented
//! streaming" for when the merge is exact vs approximate.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

use ltc_bench::harness::{self, FigureDef};
use ltc_bench::Scale;
use ltc_sim::engine::{
    artifact, BackendKind, EngineOptions, FaultInject, FaultPolicy, ProgressMode,
    ProgressSubscriber, ResultSet, RunSpec, FAULT_INJECT_ENV,
};
use ltc_sim::experiment::{run_coverage, run_timing, PredictorKind};
use ltc_sim::report::{pct1, Table};
use ltc_sim::trace::suite;

fn parse_kind(name: &str) -> Result<PredictorKind, String> {
    Ok(match name {
        "baseline" => PredictorKind::Baseline,
        "lt-cords" | "ltcords" => PredictorKind::LtCords,
        "dbcp" => PredictorKind::Dbcp2Mb,
        "dbcp-unlimited" => PredictorKind::DbcpUnlimited,
        "sketch-dbcp" => PredictorKind::SketchDbcp(DEFAULT_STREAM_BUDGET),
        "ghb" => PredictorKind::Ghb,
        "stride" => PredictorKind::Stride,
        "perfect-l1" => PredictorKind::PerfectL1,
        "4mb-l2" => PredictorKind::BigL2,
        other => return Err(format!("unknown predictor: {other}")),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("coverage") => cmd_coverage(&args[1..]),
        Some("timing") => cmd_timing(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("power") => cmd_power(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("events") => cmd_events(&args[1..]),
        Some("worker") => cmd_worker(),
        _ => {
            eprintln!(
                "usage: ltsim <list|coverage|timing|compare|power|record|replay|plan|run|render|stream|bench|events|worker> ..."
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_list() -> Result<(), String> {
    let mut t = Table::new(vec!["benchmark", "class", "description"]);
    for e in suite::benchmarks() {
        t.row(vec![e.name.to_string(), e.class.to_string(), e.description.to_string()]);
    }
    print!("{}", t.render());
    Ok(())
}

fn arg<'a>(args: &'a [String], i: usize, default: &'a str) -> &'a str {
    args.get(i).map(String::as_str).unwrap_or(default)
}

fn cmd_coverage(args: &[String]) -> Result<(), String> {
    let bench = args.first().ok_or("coverage needs a benchmark name")?;
    suite::by_name(bench).ok_or_else(|| format!("unknown benchmark: {bench}"))?;
    let kind = parse_kind(arg(args, 1, "lt-cords"))?;
    let accesses: u64 = arg(args, 2, "2000000").parse().map_err(|_| "accesses must be a number")?;
    let seed: u64 = arg(args, 3, "1").parse().map_err(|_| "seed must be a number")?;
    let r = run_coverage(bench, kind, accesses, seed);
    println!("benchmark            {bench}");
    println!("predictor            {}", r.predictor);
    println!("accesses             {}", r.accesses);
    println!("base L1 miss rate    {}", pct1(r.base_l1_miss_rate()));
    println!("base L2 miss rate    {}", pct1(r.base_l2_miss_rate()));
    println!("coverage             {}", pct1(r.coverage()));
    println!("correct              {}", pct1(r.correct_pct()));
    println!("incorrect            {}", pct1(r.incorrect_pct()));
    println!("train                {}", pct1(r.train_pct()));
    println!("early                {}", pct1(r.early_pct()));
    println!("off-chip L2 coverage {}", pct1(r.l2_coverage()));
    println!("predictor storage    {} bytes on chip", r.storage_bytes);
    println!("metadata traffic     {} bytes", r.traffic.total());
    Ok(())
}

fn cmd_timing(args: &[String]) -> Result<(), String> {
    let bench = args.first().ok_or("timing needs a benchmark name")?;
    suite::by_name(bench).ok_or_else(|| format!("unknown benchmark: {bench}"))?;
    let kind = parse_kind(arg(args, 1, "lt-cords"))?;
    let accesses: u64 = arg(args, 2, "400000").parse().map_err(|_| "accesses must be a number")?;
    let seed: u64 = arg(args, 3, "1").parse().map_err(|_| "seed must be a number")?;
    let r = run_timing(bench, kind, accesses, seed);
    println!("benchmark   {bench}");
    println!("predictor   {}", r.predictor);
    println!("IPC         {:.3}", r.ipc());
    println!("L1 misses   {}", r.l1_misses);
    println!("L2 misses   {}", r.l2_misses);
    println!("bus traffic {:.2} bytes/instr", r.bandwidth.bytes_per_instruction(r.instructions));
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let bench = args.first().ok_or("compare needs a benchmark name")?;
    suite::by_name(bench).ok_or_else(|| format!("unknown benchmark: {bench}"))?;
    let accesses: u64 = arg(args, 1, "400000").parse().map_err(|_| "accesses must be a number")?;
    let base = run_timing(bench, PredictorKind::Baseline, accesses, 1);
    let mut t = Table::new(vec!["predictor", "IPC", "speedup"]);
    t.row(vec!["baseline".into(), format!("{:.3}", base.ipc()), "-".into()]);
    for kind in [
        PredictorKind::PerfectL1,
        PredictorKind::LtCords,
        PredictorKind::Ghb,
        PredictorKind::Dbcp2Mb,
        PredictorKind::BigL2,
    ] {
        let r = run_timing(bench, kind, accesses, 1);
        t.row(vec![
            kind.name().into(),
            format!("{:.3}", r.ipc()),
            format!("{:+.0}%", r.speedup_pct_over(&base)),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_power(args: &[String]) -> Result<(), String> {
    use ltc_sim::timing::PowerComparison;
    let miss_rate: f64 = arg(args, 0, "0.2").parse().map_err(|_| "miss rate must be a number")?;
    if !(0.0..=1.0).contains(&miss_rate) {
        return Err("miss rate must be in [0,1]".into());
    }
    let c = PowerComparison::at_miss_rate(miss_rate);
    println!("Section 5.9 power comparison at {:.0}% L1D miss rate", miss_rate * 100.0);
    println!("L1D dynamic energy      {:.1} pJ/access", c.l1d_pj_per_access);
    println!("LT-cords dynamic energy {:.1} pJ/access", c.ltcords_pj_per_access);
    println!("dynamic ratio           {:.0}% (paper: ~48%)", c.dynamic_ratio() * 100.0);
    println!("leakage ratio           {:.1}x (before high-Vt mitigation)", c.leakage_ratio);
    Ok(())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let bench = args.first().ok_or("record needs a benchmark name")?;
    let entry = suite::by_name(bench).ok_or_else(|| format!("unknown benchmark: {bench}"))?;
    let path = args.get(1).ok_or("record needs an output file")?;
    let accesses: u64 = arg(args, 2, "1000000").parse().map_err(|_| "accesses must be a number")?;
    let seed: u64 = arg(args, 3, "1").parse().map_err(|_| "seed must be a number")?;
    let mut src = entry.build(seed);
    let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let n = ltc_sim::trace::io::write_trace(&mut src, std::io::BufWriter::new(file), accesses)
        .map_err(|e| e.to_string())?;
    println!("recorded {n} accesses of {bench} to {path}");
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    use ltc_sim::analysis::{run_coverage as run_cov, CoverageConfig};
    let path = args.first().ok_or("replay needs a trace file")?;
    let kind = parse_kind(arg(args, 1, "lt-cords"))?;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    // Stream batches instead of materializing the whole trace, so
    // arbitrarily long recordings replay in bounded memory.
    let mut replay = ltc_sim::trace::io::BatchReader::new(std::io::BufReader::new(file))
        .map_err(|e| e.to_string())?;
    let mut predictor = kind.build();
    let r = run_cov(&mut replay, predictor.as_mut(), CoverageConfig::paper(u64::MAX));
    if let Some(err) = replay.error() {
        return Err(format!("trace stream ended early: {err}"));
    }
    println!("replayed {} accesses under {}", r.accesses, kind.name());
    println!("coverage {}", pct1(r.coverage()));
    Ok(())
}

/// Figure-subcommand flags shared by `plan`, `run` and `render`.
struct FigureArgs {
    figures: Vec<&'static FigureDef>,
    scale: Scale,
    format: String,
    opts: EngineOptions,
    /// `--events FILE`: record the telemetry stream as JSON lines.
    events: Option<String>,
}

/// The worker argv for `--backend subprocess`: this very binary,
/// re-invoked with the `worker` subcommand.
fn self_worker_command() -> Result<Vec<String>, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the ltsim binary for subprocess workers: {e}"))?;
    Ok(vec![exe.to_string_lossy().into_owned(), "worker".to_string()])
}

/// Parses one engine flag (`--out`, `--force`, `--threads`, `--backend`,
/// `--progress`, `--events`, `--retries`, `--spec-timeout`) into
/// `opts`/`events`. Shared by the figure subcommands and `stream` so the
/// engine surface cannot drift between them. Returns `Ok(false)` when
/// `arg` is not an engine flag.
fn parse_engine_flag(
    arg: &str,
    it: &mut std::slice::Iter<'_, String>,
    opts: &mut EngineOptions,
    events: &mut Option<String>,
) -> Result<bool, String> {
    match arg {
        "--events" => *events = Some(it.next().ok_or("--events needs a file path")?.clone()),
        "--out" => opts.cache_dir = Some(it.next().ok_or("--out needs a directory")?.into()),
        "--force" => opts.force = true,
        "--threads" => {
            opts.threads = it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n: &usize| n > 0)
                .ok_or("--threads needs a positive number")?;
        }
        "--backend" => {
            let name = it.next().ok_or("--backend needs threads|sharded|subprocess")?;
            opts.backend = match name.as_str() {
                "threads" => BackendKind::Threads,
                "sharded" => BackendKind::Sharded,
                "subprocess" => BackendKind::Subprocess { command: self_worker_command()? },
                other => return Err(format!("unknown backend: {other}")),
            };
        }
        "--progress" => {
            let name = it.next().ok_or("--progress needs off|plain|live|auto")?;
            opts.progress = ProgressMode::parse(name)
                .ok_or_else(|| format!("unknown progress mode: {name}"))?;
        }
        "--retries" => {
            opts.fault.retries = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("--retries needs a non-negative number")?;
        }
        "--spec-timeout" => {
            let secs: f64 = it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&s: &f64| s > 0.0 && s.is_finite())
                .ok_or("--spec-timeout needs a positive number of seconds")?;
            opts.fault.spec_timeout = Some(std::time::Duration::from_secs_f64(secs));
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_figure_args(args: &[String]) -> Result<FigureArgs, String> {
    let scale = if args.iter().any(|a| a == "--quick") { Scale::quick() } else { Scale::full() };
    let mut out = FigureArgs {
        figures: harness::registry().iter().collect(),
        scale,
        format: "table".to_string(),
        opts: EngineOptions {
            threads: scale.threads,
            backend: BackendKind::Threads,
            progress: ProgressMode::Auto,
            // Pick up LTC_FAULT_INJECT for chaos runs; --retries /
            // --spec-timeout refine the policy below.
            fault: FaultPolicy::from_env(),
            ..EngineOptions::default()
        },
        events: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if parse_engine_flag(a, &mut it, &mut out.opts, &mut out.events)? {
            continue;
        }
        match a.as_str() {
            "--figures" => {
                let list = it.next().ok_or("--figures needs a comma-separated list")?;
                out.figures = list
                    .split(',')
                    .map(|name| {
                        harness::by_name(name.trim())
                            .ok_or_else(|| format!("unknown figure: {name}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--format" => {
                out.format = it.next().ok_or("--format needs table|json|csv")?.clone();
                if !["table", "json", "csv"].contains(&out.format.as_str()) {
                    return Err(format!("unknown format: {}", out.format));
                }
            }
            "--quick" => {}
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(out)
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let fa = parse_figure_args(args)?;
    let mut t = Table::new(vec!["figure", "requested", "unique"]);
    let mut total_requested = 0usize;
    for def in fa.figures.iter().copied() {
        let specs = harness::plan(&[def], fa.scale);
        total_requested += specs.len();
        t.row(vec![def.name.to_string(), specs.len().to_string(), String::new()]);
    }
    let plan = harness::plan(&fa.figures, fa.scale);
    t.row(vec!["total".into(), total_requested.to_string(), plan.len().to_string()]);
    print!("{}", t.render());
    println!("\ndeduplicated first-wave specs ({}):", plan.len());
    for spec in &plan {
        println!("  {}  {}", spec.hash_hex(), spec.label());
    }
    println!(
        "\n(result-dependent figures such as fig04 declare a second wave once \
         their first wave completes)"
    );
    Ok(())
}

/// The telemetry subscribers one `run`/`stream` invocation installs: an
/// in-memory aggregator (always — it powers the end-of-run summary
/// line), the JSON-lines event log (with `--events`), and the progress
/// renderer (progress rides the event stream instead of an engine
/// [`ltc_sim::engine::ProgressSink`], so the engine itself runs with
/// progress off).
struct RunTelemetry {
    aggregator: Arc<ltc_telemetry::Aggregator>,
    writer: Option<(Arc<ltc_telemetry::JsonLinesWriter>, String)>,
    tokens: Vec<ltc_telemetry::SubscriberToken>,
    started: Instant,
}

impl RunTelemetry {
    /// Installs the subscribers and strips the progress mode out of
    /// `opts` (the returned session renders it from events instead).
    fn install(events: Option<&String>, opts: &mut EngineOptions) -> Result<RunTelemetry, String> {
        let aggregator = Arc::new(ltc_telemetry::Aggregator::new());
        let mut tokens = vec![ltc_telemetry::install(aggregator.clone())];
        let writer = match events {
            Some(path) => {
                let w = Arc::new(
                    ltc_telemetry::JsonLinesWriter::create(std::path::Path::new(path))
                        .map_err(|e| format!("creating event log {path}: {e}"))?,
                );
                tokens.push(ltc_telemetry::install(w.clone()));
                Some((w, path.clone()))
            }
            None => None,
        };
        tokens.push(ltc_telemetry::install(Arc::new(ProgressSubscriber::new(opts.progress))));
        opts.progress = ProgressMode::Off;
        Ok(RunTelemetry { aggregator, writer, tokens, started: Instant::now() })
    }

    /// Flushes and uninstalls the subscribers, then prints the one-line
    /// end-of-run summary (and the event-log location, if any).
    fn finish(self) {
        ltc_telemetry::flush();
        for token in self.tokens {
            ltc_telemetry::uninstall(token);
        }
        println!(
            "summary: {} specs run, {} deduped, {} served from artifact cache in {:.1}s",
            self.aggregator.counter("scheduler.simulated"),
            self.aggregator.counter("scheduler.deduped"),
            self.aggregator.counter("scheduler.cache_hits"),
            self.started.elapsed().as_secs_f64()
        );
        if let Some((writer, path)) = &self.writer {
            println!(
                "events: {} events ({} bytes) written to {path}",
                writer.events_written(),
                writer.bytes_written()
            );
        }
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut fa = parse_figure_args(args)?;
    let telemetry = RunTelemetry::install(fa.events.as_ref(), &mut fa.opts)?;
    let mut results = ResultSet::new();
    harness::collect(&fa.figures, fa.scale, &fa.opts, &mut results).map_err(|e| e.to_string())?;
    for def in &fa.figures {
        println!("{}\n", def.title);
        println!("{}", (def.render)(fa.scale, &results));
    }
    println!("engine: {} simulated, {} from cache", results.simulated(), results.cache_hits());
    if let Some(dir) = &fa.opts.cache_dir {
        println!("artifacts: {} runs under {}", results.len(), dir.display());
    }
    telemetry.finish();
    Ok(())
}

/// Results in deterministic (spec key) order for serialized output.
fn sorted(results: &ResultSet) -> Vec<(&ltc_sim::engine::RunSpec, &ltc_sim::engine::RunResult)> {
    let mut rows: Vec<_> = results.iter().collect();
    rows.sort_by_key(|(spec, _)| spec.key());
    rows
}

fn cmd_render(args: &[String]) -> Result<(), String> {
    let fa = parse_figure_args(args)?;
    let dir = fa
        .opts
        .cache_dir
        .as_deref()
        .ok_or("render needs --out DIR (the artifact cache to read)")?;
    let mut results = ResultSet::new();
    let missing = harness::load_cached(&fa.figures, fa.scale, dir, &mut results)
        .map_err(|e| e.to_string())?;
    if !missing.is_empty() {
        let mut msg = format!(
            "{} required runs are not cached under {} (run `ltsim run --out {}` first):\n",
            missing.len(),
            dir.display(),
            dir.display()
        );
        for spec in missing.iter().take(10) {
            msg.push_str(&format!("  {}\n", spec.label()));
        }
        if missing.len() > 10 {
            msg.push_str(&format!("  ... and {} more\n", missing.len() - 10));
        }
        return Err(msg);
    }
    match fa.format.as_str() {
        "table" => {
            for def in &fa.figures {
                println!("{}\n", def.title);
                println!("{}", (def.render)(fa.scale, &results));
            }
        }
        "json" => {
            for (spec, result) in sorted(&results) {
                println!("{}", artifact::json_line(spec, result));
            }
        }
        "csv" => print!("{}", artifact::to_csv(sorted(&results))),
        _ => unreachable!("validated in parse_figure_args"),
    }
    Ok(())
}

/// Default summary budget for `ltsim stream` and the `sketch-dbcp`
/// predictor shorthand: 256 KiB — 1/8 of the exact DBCP table's nominal
/// 2 MB, a mid-ladder point of the `sketch` figure. (That figure's
/// *headline* point is 1.5 MiB, 1/8 of the exact table's resident
/// bytes — see `ltc_bench::figures::sketch::HEADLINE_BUDGET`.)
const DEFAULT_STREAM_BUDGET: u64 = 256 << 10;

/// Smallest accepted `--budget`: below this the summaries cannot hold a
/// single set of keys and construction would panic mid-run.
const MIN_STREAM_BUDGET: u64 = 4 << 10;

/// Parses a byte count with an optional `k`/`m` suffix (`64k`, `1M`).
fn parse_bytes(raw: &str) -> Result<u64, String> {
    let lower = raw.to_ascii_lowercase();
    let (digits, shift) = match lower.strip_suffix(['k', 'm']) {
        Some(d) if lower.ends_with('k') => (d, 10),
        Some(d) => (d, 20),
        None => (lower.as_str(), 0),
    };
    digits
        .parse::<u64>()
        .ok()
        .filter(|&n| n > 0)
        .map(|n| n << shift)
        .ok_or_else(|| format!("bad byte count: {raw}"))
}

/// Largest accepted `--segments` — a sanity cap on fan-out (the
/// scheduler would happily queue thousands of slices), not an accuracy
/// guarantee: whether a slice outlasts the hierarchy warm-up depends on
/// `--accesses / --segments`, so short traces can go cold-boundary
/// noisy well below this cap (see EXPERIMENTS.md "Segmented
/// streaming").
const MAX_STREAM_SEGMENTS: u32 = 256;

/// `ltsim stream`: one-pass bounded-memory miss analysis through the
/// engine. Each benchmark becomes one `RunSpec` (mode `stream`, budget in
/// the key), so runs dedupe against each other and the artifact cache and
/// execute on any backend. With `--segments N` (N > 1) each benchmark
/// becomes a `stream-segmented` parent spec instead: the scheduler fans
/// its N per-segment children out across the selected backend and merges
/// their partial summaries into one report.
fn cmd_stream(args: &[String]) -> Result<(), String> {
    let target = args.first().ok_or("stream needs a benchmark name (or `all`)")?;
    let benchmarks: Vec<&'static str> = if target == "all" {
        suite::benchmarks().iter().map(|e| e.name).collect()
    } else {
        vec![suite::by_name(target).ok_or_else(|| format!("unknown benchmark: {target}"))?.name]
    };
    let mut budget = DEFAULT_STREAM_BUDGET;
    let mut segments: u32 = 1;
    let mut accesses: u64 = 2_000_000;
    let mut seed: u64 = 1;
    let mut opts =
        EngineOptions { threads: 4, fault: FaultPolicy::from_env(), ..EngineOptions::default() };
    let mut events: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        if parse_engine_flag(a, &mut it, &mut opts, &mut events)? {
            continue;
        }
        match a.as_str() {
            "--budget" => budget = parse_bytes(it.next().ok_or("--budget needs a byte count")?)?,
            "--segments" => {
                segments = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n: &u32| (1..=MAX_STREAM_SEGMENTS).contains(n))
                    .ok_or(format!("--segments needs a number in 1..={MAX_STREAM_SEGMENTS}"))?;
            }
            "--accesses" => {
                accesses = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--accesses needs a positive number")?;
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).ok_or("--seed needs a number")?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if budget < MIN_STREAM_BUDGET {
        return Err(format!("--budget must be at least {MIN_STREAM_BUDGET} bytes (got {budget})"));
    }

    let specs: Vec<RunSpec> = benchmarks
        .iter()
        .map(|b| {
            if segments > 1 {
                RunSpec::stream_segmented(b, budget, segments, accesses, seed)
            } else {
                RunSpec::stream(b, budget, accesses, seed)
            }
        })
        .collect();
    let telemetry = RunTelemetry::install(events.as_ref(), &mut opts)?;
    let mut sched = ltc_sim::engine::Scheduler::new();
    sched.request_all(specs.iter().cloned());
    let mut results = ResultSet::new();
    sched.execute_into(&mut results, &opts).map_err(|e| e.to_string())?;

    for spec in &specs {
        let r = results.stream(spec);
        println!("benchmark        {}", spec.benchmark);
        if segments > 1 {
            println!("segments         {segments} (parallel workers, summaries merged)");
        }
        println!("accesses         {}", r.accesses);
        println!("L1D misses       {} ({})", r.misses, pct1(r.miss_rate()));
        println!(
            "summary memory   {} of {} budget{}",
            ltc_sim::report::bytes(r.memory_bytes),
            ltc_sim::report::bytes(r.budget_bytes),
            if segments > 1 { " (max per worker)" } else { "" }
        );
        println!("error bound      ±{} misses (ε·N)", r.error_bound);
        let mut heavy = Table::new(vec!["heavy-hitter line", "est. misses", "overestimate ≤"]);
        for h in &r.heavy {
            heavy.row(vec![
                format!("{:#012x}", h.line),
                h.estimate.to_string(),
                h.overestimate.to_string(),
            ]);
        }
        print!("{}", heavy.render());
        let mut pairs = Table::new(vec!["last miss", "next miss", "est. pairs", "est. key misses"]);
        for c in &r.correlated {
            pairs.row(vec![
                format!("{:#012x}", c.last_line),
                format!("{:#012x}", c.next_line),
                c.estimate.to_string(),
                c.key_estimate.to_string(),
            ]);
        }
        print!("{}", pairs.render());
        println!();
    }
    println!("engine: {} simulated, {} from cache", results.simulated(), results.cache_hits());
    telemetry.finish();
    Ok(())
}

/// `ltsim bench`: time the hot-path kernels and emit (or diff) a
/// `BENCH_<date>.json` perf-trajectory report — see
/// `ltc_bench::perf` and EXPERIMENTS.md "Benchmarking & perf
/// trajectory". With `--compare FILE` the run additionally diffs
/// against a committed baseline and fails when any kernel's throughput
/// drops more than `--tolerance` percent (default 10).
fn cmd_bench(args: &[String]) -> Result<(), String> {
    use ltc_bench::perf;

    let mut opts = perf::BenchOptions::default();
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tolerance = perf::DEFAULT_TOLERANCE_PCT;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.accesses = perf::QUICK_ACCESSES,
            "--accesses" => {
                opts.accesses = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .ok_or("--accesses needs a positive number")?;
            }
            "--benchmark" => {
                let name = it.next().ok_or("--benchmark needs a suite benchmark name")?;
                suite::by_name(name).ok_or_else(|| format!("unknown benchmark: {name}"))?;
                opts.benchmark = name.clone();
            }
            "--seed" => {
                opts.seed =
                    it.next().and_then(|v| v.parse().ok()).ok_or("--seed needs a number")?;
            }
            "--rounds" => {
                opts.rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--rounds needs a positive number")?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a file path")?.clone()),
            "--compare" => {
                baseline = Some(it.next().ok_or("--compare needs a baseline file")?.clone());
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .ok_or("--tolerance needs a non-negative percentage")?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }

    let report = perf::run_all(&opts);
    let mut t = Table::new(vec!["kernel", "items", "best ms", "items/sec"]);
    for r in &report.results {
        t.row(vec![
            r.name.clone(),
            r.items.to_string(),
            format!("{:.2}", r.nanos as f64 / 1e6),
            format!("{:.0}", r.per_sec),
        ]);
    }
    print!("{}", t.render());
    if let Some(tel) = &report.telemetry {
        println!(
            "telemetry overhead: {:+.2}% on coverage_baseline ({} events, {} bytes to a sink)",
            tel.overhead_pct, tel.events, tel.bytes
        );
    }

    let path = out.unwrap_or_else(|| format!("BENCH_{}.json", perf::utc_date_string()));
    std::fs::write(&path, report.to_json() + "\n").map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote {path}");

    if let Some(base_path) = baseline {
        let text = std::fs::read_to_string(&base_path)
            .map_err(|e| format!("reading baseline {base_path}: {e}"))?;
        let base = perf::BenchReport::from_json(&text)
            .map_err(|e| format!("parsing baseline {base_path}: {e}"))?;
        let deltas = perf::compare(&report, &base, tolerance);
        let mut dt = Table::new(vec!["kernel", "baseline/sec", "current/sec", "change"]);
        for d in &deltas {
            dt.row(vec![
                d.name.clone(),
                format!("{:.0}", d.baseline_per_sec),
                format!("{:.0}", d.current_per_sec),
                format!("{}{:+.1}%", if d.regressed { "REGRESSED " } else { "" }, d.change_pct),
            ]);
        }
        print!("{}", dt.render());
        let regressed: Vec<&str> =
            deltas.iter().filter(|d| d.regressed).map(|d| d.name.as_str()).collect();
        if !regressed.is_empty() {
            return Err(format!(
                "{} kernel(s) regressed more than {tolerance}% vs {base_path}: {}",
                regressed.len(),
                regressed.join(", ")
            ));
        }
        println!("no kernel regressed more than {tolerance}% vs {base_path}");
    }
    Ok(())
}

/// `ltsim events summarize <file>`: render a `--events` JSON-lines log
/// as per-phase/per-spec breakdown tables (see `ltc_bench::events`).
fn cmd_events(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("summarize") => {
            let path = args.get(1).ok_or("events summarize needs an event-log file")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            print!("{}", ltc_bench::events::summarize(&text)?);
            Ok(())
        }
        _ => Err("usage: ltsim events summarize <file>".into()),
    }
}

/// Streams this worker's telemetry to stdout as `{"event":…}` frames,
/// interleaved with (never inside) result lines: the Rust stdlib stdout
/// lock is re-entrant per thread, and the worker is single-threaded, so
/// frames written mid-`execute` land whole between protocol lines. The
/// parent remaps span ids and stamps its own worker ids on arrival.
struct WireSubscriber;

impl ltc_telemetry::Subscriber for WireSubscriber {
    fn event(&self, event: &ltc_telemetry::Event) {
        let mut out = std::io::stdout().lock();
        let _ = writeln!(out, "{}", ltc_telemetry::wire_line(event));
        let _ = out.flush();
    }
}

/// The subprocess-backend worker loop: one canonical `RunSpec` JSON line
/// per request on stdin, one `RunResult` JSON line per answer on stdout
/// (flushed per line — the parent blocks on it), until stdin closes.
/// Blank lines are ignored so the stream is easy to drive by hand.
///
/// With `LTC_TELEMETRY_WIRE` set (the parent backend sets it whenever
/// telemetry is enabled on its side), the worker also installs a
/// [`WireSubscriber`] and wraps each execution in a `worker.spec` span,
/// so child-side events — segment-restore outcomes, sketch gauges,
/// warnings — interleave into the parent's event log.
fn cmd_worker() -> Result<(), String> {
    let _wire_token = std::env::var_os(ltc_telemetry::WIRE_ENV)
        .map(|_| ltc_telemetry::install(Arc::new(WireSubscriber)));
    // Chaos-test injection (the supervising parent must recover):
    // `exit-after:<n>` dies abruptly after answering n specs,
    // `hang-before:<n>` stalls the n-th answer until the parent's
    // --spec-timeout watchdog kills us. Respawned children inherit the
    // directive, so injected faults recur for the whole batch.
    let inject = std::env::var(FAULT_INJECT_ENV).ok().as_deref().and_then(FaultInject::parse);
    let mut answered: u64 = 0;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading spec line: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let spec: RunSpec = ltc_sim::serde_json::from_str(trimmed)
            .map_err(|e| format!("bad RunSpec line `{trimmed}`: {e}"))?;
        // A version mismatch means this worker binary carries different
        // model behaviour than the dispatching parent. Answering anyway
        // would store stale-model results under the new version's cache
        // key — the exact aliasing `model_version` exists to prevent —
        // so refuse and let the parent surface the transport error.
        if spec.model_version != ltc_sim::engine::MODEL_VERSION {
            return Err(format!(
                "spec model_version {} does not match this worker's MODEL_VERSION {} \
                 (mixed ltsim builds?): {trimmed}",
                spec.model_version,
                ltc_sim::engine::MODEL_VERSION
            ));
        }
        if let Some(FaultInject::HangBefore(n)) = inject {
            if answered + 1 == n {
                // Stall until the parent's timeout watchdog kills us.
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
        }
        let span = if ltc_telemetry::enabled() {
            ltc_telemetry::span("worker.spec", vec![("label".to_string(), spec.label().into())])
        } else {
            ltc_telemetry::span("worker.spec", Vec::new())
        };
        let result = spec.execute();
        drop(span); // emits the span end (with elapsed_us) before the result line
        writeln!(out, "{}", ltc_sim::serde_json::to_string(&result))
            .and_then(|()| out.flush())
            .map_err(|e| format!("writing result line: {e}"))?;
        answered += 1;
        if let Some(FaultInject::ExitAfter(n)) = inject {
            if answered >= n {
                // Die abruptly — no EOF handshake, non-zero status —
                // exactly like a crashed worker.
                std::process::exit(17);
            }
        }
    }
    Ok(())
}
