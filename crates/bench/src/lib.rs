//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each module in [`figures`] declares the [`ltc_sim::engine::RunSpec`]s
//! one paper table or figure needs and renders the rows from the engine's
//! [`ltc_sim::engine::ResultSet`]; [`harness`] registers them all and
//! drives the deduplicating scheduler across whichever figures are
//! requested. The binaries in `src/bin/` (including the `ltsim` CLI with
//! its `plan`/`run`/`render` subcommands) print them; the Criterion
//! benches in `benches/` run the same kernels at reduced scale so
//! `cargo bench` regenerates everything.
//!
//! Absolute numbers differ from the paper (the substrate is a synthetic
//! trace simulator, not SimpleScalar/Alpha on SPEC2000 — see DESIGN.md §1);
//! the *shape* — who wins, by what factor, where crossovers fall — is the
//! reproduction target, recorded in EXPERIMENTS.md.

pub mod events;
pub mod figures;
pub mod harness;
pub mod perf;
pub mod scale;

pub use harness::FigureDef;
pub use scale::Scale;
