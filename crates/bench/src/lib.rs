//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each module in [`figures`] computes the data for one paper table or
//! figure and renders it as the same rows/series the paper reports. The
//! binaries in `src/bin/` print them; the Criterion benches in `benches/`
//! run the same kernels at reduced scale so `cargo bench` regenerates
//! everything.
//!
//! Absolute numbers differ from the paper (the substrate is a synthetic
//! trace simulator, not SimpleScalar/Alpha on SPEC2000 — see DESIGN.md §1);
//! the *shape* — who wins, by what factor, where crossovers fall — is the
//! reproduction target, recorded in EXPERIMENTS.md.

pub mod figures;
pub mod scale;

pub use scale::Scale;
