//! Criterion benches: one per paper table/figure, at reduced scale.
//!
//! `cargo bench` regenerates every experiment (the printed rows come from
//! the `src/bin/` binaries; these benches time the same kernels so the
//! harness exercises each of them end to end).

use criterion::{criterion_group, criterion_main, Criterion};
use ltc_bench::figures::*;
use ltc_bench::Scale;

fn scale() -> Scale {
    Scale::bench()
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_baseline", |b| b.iter(|| table2::run(scale())));
}

fn bench_fig02(c: &mut Criterion) {
    c.bench_function("fig02_deadtime", |b| b.iter(|| fig02::run(scale())));
}

fn bench_fig04(c: &mut Criterion) {
    // One representative point of the sweep per iteration.
    use ltc_sim::experiment::{run_coverage, PredictorKind};
    c.bench_function("fig04_dbcp_size_point", |b| {
        b.iter(|| {
            run_coverage("galgel", PredictorKind::DbcpBytes(2 << 20), scale().coverage_accesses, 1)
        })
    });
}

fn bench_fig06(c: &mut Criterion) {
    use ltc_sim::analysis::CorrelationAnalysis;
    use ltc_sim::trace::suite;
    c.bench_function("fig06_correlation_point", |b| {
        b.iter(|| {
            let mut src = suite::by_name("galgel").unwrap().build(1);
            CorrelationAnalysis::run(&mut src, scale().coverage_accesses)
        })
    });
}

fn bench_fig07(c: &mut Criterion) {
    use ltc_sim::analysis::LastTouchOrderAnalysis;
    use ltc_sim::trace::suite;
    c.bench_function("fig07_ordering_point", |b| {
        b.iter(|| {
            let mut src = suite::by_name("galgel").unwrap().build(1);
            LastTouchOrderAnalysis::run(&mut src, scale().coverage_accesses)
        })
    });
}

fn bench_fig08(c: &mut Criterion) {
    use ltc_sim::experiment::{run_coverage, PredictorKind};
    c.bench_function("fig08_coverage_point", |b| {
        b.iter(|| run_coverage("galgel", PredictorKind::LtCords, scale().coverage_accesses, 1))
    });
}

fn bench_fig09(c: &mut Criterion) {
    use ltc_sim::core::LtCordsConfig;
    use ltc_sim::experiment::{run_coverage, PredictorKind};
    c.bench_function("fig09_sigcache_point", |b| {
        b.iter(|| {
            run_coverage(
                "galgel",
                PredictorKind::LtCordsWith(LtCordsConfig::fig9_sweep(4096)),
                scale().coverage_accesses,
                1,
            )
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    use ltc_sim::core::LtCordsConfig;
    use ltc_sim::experiment::{run_coverage, PredictorKind};
    c.bench_function("fig10_offchip_point", |b| {
        b.iter(|| {
            run_coverage(
                "art",
                PredictorKind::LtCordsWith(LtCordsConfig::fig10_sweep(2 << 20)),
                scale().coverage_accesses,
                1,
            )
        })
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_multiprog_bar", |b| {
        b.iter(|| fig11::coverage_bar("galgel", Some("gzip"), scale().coverage_accesses))
    });
}

fn bench_table3(c: &mut Criterion) {
    use ltc_sim::experiment::{run_timing, PredictorKind};
    c.bench_function("table3_speedup_point", |b| {
        b.iter(|| run_timing("mcf", PredictorKind::LtCords, scale().timing_accesses, 1))
    });
}

fn bench_fig12(c: &mut Criterion) {
    use ltc_sim::experiment::{run_timing, PredictorKind};
    c.bench_function("fig12_bandwidth_point", |b| {
        b.iter(|| run_timing("swim", PredictorKind::LtCords, scale().timing_accesses, 1).bandwidth)
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_fig02, bench_fig04, bench_fig06, bench_fig07,
              bench_fig08, bench_fig09, bench_fig10, bench_fig11, bench_table3,
              bench_fig12
}
criterion_main!(figures);
