//! Microbenchmarks of the core data structures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ltc_sim::cache::{Cache, CacheConfig};
use ltc_sim::core::{LtCords, LtCordsConfig, SignatureCache};
use ltc_sim::lasttouch::{HistoryTable, Signature, SignatureRecord, SignatureScheme};
use ltc_sim::predictors::Prefetcher;
use ltc_sim::trace::{suite, AccessKind, Addr, Pc, TraceSource};

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("l1_access_10k", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
                cache.access(Addr((i >> 30) & 0xff_ffc0), AccessKind::Load);
            }
        })
    });
    group.finish();
}

fn bench_signature_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_cache");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("insert_lookup_10k", |b| {
        let mut sc = SignatureCache::new(32 << 10, 2);
        let ptr = ltc_sim::core::storage::SigPtr { frame: 0, offset: 0 };
        b.iter(|| {
            for i in 0..10_000u32 {
                sc.insert(SignatureRecord::new(Signature(i * 2654435761), Addr(64)), ptr);
                let _ = sc.lookup(Signature(i.wrapping_mul(40503)));
            }
        })
    });
    group.finish();
}

fn bench_history_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("history");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("record_access_10k", |b| {
        let mut h = HistoryTable::new(CacheConfig::l1d(), SignatureScheme::trace_mode());
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                i = i.wrapping_add(0x9e3779b97f4a7c15);
                let _ = h.record_access(Addr((i >> 20) & 0xfff_ffc0), Pc(0x400));
            }
        })
    });
    group.finish();
}

fn bench_generator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.throughput(Throughput::Elements(100_000));
    for name in ["swim", "mcf", "gcc"] {
        group.bench_function(format!("{name}_100k"), |b| {
            b.iter(|| {
                let mut src = suite::by_name(name).unwrap().build(1);
                let mut sink = 0u64;
                for _ in 0..100_000 {
                    sink ^= src.next_access().unwrap().addr.0;
                }
                sink
            })
        });
    }
    group.finish();
}

fn bench_ltcords_pipeline(c: &mut Criterion) {
    use ltc_sim::cache::{Hierarchy, HierarchyConfig};
    let mut group = c.benchmark_group("ltcords");
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("on_access_50k", |b| {
        b.iter(|| {
            let mut src = suite::by_name("galgel").unwrap().build(1);
            let mut lt = LtCords::new(LtCordsConfig::paper());
            let mut h = Hierarchy::new(HierarchyConfig::paper());
            let mut out = Vec::new();
            for _ in 0..50_000 {
                let a = src.next_access().unwrap();
                let o = h.access(a.addr, a.kind);
                lt.on_access(&a, &o, &mut out);
                out.clear();
            }
            lt.metrics().signatures_recorded
        })
    });
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_cache_access, bench_signature_cache, bench_history_table,
              bench_generator_throughput, bench_ltcords_pipeline
}
criterion_main!(micro);
