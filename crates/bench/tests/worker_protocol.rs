//! End-to-end checks of the `ltsim worker` protocol and of three-way
//! backend parity (threads vs sharded vs subprocess), using the real
//! built binary via `CARGO_BIN_EXE_ltsim`.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use ltc_bench::harness;
use ltc_bench::Scale;
use ltc_sim::engine::{BackendKind, EngineOptions, ResultSet, RunResult, RunSpec, Scheduler};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::serde_json;

fn worker_command() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_ltsim").to_string(), "worker".to_string()]
}

/// `ltsim worker` round-trips `RunSpec` JSON lines from stdin to
/// `RunResult` JSON lines on stdout — one answer per request, matching
/// in-process execution exactly — and exits cleanly when stdin closes.
#[test]
fn worker_round_trips_spec_lines() {
    let specs = [
        RunSpec::coverage("gzip", PredictorKind::Baseline, 4_000, 1),
        RunSpec::timing("mesa", PredictorKind::LtCords, 3_000, 2),
        RunSpec::dead_time("swim", 4_000, 1),
        RunSpec::stream("mcf", 64 << 10, 4_000, 1),
        // A segment child: the partial sketch summaries travel back over
        // the protocol as a `stream-partial` result line.
        RunSpec::stream_segment("mcf", 64 << 10, 4, 1, 4_000, 1),
    ];
    let cmd = worker_command();
    let mut child = Command::new(&cmd[0])
        .args(&cmd[1..])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn ltsim worker");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());

    for spec in &specs {
        writeln!(stdin, "{}", spec.key()).unwrap();
        stdin.flush().unwrap();
        let mut line = String::new();
        assert!(stdout.read_line(&mut line).unwrap() > 0, "worker must answer every spec");
        let result: RunResult = serde_json::from_str(line.trim()).expect("RunResult JSON line");
        assert_eq!(result, spec.execute(), "worker diverged on {}", spec.key());
    }

    drop(stdin);
    let status = child.wait().unwrap();
    assert!(status.success(), "worker must exit cleanly at EOF, got {status}");
}

/// A malformed spec line is a protocol error: the worker reports it on
/// stderr and exits non-zero instead of guessing.
#[test]
fn worker_rejects_garbage_lines() {
    let cmd = worker_command();
    let mut child = Command::new(&cmd[0])
        .args(&cmd[1..])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ltsim worker");
    child.stdin.take().unwrap().write_all(b"this is not a spec\n").unwrap();
    let status = child.wait().unwrap();
    assert!(!status.success(), "garbage must not be answered");
}

/// A spec from a different model version is refused, not simulated: a
/// worker built from other model code answering under the new version's
/// cache key would be exactly the stale-model aliasing `model_version`
/// exists to prevent.
#[test]
fn worker_rejects_model_version_mismatch() {
    let mut spec = RunSpec::coverage("gzip", PredictorKind::Baseline, 4_000, 1);
    spec.model_version += 1;
    let cmd = worker_command();
    let mut child = Command::new(&cmd[0])
        .args(&cmd[1..])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ltsim worker");
    writeln!(child.stdin.take().unwrap(), "{}", spec.key()).unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(!output.status.success(), "mismatched model_version must not be answered");
    assert!(output.stdout.is_empty(), "no result line may be emitted");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("model_version"), "diagnostic should name the field: {stderr}");
}

/// The same plan through all three backends yields identical `ResultSet`s
/// and, therefore, byte-identical rendered tables.
#[test]
fn all_three_backends_render_identical_tables() {
    let scale = Scale { coverage_accesses: 20_000, timing_accesses: 10_000, threads: 3 };
    let figures = [harness::by_name("fig08").unwrap(), harness::by_name("table2").unwrap()];
    let backends = [
        BackendKind::Threads,
        BackendKind::Sharded,
        BackendKind::Subprocess { command: worker_command() },
    ];

    let mut rendered: Vec<Vec<String>> = Vec::new();
    let mut simulated = Vec::new();
    for backend in backends {
        let opts = EngineOptions::in_memory(scale.threads).with_backend(backend);
        let mut results = ResultSet::new();
        harness::collect(&figures, scale, &opts, &mut results).expect("backend execution");
        simulated.push(results.simulated());
        rendered.push(figures.iter().map(|def| (def.render)(scale, &results)).collect());
    }
    assert_eq!(simulated[0], simulated[1]);
    assert_eq!(simulated[1], simulated[2]);
    assert_eq!(rendered[0], rendered[1], "threads vs sharded tables differ");
    assert_eq!(rendered[1], rendered[2], "sharded vs subprocess tables differ");
}

/// Segmented streaming across all three backends: the per-segment
/// partial summaries — serialized sketch state — round-trip over the
/// worker protocol, and the merged reports are byte-for-byte identical
/// canonical JSON whichever backend ran the segments (completing the
/// parity matrix started in `crates/sim/tests/backends.rs`).
#[test]
fn segmented_stream_reports_identical_across_all_backends() {
    let specs = [
        RunSpec::stream_segmented("mcf", 64 << 10, 4, 8_000, 1),
        RunSpec::stream_segmented("swim", 64 << 10, 3, 8_000, 1),
    ];
    let backends = [
        BackendKind::Threads,
        BackendKind::Sharded,
        BackendKind::Subprocess { command: worker_command() },
    ];
    let mut rendered: Vec<Vec<String>> = Vec::new();
    for backend in backends {
        let mut sched = Scheduler::new();
        sched.request_all(specs.iter().cloned());
        let results = sched.execute(&EngineOptions::in_memory(3).with_backend(backend)).unwrap();
        assert_eq!(results.simulated(), 7, "4 + 3 segment children, parents reduced");
        rendered.push(
            specs
                .iter()
                .map(|spec| serde_json::to_string(results.get(spec).expect("merged report")))
                .collect(),
        );
    }
    assert_eq!(rendered[0], rendered[1], "threads vs sharded merged reports differ");
    assert_eq!(rendered[1], rendered[2], "sharded vs subprocess merged reports differ");
}

/// Shape checking survives the worker protocol: partial summaries that
/// crossed the subprocess boundary still carry their construction shape,
/// so merging two workers' partials from differently-configured runs is
/// the same typed `MergeError` it would be in process — not a panic, not
/// silent corruption.
#[test]
fn worker_partials_keep_their_shape_across_the_protocol() {
    let small = RunSpec::stream_segment("mcf", 64 << 10, 2, 0, 4_000, 1);
    let large = RunSpec::stream_segment("mcf", 128 << 10, 2, 1, 4_000, 1);
    let opts = EngineOptions::in_memory(2)
        .with_backend(BackendKind::Subprocess { command: worker_command() });
    let mut sched = Scheduler::new();
    sched.request(small.clone());
    sched.request(large.clone());
    let results = sched.execute(&opts).unwrap();
    let a = results.stream_partial(&small).clone();
    let b = results.stream_partial(&large).clone();
    let err = ltc_sim::analysis::merge_partials(&[a, b]).unwrap_err();
    assert!(
        matches!(err, ltc_sim::stream::MergeError::Shape { .. }),
        "expected a typed shape error, got {err}"
    );
    assert!(err.to_string().contains("cannot merge"), "{err}");
}

/// The subprocess transport honours the scheduler contract end to end:
/// dedup before dispatch, results keyed back to the right specs.
#[test]
fn subprocess_backend_dedupes_and_keys_results() {
    let mut sched = Scheduler::new();
    let shared = RunSpec::coverage("gzip", PredictorKind::Baseline, 4_000, 1);
    sched.request(shared.clone());
    sched.request(RunSpec::coverage("art", PredictorKind::Baseline, 4_000, 1));
    sched.request(shared.clone());
    let opts = EngineOptions::in_memory(2)
        .with_backend(BackendKind::Subprocess { command: worker_command() });
    let results = sched.execute(&opts).unwrap();
    assert_eq!(results.simulated(), 2, "duplicates must collapse before dispatch");
    assert!(results.coverage(&shared).base_l1_misses > 0);
}
