//! The golden-report regression wall.
//!
//! Canonical-JSON snapshots of representative reports — a `fig08`-style
//! coverage slice, a `table2`-style baseline slice, and one `stream`
//! report — are committed under `tests/golden/` and asserted
//! **byte-identical** on every run. The snapshots were captured before
//! the hot-path optimizations (batched trace decode, mask/shift cache
//! geometry, passive-shadow elision), so any behavioural drift those
//! changes introduce fails here: a speedup must be provably
//! behaviour-preserving.
//!
//! Golden lines serialize `{label, result}` — deliberately *not* the
//! full spec key — so a `MODEL_VERSION` bump alone does not invalidate
//! them: the wall asserts *results*, and `MODEL_VERSION` bumps exactly
//! when results legitimately change. When that happens (e.g. the sketch
//! `HashKind` default changed under MODEL_VERSION 4), regenerate the
//! affected snapshot in the same PR as the bump:
//!
//! ```text
//! LTC_UPDATE_GOLDEN=1 cargo test -p ltc_bench --test golden_reports
//! ```
//!
//! and say so in the commit. A regeneration without a version bump (or
//! vice versa) is a review red flag — see EXPERIMENTS.md "Benchmarking
//! & perf trajectory".

use std::path::PathBuf;

use ltc_sim::engine::{BackendKind, EngineOptions, ResultSet, RunSpec, Scheduler};
use ltc_sim::experiment::PredictorKind;
use ltc_sim::serde_json;
use serde::{Serialize, Value};

fn worker_command() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_ltsim").to_string(), "worker".to_string()]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// The fig08-style slice: two benchmarks × two predictors, coverage.
fn fig08_specs() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for bench in ["gcc", "mcf"] {
        for kind in [PredictorKind::LtCords, PredictorKind::DbcpUnlimited] {
            specs.push(RunSpec::coverage(bench, kind, 30_000, 1));
        }
    }
    specs
}

/// The table2-style slice: the baseline machine, coverage + timing.
fn table2_specs() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for bench in ["gcc", "mcf", "art"] {
        specs.push(RunSpec::coverage(bench, PredictorKind::Baseline, 30_000, 1));
        specs.push(RunSpec::timing(bench, PredictorKind::Baseline, 15_000, 1));
    }
    specs
}

/// One stream/sketch report (the bounded-memory analysis path).
fn stream_specs() -> Vec<RunSpec> {
    vec![RunSpec::stream("mcf", 64 << 10, 60_000, 1)]
}

fn execute(specs: &[RunSpec], backend: BackendKind) -> ResultSet {
    let mut sched = Scheduler::new();
    sched.request_all(specs.iter().cloned());
    sched.execute(&EngineOptions::in_memory(3).with_backend(backend)).expect("engine execution")
}

/// Canonical serialized form of a spec set's results: one
/// `{"label":…,"result":…}` JSON line per spec, in the given order.
/// Labels (not full spec keys) keep the snapshot stable across
/// `MODEL_VERSION` bumps — see the module docs for the invalidation
/// rule.
fn canonical(specs: &[RunSpec], results: &ResultSet) -> String {
    let mut out = String::new();
    for spec in specs {
        let result = results.get(spec).unwrap_or_else(|| panic!("missing {}", spec.label()));
        let line = Value::Map(vec![
            ("label".to_string(), Value::Str(spec.label())),
            ("result".to_string(), result.to_value()),
        ]);
        out.push_str(&serde_json::to_string(&line));
        out.push('\n');
    }
    out
}

/// Asserts `specs`' results (threads backend) match the committed
/// golden byte for byte, or rewrites it under `LTC_UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, specs: &[RunSpec]) {
    let results = execute(specs, BackendKind::Threads);
    let actual = canonical(specs, &results);
    let path = golden_path(name);
    if std::env::var_os("LTC_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); regenerate with LTC_UPDATE_GOLDEN=1 \
             cargo test -p ltc_bench --test golden_reports",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden report {name} drifted — a kernel change altered simulation results. \
         If the change is intentional, bump MODEL_VERSION and regenerate with \
         LTC_UPDATE_GOLDEN=1 (see tests/golden_reports.rs module docs)."
    );
}

#[test]
fn fig08_coverage_matches_golden() {
    assert_golden("fig08_coverage.json", &fig08_specs());
}

#[test]
fn table2_baseline_matches_golden() {
    assert_golden("table2_baseline.json", &table2_specs());
}

#[test]
fn stream_report_matches_golden() {
    assert_golden("stream.json", &stream_specs());
}

/// Every golden spec set serializes byte-identically whichever backend
/// executed it — threads, sharded, or subprocess workers over the JSON
/// protocol. Combined with the snapshot asserts above, this pins the
/// whole matrix: optimized kernels × three backends × committed bytes.
#[test]
fn golden_reports_identical_across_all_backends() {
    let sets: Vec<Vec<RunSpec>> = vec![fig08_specs(), table2_specs(), stream_specs()];
    for specs in &sets {
        let reference = canonical(specs, &execute(specs, BackendKind::Threads));
        let sharded = canonical(specs, &execute(specs, BackendKind::Sharded));
        assert_eq!(reference, sharded, "threads vs sharded bytes differ for {specs:?}");
        let subprocess = canonical(
            specs,
            &execute(specs, BackendKind::Subprocess { command: worker_command() }),
        );
        assert_eq!(reference, subprocess, "threads vs subprocess bytes differ for {specs:?}");
    }
}
