//! End-to-end fault-tolerance checks against the real built binary:
//! a chaos run (`LTC_FAULT_INJECT=exit-after:N`) must complete through
//! supervision with artifacts byte-identical to a fault-free pass, and
//! a hung worker must surface as a typed timeout error once the retry
//! budget is spent — never a panic, never silent truncation.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::process::Command;

fn ltsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ltsim"))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ltc-fault-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The artifact files under `dir` as `name -> bytes` (deterministic
/// order so two runs compare directly).
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("artifact dir") {
        let entry = entry.unwrap();
        if entry.path().extension().is_some_and(|e| e == "json") {
            out.insert(
                entry.file_name().to_string_lossy().into_owned(),
                fs::read(entry.path()).unwrap(),
            );
        }
    }
    out
}

/// Stdout with the timing-dependent trailer lines (`summary: ... in
/// 1.2s`, `events: ... bytes`) stripped; everything else is
/// deterministic simulation output.
fn stable_stdout(raw: &[u8]) -> String {
    String::from_utf8_lossy(raw)
        .lines()
        .filter(|l| !l.starts_with("summary:") && !l.starts_with("events:"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Workers killed mid-batch (`exit-after:2` makes every child die after
/// its second answer) are respawned and their in-flight specs requeued:
/// the run still succeeds, prints the same tables, and stores
/// byte-identical artifacts — the paper's figures cannot depend on
/// whether the batch hit faults.
#[test]
fn chaos_run_matches_a_fault_free_run_byte_for_byte() {
    let clean_dir = tmp_dir("clean");
    let fault_dir = tmp_dir("fault");
    let events_path = tmp_dir("events-log").with_extension("jsonl");
    let stream_args = |dir: &Path| {
        vec![
            "stream".to_string(),
            "all".to_string(),
            "--accesses".to_string(),
            "6000".to_string(),
            "--threads".to_string(),
            "2".to_string(),
            "--backend".to_string(),
            "subprocess".to_string(),
            "--progress".to_string(),
            "off".to_string(),
            "--out".to_string(),
            dir.display().to_string(),
        ]
    };

    let clean = ltsim()
        .args(stream_args(&clean_dir))
        .env_remove("LTC_FAULT_INJECT")
        .output()
        .expect("run ltsim stream");
    assert!(clean.status.success(), "clean run failed: {}", String::from_utf8_lossy(&clean.stderr));

    let mut fault_args = stream_args(&fault_dir);
    fault_args.extend(["--events".to_string(), events_path.display().to_string()]);
    // The env propagates to the spawned `ltsim worker` children; each
    // one exits abruptly (status 17, no EOF handshake) after answering
    // two specs, so the batch only finishes through respawn + requeue.
    let fault = ltsim()
        .args(fault_args)
        .env("LTC_FAULT_INJECT", "exit-after:2")
        .output()
        .expect("run ltsim stream under fault injection");
    assert!(
        fault.status.success(),
        "fault-injected run failed: {}",
        String::from_utf8_lossy(&fault.stderr)
    );

    assert_eq!(
        stable_stdout(&clean.stdout),
        stable_stdout(&fault.stdout),
        "tables must not depend on faults"
    );
    let clean_artifacts = artifacts(&clean_dir);
    let fault_artifacts = artifacts(&fault_dir);
    assert!(!clean_artifacts.is_empty(), "the run must store artifacts");
    assert_eq!(clean_artifacts, fault_artifacts, "artifacts must be byte-identical");
    // No staging leftovers: every tmp file was renamed or cleaned up.
    let leftovers: Vec<_> = fs::read_dir(&fault_dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "stale staging files: {leftovers:?}");

    // The fault paths left their telemetry trail, and `ltsim events
    // summarize` renders it as the fault histogram.
    let log = fs::read_to_string(&events_path).expect("event log");
    assert!(log.contains("\"worker.respawn\""), "respawns must be recorded");
    assert!(log.contains("\"spec.retry\""), "retries must be recorded");
    let summary = ltsim()
        .args(["events", "summarize", &events_path.display().to_string()])
        .output()
        .expect("run ltsim events summarize");
    assert!(summary.status.success());
    let text = String::from_utf8_lossy(&summary.stdout).into_owned();
    assert!(text.contains("worker.respawn"), "fault histogram missing:\n{text}");
    assert!(text.contains("spec.retry"), "fault histogram missing:\n{text}");

    let _ = fs::remove_dir_all(&clean_dir);
    let _ = fs::remove_dir_all(&fault_dir);
    let _ = fs::remove_file(&events_path);
}

/// A worker that hangs forever trips the `--spec-timeout` watchdog; with
/// the retry budget exhausted the run fails with a typed timeout error
/// naming the spec — instead of blocking the batch indefinitely.
#[test]
fn hung_worker_times_out_with_a_typed_error() {
    let out_dir = tmp_dir("hang");
    let output = ltsim()
        .args([
            "stream",
            "gzip",
            "--accesses",
            "4000",
            "--threads",
            "1",
            "--backend",
            "subprocess",
            "--progress",
            "off",
            "--spec-timeout",
            "0.5",
            "--retries",
            "0",
            "--out",
            &out_dir.display().to_string(),
        ])
        .env("LTC_FAULT_INJECT", "hang-before:1")
        .output()
        .expect("run ltsim stream with a hung worker");
    assert!(!output.status.success(), "a hung batch must fail, not hang");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("timed out"), "error must name the timeout: {stderr}");
    assert!(stderr.contains("gzip"), "error must name the lost spec: {stderr}");
    let _ = fs::remove_dir_all(&out_dir);
}

/// The worst chaos schedule still converges with a zero retry budget:
/// before a spec's last permitted attempt the supervisor recycles to a
/// fresh child (final-attempt isolation), and a fresh `exit-after:1`
/// child always answers once before dying — so serial worker deaths
/// between every pair of specs cannot exhaust the budget.
#[test]
fn final_attempt_isolation_converges_with_zero_retries() {
    let out_dir = tmp_dir("budget");
    let output = ltsim()
        .args([
            "stream",
            "gzip",
            "--accesses",
            "4000",
            "--segments",
            "3",
            "--threads",
            "1",
            "--backend",
            "subprocess",
            "--progress",
            "off",
            "--retries",
            "0",
            "--out",
            &out_dir.display().to_string(),
        ])
        // Every child dies right after its first answer: each of the
        // three segment specs costs one respawn, none gets a retry.
        .env("LTC_FAULT_INJECT", "exit-after:1")
        .output()
        .expect("run ltsim stream with a zero retry budget");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "isolation must carry the batch: {stderr}");
    assert!(!stderr.contains("panicked"), "no panics on the fault path: {stderr}");
    assert!(!artifacts(&out_dir).is_empty(), "the run must store artifacts");
    let _ = fs::remove_dir_all(&out_dir);
}
