//! Property-based invariants of the LT-cords streaming machinery.

use ltc_lasttouch::{Signature, SignatureRecord};
use ltc_trace::Addr;
use ltcords::storage::SigPtr;
use ltcords::{SequenceStorage, SignatureCache};
use proptest::prelude::*;

fn rec(sig: u32) -> SignatureRecord {
    SignatureRecord::new(Signature(sig), Addr(u64::from(sig) * 64))
}

proptest! {
    /// Streaming returns exactly what was appended, in order, for any
    /// append sequence that fits one fragment.
    #[test]
    fn storage_round_trips_in_order(sigs in prop::collection::vec(any::<u32>(), 1..64)) {
        let mut s = SequenceStorage::new(1, 1024, 8);
        let ptrs: Vec<SigPtr> = sigs.iter().map(|&v| s.append(rec(v))).collect();
        // Everything lands in frame 0 (one frame), offsets 0..n.
        for (i, p) in ptrs.iter().enumerate() {
            prop_assert_eq!(p.offset as usize, i);
        }
        let read = s.stream(0, 0, sigs.len() as u32);
        prop_assert_eq!(read.len(), sigs.len());
        for (i, (ptr, r)) in read.iter().enumerate() {
            prop_assert_eq!(ptr.offset as usize, i);
            prop_assert_eq!(r.signature, Signature(sigs[i]));
        }
    }

    /// Appended counts and byte accounting are exact regardless of frame
    /// collisions.
    #[test]
    fn storage_accounting_is_exact(
        sigs in prop::collection::vec(any::<u32>(), 0..300),
        frag_exp in 1u32..6,
    ) {
        let mut s = SequenceStorage::new(8, 1usize << frag_exp, 4);
        for &v in &sigs {
            s.append(rec(v));
        }
        prop_assert_eq!(s.appended(), sigs.len() as u64);
        prop_assert_eq!(s.write_bytes(), sigs.len() as u64 * 5);
    }

    /// The signature cache never exceeds its capacity and never loses the
    /// most recently inserted signature.
    #[test]
    fn sigcache_respects_capacity(sigs in prop::collection::vec(any::<u32>(), 1..500)) {
        let mut c = SignatureCache::new(64, 2);
        for (i, &v) in sigs.iter().enumerate() {
            c.insert(rec(v), SigPtr { frame: 0, offset: i as u32 });
            prop_assert!(c.len() <= 64);
            prop_assert!(
                c.lookup(Signature(v)).is_some(),
                "just-inserted signature must be resident"
            );
        }
    }

    /// Confidence write-back through a pointer reaches exactly the written
    /// record and no other.
    #[test]
    fn confidence_updates_are_pointwise(
        n in 2usize..64,
        target in 0usize..64,
        correct in any::<bool>(),
    ) {
        let target = target % n;
        let mut s = SequenceStorage::new(1, 1024, 8);
        let ptrs: Vec<SigPtr> = (0..n as u32).map(|i| s.append(rec(i))).collect();
        s.update_confidence(ptrs[target], correct);
        for (i, p) in ptrs.iter().enumerate() {
            let conf = s.confidence_at(*p).expect("record exists");
            if i == target {
                prop_assert_eq!(conf.value(), if correct { 3 } else { 1 });
            } else {
                prop_assert_eq!(conf.value(), 2, "untouched record {} changed", i);
            }
        }
    }

    /// `is_head` holds exactly for registered heads of non-empty fragments.
    #[test]
    fn heads_identify_their_fragments(count in 1usize..200) {
        let frag = 16;
        let lookahead = 4;
        let mut s = SequenceStorage::new(64, frag, lookahead);
        let mut appended = Vec::new();
        for i in 0..count as u32 {
            s.append(rec(i));
            appended.push(Signature(i));
        }
        // The head of fragment k (starting at index k*frag) is the signature
        // `lookahead` before it (clamped to the first signature).
        let fragments = count.div_ceil(frag);
        for k in 0..fragments {
            let start = k * frag;
            let head = if start >= lookahead { appended[start - lookahead] } else { appended[0] };
            // A collision may have overwritten the frame since; only assert
            // when the frame still claims this head.
            let frame = s.frame_of(head);
            if s.head_of(frame) == Some(head) {
                prop_assert!(s.is_head(head));
            }
        }
    }
}
