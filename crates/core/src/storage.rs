//! Off-chip sequence storage: frames, fragments and head signatures.

use std::collections::{HashMap, VecDeque};

use ltc_lasttouch::{Confidence, Signature, SignatureRecord};

/// Pointer to a signature's location in off-chip storage (the 25-bit
/// "pointer to itself" of Section 5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SigPtr {
    /// Frame index.
    pub frame: u32,
    /// Offset within the fragment.
    pub offset: u32,
}

#[derive(Debug, Clone, Default)]
struct Frame {
    /// Head signature that activates streaming of this fragment.
    head: Option<Signature>,
    /// The stored fragment, in eviction order. Overwrites are progressive
    /// (DRAM is rewritten in place, signature by signature), so entries past
    /// the write position still hold the previous tenant's data. When the
    /// *same* sequence recurs — the common case — that stale tail is
    /// byte-identical to what is being rewritten, which is exactly what lets
    /// a stream run ahead of the re-recording.
    sigs: Vec<SignatureRecord>,
    /// Next write position within the fragment.
    write_pos: usize,
    /// Generation counter: bumped every time the frame is re-opened.
    generation: u64,
}

/// The off-chip (main-memory) signature sequence store (Section 4.2).
///
/// Signatures are appended strictly in eviction order. The store chops the
/// global sequence into fixed-length *fragments*; each fragment is keyed by
/// a *head signature* — the signature that preceded the fragment's first
/// entry by `head_lookahead` positions — and lives in the frame selected by
/// the head's low-order bits, like a direct-mapped cache (collisions
/// overwrite). Frames are materialized lazily so very large ("unlimited")
/// configurations cost only what they actually store.
#[derive(Debug)]
pub struct SequenceStorage {
    frames: HashMap<u32, Frame>,
    frame_mask: u32,
    fragment_len: usize,
    head_lookahead: usize,
    /// Ring of recently appended signatures (for head selection).
    recent: VecDeque<Signature>,
    /// Frame currently being appended to.
    current: Option<u32>,
    appended: u64,
    overwrites: u64,
    /// Traffic counters (bytes).
    write_bytes: u64,
    read_bytes: u64,
    confidence_bytes: u64,
}

impl SequenceStorage {
    /// Creates an empty store with `frames` frames of `fragment_len`
    /// signatures, using `head_lookahead` for head selection.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is not a power of two or any size is zero.
    pub fn new(frames: usize, fragment_len: usize, head_lookahead: usize) -> Self {
        assert!(frames.is_power_of_two(), "frame count must be a power of two");
        assert!(fragment_len > 0, "fragments must hold signatures");
        assert!(head_lookahead > 0, "head lookahead must be non-zero");
        SequenceStorage {
            frames: HashMap::new(),
            frame_mask: (frames - 1) as u32,
            fragment_len,
            head_lookahead,
            recent: VecDeque::with_capacity(head_lookahead + 1),
            current: None,
            appended: 0,
            overwrites: 0,
            write_bytes: 0,
            read_bytes: 0,
            confidence_bytes: 0,
        }
    }

    /// Total signatures appended over the run.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Fragments overwritten by frame collisions.
    pub fn overwrites(&self) -> u64 {
        self.overwrites
    }

    /// Bytes written recording sequences (5 per signature, Section 5.4).
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Bytes read streaming sequences on chip.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes spent on confidence write-backs.
    pub fn confidence_bytes(&self) -> u64 {
        self.confidence_bytes
    }

    /// Number of frames materialized so far.
    pub fn live_frames(&self) -> usize {
        self.frames.len()
    }

    /// Appends one record in eviction order, returning its location.
    pub fn append(&mut self, record: SignatureRecord) -> SigPtr {
        // Start a new fragment when none is open or the current one is full.
        let need_new = match self.current {
            None => true,
            Some(f) => {
                self.frames.get(&f).map(|fr| fr.write_pos >= self.fragment_len).unwrap_or(true)
            }
        };
        if need_new {
            // The head is the signature appended `head_lookahead` ago; early
            // in the run (or for the very first fragment) fall back to the
            // oldest signature we have, or to the incoming record itself.
            let head = self.recent.front().copied().unwrap_or(record.signature);
            let frame_idx = head.0 & self.frame_mask;
            let frame = self.frames.entry(frame_idx).or_default();
            if !frame.sigs.is_empty() {
                self.overwrites += 1;
            }
            frame.head = Some(head);
            frame.write_pos = 0;
            frame.generation += 1;
            self.current = Some(frame_idx);
        }
        let frame_idx = self.current.expect("fragment was just opened");
        let frame = self.frames.get_mut(&frame_idx).expect("current frame exists");
        let offset = frame.write_pos as u32;
        if frame.write_pos < frame.sigs.len() {
            frame.sigs[frame.write_pos] = record;
        } else {
            frame.sigs.push(record);
        }
        frame.write_pos += 1;
        self.appended += 1;
        self.write_bytes += SignatureRecord::STORAGE_BYTES;
        // Maintain the head-selection ring.
        self.recent.push_back(record.signature);
        if self.recent.len() > self.head_lookahead {
            self.recent.pop_front();
        }
        SigPtr { frame: frame_idx, offset }
    }

    /// Returns the frame index a given head signature maps to.
    #[inline]
    pub fn frame_of(&self, head: Signature) -> u32 {
        head.0 & self.frame_mask
    }

    /// Head signature registered for `frame`, if any.
    pub fn head_of(&self, frame: u32) -> Option<Signature> {
        self.frames.get(&frame).and_then(|f| f.head)
    }

    /// Whether `sig` is the head of the fragment stored in its frame.
    pub fn is_head(&self, sig: Signature) -> bool {
        self.frames
            .get(&self.frame_of(sig))
            .map(|f| f.head == Some(sig) && !f.sigs.is_empty())
            .unwrap_or(false)
    }

    /// Reads signatures `[from, to)` of `frame`, charging read traffic.
    /// Returns the records with their offsets; out-of-range reads clamp.
    pub fn stream(&mut self, frame: u32, from: u32, to: u32) -> Vec<(SigPtr, SignatureRecord)> {
        let Some(fr) = self.frames.get(&frame) else { return Vec::new() };
        let len = fr.sigs.len() as u32;
        let from = from.min(len);
        let to = to.min(len);
        if from >= to {
            return Vec::new();
        }
        let out: Vec<(SigPtr, SignatureRecord)> =
            (from..to).map(|o| (SigPtr { frame, offset: o }, fr.sigs[o as usize])).collect();
        self.read_bytes += (to - from) as u64 * SignatureRecord::STORAGE_BYTES;
        out
    }

    /// Number of signatures currently stored in `frame`.
    pub fn fragment_len_of(&self, frame: u32) -> u32 {
        self.frames.get(&frame).map(|f| f.sigs.len() as u32).unwrap_or(0)
    }

    /// Writes a confidence update through a signature-cache pointer
    /// (Section 4.4: "a direct update of the counter value").
    pub fn update_confidence(&mut self, ptr: SigPtr, correct: bool) {
        if let Some(fr) = self.frames.get_mut(&ptr.frame) {
            if let Some(rec) = fr.sigs.get_mut(ptr.offset as usize) {
                rec.confidence =
                    if correct { rec.confidence.strengthen() } else { rec.confidence.weaken() };
                self.confidence_bytes += 1;
            }
        }
    }

    /// Confidence of the record at `ptr` (diagnostics).
    pub fn confidence_at(&self, ptr: SigPtr) -> Option<Confidence> {
        self.frames
            .get(&ptr.frame)
            .and_then(|f| f.sigs.get(ptr.offset as usize))
            .map(|r| r.confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_trace::Addr;

    fn rec(n: u32) -> SignatureRecord {
        SignatureRecord::new(Signature(n), Addr(u64::from(n) * 64))
    }

    #[test]
    fn append_then_stream_round_trips_in_order() {
        let mut s = SequenceStorage::new(16, 8, 4);
        let ptrs: Vec<SigPtr> = (0..8u32).map(|i| s.append(rec(i))).collect();
        let frame = ptrs[0].frame;
        assert!(ptrs.iter().all(|p| p.frame == frame), "one fragment holds all 8");
        let read = s.stream(frame, 0, 8);
        let sigs: Vec<u32> = read.iter().map(|(_, r)| r.signature.0).collect();
        assert_eq!(sigs, (0..8).collect::<Vec<u32>>(), "eviction order preserved");
    }

    #[test]
    fn new_fragment_opens_when_full() {
        let mut s = SequenceStorage::new(16, 4, 2);
        for i in 0..6u32 {
            s.append(rec(i));
        }
        // First 4 in one fragment; 5th starts a new fragment whose head is
        // the signature appended `head_lookahead`=2 ago (sig 2).
        assert!(s.is_head(Signature(2)));
        assert_eq!(s.fragment_len_of(s.frame_of(Signature(2))), 2);
    }

    #[test]
    fn head_precedes_fragment_by_lookahead() {
        let mut s = SequenceStorage::new(64, 4, 3);
        for i in 0..4u32 {
            s.append(rec(i));
        }
        // Fragment 2 opens at append #5; three signatures before it is sig 1.
        s.append(rec(100));
        assert!(s.is_head(Signature(1)));
    }

    #[test]
    fn first_fragment_head_falls_back_to_first_signature() {
        let mut s = SequenceStorage::new(16, 8, 4);
        s.append(rec(7));
        assert!(s.is_head(Signature(7)), "cold start: the record is its own head");
    }

    #[test]
    fn frame_collision_overwrites() {
        // One frame only: every new fragment lands on frame 0.
        let mut s = SequenceStorage::new(1, 2, 1);
        for i in 0..6u32 {
            s.append(rec(i));
        }
        assert!(s.overwrites() > 0);
        assert!(s.fragment_len_of(0) <= 2);
    }

    #[test]
    fn traffic_accounting_charges_five_bytes_per_signature() {
        let mut s = SequenceStorage::new(16, 8, 4);
        for i in 0..8u32 {
            s.append(rec(i));
        }
        assert_eq!(s.write_bytes(), 40);
        let frame = s.frame_of(Signature(0));
        let _ = s.stream(frame, 0, 4);
        assert_eq!(s.read_bytes(), 20);
    }

    #[test]
    fn stream_clamps_out_of_range() {
        let mut s = SequenceStorage::new(16, 8, 4);
        s.append(rec(1));
        let frame = s.frame_of(Signature(1));
        assert_eq!(s.stream(frame, 5, 100).len(), 0);
        assert_eq!(s.stream(frame, 0, 100).len(), 1);
        assert!(s.stream(999 & s.frame_mask, 0, 1).len() <= 1);
    }

    #[test]
    fn confidence_write_back_is_durable() {
        let mut s = SequenceStorage::new(16, 8, 4);
        let ptr = s.append(rec(1));
        assert_eq!(s.confidence_at(ptr).unwrap().value(), 2);
        s.update_confidence(ptr, false);
        assert_eq!(s.confidence_at(ptr).unwrap().value(), 1);
        s.update_confidence(ptr, true);
        s.update_confidence(ptr, true);
        assert_eq!(s.confidence_at(ptr).unwrap().value(), 3);
        assert_eq!(s.confidence_bytes(), 3);
    }

    #[test]
    fn lazy_frames_only_materialize_on_use() {
        let mut s = SequenceStorage::new(1 << 20, 512, 256);
        assert_eq!(s.live_frames(), 0);
        for i in 0..1000u32 {
            s.append(rec(i));
        }
        assert!(s.live_frames() <= 3, "only touched frames exist");
    }
}
