//! The on-chip sequence tag array (Figure 5: "head hist-hash, win. pos.").

use ltc_lasttouch::Signature;

#[derive(Debug, Clone, Copy, Default)]
struct TagEntry {
    head: Option<Signature>,
    /// Next fragment offset to stream (the sliding-window frontier).
    window_pos: u32,
    /// Whether the fragment is actively streaming.
    active: bool,
    /// Lookup-clock timestamp of the last activation/advance.
    last_use: u64,
}

/// Tracks, per off-chip frame, the head hash of the stored fragment and the
/// current sliding-window position of any in-progress stream (Section 4.3).
#[derive(Debug)]
pub struct SequenceTagArray {
    entries: Vec<TagEntry>,
    activations: u64,
}

impl SequenceTagArray {
    /// Creates a tag array for `frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "tag array needs at least one frame");
        SequenceTagArray { entries: vec![TagEntry::default(); frames], activations: 0 }
    }

    /// Number of frames tracked.
    pub fn frames(&self) -> usize {
        self.entries.len()
    }

    /// Streams started over the run.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// On-chip size in bytes: ~20 bits per frame (head hash excerpt plus a
    /// window position), ~10 KB for the paper's 4 K frames (Section 5.6).
    pub fn storage_bytes(&self) -> u64 {
        (self.entries.len() as u64 * 20).div_ceil(8)
    }

    /// Registers the head for `frame` when (re)recording a fragment; resets
    /// any in-progress window.
    pub fn set_head(&mut self, frame: u32, head: Signature) {
        let e = &mut self.entries[frame as usize];
        e.head = Some(head);
        e.window_pos = 0;
        e.active = false;
    }

    /// Whether `sig` matches the head of `frame`.
    pub fn head_matches(&self, frame: u32, sig: Signature) -> bool {
        self.entries[frame as usize].head == Some(sig)
    }

    /// Begins streaming `frame`, returning the initial window `[0, to)` that
    /// should be fetched. Re-activating an already-active stream rewinds it
    /// (the sequence is recurring from its start again).
    pub fn activate(&mut self, frame: u32, initial_window: u32, now: u64) -> (u32, u32) {
        let e = &mut self.entries[frame as usize];
        e.active = true;
        e.window_pos = initial_window;
        e.last_use = now;
        self.activations += 1;
        (0, initial_window)
    }

    /// Whether a head match on `frame` should (re)start its stream.
    ///
    /// Head signatures are also stored *inside* fragments and can recur
    /// mid-stream (hot workloads re-touch them constantly); rewinding on
    /// every match would re-stream the fragment endlessly. A restart is
    /// genuine when the stream is not running or has sat idle past
    /// `idle_threshold` lookups — a real outer-loop recurrence always
    /// arrives after the previous pass's stream went quiet.
    pub fn should_activate(&self, frame: u32, now: u64, idle_threshold: u64) -> bool {
        let e = &self.entries[frame as usize];
        !e.active || now.saturating_sub(e.last_use) > idle_threshold
    }

    /// Advances the window of `frame` so it covers up to `used_offset +
    /// window`, returning the range of offsets that must now be streamed
    /// (empty when the window already covers them).
    ///
    /// A hit far beyond the current window frontier *skips* the gap rather
    /// than streaming it (the stale-signature skipping of Section 3.2): at
    /// most `window` signatures move per advance.
    pub fn advance(&mut self, frame: u32, used_offset: u32, window: u32, now: u64) -> (u32, u32) {
        let e = &mut self.entries[frame as usize];
        e.last_use = now;
        if !e.active {
            // A hit on a fragment whose stream was reset (e.g. overwritten
            // head): treat as an implicit activation from this offset.
            e.active = true;
            e.window_pos = used_offset;
        }
        let target = used_offset.saturating_add(window);
        if target <= e.window_pos {
            return (e.window_pos, e.window_pos); // nothing new to fetch
        }
        let from = e.window_pos.max(used_offset);
        e.window_pos = target;
        (from, target)
    }

    /// Current window frontier for `frame` (diagnostics).
    pub fn window_pos(&self, frame: u32) -> u32 {
        self.entries[frame as usize].window_pos
    }

    /// Whether `frame` has an active stream.
    pub fn is_active(&self, frame: u32) -> bool {
        self.entries[frame as usize].active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_registration_and_match() {
        let mut t = SequenceTagArray::new(8);
        t.set_head(3, Signature(42));
        assert!(t.head_matches(3, Signature(42)));
        assert!(!t.head_matches(3, Signature(43)));
        assert!(!t.head_matches(2, Signature(42)));
    }

    #[test]
    fn activation_returns_initial_window() {
        let mut t = SequenceTagArray::new(8);
        t.set_head(1, Signature(7));
        assert_eq!(t.activate(1, 128, 0), (0, 128));
        assert_eq!(t.window_pos(1), 128);
        assert!(t.is_active(1));
        assert_eq!(t.activations(), 1);
    }

    #[test]
    fn advance_streams_only_new_offsets() {
        let mut t = SequenceTagArray::new(8);
        t.set_head(0, Signature(1));
        t.activate(0, 64, 0);
        // Using offset 10 with window 64 targets 74: fetch [64, 74).
        assert_eq!(t.advance(0, 10, 64, 1), (64, 74));
        // Using offset 5 next: target 69 < 74, nothing to fetch.
        let (a, b) = t.advance(0, 5, 64, 2);
        assert_eq!(a, b);
        assert_eq!(t.window_pos(0), 74);
    }

    #[test]
    fn advance_without_activation_starts_stream() {
        let mut t = SequenceTagArray::new(8);
        t.set_head(0, Signature(1));
        let (from, to) = t.advance(0, 100, 32, 0);
        assert_eq!((from, to), (100, 132));
        assert!(t.is_active(0));
    }

    #[test]
    fn set_head_resets_stream() {
        let mut t = SequenceTagArray::new(8);
        t.set_head(0, Signature(1));
        t.activate(0, 64, 0);
        t.set_head(0, Signature(2));
        assert!(!t.is_active(0));
        assert_eq!(t.window_pos(0), 0);
    }

    #[test]
    fn activation_gate_blocks_mid_stream_rewinds() {
        let mut t = SequenceTagArray::new(8);
        t.set_head(0, Signature(1));
        assert!(t.should_activate(0, 0, 100), "inactive stream may start");
        t.activate(0, 64, 10);
        let _ = t.advance(0, 50, 64, 20);
        assert!(!t.should_activate(0, 30, 100), "busy stream must not rewind");
        assert!(t.should_activate(0, 200, 100), "idle stream may restart");
        let _ = t.advance(0, 1000, 64, 300);
        assert!(!t.should_activate(0, 310, 100), "recent activity still blocks rewinds");
    }

    #[test]
    fn storage_is_20_bits_per_frame() {
        let t = SequenceTagArray::new(4 << 10);
        assert_eq!(t.storage_bytes(), (4 << 10) * 20 / 8); // 10 KB
    }
}
