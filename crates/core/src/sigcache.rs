//! The on-chip signature cache (Sections 3.2 and 4.3).

use ltc_cache::ReplacementPolicy;
use ltc_lasttouch::{Confidence, Signature, SignatureRecord};
use ltc_trace::Addr;

use crate::storage::SigPtr;

/// One signature-cache entry: 42 bits in the paper's Section 5.6 encoding
/// (15-bit prediction tag + 2-bit confidence + 25-bit off-chip self-pointer).
#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    sig: Signature,
    predicted: Addr,
    confidence: Confidence,
    ptr: SigPtr,
    /// FIFO: insertion order; LRU: last-use order.
    seq: u64,
}

impl Default for Entry {
    fn default() -> Self {
        Entry {
            valid: false,
            sig: Signature(0),
            predicted: Addr(0),
            confidence: Confidence::new(0),
            ptr: SigPtr { frame: 0, offset: 0 },
            seq: 0,
        }
    }
}

/// A hit returned by [`SignatureCache::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigHit {
    /// Predicted replacement address.
    pub predicted: Addr,
    /// Current confidence.
    pub confidence: Confidence,
    /// The signature's off-chip location (for window advance and
    /// confidence write-back).
    pub ptr: SigPtr,
}

/// Set-associative on-chip cache of streamed signatures, FIFO replacement.
///
/// The paper sizes this at 32 K entries, 2-way, with FIFO replacement within
/// a set (Section 4.3): FIFO matches the streaming usage, where signatures
/// arrive in sequence order and age out as the sliding windows advance.
#[derive(Debug)]
pub struct SignatureCache {
    entries: Vec<Entry>,
    ways: usize,
    set_mask: u32,
    policy: ReplacementPolicy,
    clock: u64,
    inserts: u64,
    hits: u64,
    lookups: u64,
}

impl SignatureCache {
    /// Creates an empty signature cache.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero, entries do not divide into ways, or the set
    /// count is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        SignatureCache::with_policy(entries, ways, ReplacementPolicy::Fifo)
    }

    /// Creates an empty signature cache with an explicit replacement policy
    /// (the ablation harness compares the paper's FIFO choice against LRU).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SignatureCache::new`].
    pub fn with_policy(entries: usize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(entries > 0 && ways > 0, "signature cache sizes must be non-zero");
        assert!(entries % ways == 0, "entries must divide into ways");
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SignatureCache {
            entries: vec![Entry::default(); entries],
            ways,
            set_mask: (sets - 1) as u32,
            policy,
            clock: 0,
            inserts: 0,
            hits: 0,
            lookups: 0,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// On-chip size in bytes at the paper's 42 bits per entry.
    pub fn storage_bytes(&self) -> u64 {
        (self.entries.len() as u64 * 42).div_ceil(8)
    }

    /// Lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Insertions performed.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    #[inline]
    fn set_range(&self, sig: Signature) -> std::ops::Range<usize> {
        let set = (sig.0 & self.set_mask) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Inserts a streamed signature (FIFO within its set). An existing entry
    /// with the same signature is refreshed in place so a fragment re-stream
    /// updates stale pointers instead of duplicating.
    pub fn insert(&mut self, record: SignatureRecord, ptr: SigPtr) {
        self.clock += 1;
        self.inserts += 1;
        let clock = self.clock;
        let ways = self.ways;
        let range = self.set_range(record.signature);
        let slice = &mut self.entries[range];
        let way = slice
            .iter()
            .position(|e| e.valid && e.sig == record.signature)
            .or_else(|| slice.iter().position(|e| !e.valid))
            .unwrap_or_else(|| {
                // Victim: oldest insertion (FIFO) or least recent use (LRU —
                // lookups refresh `seq` under that policy).
                let mut best = 0;
                for w in 1..ways {
                    if slice[w].seq < slice[best].seq {
                        best = w;
                    }
                }
                best
            });
        slice[way] = Entry {
            valid: true,
            sig: record.signature,
            predicted: record.predicted,
            confidence: record.confidence,
            ptr,
            seq: clock,
        };
    }

    /// Looks up a signature (non-destructive under FIFO; refreshes recency
    /// under LRU).
    pub fn lookup(&mut self, sig: Signature) -> Option<SigHit> {
        self.lookups += 1;
        self.clock += 1;
        let clock = self.clock;
        let lru = self.policy == ReplacementPolicy::Lru;
        let range = self.set_range(sig);
        let hit = self.entries[range].iter_mut().find(|e| e.valid && e.sig == sig).map(|e| {
            if lru {
                e.seq = clock;
            }
            SigHit { predicted: e.predicted, confidence: e.confidence, ptr: e.ptr }
        });
        self.hits += u64::from(hit.is_some());
        hit
    }

    /// Updates the cached confidence for `sig` (the off-chip copy is updated
    /// separately through the returned pointer). Returns the entry's pointer
    /// if present.
    pub fn update_confidence(&mut self, sig: Signature, correct: bool) -> Option<SigPtr> {
        let range = self.set_range(sig);
        self.entries[range].iter_mut().find(|e| e.valid && e.sig == sig).map(|e| {
            e.confidence = if correct { e.confidence.strengthen() } else { e.confidence.weaken() };
            e.ptr
        })
    }

    /// Live entry count (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Whether no signatures are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(sig: u32, target: u64) -> SignatureRecord {
        SignatureRecord::new(Signature(sig), Addr(target))
    }

    fn ptr(frame: u32, offset: u32) -> SigPtr {
        SigPtr { frame, offset }
    }

    #[test]
    fn insert_then_lookup() {
        let mut c = SignatureCache::new(8, 2);
        c.insert(rec(5, 640), ptr(1, 2));
        let hit = c.lookup(Signature(5)).unwrap();
        assert_eq!(hit.predicted, Addr(640));
        assert_eq!(hit.ptr, ptr(1, 2));
        assert!(hit.confidence.is_confident());
    }

    #[test]
    fn miss_returns_none() {
        let mut c = SignatureCache::new(8, 2);
        assert!(c.lookup(Signature(1)).is_none());
        assert_eq!(c.lookups(), 1);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn fifo_evicts_oldest_in_set() {
        // 4 sets x 2 ways; sigs 0, 4, 8 share set 0.
        let mut c = SignatureCache::new(8, 2);
        c.insert(rec(0, 1), ptr(0, 0));
        c.insert(rec(4, 2), ptr(0, 1));
        // Look up sig 0 (FIFO must ignore recency, unlike LRU).
        let _ = c.lookup(Signature(0));
        c.insert(rec(8, 3), ptr(0, 2));
        assert!(c.lookup(Signature(0)).is_none(), "oldest insertion evicted");
        assert!(c.lookup(Signature(4)).is_some());
        assert!(c.lookup(Signature(8)).is_some());
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut c = SignatureCache::new(8, 2);
        c.insert(rec(4, 100), ptr(0, 0));
        c.insert(rec(4, 200), ptr(9, 9));
        assert_eq!(c.len(), 1, "same signature must not duplicate");
        let hit = c.lookup(Signature(4)).unwrap();
        assert_eq!(hit.predicted, Addr(200));
        assert_eq!(hit.ptr, ptr(9, 9));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = SignatureCache::new(8, 2);
        for s in 0..4u32 {
            c.insert(rec(s, 1), ptr(0, s));
            c.insert(rec(s + 4, 1), ptr(0, s + 4));
        }
        assert_eq!(c.len(), 8, "4 sets x 2 ways all occupied");
    }

    #[test]
    fn confidence_update_returns_pointer() {
        let mut c = SignatureCache::new(8, 2);
        c.insert(rec(3, 64), ptr(7, 1));
        let p = c.update_confidence(Signature(3), false).unwrap();
        assert_eq!(p, ptr(7, 1));
        assert!(!c.lookup(Signature(3)).unwrap().confidence.is_confident());
        assert!(c.update_confidence(Signature(99), true).is_none());
    }

    #[test]
    fn storage_matches_42_bit_entries() {
        let c = SignatureCache::new(32 << 10, 2);
        // 32K x 42 bits = 168 KB.
        assert_eq!(c.storage_bytes(), (32 << 10) * 42 / 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = SignatureCache::new(12, 2);
    }
}
