//! LT-cords configuration.

use ltc_cache::{CacheConfig, ReplacementPolicy};
use ltc_lasttouch::SignatureScheme;
use serde::{Deserialize, Serialize};

/// Configuration of an [`crate::LtCords`] instance.
///
/// The defaults reproduce the paper's Section 5.6 configuration: 160 MB of
/// off-chip sequence storage (4 K frames × 8 K signatures × 5 bytes), a
/// 32 K-entry 2-way signature cache and a 10 KB sequence tag array, for a
/// total on-chip budget of ~214 KB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LtCordsConfig {
    /// L1D geometry mirrored by the history table.
    pub l1: CacheConfig,
    /// Signature hashing scheme.
    pub scheme: SignatureScheme,
    /// Signature cache entries (total, across all sets).
    pub sig_cache_entries: usize,
    /// Signature cache associativity (FIFO replacement within a set).
    pub sig_cache_ways: usize,
    /// Number of off-chip frames (each holding one fragment).
    pub frames: usize,
    /// Signatures per fragment.
    pub fragment_len: usize,
    /// How many signatures the head precedes its fragment by ("several
    /// hundred", Section 4.2, so that off-chip retrieval latency is hidden).
    pub head_lookahead: usize,
    /// Sliding-window span: how far past the most recently used signature
    /// the stream runs (must cover the ±1 K reordering of Section 5.2).
    pub stream_window: usize,
    /// Signatures moved per off-chip transfer unit (write coalescing and
    /// window advancement granularity, Section 4.1/4.3).
    pub transfer_unit: usize,
    /// Signature-cache replacement policy. The paper chooses FIFO
    /// (Section 4.3) because streamed signatures age out naturally; the
    /// ablation harness compares LRU.
    pub sig_cache_policy: ReplacementPolicy,
    /// Whether the 2-bit confidence counters gate predictions
    /// (Section 4.4). Disabling them is an ablation: every signature-cache
    /// hit predicts.
    pub use_confidence: bool,
}

impl LtCordsConfig {
    /// The paper's cycle-accurate configuration (Section 5.6), with the
    /// trace-mode 32-bit signature hash used for coverage studies.
    pub fn paper() -> Self {
        LtCordsConfig {
            l1: CacheConfig::l1d(),
            scheme: SignatureScheme::trace_mode(),
            sig_cache_entries: 32 << 10,
            sig_cache_ways: 2,
            frames: 4 << 10,
            fragment_len: 8 << 10,
            head_lookahead: 256,
            stream_window: 1 << 10,
            transfer_unit: 16,
            sig_cache_policy: ReplacementPolicy::Fifo,
            use_confidence: true,
        }
    }

    /// The Figure 9 sensitivity configuration: an effectively unlimited
    /// number of 512-signature fragments, 8-way signature cache.
    pub fn fig9_sweep(sig_cache_entries: usize) -> Self {
        LtCordsConfig {
            sig_cache_entries,
            sig_cache_ways: 8,
            frames: 1 << 16,
            fragment_len: 512,
            ..LtCordsConfig::paper()
        }
    }

    /// The Figure 10 sensitivity configuration: off-chip storage capped at
    /// `total_signatures` (frames of 8 K signatures each).
    pub fn fig10_sweep(total_signatures: usize) -> Self {
        let fragment_len = 8 << 10;
        LtCordsConfig {
            frames: (total_signatures / fragment_len).max(1),
            fragment_len,
            ..LtCordsConfig::paper()
        }
    }

    /// Total off-chip capacity in signatures.
    pub fn offchip_signatures(&self) -> u64 {
        self.frames as u64 * self.fragment_len as u64
    }

    /// Off-chip capacity in bytes (5 bytes per signature, Section 5.4).
    pub fn offchip_bytes(&self) -> u64 {
        self.offchip_signatures() * 5
    }

    /// Checks invariants.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero, not a power of two where required, or the
    /// associativity exceeds the entry count.
    pub fn validate(&self) {
        self.l1.validate();
        self.scheme.validate();
        assert!(self.sig_cache_entries > 0, "signature cache cannot be empty");
        assert!(self.sig_cache_ways > 0, "signature cache needs at least one way");
        assert!(self.sig_cache_entries % self.sig_cache_ways == 0, "entries must divide into ways");
        let sets = self.sig_cache_entries / self.sig_cache_ways;
        assert!(sets.is_power_of_two(), "signature cache set count must be a power of two");
        assert!(self.frames.is_power_of_two(), "frame count must be a power of two");
        assert!(self.fragment_len > 0, "fragments must hold signatures");
        assert!(self.transfer_unit > 0, "transfer unit must be non-zero");
        assert!(self.stream_window > 0, "stream window must be non-zero");
    }
}

impl Default for LtCordsConfig {
    fn default() -> Self {
        LtCordsConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_5_6() {
        let c = LtCordsConfig::paper();
        c.validate();
        assert_eq!(c.offchip_signatures(), 32 << 20, "32M signatures");
        assert_eq!(c.offchip_bytes(), 160 << 20, "160MB sequence storage");
        assert_eq!(c.sig_cache_entries, 32 << 10);
    }

    #[test]
    fn fig10_sweep_caps_offchip_storage() {
        let c = LtCordsConfig::fig10_sweep(2 << 20);
        c.validate();
        assert_eq!(c.offchip_signatures(), 2 << 20);
    }

    #[test]
    fn fig9_sweep_uses_512_sig_fragments() {
        let c = LtCordsConfig::fig9_sweep(4096);
        c.validate();
        assert_eq!(c.fragment_len, 512);
        assert_eq!(c.sig_cache_ways, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_set_count() {
        let mut c = LtCordsConfig::paper();
        c.sig_cache_entries = 3 * c.sig_cache_ways;
        c.validate();
    }
}
