//! LT-cords operation counters.

/// Counters describing an LT-cords run (beyond the generic cache stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LtCordsMetrics {
    /// Last-touch predictions issued (prefetch requests emitted).
    pub predictions: u64,
    /// Signature-cache hits that carried enough confidence to predict.
    pub confident_hits: u64,
    /// Signature-cache hits suppressed by low confidence.
    pub low_confidence_hits: u64,
    /// Fragment streams activated by head-signature matches.
    pub head_activations: u64,
    /// Signatures streamed from off-chip into the signature cache.
    pub signatures_streamed: u64,
    /// Signatures recorded (appended off chip).
    pub signatures_recorded: u64,
    /// Confidence write-backs performed.
    pub confidence_updates: u64,
}

impl LtCordsMetrics {
    /// Average signatures streamed per prediction (≈1 in steady state, per
    /// the paper's Section 5.8 observation of one signature per L1D miss).
    pub fn stream_per_prediction(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.signatures_streamed as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_ratio_handles_zero() {
        assert_eq!(LtCordsMetrics::default().stream_per_prediction(), 0.0);
    }

    #[test]
    fn stream_ratio_divides() {
        let m =
            LtCordsMetrics { predictions: 4, signatures_streamed: 8, ..LtCordsMetrics::default() };
        assert!((m.stream_per_prediction() - 2.0).abs() < 1e-12);
    }
}
