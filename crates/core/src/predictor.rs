//! The LT-cords predictor: history, streaming and prediction wired together.

use std::collections::HashMap;

use ltc_cache::{HierarchyOutcome, MemLevel, PrefetchOutcome};
use ltc_lasttouch::{HistoryTable, Signature};
use ltc_predictors::{PredictorTraffic, PrefetchRequest, Prefetcher};
use ltc_trace::{Addr, MemoryAccess};

use crate::config::LtCordsConfig;
use crate::metrics::LtCordsMetrics;
use crate::sigcache::SignatureCache;
use crate::storage::{SequenceStorage, SigPtr};
use crate::tag_array::SequenceTagArray;

/// Last-Touch Correlated Data Streaming (the paper's Section 4 design).
///
/// Per committed access, LT-cords:
///
/// 1. applies confidence feedback from the cache's prefetch provenance
///    (useful prefetch → strengthen, evicted-unused → weaken, written
///    through the entry's off-chip self-pointer, Section 4.4);
/// 2. trains on any eviction: the victim's final signature is appended to
///    the off-chip sequence storage in eviction order (Section 4.1);
/// 3. updates the history trace and looks the fresh signature up in the
///    on-chip signature cache — a confident hit identifies the access as a
///    last touch and prefetches the recorded replacement into L1D over the
///    dying block, and advances the owning fragment's sliding window
///    (Section 4.3);
/// 4. checks the signature against the sequence tag array heads — a match
///    activates streaming of the corresponding fragment (Section 4.2).
pub struct LtCords {
    cfg: LtCordsConfig,
    history: HistoryTable,
    storage: SequenceStorage,
    tags: SequenceTagArray,
    cache: SignatureCache,
    /// Prefetch target line -> (signature, off-chip location) that produced
    /// it, for confidence feedback.
    inflight: HashMap<Addr, (Signature, SigPtr)>,
    metrics: LtCordsMetrics,
}

impl std::fmt::Debug for LtCords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LtCords")
            .field("config", &self.cfg)
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl LtCords {
    /// Creates an LT-cords instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`LtCordsConfig::validate`]).
    pub fn new(cfg: LtCordsConfig) -> Self {
        cfg.validate();
        LtCords {
            history: HistoryTable::new(cfg.l1, cfg.scheme),
            storage: SequenceStorage::new(cfg.frames, cfg.fragment_len, cfg.head_lookahead),
            tags: SequenceTagArray::new(cfg.frames),
            cache: SignatureCache::with_policy(
                cfg.sig_cache_entries,
                cfg.sig_cache_ways,
                cfg.sig_cache_policy,
            ),
            inflight: HashMap::new(),
            metrics: LtCordsMetrics::default(),
            cfg,
        }
    }

    /// The paper's Section 5.6 configuration.
    pub fn paper() -> Self {
        LtCords::new(LtCordsConfig::paper())
    }

    /// Operation counters.
    pub fn metrics(&self) -> &LtCordsMetrics {
        &self.metrics
    }

    /// The configuration in use.
    pub fn config(&self) -> &LtCordsConfig {
        &self.cfg
    }

    /// The off-chip sequence store (diagnostics).
    pub fn storage(&self) -> &SequenceStorage {
        &self.storage
    }

    /// The on-chip signature cache (diagnostics).
    pub fn signature_cache(&self) -> &SignatureCache {
        &self.cache
    }

    fn feedback(&mut self, line: Addr, correct: bool) {
        if let Some((sig, ptr)) = self.inflight.remove(&line) {
            self.cache.update_confidence(sig, correct);
            self.storage.update_confidence(ptr, correct);
            self.metrics.confidence_updates += 1;
        }
    }

    fn train(&mut self, evicted: Addr, replacement: Addr) {
        if let Some(rec) = self.history.record_eviction(evicted, replacement) {
            let ptr = self.storage.append(rec);
            self.metrics.signatures_recorded += 1;
            if ptr.offset == 0 {
                // A new fragment opened: register its head on chip.
                if let Some(head) = self.storage.head_of(ptr.frame) {
                    self.tags.set_head(ptr.frame, head);
                }
            }
        }
    }

    /// Streams storage range `[from, to)` of `frame` into the signature
    /// cache, rounding `to` up to the transfer unit (Section 4.3).
    fn stream_range(&mut self, frame: u32, from: u32, to: u32) {
        if from >= to {
            return;
        }
        if std::env::var_os("LTC_DEBUG_STREAM").is_some() && to - from > 256 {
            eprintln!("big stream: frame={frame} from={from} to={to}");
        }
        let unit = self.cfg.transfer_unit as u32;
        let rounded = to.div_ceil(unit) * unit;
        for (ptr, rec) in self.storage.stream(frame, from, rounded) {
            self.cache.insert(rec, ptr);
            self.metrics.signatures_streamed += 1;
        }
    }
}

impl Prefetcher for LtCords {
    fn name(&self) -> &'static str {
        "lt-cords"
    }

    fn on_access(
        &mut self,
        access: &MemoryAccess,
        outcome: &HierarchyOutcome,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let line = access.addr.line(self.cfg.l1.line_bytes);
        // 1. Confidence feedback.
        if outcome.l1.first_use_of_prefetch {
            self.feedback(line, true);
        }
        if let Some(ev) = &outcome.l1.evicted {
            if ev.prefetched_unused {
                self.feedback(ev.addr, false);
            }
        }
        // 2. Train on the demand eviction.
        if let Some(ev) = outcome.l1.evicted {
            self.train(ev.addr, line);
        }
        // 3. History update + signature cache lookup.
        let sig = self.history.record_access(access.addr, access.pc);
        let now = self.cache.lookups();
        if let Some(hit) = self.cache.lookup(sig) {
            // Advance the owning fragment's sliding window regardless of
            // confidence: sequence tracking must continue.
            let (from, to) = self.tags.advance(
                hit.ptr.frame,
                hit.ptr.offset,
                self.cfg.stream_window as u32,
                now,
            );
            self.stream_range(hit.ptr.frame, from, to);
            let confident = hit.confidence.is_confident() || !self.cfg.use_confidence;
            if confident && hit.predicted != line {
                self.metrics.confident_hits += 1;
                self.metrics.predictions += 1;
                self.inflight.insert(hit.predicted, (sig, hit.ptr));
                out.push(PrefetchRequest::into_l1(hit.predicted, line));
            } else {
                self.metrics.low_confidence_hits += 1;
            }
        }
        // 4. Head check: does this signature start a recorded sequence?
        // Head values also occur mid-fragment, so a match only restarts the
        // stream when the fragment is not already being followed.
        let frame = self.storage.frame_of(sig);
        if self.tags.head_matches(frame, sig)
            && self.tags.should_activate(frame, now, (self.cfg.stream_window * 4) as u64)
        {
            let (from, to) = self.tags.activate(frame, self.cfg.stream_window as u32, now);
            self.metrics.head_activations += 1;
            self.stream_range(frame, from, to);
        }
    }

    fn on_prefetch_applied(
        &mut self,
        req: &PrefetchRequest,
        outcome: &PrefetchOutcome,
        _source: MemLevel,
    ) {
        // Train on the prefetch-induced eviction: the displaced block's last
        // touch is final, and its replacement is the prefetched line.
        if let PrefetchOutcome::Filled { evicted: Some(ev), .. } = outcome {
            self.train(ev.addr, req.target);
        }
    }

    fn traffic(&self) -> PredictorTraffic {
        PredictorTraffic {
            sequence_write_bytes: self.storage.write_bytes(),
            sequence_read_bytes: self.storage.read_bytes(),
            confidence_update_bytes: self.storage.confidence_bytes(),
        }
    }

    fn storage_bytes(&self) -> u64 {
        self.cache.storage_bytes() + self.tags.storage_bytes() + self.history.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_cache::{Hierarchy, HierarchyConfig};
    use ltc_trace::{AccessKind, Pc};

    /// A configuration scaled to unit-test workloads: the paper's 8 K-entry
    /// fragments assume millions of misses per program pass; these tests
    /// produce ~1 K misses per pass, so fragments are shrunk proportionally
    /// (the Figure 9 sensitivity study uses 512-signature fragments too).
    fn test_config() -> LtCordsConfig {
        LtCordsConfig {
            fragment_len: 512,
            frames: 1 << 12,
            head_lookahead: 128,
            ..LtCordsConfig::paper()
        }
    }

    /// Drives a cyclic conflict workload through LT-cords with immediate
    /// prefetch application, returning (accesses, misses).
    fn drive(
        lt: &mut LtCords,
        h: &mut Hierarchy,
        aliases: u64,
        sets: u64,
        iterations: usize,
    ) -> (u64, u64) {
        let span = 512 * 64;
        let mut out = Vec::new();
        let (mut accesses, mut misses) = (0u64, 0u64);
        for _ in 0..iterations {
            for set in 0..sets {
                for alias in 0..aliases {
                    let addr = Addr(set * 64 + alias * span);
                    let a = MemoryAccess::load(Pc(0x400 + alias * 8), addr);
                    let o = h.access(a.addr, AccessKind::Load);
                    accesses += 1;
                    misses += u64::from(!o.l1.hit);
                    lt.on_access(&a, &o, &mut out);
                    for req in out.drain(..) {
                        if h.l1().contains(req.target) {
                            continue;
                        }
                        let (po, src) = h.prefetch_into_l1(req.target, req.victim);
                        lt.on_prefetch_applied(&req, &po, src);
                    }
                }
            }
        }
        (accesses, misses)
    }

    #[test]
    fn records_signatures_on_evictions() {
        let mut lt = LtCords::new(test_config());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        drive(&mut lt, &mut h, 4, 16, 3);
        assert!(lt.metrics().signatures_recorded > 0);
        assert!(lt.storage().appended() > 0);
    }

    #[test]
    fn recurring_sequence_activates_streams_and_predicts() {
        let mut lt = LtCords::new(test_config());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        // A long recurring conflict pattern: 4 aliases x 256 sets = 1024
        // distinct miss signatures per pass, well beyond one fragment.
        drive(&mut lt, &mut h, 4, 256, 12);
        let m = lt.metrics();
        assert!(m.head_activations > 0, "recurring heads must activate streams");
        assert!(m.signatures_streamed > 0, "streams must load signatures on chip");
        assert!(m.predictions > 0, "streamed signatures must predict");
    }

    #[test]
    fn predictions_eliminate_misses_on_recurrence() {
        let mut lt = LtCords::new(test_config());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let (_, cold) = drive(&mut lt, &mut h, 4, 256, 3);
        let (warm_acc, warm_miss) = drive(&mut lt, &mut h, 4, 256, 10);
        let cold_rate = cold as f64 / (3.0 * 4.0 * 256.0);
        let warm_rate = warm_miss as f64 / warm_acc as f64;
        assert!(
            warm_rate < cold_rate * 0.8,
            "warm miss rate {warm_rate:.3} should undercut cold rate {cold_rate:.3}"
        );
    }

    #[test]
    fn random_stream_never_predicts() {
        let mut lt = LtCords::new(test_config());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        let mut out = Vec::new();
        // Non-recurring addresses: nothing to correlate.
        let mut x = 0x12345u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = Addr((x >> 20) & 0xfff_ffc0);
            let a = MemoryAccess::load(Pc(0x400), addr);
            let o = h.access(a.addr, AccessKind::Load);
            lt.on_access(&a, &o, &mut out);
        }
        let m = lt.metrics();
        assert_eq!(m.predictions, 0, "random traffic must not produce predictions");
    }

    #[test]
    fn traffic_counters_flow_through() {
        let mut lt = LtCords::new(test_config());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        drive(&mut lt, &mut h, 4, 256, 6);
        let t = lt.traffic();
        assert!(t.sequence_write_bytes > 0);
        assert!(t.sequence_read_bytes > 0);
        assert_eq!(t.sequence_write_bytes, lt.metrics().signatures_recorded * 5);
    }

    #[test]
    fn on_chip_budget_matches_paper() {
        let lt = LtCords::paper();
        let bytes = lt.storage_bytes();
        // Signature cache 168 KB + tag array 10 KB + history ~6 KB ≈ 184 KB;
        // the paper quotes 214 KB for a slightly richer entry encoding.
        // Either way it must sit far below the 80 MB an on-chip DBCP needs.
        assert!(bytes > 150 * 1024 && bytes < 256 * 1024, "budget {bytes} out of range");
    }

    #[test]
    fn wrong_predictions_lose_confidence() {
        let mut lt = LtCords::new(test_config());
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        // Train a recurring pattern, then permanently change it: stale
        // signatures must stop predicting after feedback.
        drive(&mut lt, &mut h, 4, 64, 8);
        let preds_before = lt.metrics().predictions;
        assert!(preds_before > 0);
        // Now run a different alias rotation through the same sets.
        let span = 512 * 64;
        let mut out = Vec::new();
        for it in 0..8 {
            for set in 0..64u64 {
                for alias in [6u64, 9, 5, 7] {
                    let addr = Addr(set * 64 + alias * span);
                    let a = MemoryAccess::load(Pc(0x900 + alias), addr);
                    let o = h.access(a.addr, AccessKind::Load);
                    lt.on_access(&a, &o, &mut out);
                    for req in out.drain(..) {
                        if h.l1().contains(req.target) {
                            continue;
                        }
                        let (po, src) = h.prefetch_into_l1(req.target, req.victim);
                        lt.on_prefetch_applied(&req, &po, src);
                    }
                }
            }
            let _ = it;
        }
        // Confidence machinery must have engaged (weaken events recorded).
        assert!(lt.metrics().confidence_updates > 0);
    }
}
