//! Last-Touch Correlated Data Streaming (LT-cords).
//!
//! # Naming: package `ltc_core`, library `ltcords`
//!
//! The *package* follows the workspace's `ltc_*` convention (it is listed
//! as `ltc_core` in every manifest), while the *library target* is
//! deliberately named `ltcords` — the paper's name for the design — so
//! imports read as the paper does: `use ltcords::{LtCords, ...}`. This
//! split is intentional and stable; depend on the package as `ltc_core`,
//! import it as `ltcords`. (Also recorded in the README crate map.)
//!
//! This crate implements the paper's primary contribution: a practical
//! address-correlating prefetcher that records last-touch correlation data
//! **off chip, in the order it is discovered** (cache-miss order), and
//! **streams** it into a small on-chip signature cache shortly before it is
//! needed (Sections 3 and 4 of the paper).
//!
//! The design comprises:
//!
//! * [`SequenceStorage`] — the off-chip (main-memory) store, divided into
//!   *frames* each holding a *fragment* of consecutive last-touch signatures.
//!   Fragments are keyed by a *head signature* that precedes them in the
//!   global signature sequence, and map to frames direct-mapped by the head's
//!   low-order bits (Section 4.2).
//! * [`SequenceTagArray`] — the small on-chip array tracking, per frame, the
//!   head hash and the current sliding-window position (Figure 5).
//! * [`SignatureCache`] — a set-associative, FIFO-replacement on-chip cache
//!   of signatures, each entry carrying a pointer to its own off-chip
//!   location for confidence write-back (Sections 4.3 and 4.4).
//! * [`LtCords`] — the predictor itself, wiring the shared last-touch
//!   [`ltc_lasttouch::HistoryTable`] to the streaming machinery and
//!   implementing [`ltc_predictors::Prefetcher`].
//!
//! # Example
//!
//! ```
//! use ltcords::{LtCords, LtCordsConfig};
//! use ltc_predictors::Prefetcher;
//!
//! let lt = LtCords::new(LtCordsConfig::paper());
//! // The paper's configuration: ~214 KB of on-chip state.
//! assert!(lt.storage_bytes() < 256 * 1024);
//! ```

pub mod config;
pub mod metrics;
pub mod predictor;
pub mod sigcache;
pub mod storage;
pub mod tag_array;

pub use config::LtCordsConfig;
pub use metrics::LtCordsMetrics;
pub use predictor::LtCords;
pub use sigcache::SignatureCache;
pub use storage::SequenceStorage;
pub use tag_array::SequenceTagArray;
