//! Cycle-approximate timing model of the paper's Table 1 machine.
//!
//! SimpleScalar and the Alpha binaries are not available, so speedups are
//! reproduced with a *ROB-window limit study*: instructions issue at the
//! machine width, a 256-entry reorder window bounds run-ahead, dependent
//! accesses serialize on their producer, misses contend for 64 MSHRs, and
//! the L1/L2 and memory busses are occupancy-modelled resources shared with
//! prefetch and LT-cords metadata traffic. This captures the three effects
//! the paper's speedups hinge on: eliminated miss latency, memory-level
//! parallelism for dependent chains (Section 2), and bus contention from
//! predictor traffic (Section 5.8).
//!
//! # Example
//!
//! ```
//! use ltc_timing::{TimingConfig, TimingSim};
//! use ltc_predictors::NullPrefetcher;
//! use ltc_trace::{suite, TraceSource};
//!
//! let entry = suite::by_name("mesa").unwrap();
//! let mut source = entry.build(1);
//! let report = TimingSim::new(TimingConfig::paper())
//!     .run(&mut source, &mut NullPrefetcher::new(), 50_000);
//! assert!(report.ipc() > 0.0);
//! ```

pub mod bus;
pub mod config;
pub mod mshr;
pub mod power;
pub mod report;
pub mod sim;

pub use bus::Bus;
pub use config::TimingConfig;
pub use mshr::MshrFile;
pub use power::{PowerComparison, SramStructure};
pub use report::{BandwidthBreakdown, TimingReport};
pub use sim::TimingSim;
