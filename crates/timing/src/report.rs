//! Timing run results.

use serde::{Deserialize, Serialize};

/// Memory-bus traffic breakdown in the Figure 12 categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BandwidthBreakdown {
    /// Demand cache-line fills and write-backs (the "base data" component).
    pub base_data_bytes: u64,
    /// Extra line transfers caused by mispredicted prefetches.
    pub incorrect_prediction_bytes: u64,
    /// LT-cords signature sequence writes plus confidence updates
    /// ("sequence creation").
    pub sequence_creation_bytes: u64,
    /// LT-cords signature streaming reads ("sequence fetch").
    pub sequence_fetch_bytes: u64,
}

impl BandwidthBreakdown {
    /// Total bytes over the memory bus.
    pub fn total(&self) -> u64 {
        self.base_data_bytes
            + self.incorrect_prediction_bytes
            + self.sequence_creation_bytes
            + self.sequence_fetch_bytes
    }

    /// Bytes per instruction for the given instruction count (the Figure 12
    /// y axis, which removes the effect of application speedup).
    pub fn bytes_per_instruction(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.total() as f64 / instructions as f64
        }
    }
}

/// Results of one timing simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Predictor under test.
    pub predictor: String,
    /// Instructions measured (after warm-up).
    pub instructions: u64,
    /// Memory accesses measured.
    pub accesses: u64,
    /// Cycles elapsed over the measured region.
    pub cycles: f64,
    /// L1D misses in the measured region.
    pub l1_misses: u64,
    /// Off-chip (L2) misses in the measured region.
    pub l2_misses: u64,
    /// Prefetch fills applied.
    pub prefetch_fills: u64,
    /// Prefetch requests dropped from the full request queue.
    pub prefetch_drops: u64,
    /// MSHR-full stalls.
    pub mshr_stalls: u64,
    /// Memory bus traffic breakdown.
    pub bandwidth: BandwidthBreakdown,
}

impl TimingReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Percent speedup of this run over `baseline` (the Table 3 metric).
    pub fn speedup_pct_over(&self, baseline: &TimingReport) -> f64 {
        if baseline.ipc() <= 0.0 {
            0.0
        } else {
            (self.ipc() / baseline.ipc() - 1.0) * 100.0
        }
    }

    /// L1D miss ratio (Table 2).
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }

    /// L2 local miss ratio (Table 2).
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l1_misses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l1_misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_divides_instructions_by_cycles() {
        let r = TimingReport { instructions: 800, cycles: 100.0, ..Default::default() };
        assert!((r.ipc() - 8.0).abs() < 1e-12);
        assert_eq!(TimingReport::default().ipc(), 0.0);
    }

    #[test]
    fn speedup_is_relative_ipc() {
        let base = TimingReport { instructions: 100, cycles: 100.0, ..Default::default() };
        let fast = TimingReport { instructions: 100, cycles: 50.0, ..Default::default() };
        assert!((fast.speedup_pct_over(&base) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_totals_and_normalizes() {
        let b = BandwidthBreakdown {
            base_data_bytes: 100,
            incorrect_prediction_bytes: 20,
            sequence_creation_bytes: 30,
            sequence_fetch_bytes: 50,
        };
        assert_eq!(b.total(), 200);
        assert!((b.bytes_per_instruction(100) - 2.0).abs() < 1e-12);
        assert_eq!(b.bytes_per_instruction(0), 0.0);
    }
}
