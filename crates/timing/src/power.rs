//! Analytical power model of the LT-cords structures (paper Section 5.9).
//!
//! The paper uses CACTI 4.2 in a 70 nm technology to argue that, despite
//! being larger than the L1D and accessed as frequently, the LT-cords
//! structures dissipate about half the L1D's dynamic power, because
//!
//! * most accesses are tag-only checks (data is read out only on the rare
//!   signature hit), enabled by a *serial* tag-then-data lookup, and
//! * the data path is ~42 bits wide versus the L1D's 512-bit lines.
//!
//! This module reproduces that arithmetic with an energy model calibrated
//! to the CACTI numbers the paper quotes: 18 pJ for an L1D-like data-array
//! read, 73 pJ for a four-port parallel tag+data L1D access, below 6 pJ for
//! a signature data read, ~30 pJ for the serial tag checks of the sequence
//! tag array plus signature cache, and an extra ~6.5 pJ data read per L1D
//! miss. CACTI itself is not reimplemented; the model interpolates those
//! anchor points with capacity and width scaling.

/// An on-chip SRAM structure characterized for energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramStructure {
    /// Total data capacity in bits.
    pub bits: u64,
    /// Tag-array capacity in bits (the portion touched by every lookup).
    pub tag_bits: u64,
    /// Datapath width read per access, in bits.
    pub read_width: u32,
    /// Read/write ports.
    pub ports: u32,
    /// Whether tag and data are accessed serially (tag first, data only on
    /// hit) rather than in parallel for latency.
    pub serial_lookup: bool,
}

/// CACTI-calibrated anchor constants (70 nm, from the paper's Section 5.9).
mod anchor {
    /// Data-array read energy of the 64 KB L1D-like cache (pJ).
    pub const L1D_DATA_READ_PJ: f64 = 18.0;
    /// L1D capacity the anchors describe (bits).
    pub const L1D_BITS: f64 = (64 * 1024 * 8) as f64;
    /// L1D line width (bits).
    pub const L1D_WIDTH: f64 = 512.0;
    /// Serial tag-phase coefficient (pJ per sqrt(total bit)), calibrated so
    /// the two LT-cords structures' serial tag phases sum to the paper's
    /// combined 30 pJ: sqrt(1376256) + sqrt(81920) ≈ 1459.4 → 30 / 1459.4.
    /// (A serial tag phase decodes into the full structure, so it scales
    /// with total size, not just stored tag bits.)
    pub const SERIAL_TAG_PJ_PER_SQRT_BIT: f64 = 30.0 / 1459.4;
    /// Residual tag energy of a parallel lookup (pJ): CACTI's 73 pJ for the
    /// four-port L1D leaves ~1 pJ beyond the four 18 pJ data reads.
    pub const PARALLEL_TAG_PJ: f64 = 1.0;
    /// Leakage of the combined LT-cords structures (mW).
    pub const LTC_LEAKAGE_MW: f64 = 800.0;
    /// Leakage of the L1D data cache (mW).
    pub const L1D_LEAKAGE_MW: f64 = 230.0;
}

impl SramStructure {
    /// The paper's 64 KB, 4-port L1 data cache (1024 lines, ~23 tag bits
    /// per line).
    pub fn l1d() -> Self {
        SramStructure {
            bits: 64 * 1024 * 8,
            tag_bits: 1024 * 23,
            read_width: 512,
            ports: 4,
            serial_lookup: false,
        }
    }

    /// The 32 K-entry, 42-bit signature cache (Section 5.6; 9-bit tags).
    pub fn signature_cache() -> Self {
        SramStructure {
            bits: 32 * 1024 * 42,
            tag_bits: 32 * 1024 * 9,
            read_width: 42,
            ports: 1,
            serial_lookup: true,
        }
    }

    /// The 4 K-frame sequence tag array (~20 bits per frame, 12-bit head
    /// hashes checked on lookup).
    pub fn sequence_tag_array() -> Self {
        SramStructure {
            bits: 4 * 1024 * 20,
            tag_bits: 4 * 1024 * 12,
            read_width: 20,
            ports: 1,
            serial_lookup: true,
        }
    }

    /// Dynamic energy of a *data* read, in pJ.
    ///
    /// Scales the paper's 18 pJ L1D data-read anchor by capacity (square
    /// root — bitline/wordline growth) and datapath width (linear in the
    /// bits actually read out, with a floor for decode overhead).
    pub fn data_read_pj(&self) -> f64 {
        let cap_scale = ((self.bits as f64) / anchor::L1D_BITS).sqrt().max(0.05);
        let width_scale = (f64::from(self.read_width) / anchor::L1D_WIDTH).max(0.05);
        // 2.5 pJ decode/wordline floor per sqrt-capacity: lands the 42-bit
        // signature read at the paper's ~6.5 pJ.
        anchor::L1D_DATA_READ_PJ * cap_scale * width_scale + 2.5 * cap_scale
    }

    /// Dynamic energy of the tag phase, in pJ.
    ///
    /// Serial structures pay a decode into the full array (calibrated to
    /// the paper's combined 30 pJ); parallel structures hide the tag check
    /// inside the data access (CACTI's L1D leaves ~1 pJ beyond its data
    /// reads).
    pub fn tag_check_pj(&self) -> f64 {
        if self.serial_lookup {
            anchor::SERIAL_TAG_PJ_PER_SQRT_BIT * (self.bits as f64).sqrt() * f64::from(self.ports)
        } else {
            anchor::PARALLEL_TAG_PJ
        }
    }

    /// Energy of one lookup that misses (no data read).
    ///
    /// Serial-lookup structures stop after the tag check; parallel
    /// structures burn the data read regardless.
    pub fn lookup_miss_pj(&self) -> f64 {
        if self.serial_lookup {
            self.tag_check_pj()
        } else {
            self.tag_check_pj() + f64::from(self.ports) * self.data_read_pj()
        }
    }

    /// Energy of one lookup that hits (tag check plus one data read).
    pub fn lookup_hit_pj(&self) -> f64 {
        if self.serial_lookup {
            self.tag_check_pj() + self.data_read_pj()
        } else {
            self.tag_check_pj() + f64::from(self.ports) * self.data_read_pj()
        }
    }
}

/// The Section 5.9 comparison: average per-access dynamic energy of the
/// LT-cords structures relative to the L1D, at a given L1D miss rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerComparison {
    /// Average L1D dynamic energy per access (pJ).
    pub l1d_pj_per_access: f64,
    /// Average LT-cords dynamic energy per access (pJ).
    pub ltcords_pj_per_access: f64,
    /// LT-cords leakage relative to the L1D (before high-Vt mitigation).
    pub leakage_ratio: f64,
}

impl PowerComparison {
    /// Computes the comparison for an L1D miss rate in `[0, 1]`.
    ///
    /// Every committed access performs an L1D access plus LT-cords tag
    /// checks of the signature cache and sequence tag array; only misses
    /// (signature activity) read signature data (the paper charges ~6.5 pJ
    /// once per L1D miss).
    ///
    /// # Panics
    ///
    /// Panics if `miss_rate` is outside `[0, 1]`.
    pub fn at_miss_rate(miss_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&miss_rate), "miss rate must be in [0,1]");
        let l1d = SramStructure::l1d();
        let sc = SramStructure::signature_cache();
        let sta = SramStructure::sequence_tag_array();
        let l1d_pj = l1d.lookup_hit_pj();
        let ltc_tags = sc.lookup_miss_pj() + sta.lookup_miss_pj();
        let ltc_data = miss_rate * (sc.data_read_pj() + sta.data_read_pj());
        PowerComparison {
            l1d_pj_per_access: l1d_pj,
            ltcords_pj_per_access: ltc_tags + ltc_data,
            leakage_ratio: anchor::LTC_LEAKAGE_MW / anchor::L1D_LEAKAGE_MW,
        }
    }

    /// LT-cords dynamic power as a fraction of L1D dynamic power (the paper
    /// reports ~48 % at a conservative 20 % miss rate).
    pub fn dynamic_ratio(&self) -> f64 {
        self.ltcords_pj_per_access / self.l1d_pj_per_access
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1d_anchor_reproduced() {
        let l1d = SramStructure::l1d();
        // Parallel 4-port lookup: ~73 pJ total per the paper's CACTI run
        // (the interpolated model lands within ~35%).
        let total = l1d.lookup_hit_pj();
        assert!(
            (60.0..=95.0).contains(&total),
            "L1D access energy {total:.1} pJ should be near the 73 pJ anchor"
        );
    }

    #[test]
    fn serial_tag_phases_match_30_pj_anchor() {
        let combined = SramStructure::signature_cache().tag_check_pj()
            + SramStructure::sequence_tag_array().tag_check_pj();
        assert!(
            (combined - 30.0).abs() < 0.5,
            "combined serial tag energy {combined:.1} pJ should calibrate to 30 pJ"
        );
    }

    #[test]
    fn signature_read_is_cheap_despite_size() {
        // "signature read energy is estimated at below 6pJ" / "an
        // additional 6.5pJ to read signature data" (Section 5.9).
        let sc = SramStructure::signature_cache();
        assert!(
            sc.data_read_pj() < 7.0,
            "signature data read {:.1} pJ should be near the paper's ~6.5 pJ",
            sc.data_read_pj()
        );
        // And far below an L1D line read despite the larger structure.
        assert!(sc.data_read_pj() < SramStructure::l1d().data_read_pj() / 2.0);
    }

    #[test]
    fn serial_lookup_skips_data_on_miss() {
        // The point of the serial organization (Section 5.9): "the majority
        // of accesses to LT-cords structures require only a tag check and
        // not a data read operation".
        let sc = SramStructure::signature_cache();
        assert!(sc.lookup_miss_pj() < sc.lookup_hit_pj());
        let saved = sc.lookup_hit_pj() - sc.lookup_miss_pj();
        assert!((saved - sc.data_read_pj()).abs() < 1e-9, "a miss skips exactly the data read");
    }

    #[test]
    fn paper_comparison_at_20_percent_misses() {
        // "Conservatively estimating a 20% L1D cache miss rate, the average
        // power dissipation of LT-cords structures is about 48% of L1D
        // dissipation" (Section 5.9).
        let c = PowerComparison::at_miss_rate(0.2);
        let ratio = c.dynamic_ratio();
        assert!(
            (0.25..=0.65).contains(&ratio),
            "LT-cords/L1D dynamic ratio {ratio:.2} should be near the paper's ~0.48"
        );
    }

    #[test]
    fn leakage_ratio_matches_cacti_quote() {
        let c = PowerComparison::at_miss_rate(0.2);
        assert!((c.leakage_ratio - 800.0 / 230.0).abs() < 1e-9);
    }

    #[test]
    fn higher_miss_rates_cost_more_signature_energy() {
        let low = PowerComparison::at_miss_rate(0.05);
        let high = PowerComparison::at_miss_rate(0.6);
        assert!(high.ltcords_pj_per_access > low.ltcords_pj_per_access);
        assert_eq!(high.l1d_pj_per_access, low.l1d_pj_per_access);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn rejects_bad_miss_rate() {
        let _ = PowerComparison::at_miss_rate(1.5);
    }
}
