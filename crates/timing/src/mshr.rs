//! Miss-status holding register (MSHR) occupancy.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bounds the number of outstanding misses (64 L1D MSHRs in Table 1).
///
/// When all MSHRs are busy a new miss must wait for the earliest
/// outstanding one to complete — the stall the paper's "MSHR contention"
/// modelling captures.
#[derive(Debug, Default)]
pub struct MshrFile {
    capacity: usize,
    // Completion times of outstanding misses (min-heap via Reverse).
    outstanding: BinaryHeap<Reverse<OrderedF64>>,
    stalls: u64,
}

/// `f64` wrapper ordered totally (NaN-free by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile { capacity, outstanding: BinaryHeap::new(), stalls: 0 }
    }

    /// Admits a miss that wants to start at `at`: returns the (possibly
    /// delayed) admission time. Completed entries are retired lazily.
    pub fn admit(&mut self, at: f64) -> f64 {
        // Retire entries that completed by `at`.
        while let Some(&Reverse(OrderedF64(t))) = self.outstanding.peek() {
            if t <= at {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        if self.outstanding.len() < self.capacity {
            return at;
        }
        // Full: wait for the earliest completion.
        let Reverse(OrderedF64(earliest)) = self.outstanding.pop().expect("full heap is non-empty");
        self.stalls += 1;
        at.max(earliest)
    }

    /// Registers the completion time of an admitted miss.
    pub fn track(&mut self, completes_at: f64) {
        self.outstanding.push(Reverse(OrderedF64(completes_at)));
    }

    /// Number of admissions that had to wait for a free MSHR.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Outstanding entries (diagnostics; includes lazily unretired ones).
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_without_delay() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.admit(0.0), 0.0);
        m.track(100.0);
        assert_eq!(m.admit(1.0), 1.0);
        m.track(200.0);
        assert_eq!(m.stalls(), 0);
    }

    #[test]
    fn full_file_delays_to_earliest_completion() {
        let mut m = MshrFile::new(2);
        m.track(100.0);
        m.track(200.0);
        assert_eq!(m.admit(5.0), 100.0, "waits for the earliest completion");
        assert_eq!(m.stalls(), 1);
    }

    #[test]
    fn completed_entries_free_slots() {
        let mut m = MshrFile::new(1);
        m.track(10.0);
        assert_eq!(m.admit(20.0), 20.0, "completed entry retired lazily");
        assert_eq!(m.stalls(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_capacity() {
        let _ = MshrFile::new(0);
    }
}
