//! Occupancy-modelled shared busses.

/// A bus modelled as a single resource with an occupancy per transaction.
///
/// Requests arriving while the bus is busy queue behind it; the returned
/// grant time reflects the queuing delay. This is the level of modelling
/// the paper applies ("we extend SimpleScalar to model … queuing accurately
/// at both the L1/L2 and L2/memory busses", Section 5).
#[derive(Debug, Clone)]
pub struct Bus {
    /// Per-channel next-free times (the paper models two channels between
    /// the L1 and L2 so a request can issue during a fill).
    channels: Vec<f64>,
    busy_cycles: f64,
    transactions: u64,
}

impl Default for Bus {
    fn default() -> Self {
        Bus::new()
    }
}

impl Bus {
    /// Creates an idle single-channel bus.
    pub fn new() -> Self {
        Bus::with_channels(1)
    }

    /// Creates an idle bus with `channels` independent channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn with_channels(channels: usize) -> Self {
        assert!(channels > 0, "bus needs at least one channel");
        Bus { channels: vec![0.0; channels], busy_cycles: 0.0, transactions: 0 }
    }

    #[inline]
    fn best_channel(&self) -> usize {
        let mut best = 0;
        for (i, &t) in self.channels.iter().enumerate().skip(1) {
            if t < self.channels[best] {
                best = i;
            }
        }
        best
    }

    /// Requests the bus at time `at` for `occupancy` cycles; returns the
    /// grant (start) time on the least-loaded channel.
    pub fn acquire(&mut self, at: f64, occupancy: f64) -> f64 {
        let ch = self.best_channel();
        let start = at.max(self.channels[ch]);
        self.channels[ch] = start + occupancy;
        self.busy_cycles += occupancy;
        self.transactions += 1;
        start
    }

    /// Earliest time a new transaction could start if requested at `at`.
    pub fn earliest_grant(&self, at: f64) -> f64 {
        let ch = self.best_channel();
        at.max(self.channels[ch])
    }

    /// Whether any channel would be free at time `at`.
    pub fn is_free_at(&self, at: f64) -> bool {
        let ch = self.best_channel();
        at >= self.channels[ch]
    }

    /// Queuing delay a request issued at `at` would see.
    pub fn queuing_delay(&self, at: f64) -> f64 {
        self.earliest_grant(at) - at
    }

    /// Total cycles of occupancy accumulated.
    pub fn busy_cycles(&self) -> f64 {
        self.busy_cycles
    }

    /// Transactions granted.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_grants_immediately() {
        let mut b = Bus::new();
        assert_eq!(b.acquire(10.0, 3.0), 10.0);
    }

    #[test]
    fn busy_bus_queues() {
        let mut b = Bus::new();
        b.acquire(10.0, 3.0);
        assert_eq!(b.acquire(11.0, 3.0), 13.0, "second request waits");
        assert_eq!(b.acquire(100.0, 3.0), 100.0, "later request sees idle bus");
    }

    #[test]
    fn occupancy_accumulates() {
        let mut b = Bus::new();
        b.acquire(0.0, 2.0);
        b.acquire(0.0, 2.0);
        assert_eq!(b.busy_cycles(), 4.0);
        assert_eq!(b.transactions(), 2);
    }

    #[test]
    fn is_free_reflects_schedule() {
        let mut b = Bus::new();
        b.acquire(0.0, 5.0);
        assert!(!b.is_free_at(4.0));
        assert!(b.is_free_at(5.0));
    }
}
