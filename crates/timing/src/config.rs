//! The Table 1 machine configuration.

use ltc_cache::HierarchyConfig;

/// Timing parameters of the simulated machine (paper Table 1).
///
/// All latencies are in core cycles at the paper's 4 GHz clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Issue/retire width (8 instructions per cycle).
    pub issue_width: u32,
    /// Reorder buffer entries (256).
    pub rob_entries: u32,
    /// L1 data cache MSHRs (64).
    pub mshrs: u32,
    /// L1D hit latency (2 cycles).
    pub l1_latency: u32,
    /// L2 hit latency (20 cycles).
    pub l2_latency: u32,
    /// Main-memory latency: 200 cycles for the first 32 bytes plus 3 per
    /// additional 32 bytes — 203 for a 64-byte line.
    pub mem_latency: u32,
    /// L1/L2 bus occupancy per line transfer (1-cycle request + 64 B at
    /// 32 B/cycle = 3 cycles).
    pub l2_bus_occupancy: u32,
    /// Independent L1/L2 channels ("two channels between the L1 and L2,
    /// allowing for an L2 request to be issued while an L1 fill is in
    /// progress", Section 5).
    pub l2_bus_channels: u32,
    /// Memory bus occupancy per line in core cycles. Table 1's "32-byte
    /// wide, 1333 MHz" bus read as double-pumped (85 GB/s effective, as the
    /// paper's own Figure 12 traffic levels and Table 3 speedups of
    /// bandwidth-hungry codes require): a 64-byte line occupies ~3 cycles
    /// of a 4 GHz core's time.
    pub mem_bus_occupancy: u32,
    /// Prefetch request queue capacity (128).
    pub prefetch_queue: usize,
    /// Model every L1 access as a perfect hit (the Table 3 "Perfect L1"
    /// upper bound).
    pub perfect_l1: bool,
    /// Accesses to run before measurement starts (SMARTS-style warm-up).
    pub warmup_accesses: u64,
}

impl TimingConfig {
    /// The paper's baseline machine.
    pub fn paper() -> Self {
        TimingConfig {
            hierarchy: HierarchyConfig::paper(),
            issue_width: 8,
            rob_entries: 256,
            mshrs: 64,
            l1_latency: 2,
            l2_latency: 20,
            mem_latency: 203,
            l2_bus_occupancy: 3,
            l2_bus_channels: 2,
            mem_bus_occupancy: 3,
            prefetch_queue: 128,
            perfect_l1: false,
            warmup_accesses: 0,
        }
    }

    /// The Table 3 perfect-L1 configuration.
    pub fn perfect_l1() -> Self {
        TimingConfig { perfect_l1: true, ..TimingConfig::paper() }
    }

    /// The Table 3 4 MB L2 configuration (same latency, conservatively).
    pub fn big_l2() -> Self {
        TimingConfig { hierarchy: HierarchyConfig::paper_4mb_l2(), ..TimingConfig::paper() }
    }

    /// Sets the warm-up budget.
    pub fn with_warmup(mut self, accesses: u64) -> Self {
        self.warmup_accesses = accesses;
        self
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_1() {
        let c = TimingConfig::paper();
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.mshrs, 64);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.l2_latency, 20);
        assert_eq!(c.mem_latency, 203);
    }

    #[test]
    fn variants_toggle_the_right_knobs() {
        assert!(TimingConfig::perfect_l1().perfect_l1);
        assert_eq!(TimingConfig::big_l2().hierarchy.l2.total_bytes, 4 << 20);
        assert_eq!(TimingConfig::paper().with_warmup(100).warmup_accesses, 100);
    }
}
