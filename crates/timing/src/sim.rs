//! The ROB-window timing simulator.

use std::collections::{HashMap, VecDeque};

use ltc_cache::{Hierarchy, MemLevel};
use ltc_predictors::{PrefetchLevel, PrefetchRequest, Prefetcher, RequestQueue};
use ltc_trace::TraceSource;

use crate::bus::Bus;
use crate::config::TimingConfig;
use crate::mshr::MshrFile;
use crate::report::TimingReport;

/// Cycle-approximate simulator of the Table 1 machine.
///
/// See the crate docs for the modelling approach. One instance is reusable
/// across runs; every [`TimingSim::run`] starts from cold caches.
#[derive(Debug, Clone)]
pub struct TimingSim {
    cfg: TimingConfig,
}

impl TimingSim {
    /// Creates a simulator for the given machine.
    pub fn new(cfg: TimingConfig) -> Self {
        TimingSim { cfg }
    }

    /// Runs `accesses` memory references from `source` under `predictor`,
    /// returning measured results (after the configured warm-up).
    pub fn run<S, P>(&self, source: &mut S, predictor: &mut P, accesses: u64) -> TimingReport
    where
        S: TraceSource,
        P: Prefetcher + ?Sized,
    {
        let cfg = self.cfg;
        let width = f64::from(cfg.issue_width);
        let line_bytes = cfg.hierarchy.l1.line_bytes;
        let mut hierarchy = Hierarchy::new(cfg.hierarchy);
        let mut l2_bus = Bus::with_channels(cfg.l2_bus_channels as usize);
        let mut mem_bus = Bus::new();
        let mut mshr = MshrFile::new(cfg.mshrs as usize);
        let mut queue = RequestQueue::new(cfg.prefetch_queue);
        // Lines filled by in-flight prefetches: line -> data-ready cycle.
        let mut pending_fill: HashMap<u64, f64> = HashMap::new();
        // Issued prefetches waiting for their data: applied to the
        // functional hierarchy at *arrival* time, not issue time — filling
        // early would evict the victim before its true last touch.
        let mut in_flight: VecDeque<(f64, PrefetchRequest, MemLevel)> = VecDeque::new();
        // In-order retirement bookkeeping: completions of memory ops.
        let mut mem_ops: VecDeque<(u64, f64)> = VecDeque::new();
        let mut retire_frontier = 0.0f64;
        let mut next_issue = 0.0f64;
        let mut instr_index = 0u64;
        // Completion of the most recent *dependent* load: pointer-chasing
        // loads form a chain through this register, while independent
        // accesses (array elements, node fields) overlap freely — the
        // memory-level-parallelism structure of Section 2.
        let mut chain_completion = 0.0f64;
        let mut max_completion = 0.0f64;
        // Monotone wall-clock frontier for prefetch issue decisions (event
        // timestamps themselves are out of order in this model).
        let mut drain_clock = 0.0f64;
        let mut last_drain = 0.0f64;
        let mut requests: Vec<PrefetchRequest> = Vec::new();
        let mut metadata_pending = 0u64;
        let mut last_traffic_total = 0u64;

        let mut report =
            TimingReport { predictor: predictor.name().to_string(), ..TimingReport::default() };
        // Warm-up snapshots.
        let mut measured_from_cycle = 0.0f64;
        let mut measured_from_instr = 0u64;
        let mut base_data_before = 0u64;
        let mut incorrect_before = 0u64;

        for access_no in 0..accesses {
            let Some(a) = source.next_access() else { break };
            if access_no == cfg.warmup_accesses {
                measured_from_cycle = max_completion.max(next_issue);
                measured_from_instr = instr_index;
                base_data_before = report.bandwidth.base_data_bytes;
                incorrect_before = report.bandwidth.incorrect_prediction_bytes;
                report.l1_misses = 0;
                report.l2_misses = 0;
            }

            // Apply prefetch fills whose data has arrived by now.
            while let Some(&(ready, req, src)) = in_flight.front() {
                if ready > drain_clock {
                    break;
                }
                in_flight.pop_front();
                let outcome = match req.level {
                    PrefetchLevel::L1 => {
                        if hierarchy.l1().contains(req.target) {
                            continue;
                        }
                        report.prefetch_fills += 1;
                        hierarchy.prefetch_into_l1(req.target, req.victim).0
                    }
                    PrefetchLevel::L2 => {
                        if hierarchy.l2().contains(req.target) {
                            continue;
                        }
                        report.prefetch_fills += 1;
                        hierarchy.prefetch_into_l2(req.target).0
                    }
                };
                predictor.on_prefetch_applied(&req, &outcome, src);
            }

            // Non-memory gap instructions consume issue slots.
            next_issue += f64::from(a.gap) / width;
            instr_index += u64::from(a.gap);

            // ROB window: this op cannot issue until instruction
            // (instr_index - rob_entries) has retired. Retirement is in
            // order, so the frontier is the running max of completions of
            // all memory ops at or before that index (gap instructions
            // complete immediately and never gate it).
            let window_floor = instr_index.saturating_sub(u64::from(cfg.rob_entries));
            while let Some(&(idx, comp)) = mem_ops.front() {
                if idx <= window_floor {
                    retire_frontier = retire_frontier.max(comp);
                    mem_ops.pop_front();
                } else {
                    break;
                }
            }
            let issue = next_issue.max(retire_frontier);
            next_issue = issue + 1.0 / width;
            instr_index += 1;

            // Address readiness: pointer-chasing loads wait on the value of
            // the previous link of their chain (the MLP limiter of
            // Section 2).
            let addr_ready = if a.dependent { issue.max(chain_completion) } else { issue };
            drain_clock = drain_clock.max(addr_ready);

            let line = a.addr.line(line_bytes).0;
            let completion = if cfg.perfect_l1 {
                addr_ready + f64::from(cfg.l1_latency)
            } else {
                let out = hierarchy.access(a.addr, a.kind);
                if !out.l1.hit {
                    report.l1_misses += 1;
                }
                if out.level == MemLevel::Memory {
                    report.l2_misses += 1;
                    report.bandwidth.base_data_bytes += line_bytes;
                }
                if out.l1_writeback {
                    // Dirty L1 victim moves over the L1/L2 bus.
                    l2_bus.acquire(addr_ready, f64::from(cfg.l2_bus_occupancy));
                }
                if out.l2_writeback {
                    mem_bus.acquire(addr_ready, f64::from(cfg.mem_bus_occupancy));
                    report.bandwidth.base_data_bytes += line_bytes;
                }
                // A miss on a line whose prefetch is already in flight merges
                // into the outstanding MSHR: it completes when the prefetch
                // data arrives, without a second bus transfer.
                let merged = if out.level != MemLevel::L1 {
                    pending_fill.get(&line).copied().filter(|&t| t >= addr_ready)
                } else {
                    None
                };
                let completion = match (merged, out.level) {
                    (Some(t), _) => t.max(addr_ready + f64::from(cfg.l1_latency)),
                    (None, MemLevel::L1) => {
                        // A hit on a block whose prefetch is still in flight
                        // waits for the data to arrive.
                        let base = addr_ready + f64::from(cfg.l1_latency);
                        match pending_fill.get(&line) {
                            Some(&t) if t > base => t,
                            _ => base,
                        }
                    }
                    (None, MemLevel::L2) => {
                        let start = mshr.admit(addr_ready);
                        let grant = l2_bus.acquire(start, f64::from(cfg.l2_bus_occupancy));
                        let completion = grant + f64::from(cfg.l2_latency);
                        mshr.track(completion);
                        completion
                    }
                    (None, MemLevel::Memory) => {
                        let start = mshr.admit(addr_ready);
                        let grant = l2_bus.acquire(start, f64::from(cfg.l2_bus_occupancy));
                        let mem_grant = mem_bus.acquire(
                            grant + f64::from(cfg.l2_latency),
                            f64::from(cfg.mem_bus_occupancy),
                        );
                        let completion = mem_grant + f64::from(cfg.mem_latency);
                        mshr.track(completion);
                        completion
                    }
                };
                // Predictor hooks and prefetch issue. The issue budget
                // reflects the wall-clock elapsed since the last drain: the
                // bus drains the request queue during the idle stretches
                // between demand bursts (e.g. while a pointer chain waits on
                // memory), which per-access instantaneous checks would miss.
                predictor.on_access(&a, &out, &mut requests);
                for req in requests.drain(..) {
                    queue.push(req);
                }
                let elapsed = (drain_clock - last_drain).max(0.0);
                let budget = ((elapsed / f64::from(cfg.l2_bus_occupancy)) as usize + 2).min(32);
                last_drain = drain_clock;
                self.issue_prefetches(
                    &mut queue,
                    &hierarchy,
                    &mut l2_bus,
                    &mut mem_bus,
                    &mut mshr,
                    &mut pending_fill,
                    &mut in_flight,
                    drain_clock,
                    budget,
                    &mut report,
                );
                // LT-cords metadata traffic occupies the memory bus in
                // 32-byte beats.
                let t = predictor.traffic().total();
                metadata_pending += t - last_traffic_total;
                last_traffic_total = t;
                while metadata_pending >= 32 {
                    mem_bus.acquire(addr_ready, 3.0);
                    metadata_pending -= 32;
                }
                if pending_fill.len() > 4096 {
                    pending_fill.retain(|_, &mut t| t > addr_ready);
                }
                completion
            };

            mem_ops.push_back((instr_index, completion));
            max_completion = max_completion.max(completion);
            if a.kind.is_load() && a.dependent {
                chain_completion = completion;
            }
            if access_no >= cfg.warmup_accesses {
                report.accesses += 1;
            }
        }

        report.instructions = instr_index - measured_from_instr;
        report.cycles = (max_completion.max(next_issue) - measured_from_cycle).max(1.0);
        report.mshr_stalls = mshr.stalls();
        report.prefetch_drops = queue.dropped();
        let traffic = predictor.traffic();
        report.bandwidth.sequence_creation_bytes =
            traffic.sequence_write_bytes + traffic.confidence_update_bytes;
        report.bandwidth.sequence_fetch_bytes = traffic.sequence_read_bytes;
        report.bandwidth.base_data_bytes -= base_data_before;
        report.bandwidth.incorrect_prediction_bytes -= incorrect_before;
        report
    }

    /// Issues queued prefetches while the L1/L2 bus is free at `now`
    /// (the paper's issue rule, Section 5). Issue only reserves the busses
    /// and MSHR and computes the arrival time; the functional fill is
    /// applied by the caller once the data arrives.
    #[allow(clippy::too_many_arguments)]
    fn issue_prefetches(
        &self,
        queue: &mut RequestQueue,
        hierarchy: &Hierarchy,
        l2_bus: &mut Bus,
        mem_bus: &mut Bus,
        mshr: &mut MshrFile,
        pending_fill: &mut HashMap<u64, f64>,
        in_flight: &mut VecDeque<(f64, PrefetchRequest, MemLevel)>,
        now: f64,
        budget: usize,
        report: &mut TimingReport,
    ) {
        let cfg = &self.cfg;
        let line_bytes = cfg.hierarchy.l1.line_bytes;
        // The paper issues prefetches "when the L1/L2 bus is free". The
        // budget is the bus-capacity credit accumulated since the last
        // issue opportunity (idle stretches between demand bursts), so
        // prefetch issue is rate-limited to what a free bus could carry;
        // the bus acquisition below then models the queuing contention of
        // each individual transfer.
        for _ in 0..budget {
            let Some(req) = queue.pop() else { return };
            let target_line = req.target.line(line_bytes).0;
            let resident = match req.level {
                PrefetchLevel::L1 => hierarchy.l1().contains(req.target),
                PrefetchLevel::L2 => hierarchy.l2().contains(req.target),
            };
            // MSHR merge: a request for a line already in flight is absorbed
            // (GHB's overlapping depth-4 windows re-request lines heavily).
            let in_flight_already =
                pending_fill.get(&target_line).map(|&t| t > now).unwrap_or(false);
            if resident || in_flight_already {
                continue;
            }
            let source_level =
                if hierarchy.l2().contains(req.target) { MemLevel::L2 } else { MemLevel::Memory };
            let start = mshr.admit(now);
            let grant = l2_bus.acquire(start, f64::from(cfg.l2_bus_occupancy));
            let ready = match source_level {
                MemLevel::Memory => {
                    let mem_grant = mem_bus.acquire(
                        grant + f64::from(cfg.l2_latency),
                        f64::from(cfg.mem_bus_occupancy),
                    );
                    // The line moves over the memory bus here instead of on
                    // the (now eliminated) demand miss: it is base data.
                    report.bandwidth.base_data_bytes += line_bytes;
                    mem_grant + f64::from(cfg.mem_latency)
                }
                _ => grant + f64::from(cfg.l2_latency),
            };
            mshr.track(ready);
            pending_fill.insert(target_line, ready);
            in_flight.push_back((ready, req, source_level));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_predictors::{DbcpConfig, DbcpPrefetcher, NullPrefetcher};
    use ltc_trace::{Addr, MemoryAccess, Pc, Replay};

    fn fits_l1_trace(n: usize) -> Replay {
        // 16 lines touched round-robin: everything hits after the first
        // pass.
        let mut v = Vec::new();
        for i in 0..n {
            v.push(MemoryAccess::load(Pc(1), Addr(((i % 16) as u64) * 64)).with_gap(7));
        }
        Replay::once(v)
    }

    fn streaming_trace(n: usize) -> Replay {
        // Every access a fresh line: misses all the way to memory.
        let mut v = Vec::new();
        for i in 0..n {
            v.push(MemoryAccess::load(Pc(1), Addr((i as u64) * 64)).with_gap(7));
        }
        Replay::once(v)
    }

    fn dependent_streaming_trace(n: usize) -> Replay {
        let mut v = Vec::new();
        for i in 0..n {
            v.push(
                MemoryAccess::load(Pc(1), Addr((i as u64) * 64)).with_gap(7).with_dependent(true),
            );
        }
        Replay::once(v)
    }

    #[test]
    fn cache_resident_code_reaches_near_peak_ipc() {
        let mut t = fits_l1_trace(20_000);
        let r =
            TimingSim::new(TimingConfig::paper()).run(&mut t, &mut NullPrefetcher::new(), u64::MAX);
        // 8 instructions per access, issue width 8: IPC should approach 8.
        assert!(r.ipc() > 5.0, "resident workload IPC {} too low", r.ipc());
    }

    #[test]
    fn memory_bound_code_is_slow() {
        let mut t = streaming_trace(20_000);
        let r =
            TimingSim::new(TimingConfig::paper()).run(&mut t, &mut NullPrefetcher::new(), u64::MAX);
        assert!(r.ipc() < 3.0, "streaming workload IPC {} too high", r.ipc());
        assert!(r.l2_misses > 10_000);
    }

    #[test]
    fn dependent_chains_are_slower_than_independent_misses() {
        let mut ti = streaming_trace(10_000);
        let mut td = dependent_streaming_trace(10_000);
        let sim = TimingSim::new(TimingConfig::paper());
        let ri = sim.run(&mut ti, &mut NullPrefetcher::new(), u64::MAX);
        let rd = sim.run(&mut td, &mut NullPrefetcher::new(), u64::MAX);
        assert!(
            rd.ipc() < ri.ipc() * 0.5,
            "dependent {} vs independent {}: MLP must matter",
            rd.ipc(),
            ri.ipc()
        );
    }

    #[test]
    fn perfect_l1_bounds_all_configurations() {
        let sim = TimingSim::new(TimingConfig::paper());
        let perfect = TimingSim::new(TimingConfig::perfect_l1());
        let mut t1 = streaming_trace(10_000);
        let mut t2 = streaming_trace(10_000);
        let base = sim.run(&mut t1, &mut NullPrefetcher::new(), u64::MAX);
        let ideal = perfect.run(&mut t2, &mut NullPrefetcher::new(), u64::MAX);
        assert!(ideal.ipc() > base.ipc(), "perfect L1 must dominate");
        assert!(ideal.speedup_pct_over(&base) > 50.0);
    }

    #[test]
    fn prefetching_recovers_speedup_on_recurring_pattern() {
        // A recurring *dependent* conflict loop: the misses serialize on the
        // pointer chain, so eliminating them collapses the chain latency.
        // (An independent miss loop would be bandwidth-bound, where the
        // paper itself observes prefetching cannot help — Section 5.8.)
        let span = 512 * 64;
        let mut v = Vec::new();
        for _ in 0..60 {
            for set in 0..64u64 {
                for alias in 0..4u64 {
                    v.push(
                        MemoryAccess::load(Pc(0x400 + alias), Addr(set * 64 + alias * span))
                            .with_gap(3)
                            .with_dependent(true),
                    );
                }
            }
        }
        let sim = TimingSim::new(TimingConfig::paper());
        let mut base_t = Replay::once(v.clone());
        let mut pf_t = Replay::once(v);
        let base = sim.run(&mut base_t, &mut NullPrefetcher::new(), u64::MAX);
        let mut dbcp = DbcpPrefetcher::new(DbcpConfig::unlimited());
        let pf = sim.run(&mut pf_t, &mut dbcp, u64::MAX);
        assert!(
            pf.speedup_pct_over(&base) > 10.0,
            "DBCP speedup {:.1}% too small (base {:.3}, pf {:.3})",
            pf.speedup_pct_over(&base),
            base.ipc(),
            pf.ipc()
        );
    }

    #[test]
    fn warmup_excludes_cold_misses_from_stats() {
        let mut t = fits_l1_trace(10_000);
        let cfg = TimingConfig::paper().with_warmup(1000);
        let r = TimingSim::new(cfg).run(&mut t, &mut NullPrefetcher::new(), u64::MAX);
        assert_eq!(r.l1_misses, 0, "all 16 cold misses land in warm-up");
        assert_eq!(r.accesses, 9000);
    }

    #[test]
    fn bandwidth_accounts_fills() {
        let mut t = streaming_trace(5_000);
        let r =
            TimingSim::new(TimingConfig::paper()).run(&mut t, &mut NullPrefetcher::new(), u64::MAX);
        assert!(r.bandwidth.base_data_bytes >= 5_000 * 64 / 2);
        assert!(r.bandwidth.bytes_per_instruction(r.instructions) > 0.0);
    }
}
