//! Checkpoint/restore parity property tests (PR 7 satellite).
//!
//! A checkpoint taken mid-stream and restored into a *fresh*
//! identically-configured source must resume element-identically to the
//! uninterrupted stream — that is the whole byte-identity guarantee the
//! segmented-streaming fast path rests on. Proptest drives every
//! generator family (including the phase and interleave compositions,
//! the take adapter and recorded replays) to an arbitrary cut point with
//! arbitrary seeds, snapshots, restores, and compares; the snapshot also
//! round-trips through its JSON serialization first, so the on-disk
//! checkpoint store is covered by the same parity bar.

use proptest::prelude::*;

use ltc_trace::gen::{
    ChaseConfig, ChaseGen, GapModel, HashWindowConfig, HashWindowGen, IndirectConfig, IndirectGen,
    Layout, PhaseMix, RandomConfig, RandomGen, SweepConfig, SweepGen, Traversal, TreeConfig,
    TreeGen, TreeLayout,
};
use ltc_trace::{
    suite, Addr, BoxedSource, MemoryAccess, MultiProgram, Pc, Replay, SourceState, TraceSource,
};

type Builder = fn(u64) -> BoxedSource;

/// One builder per generator family and composition, deliberately
/// configured onto the stateful paths (jittered gaps so the RNG words
/// matter, mutation/churn so the mutable tables travel with the state).
fn builders() -> Vec<(&'static str, Builder)> {
    vec![
        ("sweep", |seed| {
            Box::new(SweepGen::new(SweepConfig {
                arrays: vec![1 << 14, 1 << 13],
                strides: vec![64, 128],
                store_every: 4,
                gap: GapModel::jittered(3, 2),
                seed,
                ..SweepConfig::default()
            }))
        }),
        ("chase-static", |seed| {
            Box::new(ChaseGen::new(ChaseConfig {
                nodes: 256,
                fields_per_node: 2,
                gap: GapModel::jittered(2, 1),
                seed,
                ..ChaseConfig::default()
            }))
        }),
        ("chase-mutating-hot", |seed| {
            Box::new(ChaseGen::new(ChaseConfig {
                nodes: 128,
                layout: Layout::Sequential,
                mutation_rate: 0.1,
                chain_serialization: 0.5,
                hot_fraction: 0.3,
                gap: GapModel::fixed(1),
                seed,
                ..ChaseConfig::default()
            }))
        }),
        ("tree", |seed| {
            Box::new(TreeGen::new(TreeConfig {
                depth: 6,
                traversal: Traversal::Paths { count: 5 },
                layout: TreeLayout::DfsOrder,
                accesses_per_node: 2,
                gap: GapModel::jittered(4, 3),
                seed,
                ..TreeConfig::default()
            }))
        }),
        ("random", |seed| {
            Box::new(RandomGen::new(RandomConfig {
                footprint: 1 << 16,
                run_lines: 3,
                touches_per_line: 2,
                gap: GapModel::jittered(2, 2),
                seed,
                ..RandomConfig::default()
            }))
        }),
        ("hash-window", |seed| {
            Box::new(HashWindowGen::new(HashWindowConfig {
                window_bytes: 4096,
                table_bytes: 8192,
                window_per_probe: 3,
                gap: GapModel::jittered(1, 1),
                seed,
                ..HashWindowConfig::default()
            }))
        }),
        ("indirect-churning", |seed| {
            Box::new(IndirectGen::new(IndirectConfig {
                gathers_per_pass: 64,
                data_elems: 128,
                churn: 0.25,
                store_result: true,
                gap: GapModel::jittered(2, 1),
                seed,
                ..IndirectConfig::default()
            }))
        }),
        ("phase-mix", |seed| {
            Box::new(PhaseMix::new(vec![
                (
                    Box::new(SweepGen::new(SweepConfig {
                        arrays: vec![1 << 12],
                        gap: GapModel::jittered(2, 2),
                        seed,
                        ..SweepConfig::default()
                    })),
                    100,
                ),
                (
                    Box::new(RandomGen::new(RandomConfig {
                        footprint: 1 << 14,
                        seed,
                        ..RandomConfig::default()
                    })),
                    70,
                ),
            ]))
        }),
        ("multi-program", |seed| {
            Box::new(MultiProgram::new(vec![
                (
                    Box::new(RandomGen::new(RandomConfig {
                        footprint: 1 << 14,
                        seed,
                        ..RandomConfig::default()
                    })),
                    50,
                    0,
                ),
                (
                    Box::new(ChaseGen::new(ChaseConfig {
                        nodes: 64,
                        mutation_rate: 0.2,
                        seed,
                        ..ChaseConfig::default()
                    })),
                    80,
                    0x1_0000_0000,
                ),
            ]))
        }),
        ("take", |seed| {
            let inner = RandomGen::new(RandomConfig {
                footprint: 1 << 14,
                gap: GapModel::jittered(3, 3),
                seed,
                ..RandomConfig::default()
            });
            Box::new(inner.take_accesses(900))
        }),
        ("replay", |seed| {
            let v: Vec<MemoryAccess> =
                (0..1_200u64).map(|i| MemoryAccess::load(Pc(seed ^ i), Addr(i * 64))).collect();
            Box::new(Replay::once(v))
        }),
    ]
}

/// Snapshot `source` after `cut` accesses, restore into `fresh`, and
/// assert the resumed stream matches the uninterrupted one for `tail`
/// further accesses. The state goes through JSON on the way.
fn assert_resumes(
    mut source: BoxedSource,
    mut fresh: BoxedSource,
    cut: usize,
    tail: usize,
) -> Result<(), TestCaseError> {
    for _ in 0..cut {
        prop_assert!(source.next_access().is_some(), "sources must outlast the cut");
    }
    let state = source.checkpoint().expect("every built-in source checkpoints");
    let revived: SourceState =
        serde::Deserialize::from_value(&serde_json::parse(&serde_json::to_string(&state)).unwrap())
            .expect("state survives its JSON form");
    prop_assert_eq!(&revived, &state);
    fresh.restore(&revived).expect("fresh same-config source accepts the state");
    for i in 0..tail {
        prop_assert_eq!(
            fresh.next_access(),
            source.next_access(),
            "restored stream diverges {} accesses after the cut",
            i
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generator family resumes element-identically from a
    /// mid-stream snapshot restored into a fresh source.
    #[test]
    fn generators_resume_identically_after_restore(
        which in 0usize..builders().len(),
        cut in 0usize..800,
        seed in 0u64..1_000,
    ) {
        let (name, build) = builders()[which];
        let _ = name;
        assert_resumes(build(seed), build(seed), cut, 200)?;
    }

    /// The shipped benchmark suite (the compositions the engine actually
    /// runs) upholds the same parity bar.
    #[test]
    fn suite_benchmarks_resume_identically_after_restore(
        which in 0usize..suite::benchmarks().len(),
        cut in 0usize..600,
        seed in 1u64..64,
    ) {
        let entry = &suite::benchmarks()[which];
        assert_resumes(entry.build(seed), entry.build(seed), cut, 150)?;
    }

    /// A snapshot restored into a *differently* configured source is
    /// refused (never silently misapplied): seeds differ, so derived
    /// tables differ, and states that carry positions beyond the smaller
    /// configuration's ranges must error rather than corrupt.
    #[test]
    fn restore_refuses_or_stays_consistent_across_configs(
        cut in 1usize..400,
        seed in 0u64..100,
    ) {
        let mut big = ChaseGen::new(ChaseConfig { nodes: 4096, seed, ..ChaseConfig::default() });
        for _ in 0..cut + 3000 {
            big.next_access();
        }
        let state = big.checkpoint().unwrap();
        let mut small =
            ChaseGen::new(ChaseConfig { nodes: 8, seed, ..ChaseConfig::default() });
        // 4096-node positions exceed the 8-node generator's range for
        // almost every cut; whenever restore *does* accept, the stream
        // must still be well-formed (produce accesses, not panic).
        if small.restore(&state).is_ok() {
            for _ in 0..16 {
                prop_assert!(small.next_access().is_some());
            }
        }
    }
}
