//! Decode-parity property tests (ISSUE 6 satellite a).
//!
//! The batched struct-of-arrays decoder (`TraceBatch::decode`, used by
//! `read_trace`/`read_trace_batch`/`BatchReader`) must agree
//! record-for-record with the original per-record cursor decoder
//! (`read_trace_per_record`) on every well-formed trace, and both must
//! round-trip what `write_trace` produced. Proptest generates arbitrary
//! record mixes — extreme PCs/addresses, all four flag combinations,
//! full-range gaps — so any drift in field offsets, endianness, or flag
//! unpacking between the two decoders fails here.

use proptest::prelude::*;

use ltc_trace::io::{
    read_trace, read_trace_batch, read_trace_per_record, write_trace, BatchReader,
};
use ltc_trace::{AccessKind, Addr, MemoryAccess, Pc, Replay, TraceSource};

/// Strategy for one arbitrary record covering the whole field space.
fn arb_access() -> impl Strategy<Value = MemoryAccess> {
    (any::<u64>(), any::<u64>(), any::<u32>(), any::<bool>(), any::<bool>()).prop_map(
        |(pc, addr, gap, store, dependent)| MemoryAccess {
            pc: Pc(pc),
            addr: Addr(addr),
            kind: if store { AccessKind::Store } else { AccessKind::Load },
            gap,
            dependent,
        },
    )
}

fn encode(trace: &[MemoryAccess]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(&mut Replay::once(trace.to_vec()), &mut buf, u64::MAX).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batched decode == per-record decode == the original records, for
    /// every decoder entry point, on arbitrary traces.
    #[test]
    fn batched_decode_matches_per_record_reference(
        trace in prop::collection::vec(arb_access(), 0..512),
    ) {
        let buf = encode(&trace);

        let mut per_record = read_trace_per_record(buf.as_slice()).unwrap();
        let reference = per_record.collect_accesses(trace.len() + 1);
        prop_assert_eq!(&reference, &trace);

        let batch = read_trace_batch(buf.as_slice()).unwrap();
        prop_assert_eq!(batch.len(), trace.len());
        prop_assert_eq!(batch.to_accesses(), trace.clone());

        let mut replay = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(replay.collect_accesses(trace.len() + 1), trace.clone());

        let mut streaming = BatchReader::new(buf.as_slice()).unwrap();
        prop_assert_eq!(streaming.collect_accesses(trace.len() + 1), trace);
        prop_assert!(streaming.error().is_none());
    }

    /// Decode → re-encode reproduces the byte stream exactly (the count
    /// header field is a streaming placeholder on both sides).
    #[test]
    fn decode_reencode_is_identity(
        trace in prop::collection::vec(arb_access(), 0..256),
    ) {
        let buf = encode(&trace);
        let batch = read_trace_batch(buf.as_slice()).unwrap();
        let reencoded = encode(&batch.to_accesses());
        prop_assert_eq!(reencoded, buf);
    }

    /// A trace truncated mid-record is rejected by both decoders alike.
    #[test]
    fn truncation_rejected_by_both_decoders(
        trace in prop::collection::vec(arb_access(), 1..64),
        cut in 1usize..21,
    ) {
        let mut buf = encode(&trace);
        buf.truncate(buf.len() - cut);
        prop_assert!(read_trace_per_record(buf.as_slice()).is_err());
        prop_assert!(read_trace_batch(buf.as_slice()).is_err());
    }
}
