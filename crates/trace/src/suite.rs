//! The synthetic benchmark suite standing in for SPEC CPU2000 + Olden.
//!
//! Every benchmark in the paper's Table 2 has a named entry here. Each entry
//! is a parameterization of the pattern primitives in [`crate::gen`] chosen
//! to reproduce the benchmark's *structural* memory behaviour: footprint
//! relative to the 64 KB L1D / 1 MB L2 hierarchy, recurrence of the miss
//! sequence, dependence chains, layout regularity, and compute intensity.
//! See `DESIGN.md` §5 for the full mapping rationale.

use crate::gen::{
    ChaseConfig, ChaseGen, GapModel, HashWindowConfig, HashWindowGen, IndirectConfig, IndirectGen,
    Layout, PhaseMix, RandomConfig, RandomGen, SweepConfig, SweepGen, Traversal, TreeConfig,
    TreeGen, TreeLayout,
};
use crate::source::BoxedSource;

/// Benchmark grouping used by the paper's Table 3 means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// SPEC CPU2000 integer.
    SpecInt,
    /// SPEC CPU2000 floating point.
    SpecFp,
    /// Olden pointer-intensive suite.
    Olden,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadClass::SpecInt => f.write_str("SPECint"),
            WorkloadClass::SpecFp => f.write_str("SPECfp"),
            WorkloadClass::Olden => f.write_str("Olden"),
        }
    }
}

/// One named benchmark of the synthetic suite.
#[derive(Debug, Clone, Copy)]
pub struct SuiteEntry {
    /// Benchmark name, matching the paper's tables (e.g. `"mcf"`).
    pub name: &'static str,
    /// Suite grouping.
    pub class: WorkloadClass,
    /// One-line description of the modelled behaviour.
    pub description: &'static str,
}

impl SuiteEntry {
    /// Whether this entry is a floating-point code (used for the paper's
    /// 120 M vs 60 M instruction context-switch quanta in Section 5.5).
    pub fn is_fp(&self) -> bool {
        self.class == WorkloadClass::SpecFp
    }

    /// Instantiates the workload generator for this benchmark.
    ///
    /// The `seed` makes runs reproducible; the same seed always yields an
    /// identical trace.
    ///
    /// # Panics
    ///
    /// Never panics for entries returned by [`benchmarks`] or [`by_name`].
    pub fn build(&self, seed: u64) -> BoxedSource {
        build_workload(self.name, seed)
            .unwrap_or_else(|| panic!("suite entry {} has no builder", self.name))
    }
}

macro_rules! entries {
    ($( $name:literal, $class:ident, $desc:literal; )*) => {
        &[ $( SuiteEntry {
            name: $name,
            class: WorkloadClass::$class,
            description: $desc,
        }, )* ]
    };
}

/// All 28 benchmarks, in the paper's Table 2 order.
pub const BENCHMARKS: &[SuiteEntry] = entries![
    "ammp",     SpecFp,  "molecular dynamics: list traversals with per-pass mutation";
    "applu",    SpecFp,  "PDE solver: repeated multi-array sweeps, ~24 MB footprint";
    "apsi",     SpecFp,  "weather: correlated sweeps polluted by long non-recurring stretches";
    "art",      SpecFp,  "neural net: repeated sweeps over medium arrays, very high miss rate";
    "bh",       Olden,   "Barnes-Hut: static octree root-to-leaf path walks";
    "bzip2",    SpecInt, "compression: sequential stream plus random bucket accesses";
    "crafty",   SpecInt, "chess: tiny working set, nearly no misses";
    "em3d",     Olden,   "electromagnetics: irregular static graph pointer chase";
    "eon",      SpecInt, "ray tracer: tiny working set";
    "equake",   SpecFp,  "earthquake FEM: sparse indirect gathers, static index";
    "facerec",  SpecFp,  "face recognition: medium sweeps plus gathers";
    "fma3d",    SpecFp,  "crash FEM: dense sweeps over a large mesh";
    "galgel",   SpecFp,  "fluid dynamics: blocked sweeps mostly resident in L2";
    "gap",      SpecInt, "group theory: regular streaming with little reuse";
    "gcc",      SpecInt, "compiler: many short phases with distinct patterns";
    "gzip",     SpecInt, "compression: sequential window plus random hash probes";
    "lucas",    SpecFp,  "primality: power-of-two strided passes, large footprint";
    "mcf",      SpecInt, "network simplex: huge pointer-chase with a hot working set";
    "mesa",     SpecFp,  "3-D graphics: small working set";
    "mgrid",    SpecFp,  "multigrid: multi-stride sweeps over a large grid";
    "parser",   SpecInt, "NLP: linked traversals with dictionary churn";
    "perlbmk",  SpecInt, "perl: small mixed working set";
    "sixtrack", SpecFp,  "accelerator: tiny hot loop, compute bound";
    "swim",     SpecFp,  "shallow water: repeated sweeps over several large arrays";
    "treeadd",  Olden,   "binary tree DFS over a systematically allocated tree";
    "twolf",    SpecInt, "place & route: random move evaluation over a medium set";
    "vortex",   SpecInt, "OO database: mixed lookups, medium working set";
    "wupwise",  SpecFp,  "QCD: very large streaming footprint (DBCP worst case)";
];

/// Returns all benchmarks in Table 2 order.
pub fn benchmarks() -> &'static [SuiteEntry] {
    BENCHMARKS
}

/// Looks up a benchmark by its paper name.
///
/// # Example
///
/// ```
/// use ltc_trace::suite;
///
/// assert!(suite::by_name("mcf").is_some());
/// assert!(suite::by_name("vpr").is_none()); // excluded in the paper too
/// ```
pub fn by_name(name: &str) -> Option<SuiteEntry> {
    BENCHMARKS.iter().find(|e| e.name == name).copied()
}

const MB: u64 = 1 << 20;
const KB: u64 = 1 << 10;

fn build_workload(name: &str, seed: u64) -> Option<BoxedSource> {
    let src: BoxedSource = match name {
        // ---- SPECfp: array/sweep codes -------------------------------
        "swim" => Box::new(SweepGen::new(SweepConfig {
            // Two streaming arrays plus two L2-resident ones: roughly half
            // of swim's L1 misses hit in L2 (paper Table 2: 59% L2 miss).
            arrays: vec![10 * MB, 10 * MB, 640 * KB, 640 * KB],
            strides: vec![32],
            store_every: 6,
            gap: GapModel::jittered(6, 2),
            seed,
            ..SweepConfig::default()
        })),
        "applu" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![12 * MB, 12 * MB, 768 * KB],
            strides: vec![24],
            store_every: 5,
            gap: GapModel::jittered(6, 2),
            seed,
            ..SweepConfig::default()
        })),
        "mgrid" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![24 * MB, 768 * KB],
            strides: vec![8, 512, 8, 4096],
            store_every: 8,
            gap: GapModel::jittered(6, 2),
            seed,
            ..SweepConfig::default()
        })),
        "lucas" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![16 * MB, 16 * MB, 640 * KB],
            strides: vec![32, 8192],
            store_every: 4,
            gap: GapModel::jittered(6, 2),
            seed,
            ..SweepConfig::default()
        })),
        "wupwise" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![24 * MB, 24 * MB, 768 * KB],
            strides: vec![8],
            store_every: 7,
            gap: GapModel::jittered(6, 2),
            seed,
            ..SweepConfig::default()
        })),
        "fma3d" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![12 * MB, 12 * MB, 768 * KB],
            strides: vec![8],
            store_every: 5,
            gap: GapModel::jittered(5, 2),
            seed,
            ..SweepConfig::default()
        })),
        "art" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![12 * MB, 12 * MB, 512 * KB],
            strides: vec![40],
            store_every: 9,
            gap: GapModel::jittered(4, 1),
            seed,
            ..SweepConfig::default()
        })),
        "galgel" => Box::new(SweepGen::new(SweepConfig {
            // Equal arrays stay in lockstep across passes, giving galgel's
            // strong perfect correlation (paper Figure 6: ~60% at +1).
            arrays: vec![416 * KB, 416 * KB],
            strides: vec![12],
            store_every: 6,
            gap: GapModel::jittered(6, 2),
            seed,
            ..SweepConfig::default()
        })),
        "sixtrack" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![24 * KB, 20 * KB],
            strides: vec![16],
            store_every: 8,
            gap: GapModel::jittered(14, 4),
            seed,
            ..SweepConfig::default()
        })),
        "mesa" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![40 * KB, 16 * KB],
            strides: vec![16],
            store_every: 4,
            gap: GapModel::jittered(10, 3),
            seed,
            ..SweepConfig::default()
        })),

        // ---- SPECfp: gather / hybrid codes ---------------------------
        "equake" => Box::new(IndirectGen::new(IndirectConfig {
            gathers_per_pass: 1 << 19,
            data_elems: 4 << 20, // 32 MB of f64 elements
            store_result: true,
            gap: GapModel::jittered(5, 2),
            seed,
            ..IndirectConfig::default()
        })),
        "facerec" => {
            let sweep: BoxedSource = Box::new(SweepGen::new(SweepConfig {
                arrays: vec![2 * MB],
                strides: vec![16],
                gap: GapModel::jittered(6, 2),
                seed,
                ..SweepConfig::default()
            }));
            let gather: BoxedSource = Box::new(IndirectGen::new(IndirectConfig {
                gathers_per_pass: 1 << 16,
                data_elems: 512 << 10, // 4 MB of f64 elements
                store_result: false,
                gap: GapModel::jittered(6, 2),
                seed: seed ^ 6,
                ..IndirectConfig::default()
            }));
            Box::new(PhaseMix::new(vec![(sweep, 60_000), (gather, 30_000)]))
        }
        "ammp" => Box::new(ChaseGen::new(ChaseConfig {
            nodes: 10 << 10, // ~960 KB with 96-byte nodes: mostly L2 resident
            node_bytes: 96,
            fields_per_node: 5,
            chain_serialization: 0.6,
            mutation_rate: 0.04,
            gap: GapModel::jittered(3, 1),
            seed,
            ..ChaseConfig::default()
        })),
        "apsi" => {
            // Correlated sweeps polluted by long non-recurring random
            // stretches: sequences of hundreds to thousands of last touches
            // that never recur (paper Section 5.3).
            let sweep: BoxedSource = Box::new(SweepGen::new(SweepConfig {
                arrays: vec![MB, MB],
                strides: vec![4],
                gap: GapModel::jittered(8, 2),
                seed,
                ..SweepConfig::default()
            }));
            let noise: BoxedSource = Box::new(RandomGen::new(RandomConfig {
                base: 0xd000_0000,
                footprint: 8 * MB,
                run_lines: 2,
                gap: GapModel::jittered(8, 2),
                seed: seed ^ 1,
                ..RandomConfig::default()
            }));
            Box::new(PhaseMix::new(vec![(sweep, 76_000), (noise, 4_000)]))
        }

        // ---- SPECint -------------------------------------------------
        "mcf" => Box::new(ChaseGen::new(ChaseConfig {
            nodes: 1 << 18, // 24 MB with 96-byte nodes
            node_bytes: 96,
            fields_per_node: 1,
            mutation_rate: 0.002,
            hot_fraction: 0.55,
            hot_set_fraction: 0.02,
            gap: GapModel::jittered(2, 1),
            seed,
            ..ChaseConfig::default()
        })),
        "gcc" => {
            let sweep: BoxedSource = Box::new(SweepGen::new(SweepConfig {
                arrays: vec![256 * KB],
                strides: vec![16],
                gap: GapModel::jittered(5, 2),
                seed,
                ..SweepConfig::default()
            }));
            let chase: BoxedSource = Box::new(ChaseGen::new(ChaseConfig {
                base: 0x9000_0000,
                nodes: 1 << 12,
                node_bytes: 64,
                fields_per_node: 1,
                gap: GapModel::jittered(5, 2),
                seed: seed ^ 2,
                ..ChaseConfig::default()
            }));
            let tables: BoxedSource = Box::new(SweepGen::new(SweepConfig {
                base: 0xb000_0000,
                arrays: vec![384 * KB],
                strides: vec![32],
                gap: GapModel::jittered(5, 2),
                seed: seed ^ 3,
                ..SweepConfig::default()
            }));
            Box::new(PhaseMix::new(vec![(sweep, 40_000), (chase, 30_000), (tables, 30_000)]))
        }
        "gzip" => Box::new(HashWindowGen::new(HashWindowConfig {
            // The hot window fits in L1 (as gzip's inner loop does); only
            // the hash probes miss, giving the paper's ~5% L1 miss rate.
            window_bytes: 32 * KB,
            table_bytes: 512 * KB,
            window_per_probe: 20,
            gap: GapModel::jittered(4, 1),
            seed,
            ..HashWindowConfig::default()
        })),
        "bzip2" => Box::new(HashWindowGen::new(HashWindowConfig {
            window_bytes: 40 * KB,
            table_bytes: MB,
            window_per_probe: 24,
            probe_store_prob: 0.3,
            gap: GapModel::jittered(4, 1),
            seed,
            ..HashWindowConfig::default()
        })),
        "twolf" => Box::new(ChaseGen::new(ChaseConfig {
            // Randomized move evaluation: a pointer walk whose order is
            // reshuffled every pass (no temporal correlation), over a
            // working set that the 4 MB L2 holds but the 1 MB L2 does not —
            // reproducing twolf's Table 3 profile (big-L2 helps, predictors
            // do not).
            nodes: 40 << 10, // 2.5 MB with 64-byte nodes
            node_bytes: 64,
            fields_per_node: 5,
            mutation_rate: 0.9,
            chain_serialization: 0.6,
            hot_fraction: 0.5,
            hot_set_fraction: 0.08,
            gap: GapModel::jittered(3, 1),
            seed,
            ..ChaseConfig::default()
        })),
        "parser" => Box::new(ChaseGen::new(ChaseConfig {
            nodes: 12 << 10, // 768 KB with 64-byte nodes: mostly L2 resident
            node_bytes: 64,
            fields_per_node: 12,
            chain_serialization: 0.8,
            mutation_rate: 0.08,
            gap: GapModel::jittered(4, 1),
            seed,
            ..ChaseConfig::default()
        })),
        "gap" => Box::new(SweepGen::new(SweepConfig {
            // Regular streaming with little reuse: enormous arrays swept at
            // line stride, so each pass touches fresh L2 contents — delta
            // correlation captures this; address correlation relearns slowly.
            arrays: vec![16 * MB, 16 * MB],
            strides: vec![4],
            store_every: 10,
            gap: GapModel::jittered(12, 3),
            seed,
            ..SweepConfig::default()
        })),
        "crafty" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![24 * KB, 16 * KB],
            strides: vec![16],
            gap: GapModel::jittered(7, 2),
            seed,
            ..SweepConfig::default()
        })),
        "eon" => Box::new(SweepGen::new(SweepConfig {
            arrays: vec![16 * KB, 12 * KB],
            strides: vec![16],
            gap: GapModel::jittered(6, 2),
            seed,
            ..SweepConfig::default()
        })),
        "vortex" => {
            let lookup: BoxedSource = Box::new(ChaseGen::new(ChaseConfig {
                nodes: 1 << 13,
                node_bytes: 64,
                fields_per_node: 12,
                gap: GapModel::jittered(8, 2),
                seed,
                ..ChaseConfig::default()
            }));
            let scan: BoxedSource = Box::new(SweepGen::new(SweepConfig {
                base: 0x9800_0000,
                arrays: vec![512 * KB],
                strides: vec![4],
                gap: GapModel::jittered(8, 2),
                seed: seed ^ 4,
                ..SweepConfig::default()
            }));
            Box::new(PhaseMix::new(vec![(lookup, 50_000), (scan, 50_000)]))
        }
        "perlbmk" => {
            let work: BoxedSource = Box::new(SweepGen::new(SweepConfig {
                arrays: vec![48 * KB],
                strides: vec![16],
                gap: GapModel::jittered(6, 2),
                seed,
                ..SweepConfig::default()
            }));
            let heap: BoxedSource = Box::new(ChaseGen::new(ChaseConfig {
                base: 0x9400_0000,
                nodes: 1 << 12,
                node_bytes: 64,
                fields_per_node: 6,
                mutation_rate: 0.02,
                gap: GapModel::jittered(6, 2),
                seed: seed ^ 5,
                ..ChaseConfig::default()
            }));
            Box::new(PhaseMix::new(vec![(work, 50_000), (heap, 30_000)]))
        }

        // ---- Olden ---------------------------------------------------
        "em3d" => Box::new(ChaseGen::new(ChaseConfig {
            nodes: 1 << 19, // 32 MB with 64-byte nodes
            node_bytes: 64,
            layout: Layout::Scattered,
            fields_per_node: 1,
            // em3d walks per-node edge lists: several chains in flight.
            chain_serialization: 0.15,
            gap: GapModel::jittered(1, 1),
            seed,
            ..ChaseConfig::default()
        })),
        "treeadd" => Box::new(TreeGen::new(TreeConfig {
            // 1 M nodes * 32 B = 32 MB: the ~520 K line signatures exceed the
            // 2 MB DBCP table (the paper reports DBCP = 0 on treeadd).
            depth: 20,
            node_bytes: 32,
            traversal: Traversal::DepthFirst,
            layout: TreeLayout::DfsOrder,
            accesses_per_node: 4,
            gap: GapModel::jittered(2, 1),
            seed,
            ..TreeConfig::default()
        })),
        "bh" => Box::new(TreeGen::new(TreeConfig {
            depth: 17, // 128 K nodes * 64 B = 8 MB
            node_bytes: 64,
            traversal: Traversal::Paths { count: 4096 },
            accesses_per_node: 6,
            gap: GapModel::jittered(3, 1),
            seed,
            ..TreeConfig::default()
        })),
        _ => return None,
    };
    Some(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSource;
    use crate::stats::TraceStats;

    #[test]
    fn all_entries_have_builders() {
        for e in benchmarks() {
            let mut src = e.build(1);
            assert!(src.next_access().is_some(), "{} produced no accesses", e.name);
        }
    }

    #[test]
    fn suite_has_paper_benchmark_count() {
        // 25 SPEC CPU2000 benchmarks (all except vpr) + 3 Olden.
        assert_eq!(benchmarks().len(), 28);
        assert_eq!(benchmarks().iter().filter(|e| e.class == WorkloadClass::Olden).count(), 3);
    }

    #[test]
    fn by_name_round_trips() {
        for e in benchmarks() {
            assert_eq!(by_name(e.name).unwrap().name, e.name);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn builds_are_deterministic() {
        for e in ["mcf", "swim", "gcc", "treeadd"] {
            let entry = by_name(e).unwrap();
            let a = entry.build(7).collect_accesses(500);
            let b = entry.build(7).collect_accesses(500);
            assert_eq!(a, b, "{e} must be deterministic");
        }
    }

    #[test]
    fn seeds_change_traces() {
        let entry = by_name("mcf").unwrap();
        let a = entry.build(1).collect_accesses(500);
        let b = entry.build(2).collect_accesses(500);
        assert_ne!(a, b);
    }

    #[test]
    fn small_working_set_codes_fit_in_l1() {
        for name in ["crafty", "eon"] {
            let mut src = by_name(name).unwrap().build(1);
            let stats = TraceStats::measure(&mut src, 50_000);
            assert!(
                stats.footprint_bytes() <= 64 * KB,
                "{name} working set {} exceeds L1",
                stats.footprint_bytes()
            );
        }
    }

    #[test]
    fn large_footprint_codes_exceed_l2() {
        for name in ["mcf", "swim", "wupwise", "em3d"] {
            let mut src = by_name(name).unwrap().build(1);
            let stats = TraceStats::measure(&mut src, 400_000);
            assert!(
                stats.footprint_bytes() > MB,
                "{name} footprint {} should exceed L2",
                stats.footprint_bytes()
            );
        }
    }

    #[test]
    fn pointer_codes_have_dependent_accesses() {
        // mcf/em3d dereference on every other access; the tree codes do
        // per-node field work between pointer hops (6 accesses per visit).
        // em3d chases several lists concurrently, so only ~15% of its
        // pointer loads serialize (chain_serialization).
        for (name, denom) in [("mcf", 2), ("em3d", 40), ("treeadd", 8), ("bh", 8)] {
            let mut src = by_name(name).unwrap().build(1);
            let stats = TraceStats::measure(&mut src, 10_000);
            assert!(
                stats.dependent * denom >= stats.accesses,
                "{name} should have a strong dependent component"
            );
        }
    }

    #[test]
    fn fp_flag_matches_class() {
        assert!(by_name("swim").unwrap().is_fp());
        assert!(!by_name("gcc").unwrap().is_fp());
        assert!(!by_name("treeadd").unwrap().is_fp());
    }
}
