//! The [`TraceSource`] abstraction and generic adapters.

use crate::checkpoint::{RestoreError, SourceState};
use crate::record::MemoryAccess;

/// A producer of committed memory references.
///
/// All simulators in this workspace (coverage, analysis and timing) consume
/// traces through this interface, so a workload can be a synthetic generator,
/// a recorded buffer being replayed, or an interleaving of several programs.
///
/// Most sources in this crate are *unbounded*: they loop over their data set
/// forever, the way the paper's benchmarks iterate an outer loop over a
/// static data structure. Use [`TraceSource::take_accesses`] to bound a run.
pub trait TraceSource {
    /// Produces the next reference, or `None` when the source is exhausted.
    fn next_access(&mut self) -> Option<MemoryAccess>;

    /// Bounds this source to at most `n` references.
    fn take_accesses(self, n: u64) -> TakeSource<Self>
    where
        Self: Sized,
    {
        TakeSource { inner: self, remaining: n }
    }

    /// Collects up to `n` references into a vector (for replay or analysis).
    fn collect_accesses(&mut self, n: usize) -> Vec<MemoryAccess> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_access() {
                Some(a) => v.push(a),
                None => break,
            }
        }
        v
    }

    /// Snapshots the source's mid-stream state for later
    /// [`restore`](TraceSource::restore), or `None` when the source does
    /// not support checkpointing (the default). Restoring the returned
    /// state onto a freshly built source of the same configuration
    /// resumes the stream element-identically.
    fn checkpoint(&self) -> Option<SourceState> {
        None
    }

    /// Restores a [`checkpoint`](TraceSource::checkpoint) previously
    /// taken from an identically configured source.
    ///
    /// # Errors
    ///
    /// Fails on sources that do not checkpoint (the default), on a state
    /// from a different kind of source, or on values that do not fit
    /// this source's configuration. A composite source may be left
    /// partially restored on error — discard it and rebuild.
    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let _ = state;
        Err(RestoreError::Unsupported)
    }
}

/// Boxed trait object form used by the suite and experiment runner.
pub type BoxedSource = Box<dyn TraceSource + Send>;

impl TraceSource for BoxedSource {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        (**self).next_access()
    }

    fn checkpoint(&self) -> Option<SourceState> {
        (**self).checkpoint()
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        (**self).restore(state)
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        (**self).next_access()
    }

    fn checkpoint(&self) -> Option<SourceState> {
        (**self).checkpoint()
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        (**self).restore(state)
    }
}

/// Adapter limiting a source to a fixed number of references.
///
/// Produced by [`TraceSource::take_accesses`].
#[derive(Debug, Clone)]
pub struct TakeSource<S> {
    inner: S,
    remaining: u64,
}

impl<S: TraceSource> TraceSource for TakeSource<S> {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_access()
    }

    fn checkpoint(&self) -> Option<SourceState> {
        let inner = self.inner.checkpoint()?;
        Some(SourceState::Take { remaining: self.remaining, inner: Box::new(inner) })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::Take { remaining, inner } = state else {
            return Err(RestoreError::mismatch("take", state));
        };
        self.inner.restore(inner)?;
        self.remaining = *remaining;
        Ok(())
    }
}

/// Replays a recorded vector of accesses, optionally in a loop.
///
/// # Example
///
/// ```
/// use ltc_trace::{Replay, TraceSource, MemoryAccess, Pc, Addr};
///
/// let trace = vec![MemoryAccess::load(Pc(1), Addr(64))];
/// let mut replay = Replay::cycle(trace);
/// assert!(replay.next_access().is_some());
/// assert!(replay.next_access().is_some()); // loops forever
/// ```
#[derive(Debug, Clone)]
pub struct Replay {
    accesses: Vec<MemoryAccess>,
    pos: usize,
    looping: bool,
}

impl Replay {
    /// Replays `accesses` once, then ends.
    pub fn once(accesses: Vec<MemoryAccess>) -> Self {
        Replay { accesses, pos: 0, looping: false }
    }

    /// Replays `accesses` in an endless loop.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is empty (an empty loop could never produce a
    /// reference and would spin forever in callers).
    pub fn cycle(accesses: Vec<MemoryAccess>) -> Self {
        assert!(!accesses.is_empty(), "cannot cycle an empty trace");
        Replay { accesses, pos: 0, looping: true }
    }

    /// Number of distinct recorded references.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

impl TraceSource for Replay {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        if self.pos >= self.accesses.len() {
            if !self.looping {
                return None;
            }
            self.pos = 0;
        }
        let a = self.accesses[self.pos];
        self.pos += 1;
        Some(a)
    }

    fn checkpoint(&self) -> Option<SourceState> {
        Some(SourceState::Replay { pos: self.pos as u64 })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::Replay { pos } = state else {
            return Err(RestoreError::mismatch("replay", state));
        };
        if *pos > self.accesses.len() as u64 {
            return Err(RestoreError::invalid(format!(
                "replay position {pos} exceeds the {}-access recording",
                self.accesses.len()
            )));
        }
        self.pos = *pos as usize;
        Ok(())
    }
}

/// Wraps a `TraceSource` as a standard [`Iterator`].
#[derive(Debug)]
pub struct IntoIter<S>(pub S);

impl<S: TraceSource> Iterator for IntoIter<S> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        self.0.next_access()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Addr, Pc};

    fn acc(n: u64) -> MemoryAccess {
        MemoryAccess::load(Pc(n), Addr(n * 64))
    }

    #[test]
    fn replay_once_ends() {
        let mut r = Replay::once(vec![acc(1), acc(2)]);
        assert_eq!(r.next_access().unwrap().pc, Pc(1));
        assert_eq!(r.next_access().unwrap().pc, Pc(2));
        assert!(r.next_access().is_none());
        assert!(r.next_access().is_none());
    }

    #[test]
    fn replay_cycle_wraps() {
        let mut r = Replay::cycle(vec![acc(1), acc(2)]);
        let pcs: Vec<u64> = (0..5).map(|_| r.next_access().unwrap().pc.0).collect();
        assert_eq!(pcs, vec![1, 2, 1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn replay_cycle_rejects_empty() {
        let _ = Replay::cycle(vec![]);
    }

    #[test]
    fn take_bounds_unbounded_source() {
        let r = Replay::cycle(vec![acc(1)]);
        let mut t = r.take_accesses(3);
        assert_eq!(t.collect_accesses(10).len(), 3);
    }

    #[test]
    fn collect_stops_at_end() {
        let mut r = Replay::once(vec![acc(1), acc(2)]);
        assert_eq!(r.collect_accesses(10).len(), 2);
    }

    #[test]
    fn iterator_adapter_works() {
        let r = Replay::once(vec![acc(1), acc(2), acc(3)]);
        let v: Vec<_> = IntoIter(r).collect();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn boxed_source_dispatches() {
        let mut b: BoxedSource = Box::new(Replay::once(vec![acc(9)]));
        assert_eq!(b.next_access().unwrap().pc, Pc(9));
        assert!(b.next_access().is_none());
    }
}
