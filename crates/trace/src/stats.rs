//! Summary statistics over a trace prefix.

use std::collections::HashSet;

use crate::record::MemoryAccess;
use crate::source::TraceSource;

/// Aggregate statistics describing a trace prefix.
///
/// # Example
///
/// ```
/// use ltc_trace::{Replay, TraceStats, MemoryAccess, Pc, Addr};
///
/// let trace = vec![
///     MemoryAccess::load(Pc(1), Addr(0)).with_gap(3),
///     MemoryAccess::store(Pc(2), Addr(64)),
/// ];
/// let stats = TraceStats::measure(&mut Replay::once(trace), 10);
/// assert_eq!(stats.accesses, 2);
/// assert_eq!(stats.instructions, 5); // (1 access + gap 3) + 1 access
/// assert_eq!(stats.stores, 1);
/// assert_eq!(stats.distinct_lines, 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Memory references observed.
    pub accesses: u64,
    /// Total instructions represented (accesses plus gaps).
    pub instructions: u64,
    /// Store count.
    pub stores: u64,
    /// Accesses flagged address-dependent on their predecessor.
    pub dependent: u64,
    /// Distinct 64-byte lines touched.
    pub distinct_lines: u64,
}

impl TraceStats {
    /// Measures up to `limit` accesses from `source`.
    pub fn measure<S: TraceSource>(source: &mut S, limit: u64) -> Self {
        let mut stats = TraceStats::default();
        let mut lines: HashSet<u64> = HashSet::new();
        for _ in 0..limit {
            let Some(a) = source.next_access() else { break };
            stats.record(&a, &mut lines);
        }
        stats.distinct_lines = lines.len() as u64;
        stats
    }

    fn record(&mut self, a: &MemoryAccess, lines: &mut HashSet<u64>) {
        self.accesses += 1;
        self.instructions += a.instructions();
        if !a.kind.is_load() {
            self.stores += 1;
        }
        if a.dependent {
            self.dependent += 1;
        }
        lines.insert(a.addr.line_number(64));
    }

    /// Footprint in bytes implied by the distinct lines touched.
    pub fn footprint_bytes(&self) -> u64 {
        self.distinct_lines * 64
    }

    /// Fraction of accesses that are stores.
    pub fn store_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.stores as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Addr, Pc};
    use crate::source::Replay;

    #[test]
    fn measures_empty_source() {
        let mut r = Replay::once(vec![]);
        let s = TraceStats::measure(&mut r, 100);
        assert_eq!(s, TraceStats::default());
        assert_eq!(s.store_fraction(), 0.0);
    }

    #[test]
    fn limit_truncates() {
        let mut r = Replay::cycle(vec![MemoryAccess::load(Pc(1), Addr(0))]);
        let s = TraceStats::measure(&mut r, 5);
        assert_eq!(s.accesses, 5);
    }

    #[test]
    fn distinct_lines_dedupe_within_line() {
        let mut r = Replay::once(vec![
            MemoryAccess::load(Pc(1), Addr(0)),
            MemoryAccess::load(Pc(1), Addr(32)),
            MemoryAccess::load(Pc(1), Addr(64)),
        ]);
        let s = TraceStats::measure(&mut r, 10);
        assert_eq!(s.distinct_lines, 2);
        assert_eq!(s.footprint_bytes(), 128);
    }

    #[test]
    fn dependent_accesses_counted() {
        let mut r = Replay::once(vec![
            MemoryAccess::load(Pc(1), Addr(0)).with_dependent(true),
            MemoryAccess::load(Pc(1), Addr(64)),
        ]);
        let s = TraceStats::measure(&mut r, 10);
        assert_eq!(s.dependent, 1);
    }
}
