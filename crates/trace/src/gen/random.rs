//! Uniformly random, non-recurring references.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::checkpoint::{RestoreError, SourceState};
use crate::gen::gap::GapModel;
use crate::gen::LINE_BYTES;
use crate::record::{AccessKind, Addr, MemoryAccess, Pc};
use crate::source::TraceSource;

/// Configuration for [`RandomGen`].
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Base address of the accessed region.
    pub base: u64,
    /// Region size in bytes.
    pub footprint: u64,
    /// Length of the short sequential run emitted after each random jump
    /// (1 = purely random single accesses).
    pub run_lines: u32,
    /// Accesses per line within a run (spatial reuse; >1 lowers the miss
    /// rate the way real move-evaluation loops re-read their operands).
    pub touches_per_line: u32,
    /// Probability that an access is a store.
    pub store_prob: f64,
    /// Non-memory instruction gap model.
    pub gap: GapModel,
    /// Base program counter.
    pub pc_base: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            base: 0xa000_0000,
            footprint: 1 << 20,
            run_lines: 1,
            touches_per_line: 1,
            store_prob: 0.1,
            gap: GapModel::default(),
            pc_base: 0x44_0000,
            seed: 0,
        }
    }
}

/// Emits fresh random references forever (hash/move-evaluation codes).
///
/// The stream never repeats, so it exhibits essentially no temporal
/// correlation — the gzip/bzip2/twolf behaviour the paper calls out in
/// Section 5.1 as offering little opportunity for LT-cords.
#[derive(Debug, Clone)]
pub struct RandomGen {
    cfg: RandomConfig,
    lines: u64,
    run_left: u32,
    touches_left: u32,
    cursor: u64,
    rng: StdRng,
}

impl RandomGen {
    /// Creates a random-access generator.
    ///
    /// # Panics
    ///
    /// Panics if the footprint holds no complete cache line, `run_lines` is
    /// zero, or `store_prob` is outside `[0, 1]`.
    pub fn new(cfg: RandomConfig) -> Self {
        let lines = cfg.footprint / LINE_BYTES;
        assert!(lines > 0, "footprint must hold at least one line");
        assert!(cfg.run_lines > 0, "run_lines must be at least 1");
        assert!(cfg.touches_per_line > 0, "touches_per_line must be at least 1");
        assert!((0.0..=1.0).contains(&cfg.store_prob), "store_prob must be in [0,1]");
        let seed = cfg.seed;
        RandomGen {
            cfg,
            lines,
            run_left: 0,
            touches_left: 0,
            cursor: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x0bad_5eed),
        }
    }

    /// The configured footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.cfg.footprint
    }
}

impl TraceSource for RandomGen {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        if self.touches_left == 0 {
            if self.run_left == 0 {
                self.cursor = self.rng.gen_range(0..self.lines);
                self.run_left = self.cfg.run_lines;
            } else {
                self.cursor = (self.cursor + 1) % self.lines;
            }
            self.run_left -= 1;
            self.touches_left = self.cfg.touches_per_line;
        }
        self.touches_left -= 1;
        let touch = u64::from(self.cfg.touches_per_line - 1 - self.touches_left);
        let kind = if self.rng.gen_bool(self.cfg.store_prob) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let gap = self.cfg.gap.sample(&mut self.rng);
        Some(MemoryAccess {
            pc: Pc(self.cfg.pc_base + if kind == AccessKind::Store { 8 } else { 0 }),
            addr: Addr(self.cfg.base + self.cursor * LINE_BYTES + (touch * 8) % LINE_BYTES),
            kind,
            gap,
            dependent: false,
        })
    }

    fn checkpoint(&self) -> Option<SourceState> {
        Some(SourceState::Random {
            run_left: self.run_left,
            touches_left: self.touches_left,
            cursor: self.cursor,
            rng: self.rng.state(),
        })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::Random { run_left, touches_left, cursor, rng } = state else {
            return Err(RestoreError::mismatch("random", state));
        };
        if *cursor >= self.lines {
            return Err(RestoreError::invalid(format!("random cursor {cursor} out of range")));
        }
        self.run_left = *run_left;
        self.touches_left = *touches_left;
        self.cursor = *cursor;
        self.rng = StdRng::from_state(*rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_within_footprint() {
        let cfg = RandomConfig { footprint: 1 << 12, base: 0x1000, ..RandomConfig::default() };
        let mut g = RandomGen::new(cfg);
        for _ in 0..1000 {
            let a = g.next_access().unwrap();
            assert!(a.addr.0 >= 0x1000 && a.addr.0 < 0x1000 + (1 << 12));
        }
    }

    #[test]
    fn does_not_repeat_between_halves() {
        let mut g = RandomGen::new(RandomConfig { footprint: 1 << 24, ..RandomConfig::default() });
        let v = g.collect_accesses(256);
        let first: Vec<u64> = v[..128].iter().map(|a| a.addr.0).collect();
        let second: Vec<u64> = v[128..].iter().map(|a| a.addr.0).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn runs_are_sequential() {
        let cfg = RandomConfig {
            run_lines: 4,
            store_prob: 0.0,
            footprint: 1 << 24,
            ..RandomConfig::default()
        };
        let mut g = RandomGen::new(cfg);
        let v = g.collect_accesses(4);
        // Within one run, consecutive lines follow each other (modulo the
        // footprint wrap, which is negligible for a 16 MB region).
        assert_eq!(v[1].addr.0, v[0].addr.0 + 64);
        assert_eq!(v[2].addr.0, v[1].addr.0 + 64);
    }

    #[test]
    fn store_probability_zero_means_all_loads() {
        let mut g = RandomGen::new(RandomConfig { store_prob: 0.0, ..RandomConfig::default() });
        assert!(g.collect_accesses(500).iter().all(|a| a.kind == AccessKind::Load));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mk = || RandomGen::new(RandomConfig { seed: 7, ..RandomConfig::default() });
        assert_eq!(mk().collect_accesses(100), mk().collect_accesses(100));
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn rejects_tiny_footprint() {
        let _ = RandomGen::new(RandomConfig { footprint: 32, ..RandomConfig::default() });
    }
}
