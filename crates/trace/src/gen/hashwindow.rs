//! A sequential input window plus random hash-table probes (gzip-like).

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::checkpoint::{RestoreError, SourceState};
use crate::gen::gap::GapModel;
use crate::gen::LINE_BYTES;
use crate::record::{AccessKind, Addr, MemoryAccess, Pc};
use crate::source::TraceSource;

/// Configuration for [`HashWindowGen`].
#[derive(Debug, Clone)]
pub struct HashWindowConfig {
    /// Base address of the sliding input window.
    pub base: u64,
    /// Input window size in bytes (streamed sequentially, byte-ish strides).
    pub window_bytes: u64,
    /// Hash table size in bytes (probed randomly).
    pub table_bytes: u64,
    /// Number of sequential window accesses between table probes.
    pub window_per_probe: u32,
    /// Probability a table probe is a store (hash insert).
    pub probe_store_prob: f64,
    /// Non-memory instruction gap model.
    pub gap: GapModel,
    /// Base program counter.
    pub pc_base: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HashWindowConfig {
    fn default() -> Self {
        HashWindowConfig {
            base: 0xc000_0000,
            window_bytes: 256 << 10,
            table_bytes: 512 << 10,
            window_per_probe: 8,
            probe_store_prob: 0.5,
            gap: GapModel::default(),
            pc_base: 0x45_0000,
            seed: 0,
        }
    }
}

/// Models compression-style access: a hot sequential window interleaved with
/// random hash-table probes.
///
/// The window accesses are dense (multiple per line) and hit in L1; the table
/// probes are random and non-recurring. The result is a low miss rate whose
/// misses carry almost no temporal correlation — the paper's gzip profile
/// (5 % L1 misses, near-zero LT-cords opportunity, Figure 6).
#[derive(Debug, Clone)]
pub struct HashWindowGen {
    cfg: HashWindowConfig,
    table_base: u64,
    window_cursor: u64,
    since_probe: u32,
    rng: StdRng,
}

impl HashWindowGen {
    /// Creates a hash-window generator.
    ///
    /// # Panics
    ///
    /// Panics if the window or table holds no complete cache line or if
    /// `probe_store_prob` is outside `[0, 1]`.
    pub fn new(cfg: HashWindowConfig) -> Self {
        assert!(cfg.window_bytes >= LINE_BYTES, "window must hold at least one line");
        assert!(cfg.table_bytes >= LINE_BYTES, "table must hold at least one line");
        assert!((0.0..=1.0).contains(&cfg.probe_store_prob), "probe_store_prob must be in [0,1]");
        let table_base = (cfg.base + cfg.window_bytes + 0xfff) & !0xfff;
        let seed = cfg.seed;
        HashWindowGen {
            cfg,
            table_base,
            window_cursor: 0,
            since_probe: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x9a5_4b1e),
        }
    }

    /// Combined window + table footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.cfg.window_bytes + self.cfg.table_bytes
    }
}

impl TraceSource for HashWindowGen {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        let gap = self.cfg.gap.sample(&mut self.rng);
        if self.since_probe >= self.cfg.window_per_probe {
            self.since_probe = 0;
            let lines = self.cfg.table_bytes / LINE_BYTES;
            let line = self.rng.gen_range(0..lines);
            let kind = if self.rng.gen_bool(self.cfg.probe_store_prob) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            return Some(MemoryAccess {
                pc: Pc(self.cfg.pc_base + 32),
                addr: Addr(self.table_base + line * LINE_BYTES),
                kind,
                gap,
                dependent: false,
            });
        }
        self.since_probe += 1;
        // Dense sequential walk: 16-byte steps, four accesses per line.
        self.window_cursor = (self.window_cursor + 16) % self.cfg.window_bytes;
        Some(MemoryAccess {
            pc: Pc(self.cfg.pc_base),
            addr: Addr(self.cfg.base + self.window_cursor),
            kind: AccessKind::Load,
            gap,
            dependent: false,
        })
    }

    fn checkpoint(&self) -> Option<SourceState> {
        Some(SourceState::HashWindow {
            window_cursor: self.window_cursor,
            since_probe: self.since_probe,
            rng: self.rng.state(),
        })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::HashWindow { window_cursor, since_probe, rng } = state else {
            return Err(RestoreError::mismatch("hash-window", state));
        };
        if *window_cursor >= self.cfg.window_bytes {
            return Err(RestoreError::invalid(format!(
                "hash-window cursor {window_cursor} outside the window"
            )));
        }
        self.window_cursor = *window_cursor;
        self.since_probe = *since_probe;
        self.rng = StdRng::from_state(*rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HashWindowConfig {
        HashWindowConfig {
            window_bytes: 4096,
            table_bytes: 8192,
            window_per_probe: 3,
            gap: GapModel::fixed(1),
            ..HashWindowConfig::default()
        }
    }

    #[test]
    fn probes_appear_at_configured_rate() {
        let mut g = HashWindowGen::new(cfg());
        let v = g.collect_accesses(40);
        let probes = v.iter().filter(|a| a.addr.0 >= g.table_base).count();
        assert_eq!(probes, 10, "one probe per three window accesses");
    }

    #[test]
    fn window_accesses_are_dense_sequential() {
        let mut g = HashWindowGen::new(cfg());
        let a = g.next_access().unwrap();
        let b = g.next_access().unwrap();
        assert_eq!(b.addr.0, a.addr.0 + 16);
    }

    #[test]
    fn table_does_not_overlap_window() {
        let g = HashWindowGen::new(cfg());
        assert!(g.table_base >= g.cfg.base + g.cfg.window_bytes);
    }

    #[test]
    fn probes_are_not_recurring() {
        let mut g = HashWindowGen::new(HashWindowConfig { table_bytes: 1 << 22, ..cfg() });
        let v = g.collect_accesses(4000);
        let probes: Vec<u64> =
            v.iter().filter(|a| a.addr.0 >= g.table_base).map(|a| a.addr.0).collect();
        let half = probes.len() / 2;
        assert_ne!(&probes[..half], &probes[half..half * 2]);
    }

    #[test]
    fn footprint_counts_both_regions() {
        let g = HashWindowGen::new(cfg());
        assert_eq!(g.footprint(), 4096 + 8192);
    }
}
