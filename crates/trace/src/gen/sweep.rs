//! Repeated sequential/strided passes over one or more arrays.

use rand::{rngs::StdRng, SeedableRng};

use crate::checkpoint::{RestoreError, SourceState};
use crate::gen::gap::GapModel;
use crate::record::{AccessKind, Addr, MemoryAccess, Pc};
use crate::source::TraceSource;

/// Configuration for [`SweepGen`].
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Base address of the first array; arrays are laid out back to back,
    /// each aligned to 4 KB.
    pub base: u64,
    /// Sizes of the swept arrays in bytes.
    pub arrays: Vec<u64>,
    /// Strides cycled per pass (bytes). A single entry gives a fixed stride;
    /// several entries model multi-stride codes such as mgrid/lucas, whose
    /// power-of-two strides change between passes.
    pub strides: Vec<u64>,
    /// Every `store_every`-th access is a store (0 disables stores).
    pub store_every: u32,
    /// Non-memory instruction gap model.
    pub gap: GapModel,
    /// Base program counter; each array gets a distinct PC pair (load/store).
    pub pc_base: u64,
    /// RNG seed (only used for gap jitter).
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            base: 0x1000_0000,
            arrays: vec![1 << 20],
            strides: vec![64],
            store_every: 0,
            gap: GapModel::default(),
            pc_base: 0x40_0000,
            seed: 0,
        }
    }
}

/// Endlessly repeats sequential/strided passes over a set of arrays.
///
/// Each pass touches every array element in the same order, producing a miss
/// sequence that recurs exactly — the "outer loop over a large data set"
/// scenario from Section 3.1 of the paper. With multiple arrays, accesses to
/// the arrays are interleaved round-robin within the pass, which is what
/// creates the local last-touch/miss order disparity of Section 3.2.
///
/// # Example
///
/// ```
/// use ltc_trace::gen::{SweepConfig, SweepGen};
/// use ltc_trace::TraceSource;
///
/// let gen = SweepGen::new(SweepConfig {
///     arrays: vec![4096, 4096],
///     ..SweepConfig::default()
/// });
/// let mut gen = gen;
/// let a = gen.next_access().unwrap();
/// let b = gen.next_access().unwrap();
/// assert_ne!(a.addr, b.addr);
/// ```
#[derive(Debug, Clone)]
pub struct SweepGen {
    cfg: SweepConfig,
    bases: Vec<u64>,
    /// Per-array element cursor (bytes within the array).
    cursors: Vec<u64>,
    /// Which array receives the next access in the round-robin.
    turn: usize,
    /// Pass counter (selects the stride).
    pass: u64,
    access_no: u64,
    rng: StdRng,
}

impl SweepGen {
    /// Creates a sweep generator.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` or `strides` is empty, or any stride is zero.
    pub fn new(cfg: SweepConfig) -> Self {
        assert!(!cfg.arrays.is_empty(), "sweep requires at least one array");
        assert!(!cfg.strides.is_empty(), "sweep requires at least one stride");
        assert!(cfg.strides.iter().all(|&s| s > 0), "strides must be non-zero");
        let mut bases = Vec::with_capacity(cfg.arrays.len());
        let mut next = cfg.base;
        for (idx, &size) in cfg.arrays.iter().enumerate() {
            // Stagger bases by a non-power-of-two page count so equally
            // sized arrays do not alias into the same cache sets (real
            // allocators and array dimensioning break such alignment too).
            bases.push(next + (idx as u64) * 0x11000);
            next = (next + size + (idx as u64) * 0x11000 + 0xfff) & !0xfff;
        }
        let n = cfg.arrays.len();
        let seed = cfg.seed;
        SweepGen {
            cfg,
            bases,
            cursors: vec![0; n],
            turn: 0,
            pass: 0,
            access_no: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_5eed),
        }
    }

    /// Total bytes touched per pass (the workload footprint).
    pub fn footprint(&self) -> u64 {
        self.cfg.arrays.iter().sum()
    }

    fn stride(&self) -> u64 {
        self.cfg.strides[(self.pass as usize) % self.cfg.strides.len()]
    }
}

impl TraceSource for SweepGen {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        // Round-robin across the arrays. Arrays smaller than the largest
        // wrap and are re-swept (the way a solver reads its small coefficient
        // arrays every timestep); the pass ends when the largest array does.
        let n = self.cfg.arrays.len();
        let max_size = *self.cfg.arrays.iter().max().expect("non-empty");
        let largest = self.cfg.arrays.iter().position(|&s| s == max_size).expect("exists");
        if self.cursors[self.turn] >= self.cfg.arrays[self.turn] {
            if self.turn == largest {
                // Pass complete: reset all cursors and advance the stride.
                for c in &mut self.cursors {
                    *c = 0;
                }
                self.pass += 1;
            } else {
                // A smaller array wraps and is re-swept within the pass.
                self.cursors[self.turn] = 0;
            }
        }
        let stride = self.stride();
        let idx = self.turn;
        let offset = self.cursors[idx];
        self.cursors[idx] = offset + stride;
        let addr = Addr(self.bases[idx] + offset);
        self.turn = (self.turn + 1) % n;

        self.access_no += 1;
        // Stores are a function of the *element position* (as in real loop
        // bodies that update every k-th element), so the load/store pattern
        // of a given line recurs identically every pass regardless of how
        // the pass length divides by `store_every`.
        let is_store =
            self.cfg.store_every != 0 && (offset / stride) % u64::from(self.cfg.store_every) == 0;
        let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
        let pc_off = if is_store { 8 } else { 0 };
        let pc = Pc(self.cfg.pc_base + (idx as u64) * 16 + pc_off);
        let gap = self.cfg.gap.sample(&mut self.rng);
        Some(MemoryAccess { pc, addr, kind, gap, dependent: false })
    }

    fn checkpoint(&self) -> Option<SourceState> {
        Some(SourceState::Sweep {
            cursors: self.cursors.clone(),
            turn: self.turn as u64,
            pass: self.pass,
            access_no: self.access_no,
            rng: self.rng.state(),
        })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::Sweep { cursors, turn, pass, access_no, rng } = state else {
            return Err(RestoreError::mismatch("sweep", state));
        };
        if cursors.len() != self.cursors.len() {
            return Err(RestoreError::invalid(format!(
                "sweep state has {} cursors, configuration has {} arrays",
                cursors.len(),
                self.cursors.len()
            )));
        }
        if *turn >= self.cursors.len() as u64 {
            return Err(RestoreError::invalid(format!("sweep turn {turn} out of range")));
        }
        self.cursors.clone_from(cursors);
        self.turn = *turn as usize;
        self.pass = *pass;
        self.access_no = *access_no;
        self.rng = StdRng::from_state(*rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cfg: SweepConfig, n: usize) -> Vec<MemoryAccess> {
        SweepGen::new(cfg).collect_accesses(n)
    }

    #[test]
    fn single_array_is_sequential() {
        let cfg = SweepConfig {
            arrays: vec![256],
            strides: vec![64],
            base: 0x1000,
            ..SweepConfig::default()
        };
        let v = collect(cfg, 4);
        let addrs: Vec<u64> = v.iter().map(|a| a.addr.0).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0]);
    }

    #[test]
    fn passes_repeat_exactly() {
        let cfg = SweepConfig {
            arrays: vec![512, 512],
            strides: vec![64],
            gap: GapModel::fixed(1),
            ..SweepConfig::default()
        };
        let v = collect(cfg.clone(), 64);
        let pass_len = (512 / 64) * 2;
        let first: Vec<u64> = v[..pass_len].iter().map(|a| a.addr.0).collect();
        let second: Vec<u64> = v[pass_len..2 * pass_len].iter().map(|a| a.addr.0).collect();
        assert_eq!(first, second, "sweep passes must repeat the same address sequence");
    }

    #[test]
    fn arrays_interleave_round_robin() {
        let cfg = SweepConfig {
            arrays: vec![4096, 4096],
            strides: vec![64],
            base: 0x10000,
            ..SweepConfig::default()
        };
        let v = collect(cfg, 4);
        // Alternates between the two arrays.
        assert_ne!(v[0].addr.line(4096), v[1].addr.line(4096));
        assert_eq!(v[0].addr.offset_by(64), v[2].addr);
    }

    #[test]
    fn stores_appear_at_configured_rate() {
        let cfg = SweepConfig { store_every: 4, arrays: vec![1 << 16], ..SweepConfig::default() };
        let v = collect(cfg, 64);
        let stores = v.iter().filter(|a| a.kind == AccessKind::Store).count();
        assert_eq!(stores, 16);
    }

    #[test]
    fn footprint_sums_arrays() {
        let g = SweepGen::new(SweepConfig { arrays: vec![100, 200], ..SweepConfig::default() });
        assert_eq!(g.footprint(), 300);
    }

    #[test]
    fn multi_stride_changes_between_passes() {
        let cfg = SweepConfig {
            arrays: vec![512],
            strides: vec![64, 128],
            base: 0,
            ..SweepConfig::default()
        };
        let v = collect(cfg, 8 + 4 + 2);
        // Pass 0: 8 accesses at stride 64; pass 1: 4 accesses at stride 128.
        assert_eq!(v[7].addr.0, 0x1c0);
        assert_eq!(v[8].addr.0, 0x0);
        assert_eq!(v[9].addr.0, 0x80);
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn rejects_empty_arrays() {
        let _ = SweepGen::new(SweepConfig { arrays: vec![], ..SweepConfig::default() });
    }

    #[test]
    fn deterministic_across_instances() {
        let cfg = SweepConfig {
            arrays: vec![2048, 4096],
            strides: vec![64],
            gap: GapModel::jittered(3, 2),
            seed: 42,
            ..SweepConfig::default()
        };
        let a = collect(cfg.clone(), 100);
        let b = collect(cfg, 100);
        assert_eq!(a, b);
    }
}
