//! Models the number of non-memory instructions between memory references.

use rand::Rng;

/// Distribution of non-memory instructions preceding each access.
///
/// The paper's benchmarks differ widely in compute intensity (Table 2 IPCs
/// range from 0.08 to 4.29 on the same machine); the gap model is the knob
/// that reproduces that axis in the synthetic suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapModel {
    /// Mean non-memory instructions per access.
    pub mean: u32,
    /// Uniform jitter applied on top of the mean: the sampled gap lies in
    /// `[mean.saturating_sub(jitter), mean + jitter]`.
    pub jitter: u32,
}

impl GapModel {
    /// A fixed gap with no jitter.
    pub const fn fixed(mean: u32) -> Self {
        GapModel { mean, jitter: 0 }
    }

    /// A jittered gap.
    pub const fn jittered(mean: u32, jitter: u32) -> Self {
        GapModel { mean, jitter }
    }

    /// Samples a gap value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if self.jitter == 0 {
            return self.mean;
        }
        let lo = self.mean.saturating_sub(self.jitter);
        let hi = self.mean + self.jitter;
        rng.gen_range(lo..=hi)
    }
}

impl Default for GapModel {
    fn default() -> Self {
        GapModel::fixed(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn fixed_gap_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = GapModel::fixed(5);
        for _ in 0..16 {
            assert_eq!(g.sample(&mut rng), 5);
        }
    }

    #[test]
    fn jittered_gap_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = GapModel::jittered(10, 3);
        for _ in 0..256 {
            let v = g.sample(&mut rng);
            assert!((7..=13).contains(&v), "gap {v} out of range");
        }
    }

    #[test]
    fn jitter_near_zero_mean_saturates() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = GapModel::jittered(1, 4);
        for _ in 0..256 {
            assert!(g.sample(&mut rng) <= 5);
        }
    }
}
