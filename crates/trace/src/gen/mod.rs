//! Workload pattern primitives.
//!
//! Each paper benchmark is modelled as a parameterization of a small number
//! of *pattern primitives*, chosen so that the properties LT-cords depends on
//! (miss-sequence recurrence, footprint, dependence chains, layout
//! regularity) match the qualitative characterization in the paper:
//!
//! * [`SweepGen`] — repeated sequential/strided passes over one or more
//!   arrays (SPECfp array codes: swim, applu, mgrid, lucas, art, …).
//! * [`ChaseGen`] — pointer chasing over a mostly-static linked structure,
//!   with optional per-pass mutation that makes recorded signatures stale
//!   (mcf, em3d, ammp, parser).
//! * [`TreeGen`] — depth-first walks or root-to-leaf path walks over a
//!   statically allocated tree (treeadd, bh).
//! * [`IndirectGen`] — sparse `x[idx[i]]` gathers with a static index array
//!   (equake, galgel, facerec).
//! * [`RandomGen`] — uniformly random, non-recurring references
//!   (hash-dominated codes: twolf's move evaluation, bzip2 buckets).
//! * [`HashWindowGen`] — a sequential input window plus random hash-table
//!   probes (gzip).
//! * [`PhaseMix`] — cycles through several sub-generators in short phases
//!   (gcc's many small program phases).
//!
//! All generators are deterministic given their seed and unbounded (they
//! iterate their outer loop forever, like the paper's benchmarks).

mod chase;
mod gap;
mod hashwindow;
mod indirect;
mod phase;
mod random;
mod sweep;
mod tree;

pub use chase::{ChaseConfig, ChaseGen, Layout};
pub use gap::GapModel;
pub use hashwindow::{HashWindowConfig, HashWindowGen};
pub use indirect::{IndirectConfig, IndirectGen};
pub use phase::PhaseMix;
pub use random::{RandomConfig, RandomGen};
pub use sweep::{SweepConfig, SweepGen};
pub use tree::{Traversal, TreeConfig, TreeGen, TreeLayout};

/// Cache-line size assumed by generators when sizing nodes and runs (bytes).
///
/// This matches the paper's 64-byte lines (Table 1); the cache simulator's
/// geometry is configured independently, but generators use this constant to
/// reason about spatial locality.
pub const LINE_BYTES: u64 = 64;
