//! Pointer chasing over a mostly-static linked structure.

use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

use crate::checkpoint::{RestoreError, SourceState};
use crate::gen::gap::GapModel;
use crate::gen::LINE_BYTES;
use crate::record::{AccessKind, Addr, MemoryAccess, Pc};
use crate::source::TraceSource;

/// Placement of linked nodes in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Node *i* lives at `base + i * node_bytes` — the systematic heap
    /// allocation the paper notes makes Olden's `treeadd` amenable to delta
    /// correlation (regular layout).
    Sequential,
    /// Nodes are shuffled across the region — an irregular layout that defeats
    /// delta-correlating prefetchers but not address correlation.
    Scattered,
}

/// Configuration for [`ChaseGen`].
#[derive(Debug, Clone)]
pub struct ChaseConfig {
    /// Base address of the node region.
    pub base: u64,
    /// Number of linked nodes.
    pub nodes: u32,
    /// Bytes per node (>= 8; nodes are at least pointer sized).
    pub node_bytes: u64,
    /// Memory layout of the nodes.
    pub layout: Layout,
    /// Extra (non-pointer) field accesses emitted per visited node.
    pub fields_per_node: u32,
    /// Fraction (0.0–1.0) of the traversal order randomly re-linked after
    /// each complete pass. Non-zero values model data-structure mutation that
    /// makes previously recorded last-touch signatures stale (Section 3.2).
    pub mutation_rate: f64,
    /// Probability that a pointer load is flagged address-dependent on the
    /// previous link. 1.0 is a single serial chain (mcf's simplex walk);
    /// lower values model codes that chase several lists concurrently and
    /// therefore retain memory-level parallelism (em3d's edge lists).
    pub chain_serialization: f64,
    /// Fraction (0.0–1.0) of visits that are to a small hot subset of nodes,
    /// modelling large-footprint/small-working-set codes such as mcf.
    pub hot_fraction: f64,
    /// Size of the hot subset as a fraction of all nodes (used only when
    /// `hot_fraction > 0`).
    pub hot_set_fraction: f64,
    /// Non-memory instruction gap model.
    pub gap: GapModel,
    /// Base program counter.
    pub pc_base: u64,
    /// RNG seed controlling layout, traversal order and mutation.
    pub seed: u64,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            base: 0x4000_0000,
            nodes: 1 << 16,
            node_bytes: LINE_BYTES,
            layout: Layout::Scattered,
            fields_per_node: 0,
            mutation_rate: 0.0,
            chain_serialization: 1.0,
            hot_fraction: 0.0,
            hot_set_fraction: 0.1,
            gap: GapModel::default(),
            pc_base: 0x41_0000,
            seed: 0,
        }
    }
}

/// Endlessly traverses a linked structure in a fixed (mostly-static) order.
///
/// The traversal order is a random permutation of all nodes fixed at
/// construction; each pass revisits the nodes in the same order, emitting a
/// `dependent` load per node (the pointer dereference) plus optional field
/// accesses. This is the pointer-chasing, repeating-sequence behaviour of
/// mcf/em3d/bh that delta correlation cannot capture but address correlation
/// can (paper Sections 1 and 5.7).
#[derive(Debug, Clone)]
pub struct ChaseGen {
    cfg: ChaseConfig,
    /// Visit order: positions in the region, in traversal order.
    order: Vec<u32>,
    /// Node index -> byte address.
    place: Vec<u64>,
    /// Hot subset visit order (non-empty only when `hot_fraction > 0`).
    hot_order: Vec<u32>,
    pos: usize,
    hot_pos: usize,
    /// Remaining field accesses for the current node.
    fields_left: u32,
    current_node: u32,
    /// Deterministic per-visit counter deciding hot vs cold visits.
    visit_no: u64,
    rng: StdRng,
}

impl ChaseGen {
    /// Creates a pointer-chase generator.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, `node_bytes < 8`, or any rate is outside
    /// `[0, 1]`.
    pub fn new(cfg: ChaseConfig) -> Self {
        assert!(cfg.nodes > 0, "chase requires at least one node");
        assert!(cfg.node_bytes >= 8, "nodes must hold at least a pointer");
        assert!((0.0..=1.0).contains(&cfg.mutation_rate), "mutation_rate must be in [0,1]");
        assert!(
            (0.0..=1.0).contains(&cfg.chain_serialization),
            "chain_serialization must be in [0,1]"
        );
        assert!((0.0..=1.0).contains(&cfg.hot_fraction), "hot_fraction must be in [0,1]");
        assert!((0.0..=1.0).contains(&cfg.hot_set_fraction), "hot_set_fraction must be in [0,1]");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc4a5_e000);
        let n = cfg.nodes as usize;

        let mut slots: Vec<u32> = (0..cfg.nodes).collect();
        if cfg.layout == Layout::Scattered {
            slots.shuffle(&mut rng);
        }
        let place: Vec<u64> =
            slots.iter().map(|&s| cfg.base + u64::from(s) * cfg.node_bytes).collect();

        let mut order: Vec<u32> = (0..cfg.nodes).collect();
        order.shuffle(&mut rng);

        let hot_order = if cfg.hot_fraction > 0.0 {
            let hot_n = ((n as f64) * cfg.hot_set_fraction).ceil().max(1.0) as usize;
            let mut h: Vec<u32> = order[..hot_n.min(n)].to_vec();
            h.shuffle(&mut rng);
            h
        } else {
            Vec::new()
        };

        ChaseGen {
            cfg,
            order,
            place,
            hot_order,
            pos: 0,
            hot_pos: 0,
            fields_left: 0,
            current_node: 0,
            visit_no: 0,
            rng,
        }
    }

    /// Total bytes occupied by the node region.
    pub fn footprint(&self) -> u64 {
        u64::from(self.cfg.nodes) * self.cfg.node_bytes
    }

    fn mutate(&mut self) {
        let swaps = ((self.order.len() as f64) * self.cfg.mutation_rate / 2.0) as usize;
        for _ in 0..swaps {
            let a = self.rng.gen_range(0..self.order.len());
            let b = self.rng.gen_range(0..self.order.len());
            self.order.swap(a, b);
        }
    }

    fn next_node(&mut self) -> u32 {
        self.visit_no = self.visit_no.wrapping_add(1);
        // Deterministically interleave hot visits using a fixed-point
        // threshold so traces stay reproducible and repetitive.
        if !self.hot_order.is_empty() {
            // One cold (full-order) visit every `cold_period` visits; the
            // rest hit the hot subset.
            let cold = 1.0 - self.cfg.hot_fraction;
            let cold_period =
                if cold <= 0.0 { u64::MAX } else { (1.0 / cold).round().max(1.0) as u64 };
            if self.visit_no % cold_period != 0 {
                let node = self.hot_order[self.hot_pos];
                self.hot_pos = (self.hot_pos + 1) % self.hot_order.len();
                return node;
            }
        }
        let node = self.order[self.pos];
        self.pos += 1;
        if self.pos >= self.order.len() {
            self.pos = 0;
            if self.cfg.mutation_rate > 0.0 {
                self.mutate();
            }
        }
        node
    }
}

impl TraceSource for ChaseGen {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        let gap = self.cfg.gap.sample(&mut self.rng);
        if self.fields_left > 0 {
            // Field access within the current node: independent of the next
            // pointer load, spatially local to the node.
            self.fields_left -= 1;
            let field_no = u64::from(self.cfg.fields_per_node - self.fields_left);
            let node_addr = self.place[self.current_node as usize];
            let off = (field_no * 8) % self.cfg.node_bytes;
            return Some(MemoryAccess {
                pc: Pc(self.cfg.pc_base + 16 + field_no * 4),
                addr: Addr(node_addr + off),
                kind: if field_no % 3 == 2 { AccessKind::Store } else { AccessKind::Load },
                gap,
                dependent: false,
            });
        }
        let node = self.next_node();
        self.current_node = node;
        self.fields_left = self.cfg.fields_per_node;
        let dependent = self.cfg.chain_serialization >= 1.0
            || (self.cfg.chain_serialization > 0.0
                && self.rng.gen_bool(self.cfg.chain_serialization));
        Some(MemoryAccess {
            pc: Pc(self.cfg.pc_base),
            addr: Addr(self.place[node as usize]),
            kind: AccessKind::Load,
            gap,
            dependent,
        })
    }

    fn checkpoint(&self) -> Option<SourceState> {
        // The traversal order only needs to travel with the state when
        // mutation can have perturbed it; otherwise the constructed
        // order is still exact and the checkpoint stays small.
        let order = if self.cfg.mutation_rate > 0.0 { Some(self.order.clone()) } else { None };
        Some(SourceState::Chase {
            order,
            pos: self.pos as u64,
            hot_pos: self.hot_pos as u64,
            fields_left: self.fields_left,
            current_node: self.current_node,
            visit_no: self.visit_no,
            rng: self.rng.state(),
        })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::Chase { order, pos, hot_pos, fields_left, current_node, visit_no, rng } =
            state
        else {
            return Err(RestoreError::mismatch("chase", state));
        };
        if let Some(order) = order {
            if order.len() != self.order.len() {
                return Err(RestoreError::invalid(format!(
                    "chase state orders {} nodes, configuration has {}",
                    order.len(),
                    self.order.len()
                )));
            }
        } else if self.cfg.mutation_rate > 0.0 {
            return Err(RestoreError::invalid(
                "chase state lacks the traversal order a mutating configuration requires",
            ));
        }
        if *pos >= self.order.len() as u64 {
            return Err(RestoreError::invalid(format!("chase position {pos} out of range")));
        }
        if self.hot_order.is_empty() {
            if *hot_pos != 0 {
                return Err(RestoreError::invalid("chase state expects a hot subset"));
            }
        } else if *hot_pos >= self.hot_order.len() as u64 {
            return Err(RestoreError::invalid(format!(
                "chase hot position {hot_pos} out of range"
            )));
        }
        if u64::from(*current_node) >= self.place.len() as u64 {
            return Err(RestoreError::invalid(format!("chase node {current_node} out of range")));
        }
        if let Some(order) = order {
            self.order.clone_from(order);
        }
        self.pos = *pos as usize;
        self.hot_pos = *hot_pos as usize;
        self.fields_left = *fields_left;
        self.current_node = *current_node;
        self.visit_no = *visit_no;
        self.rng = StdRng::from_state(*rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> ChaseConfig {
        ChaseConfig { nodes: 64, gap: GapModel::fixed(1), ..ChaseConfig::default() }
    }

    #[test]
    fn visits_every_node_once_per_pass() {
        let mut g = ChaseGen::new(base_cfg());
        let v = g.collect_accesses(64);
        let mut addrs: Vec<u64> = v.iter().map(|a| a.addr.0).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 64, "each node visited exactly once per pass");
    }

    #[test]
    fn passes_repeat_without_mutation() {
        let mut g = ChaseGen::new(base_cfg());
        let first: Vec<u64> = g.collect_accesses(64).iter().map(|a| a.addr.0).collect();
        let second: Vec<u64> = g.collect_accesses(64).iter().map(|a| a.addr.0).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn mutation_changes_order_between_passes() {
        let cfg = ChaseConfig { mutation_rate: 0.5, ..base_cfg() };
        let mut g = ChaseGen::new(cfg);
        let first: Vec<u64> = g.collect_accesses(64).iter().map(|a| a.addr.0).collect();
        let second: Vec<u64> = g.collect_accesses(64).iter().map(|a| a.addr.0).collect();
        assert_ne!(first, second, "mutation must perturb the traversal order");
        // But the set of nodes is unchanged.
        let mut f = first.clone();
        let mut s = second.clone();
        f.sort_unstable();
        s.sort_unstable();
        assert_eq!(f, s);
    }

    #[test]
    fn pointer_loads_are_dependent() {
        let mut g = ChaseGen::new(base_cfg());
        assert!(g.next_access().unwrap().dependent);
    }

    #[test]
    fn field_accesses_follow_each_node() {
        let cfg = ChaseConfig { fields_per_node: 2, node_bytes: 128, ..base_cfg() };
        let mut g = ChaseGen::new(cfg);
        let a = g.next_access().unwrap();
        let f1 = g.next_access().unwrap();
        let f2 = g.next_access().unwrap();
        assert!(a.dependent);
        assert!(!f1.dependent && !f2.dependent);
        assert_eq!(f1.addr.line(128), a.addr.line(128), "fields live in the node");
        assert_eq!(f2.addr.line(128), a.addr.line(128));
        let b = g.next_access().unwrap();
        assert!(b.dependent, "next node follows the fields");
    }

    #[test]
    fn sequential_layout_is_contiguous() {
        let cfg = ChaseConfig { layout: Layout::Sequential, base: 0x1000, ..base_cfg() };
        let g = ChaseGen::new(cfg);
        // With a sequential layout node i sits at base + i*node_bytes.
        assert_eq!(g.place[0], 0x1000);
        assert_eq!(g.place[1], 0x1040);
        assert_eq!(g.place[63], 0x1000 + 63 * 64);
    }

    #[test]
    fn hot_set_dominates_visits() {
        let cfg =
            ChaseConfig { nodes: 1000, hot_fraction: 0.9, hot_set_fraction: 0.05, ..base_cfg() };
        let mut g = ChaseGen::new(cfg);
        let v = g.collect_accesses(1000);
        let mut uniq: Vec<u64> = v.iter().map(|a| a.addr.0).collect();
        uniq.sort_unstable();
        uniq.dedup();
        // 90% of visits hit the ~50-node hot set, so far fewer than 1000
        // distinct addresses appear in 1000 visits.
        assert!(uniq.len() < 250, "expected hot-set reuse, got {} uniques", uniq.len());
    }

    #[test]
    fn footprint_is_nodes_times_size() {
        let g = ChaseGen::new(base_cfg());
        assert_eq!(g.footprint(), 64 * 64);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = ChaseGen::new(base_cfg()).collect_accesses(200);
        let b = ChaseGen::new(base_cfg()).collect_accesses(200);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_zero_nodes() {
        let _ = ChaseGen::new(ChaseConfig { nodes: 0, ..ChaseConfig::default() });
    }
}
