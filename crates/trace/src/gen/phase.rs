//! Cycling through several sub-generators in short phases.

use crate::checkpoint::{RestoreError, SourceState};
use crate::record::MemoryAccess;
use crate::source::{BoxedSource, TraceSource};

/// Cycles through sub-generators, emitting a fixed number of accesses from
/// each before moving to the next, forever.
///
/// This reproduces the many-short-phases structure of gcc, whose working set
/// and access pattern change every few million instructions (the paper cites
/// SimPoint-style phase behaviour in Section 2.1). Each phase's own pattern
/// recurs when the mixer wraps around, so phase-local sequences are
/// learnable, separated by phase transitions.
pub struct PhaseMix {
    phases: Vec<(BoxedSource, u64)>,
    current: usize,
    emitted: u64,
}

impl std::fmt::Debug for PhaseMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseMix")
            .field("phases", &self.phases.len())
            .field("current", &self.current)
            .field("emitted", &self.emitted)
            .finish()
    }
}

impl PhaseMix {
    /// Creates a phase mixer from `(source, accesses_per_phase)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase length is zero.
    pub fn new(phases: Vec<(BoxedSource, u64)>) -> Self {
        assert!(!phases.is_empty(), "phase mix requires at least one phase");
        assert!(phases.iter().all(|(_, n)| *n > 0), "phase lengths must be non-zero");
        PhaseMix { phases, current: 0, emitted: 0 }
    }

    /// Number of configured phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

impl TraceSource for PhaseMix {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        // Up to n+1 attempts: the current phase may need to be rolled over
        // first, then each other phase gets one chance to produce a record.
        let n = self.phases.len();
        for _ in 0..=n {
            let (src, len) = &mut self.phases[self.current];
            if self.emitted < *len {
                if let Some(a) = src.next_access() {
                    self.emitted += 1;
                    return Some(a);
                }
                // Exhausted source: fall through to the next phase.
            }
            self.current = (self.current + 1) % n;
            self.emitted = 0;
        }
        None
    }

    fn checkpoint(&self) -> Option<SourceState> {
        let mut phases = Vec::with_capacity(self.phases.len());
        for (src, _) in &self.phases {
            phases.push(src.checkpoint()?);
        }
        Some(SourceState::Phase { current: self.current as u64, emitted: self.emitted, phases })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::Phase { current, emitted, phases } = state else {
            return Err(RestoreError::mismatch("phase", state));
        };
        if phases.len() != self.phases.len() {
            return Err(RestoreError::invalid(format!(
                "phase state has {} phases, mixer has {}",
                phases.len(),
                self.phases.len()
            )));
        }
        if *current >= self.phases.len() as u64 {
            return Err(RestoreError::invalid(format!("phase index {current} out of range")));
        }
        for ((src, _), sub) in self.phases.iter_mut().zip(phases) {
            src.restore(sub)?;
        }
        self.current = *current as usize;
        self.emitted = *emitted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Addr, MemoryAccess, Pc};
    use crate::source::Replay;

    fn looping(pc: u64) -> BoxedSource {
        Box::new(Replay::cycle(vec![MemoryAccess::load(Pc(pc), Addr(pc * 64))]))
    }

    #[test]
    fn phases_alternate_at_boundaries() {
        let mut m = PhaseMix::new(vec![(looping(1), 2), (looping(2), 3)]);
        let pcs: Vec<u64> = m.collect_accesses(10).iter().map(|a| a.pc.0).collect();
        assert_eq!(pcs, vec![1, 1, 2, 2, 2, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn single_phase_behaves_like_inner() {
        let mut m = PhaseMix::new(vec![(looping(7), 5)]);
        assert!(m.collect_accesses(12).iter().all(|a| a.pc.0 == 7));
    }

    #[test]
    fn finite_inner_source_skips_to_next_phase() {
        let finite: BoxedSource = Box::new(Replay::once(vec![MemoryAccess::load(Pc(9), Addr(0))]));
        let mut m = PhaseMix::new(vec![(finite, 100), (looping(3), 2)]);
        let pcs: Vec<u64> = m.collect_accesses(4).iter().map(|a| a.pc.0).collect();
        assert_eq!(pcs, vec![9, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn rejects_empty() {
        let _ = PhaseMix::new(vec![]);
    }
}
