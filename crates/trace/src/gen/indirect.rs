//! Sparse `x[idx[i]]` gathers with a static index array.

use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

use crate::checkpoint::{RestoreError, SourceState};
use crate::gen::gap::GapModel;
use crate::gen::LINE_BYTES;
use crate::record::{AccessKind, Addr, MemoryAccess, Pc};
use crate::source::TraceSource;

/// Configuration for [`IndirectGen`].
#[derive(Debug, Clone)]
pub struct IndirectConfig {
    /// Base address; the index array is placed here, the data array after it.
    pub base: u64,
    /// Number of gather operations per pass (= entries in the index array).
    pub gathers_per_pass: u32,
    /// Number of 64-bit elements in the data array.
    pub data_elems: u32,
    /// Fraction of gathers whose target is rewritten each pass (0 keeps the
    /// index array fully static, giving perfectly recurring miss sequences).
    pub churn: f64,
    /// Whether a store to the gathered element follows each load
    /// (sparse matrix-vector update style).
    pub store_result: bool,
    /// Non-memory instruction gap model.
    pub gap: GapModel,
    /// Base program counter.
    pub pc_base: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IndirectConfig {
    fn default() -> Self {
        IndirectConfig {
            base: 0x8000_0000,
            gathers_per_pass: 1 << 16,
            data_elems: 1 << 18,
            churn: 0.0,
            store_result: false,
            gap: GapModel::default(),
            pc_base: 0x43_0000,
            seed: 0,
        }
    }
}

/// Emits the access pattern of `for i { y += x[idx[i]] }` repeated forever.
///
/// Each gather issues a sequential load of `idx[i]` followed by a dependent
/// load of `x[idx[i]]`. The index array is a static random mapping, so data
/// accesses are irregular in address space (defeating delta correlation) but
/// recur identically every pass (ideal for address correlation) — the
/// structure of equake/galgel/facerec sparse kernels.
#[derive(Debug, Clone)]
pub struct IndirectGen {
    cfg: IndirectConfig,
    idx: Vec<u32>,
    data_base: u64,
    pos: usize,
    /// 0 = emit index load next, 1 = emit data load, 2 = emit store.
    stage: u8,
    rng: StdRng,
}

impl IndirectGen {
    /// Creates an indirect-gather generator.
    ///
    /// # Panics
    ///
    /// Panics if `gathers_per_pass` or `data_elems` is zero, or if `churn`
    /// is outside `[0, 1]`.
    pub fn new(cfg: IndirectConfig) -> Self {
        assert!(cfg.gathers_per_pass > 0, "need at least one gather per pass");
        assert!(cfg.data_elems > 0, "data array cannot be empty");
        assert!((0.0..=1.0).contains(&cfg.churn), "churn must be in [0,1]");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1d1_4ec7);
        // A shuffled index array covering the data array as evenly as the
        // sizes allow (wrapping when gathers > data elems).
        let mut idx: Vec<u32> = (0..cfg.gathers_per_pass).map(|i| i % cfg.data_elems).collect();
        idx.shuffle(&mut rng);
        let idx_bytes = u64::from(cfg.gathers_per_pass) * 4;
        let data_base = (cfg.base + idx_bytes + 0xfff) & !0xfff;
        IndirectGen { cfg, idx, data_base, pos: 0, stage: 0, rng }
    }

    /// Total bytes in index plus data arrays.
    pub fn footprint(&self) -> u64 {
        u64::from(self.cfg.gathers_per_pass) * 4 + u64::from(self.cfg.data_elems) * 8
    }

    fn churn_indices(&mut self) {
        use rand::Rng;
        let n = ((self.idx.len() as f64) * self.cfg.churn) as usize;
        for _ in 0..n {
            let at = self.rng.gen_range(0..self.idx.len());
            self.idx[at] = self.rng.gen_range(0..self.cfg.data_elems);
        }
    }
}

impl TraceSource for IndirectGen {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        let gap = self.cfg.gap.sample(&mut self.rng);
        match self.stage {
            0 => {
                // Sequential walk of the index array (4-byte entries, so 16
                // index loads per cache line — most hit in L1).
                self.stage = 1;
                Some(MemoryAccess {
                    pc: Pc(self.cfg.pc_base),
                    addr: Addr(self.cfg.base + (self.pos as u64) * 4),
                    kind: AccessKind::Load,
                    gap,
                    dependent: false,
                })
            }
            1 => {
                let target = self.idx[self.pos];
                self.stage = if self.cfg.store_result { 2 } else { 0 };
                if self.stage == 0 {
                    self.advance();
                }
                // The gather's address comes from the (L1-resident) index
                // load, so consecutive gathers overlap freely — equake-class
                // kernels have abundant memory-level parallelism. The
                // 2-cycle idx-load dependence is negligible and not modelled.
                Some(MemoryAccess {
                    pc: Pc(self.cfg.pc_base + 8),
                    addr: Addr(self.data_base + u64::from(target) * 8),
                    kind: AccessKind::Load,
                    gap,
                    dependent: false,
                })
            }
            _ => {
                let target = self.idx[self.pos];
                self.stage = 0;
                self.advance();
                Some(MemoryAccess {
                    pc: Pc(self.cfg.pc_base + 16),
                    addr: Addr(self.data_base + u64::from(target) * 8),
                    kind: AccessKind::Store,
                    gap,
                    dependent: false,
                })
            }
        }
    }

    fn checkpoint(&self) -> Option<SourceState> {
        // The index array only travels with the state when churn can
        // have rewritten it; otherwise the constructed array is exact.
        let idx = if self.cfg.churn > 0.0 { Some(self.idx.clone()) } else { None };
        Some(SourceState::Indirect {
            idx,
            pos: self.pos as u64,
            stage: self.stage,
            rng: self.rng.state(),
        })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::Indirect { idx, pos, stage, rng } = state else {
            return Err(RestoreError::mismatch("indirect", state));
        };
        if let Some(idx) = idx {
            if idx.len() != self.idx.len() {
                return Err(RestoreError::invalid(format!(
                    "indirect state indexes {} gathers, configuration has {}",
                    idx.len(),
                    self.idx.len()
                )));
            }
            if idx.iter().any(|&t| t >= self.cfg.data_elems) {
                return Err(RestoreError::invalid("indirect index target out of range"));
            }
        } else if self.cfg.churn > 0.0 {
            return Err(RestoreError::invalid(
                "indirect state lacks the index array a churning configuration requires",
            ));
        }
        if *pos >= self.idx.len() as u64 {
            return Err(RestoreError::invalid(format!("indirect position {pos} out of range")));
        }
        if *stage > 2 {
            return Err(RestoreError::invalid(format!("indirect stage {stage} out of range")));
        }
        if let Some(idx) = idx {
            self.idx.clone_from(idx);
        }
        self.pos = *pos as usize;
        self.stage = *stage;
        self.rng = StdRng::from_state(*rng);
        Ok(())
    }
}

impl IndirectGen {
    fn advance(&mut self) {
        self.pos += 1;
        if self.pos >= self.idx.len() {
            self.pos = 0;
            if self.cfg.churn > 0.0 {
                self.churn_indices();
            }
        }
    }
}

/// Asserts at compile time that index lines hold multiple entries.
const _: () = assert!(LINE_BYTES / 4 == 16);

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IndirectConfig {
        IndirectConfig {
            gathers_per_pass: 32,
            data_elems: 64,
            gap: GapModel::fixed(1),
            ..IndirectConfig::default()
        }
    }

    #[test]
    fn alternates_index_and_data_loads() {
        let mut g = IndirectGen::new(cfg());
        let i0 = g.next_access().unwrap();
        let d0 = g.next_access().unwrap();
        let i1 = g.next_access().unwrap();
        assert!(!i0.dependent);
        assert!(!d0.dependent, "gathers overlap (MLP), see the stage-1 comment");
        assert_eq!(i1.addr.0, i0.addr.0 + 4, "index walk is sequential");
    }

    #[test]
    fn passes_repeat_without_churn() {
        let mut g = IndirectGen::new(cfg());
        let a: Vec<u64> = g.collect_accesses(64).iter().map(|x| x.addr.0).collect();
        let b: Vec<u64> = g.collect_accesses(64).iter().map(|x| x.addr.0).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn churn_changes_targets() {
        let mut g = IndirectGen::new(IndirectConfig { churn: 0.5, ..cfg() });
        let a: Vec<u64> = g.collect_accesses(64).iter().map(|x| x.addr.0).collect();
        let b: Vec<u64> = g.collect_accesses(64).iter().map(|x| x.addr.0).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn store_result_emits_store_after_load() {
        let mut g = IndirectGen::new(IndirectConfig { store_result: true, ..cfg() });
        let _idx = g.next_access().unwrap();
        let data = g.next_access().unwrap();
        let st = g.next_access().unwrap();
        assert_eq!(st.kind, AccessKind::Store);
        assert_eq!(st.addr, data.addr, "store updates the gathered element");
    }

    #[test]
    fn data_region_does_not_overlap_index() {
        let g = IndirectGen::new(cfg());
        let idx_end = g.cfg.base + u64::from(g.cfg.gathers_per_pass) * 4;
        assert!(g.data_base >= idx_end);
    }

    #[test]
    fn footprint_counts_both_arrays() {
        let g = IndirectGen::new(cfg());
        assert_eq!(g.footprint(), 32 * 4 + 64 * 8);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn rejects_empty_data() {
        let _ = IndirectGen::new(IndirectConfig { data_elems: 0, ..IndirectConfig::default() });
    }
}
