//! Depth-first and path walks over a statically allocated tree.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::checkpoint::{RestoreError, SourceState};
use crate::gen::gap::GapModel;
use crate::record::{AccessKind, Addr, MemoryAccess, Pc};
use crate::source::TraceSource;

/// How nodes are placed in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeLayout {
    /// Implicit heap (breadth-first) order: node *i* at `base + i * size`.
    Heap,
    /// Depth-first (allocation) order: Olden's `treeadd` allocates nodes
    /// recursively, so a DFS walk reads memory almost sequentially — the
    /// systematic allocation the paper credits for treeadd's
    /// delta-correlation friendliness (Section 5.7).
    DfsOrder,
}

/// How the tree is visited each pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traversal {
    /// Full recursive depth-first walk (Olden `treeadd`).
    DepthFirst,
    /// `count` root-to-leaf walks per pass, with static per-walk paths
    /// (an approximation of Barnes-Hut body/octree interaction in `bh`).
    Paths {
        /// Number of root-to-leaf walks per pass.
        count: u32,
    },
}

/// Configuration for [`TreeGen`].
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Base address of the node array.
    pub base: u64,
    /// Tree depth; the tree holds `2^depth - 1` nodes.
    pub depth: u32,
    /// Bytes per node. Olden's `treeadd` nodes are 32 bytes, so two nodes
    /// share a 64-byte line when allocated systematically.
    pub node_bytes: u64,
    /// Traversal mode.
    pub traversal: Traversal,
    /// Node placement in memory.
    pub layout: TreeLayout,
    /// Accesses emitted per visited node (the pointer load plus the field
    /// reads/writes the node's computation performs).
    pub accesses_per_node: u32,
    /// Non-memory instruction gap model.
    pub gap: GapModel,
    /// Base program counter.
    pub pc_base: u64,
    /// RNG seed (selects the static leaf paths in `Paths` mode).
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            base: 0x6000_0000,
            depth: 16,
            node_bytes: 32,
            traversal: Traversal::DepthFirst,
            layout: TreeLayout::Heap,
            accesses_per_node: 1,
            gap: GapModel::default(),
            pc_base: 0x42_0000,
            seed: 0,
        }
    }
}

/// Walks a statically allocated binary tree, endlessly repeating passes.
///
/// Nodes are allocated breadth-first at `base + index * node_bytes` — the
/// systematic heap allocation that, per the paper (Section 5.7), gives
/// `treeadd` a regular enough layout for delta correlation to work, while
/// still being a dependent pointer chase for the timing model.
#[derive(Debug)]
pub struct TreeGen {
    cfg: TreeConfig,
    /// Precomputed static visit order (node indices).
    visit: Vec<u32>,
    /// Node index -> placement rank (identity for the heap layout).
    place: Vec<u32>,
    pos: usize,
    /// Remaining field accesses for the current node.
    fields_left: u32,
    current: u32,
    rng: StdRng,
}

impl TreeGen {
    /// Creates a tree-walk generator.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or greater than 26 (≥ 2^26 nodes would make the
    /// precomputed visit order unreasonably large), or if `node_bytes < 8`.
    pub fn new(cfg: TreeConfig) -> Self {
        assert!((1..=26).contains(&cfg.depth), "tree depth must be in 1..=26");
        assert!(cfg.node_bytes >= 8, "nodes must hold at least a pointer");
        assert!(cfg.accesses_per_node >= 1, "each visit touches the node at least once");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x07ee_5eed);
        let nodes: u32 = (1u32 << cfg.depth) - 1;
        let mut visit = Vec::new();
        match cfg.traversal {
            Traversal::DepthFirst => {
                // Iterative preorder DFS over the implicit heap layout.
                let mut stack = vec![0u32];
                while let Some(n) = stack.pop() {
                    visit.push(n);
                    let left = 2 * n + 1;
                    let right = 2 * n + 2;
                    if right < nodes {
                        stack.push(right);
                    }
                    if left < nodes {
                        stack.push(left);
                    }
                }
            }
            Traversal::Paths { count } => {
                for _ in 0..count.max(1) {
                    let mut n = 0u32;
                    visit.push(n);
                    loop {
                        let left = 2 * n + 1;
                        if left >= nodes {
                            break;
                        }
                        let go_right = rng.gen_bool(0.5);
                        n = if go_right && left + 1 < nodes { left + 1 } else { left };
                        visit.push(n);
                    }
                }
            }
        }
        let place: Vec<u32> = match cfg.layout {
            TreeLayout::Heap => (0..nodes).collect(),
            TreeLayout::DfsOrder => {
                // Placement rank = preorder DFS rank (allocation order).
                let mut rank = vec![0u32; nodes as usize];
                let mut next = 0u32;
                let mut stack = vec![0u32];
                while let Some(n) = stack.pop() {
                    rank[n as usize] = next;
                    next += 1;
                    let left = 2 * n + 1;
                    let right = 2 * n + 2;
                    if right < nodes {
                        stack.push(right);
                    }
                    if left < nodes {
                        stack.push(left);
                    }
                }
                rank
            }
        };
        TreeGen { cfg, visit, place, pos: 0, fields_left: 0, current: 0, rng }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> u32 {
        (1u32 << self.cfg.depth) - 1
    }

    /// Total bytes occupied by the tree.
    pub fn footprint(&self) -> u64 {
        u64::from(self.node_count()) * self.cfg.node_bytes
    }

    /// Node visits per pass (each visit emits `accesses_per_node` accesses).
    pub fn pass_len(&self) -> usize {
        self.visit.len()
    }
}

impl TraceSource for TreeGen {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        let gap = self.cfg.gap.sample(&mut self.rng);
        if self.fields_left > 0 {
            // Field work within the current node (non-pointer accesses).
            self.fields_left -= 1;
            let field_no = u64::from(self.cfg.accesses_per_node - 1 - self.fields_left);
            let node_addr =
                self.cfg.base + u64::from(self.place[self.current as usize]) * self.cfg.node_bytes;
            return Some(MemoryAccess {
                pc: Pc(self.cfg.pc_base + 8 + field_no * 4),
                addr: Addr(node_addr + (field_no * 8) % self.cfg.node_bytes),
                kind: if field_no % 4 == 3 { AccessKind::Store } else { AccessKind::Load },
                gap,
                dependent: false,
            });
        }
        let node = self.visit[self.pos];
        self.pos = (self.pos + 1) % self.visit.len();
        self.current = node;
        self.fields_left = self.cfg.accesses_per_node - 1;
        Some(MemoryAccess {
            pc: Pc(self.cfg.pc_base),
            addr: Addr(self.cfg.base + u64::from(self.place[node as usize]) * self.cfg.node_bytes),
            kind: AccessKind::Load,
            gap,
            dependent: true,
        })
    }

    fn checkpoint(&self) -> Option<SourceState> {
        Some(SourceState::Tree {
            pos: self.pos as u64,
            fields_left: self.fields_left,
            current: self.current,
            rng: self.rng.state(),
        })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::Tree { pos, fields_left, current, rng } = state else {
            return Err(RestoreError::mismatch("tree", state));
        };
        if *pos >= self.visit.len() as u64 {
            return Err(RestoreError::invalid(format!("tree position {pos} out of range")));
        }
        if u64::from(*current) >= self.place.len() as u64 {
            return Err(RestoreError::invalid(format!("tree node {current} out of range")));
        }
        self.pos = *pos as usize;
        self.fields_left = *fields_left;
        self.current = *current;
        self.rng = StdRng::from_state(*rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_visits_every_node_once() {
        let g = TreeGen::new(TreeConfig { depth: 5, ..TreeConfig::default() });
        assert_eq!(g.pass_len(), 31);
        let mut v = g.visit.clone();
        v.sort_unstable();
        let expect: Vec<u32> = (0..31).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn dfs_is_preorder() {
        let g = TreeGen::new(TreeConfig { depth: 3, ..TreeConfig::default() });
        // Preorder over heap indices 0..6: 0, 1, 3, 4, 2, 5, 6.
        assert_eq!(g.visit, vec![0, 1, 3, 4, 2, 5, 6]);
    }

    #[test]
    fn passes_repeat() {
        let mut g =
            TreeGen::new(TreeConfig { depth: 4, gap: GapModel::fixed(0), ..TreeConfig::default() });
        let n = g.pass_len();
        let a: Vec<u64> = g.collect_accesses(n).iter().map(|x| x.addr.0).collect();
        let b: Vec<u64> = g.collect_accesses(n).iter().map(|x| x.addr.0).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn paths_start_at_root_and_reach_leaves() {
        let g = TreeGen::new(TreeConfig {
            depth: 6,
            traversal: Traversal::Paths { count: 8 },
            ..TreeConfig::default()
        });
        assert_eq!(g.visit[0], 0, "walks start at the root");
        // Each path has `depth` nodes (root to leaf).
        assert_eq!(g.pass_len(), 8 * 6);
    }

    #[test]
    fn nodes_are_systematically_allocated() {
        let mut g = TreeGen::new(TreeConfig {
            depth: 3,
            base: 0x1000,
            node_bytes: 32,
            ..TreeConfig::default()
        });
        let a = g.next_access().unwrap();
        assert_eq!(a.addr.0, 0x1000);
        let b = g.next_access().unwrap();
        assert_eq!(b.addr.0, 0x1020, "node 1 is 32 bytes after node 0");
    }

    #[test]
    fn walks_are_dependent_loads() {
        let mut g = TreeGen::new(TreeConfig { depth: 3, ..TreeConfig::default() });
        let a = g.next_access().unwrap();
        assert!(a.dependent);
        assert_eq!(a.kind, AccessKind::Load);
    }

    #[test]
    #[should_panic(expected = "1..=26")]
    fn rejects_zero_depth() {
        let _ = TreeGen::new(TreeConfig { depth: 0, ..TreeConfig::default() });
    }

    #[test]
    fn footprint_counts_all_nodes() {
        let g = TreeGen::new(TreeConfig { depth: 4, node_bytes: 32, ..TreeConfig::default() });
        assert_eq!(g.footprint(), 15 * 32);
    }
}
