//! Multi-programmed execution: context-switched interleaving of programs.

use crate::checkpoint::{RestoreError, SourceState};
use crate::record::MemoryAccess;
use crate::source::{BoxedSource, TraceSource};

/// Interleaves several programs with context switches, as in the paper's
/// multi-programmed study (Section 5.5).
///
/// Each program runs for a quantum measured in *instructions* (memory
/// accesses plus their gaps), then the next program runs. Addresses of each
/// program are shifted by a per-program offset so the physical ranges do not
/// overlap, exactly as the paper does. The identity of the running program is
/// reported alongside each access so experiments can attribute misses.
pub struct MultiProgram {
    programs: Vec<Program>,
    current: usize,
    /// Instructions left in the current quantum.
    remaining: u64,
}

struct Program {
    source: BoxedSource,
    quantum: u64,
    shift: u64,
    done: bool,
}

impl std::fmt::Debug for MultiProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiProgram")
            .field("programs", &self.programs.len())
            .field("current", &self.current)
            .field("remaining", &self.remaining)
            .finish()
    }
}

impl MultiProgram {
    /// Creates a multi-programmed interleaving.
    ///
    /// Each tuple is `(source, quantum_instructions, address_shift)`. The
    /// paper uses 60 M-instruction quanta for integer codes and 120 M for
    /// floating point (4 GHz, assumed IPC 1.5/3.0); scaled-down quanta
    /// preserve the structure.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty or any quantum is zero.
    pub fn new(programs: Vec<(BoxedSource, u64, u64)>) -> Self {
        assert!(!programs.is_empty(), "need at least one program");
        assert!(programs.iter().all(|(_, q, _)| *q > 0), "quanta must be non-zero");
        let programs: Vec<Program> = programs
            .into_iter()
            .map(|(source, quantum, shift)| Program { source, quantum, shift, done: false })
            .collect();
        let first_quantum = programs[0].quantum;
        MultiProgram { programs, current: 0, remaining: first_quantum }
    }

    /// Index of the program that will produce the next access.
    pub fn current_program(&self) -> usize {
        self.current
    }

    /// Produces the next access along with the index of the program that
    /// issued it.
    pub fn next_tagged(&mut self) -> Option<(usize, MemoryAccess)> {
        let n = self.programs.len();
        for _ in 0..=n {
            if self.remaining == 0 || self.programs[self.current].done {
                self.switch();
                if self.programs.iter().all(|p| p.done) {
                    return None;
                }
                continue;
            }
            let idx = self.current;
            let prog = &mut self.programs[idx];
            match prog.source.next_access() {
                Some(mut a) => {
                    let cost = a.instructions();
                    self.remaining = self.remaining.saturating_sub(cost);
                    a.addr = a.addr.offset_by(prog.shift);
                    return Some((idx, a));
                }
                None => {
                    prog.done = true;
                }
            }
        }
        None
    }

    fn switch(&mut self) {
        let n = self.programs.len();
        for _ in 0..n {
            self.current = (self.current + 1) % n;
            if !self.programs[self.current].done {
                self.remaining = self.programs[self.current].quantum;
                return;
            }
        }
    }
}

impl TraceSource for MultiProgram {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        self.next_tagged().map(|(_, a)| a)
    }

    fn checkpoint(&self) -> Option<SourceState> {
        let mut programs = Vec::with_capacity(self.programs.len());
        for p in &self.programs {
            programs.push(p.source.checkpoint()?);
        }
        Some(SourceState::MultiProgram {
            current: self.current as u64,
            remaining: self.remaining,
            done: self.programs.iter().map(|p| p.done).collect(),
            programs,
        })
    }

    fn restore(&mut self, state: &SourceState) -> Result<(), RestoreError> {
        let SourceState::MultiProgram { current, remaining, done, programs } = state else {
            return Err(RestoreError::mismatch("multi-program", state));
        };
        if programs.len() != self.programs.len() || done.len() != self.programs.len() {
            return Err(RestoreError::invalid(format!(
                "multi-program state has {} programs, interleaver has {}",
                programs.len(),
                self.programs.len()
            )));
        }
        if *current >= self.programs.len() as u64 {
            return Err(RestoreError::invalid(format!("program index {current} out of range")));
        }
        for (p, sub) in self.programs.iter_mut().zip(programs) {
            p.source.restore(sub)?;
        }
        for (p, &flag) in self.programs.iter_mut().zip(done) {
            p.done = flag;
        }
        self.current = *current as usize;
        self.remaining = *remaining;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Addr, Pc};
    use crate::source::Replay;

    fn looping(pc: u64) -> BoxedSource {
        Box::new(Replay::cycle(vec![MemoryAccess::load(Pc(pc), Addr(0x100))]))
    }

    #[test]
    fn quanta_alternate_programs() {
        let mut m = MultiProgram::new(vec![(looping(1), 2, 0), (looping(2), 3, 0)]);
        let pcs: Vec<u64> = (0..10).map(|_| m.next_access().unwrap().pc.0).collect();
        assert_eq!(pcs, vec![1, 1, 2, 2, 2, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn shift_separates_address_spaces() {
        let mut m = MultiProgram::new(vec![(looping(1), 1, 0), (looping(2), 1, 0x1_0000_0000)]);
        let a = m.next_access().unwrap();
        let b = m.next_access().unwrap();
        assert_eq!(a.addr, Addr(0x100));
        assert_eq!(b.addr, Addr(0x1_0000_0100));
    }

    #[test]
    fn tagged_output_identifies_program() {
        let mut m = MultiProgram::new(vec![(looping(1), 2, 0), (looping(2), 2, 0)]);
        let tags: Vec<usize> = (0..8).map(|_| m.next_tagged().unwrap().0).collect();
        assert_eq!(tags, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn gap_counts_against_quantum() {
        // Each access represents 5 instructions (gap 4 + itself); a quantum
        // of 10 instructions admits two accesses per turn.
        let acc = MemoryAccess::load(Pc(1), Addr(0)).with_gap(4);
        let p0: BoxedSource = Box::new(Replay::cycle(vec![acc]));
        let p1: BoxedSource =
            Box::new(Replay::cycle(vec![MemoryAccess::load(Pc(2), Addr(64)).with_gap(4)]));
        let mut m = MultiProgram::new(vec![(p0, 10, 0), (p1, 10, 0)]);
        let pcs: Vec<u64> = (0..8).map(|_| m.next_access().unwrap().pc.0).collect();
        assert_eq!(pcs, vec![1, 1, 2, 2, 1, 1, 2, 2]);
    }

    #[test]
    fn finite_programs_drain() {
        let p0: BoxedSource = Box::new(Replay::once(vec![
            MemoryAccess::load(Pc(1), Addr(0)),
            MemoryAccess::load(Pc(1), Addr(64)),
        ]));
        let p1: BoxedSource = Box::new(Replay::once(vec![MemoryAccess::load(Pc(2), Addr(0))]));
        let mut m = MultiProgram::new(vec![(p0, 1, 0), (p1, 1, 0)]);
        let mut pcs = Vec::new();
        while let Some(a) = m.next_access() {
            pcs.push(a.pc.0);
        }
        assert_eq!(pcs, vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one program")]
    fn rejects_empty() {
        let _ = MultiProgram::new(vec![]);
    }
}
