//! Core value types describing one committed memory reference.

use std::fmt;

/// A byte address in the simulated physical address space.
///
/// The paper models a 1 GB (30-bit) physical space; we allow the full 64-bit
/// range so that multi-programmed experiments can shift workloads into
/// disjoint regions (Section 5.5 of the paper).
///
/// # Example
///
/// ```
/// use ltc_trace::Addr;
///
/// let a = Addr(0x1234);
/// assert_eq!(a.line(64).0, 0x1200);
/// assert_eq!(a.offset_by(0x10), Addr(0x1244));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the address of the cache line containing `self`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    #[inline]
    pub fn line(self, line_bytes: u64) -> Addr {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        Addr(self.0 & !(line_bytes - 1))
    }

    /// Returns the cache-line number (address divided by the line size).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    #[inline]
    pub fn line_number(self, line_bytes: u64) -> u64 {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        self.0 >> line_bytes.trailing_zeros()
    }

    /// Returns this address displaced by `delta` bytes.
    #[inline]
    pub fn offset_by(self, delta: u64) -> Addr {
        Addr(self.0.wrapping_add(delta))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// The program counter of the instruction performing an access.
///
/// Last-touch signatures hash the sequence of PCs that touch a cache block
/// (Section 2 of the paper), so generators assign a small stable set of PCs
/// to each loop/traversal site, exactly as compiled code would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u64);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

impl From<u64> for Pc {
    fn from(v: u64) -> Self {
        Pc(v)
    }
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load instruction.
    Load,
    /// A store instruction.
    Store,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Load`].
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// One committed memory reference, as produced by a [`crate::TraceSource`].
///
/// In addition to the architectural fields (`pc`, `addr`, `kind`), a record
/// carries two microarchitectural hints used by the timing model:
///
/// * `gap` — the number of non-memory instructions committed since the
///   previous memory reference. This sets the compute intensity of the
///   workload and therefore its baseline IPC (paper Table 2).
/// * `dependent` — `true` when the *address* of this access is data-dependent
///   on the value returned by the immediately preceding access (pointer
///   chasing). Dependent misses cannot overlap, which is exactly the
///   memory-level-parallelism limitation LT-cords attacks (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryAccess {
    /// Program counter of the memory instruction.
    pub pc: Pc,
    /// Byte address referenced.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Non-memory instructions committed since the previous access.
    pub gap: u32,
    /// Whether the address depends on the previous access's loaded value.
    pub dependent: bool,
}

impl MemoryAccess {
    /// Convenience constructor for an independent load with no leading gap.
    ///
    /// # Example
    ///
    /// ```
    /// use ltc_trace::{MemoryAccess, Addr, Pc, AccessKind};
    ///
    /// let a = MemoryAccess::load(Pc(0x400000), Addr(0x80));
    /// assert_eq!(a.kind, AccessKind::Load);
    /// assert!(!a.dependent);
    /// ```
    pub fn load(pc: Pc, addr: Addr) -> Self {
        MemoryAccess { pc, addr, kind: AccessKind::Load, gap: 0, dependent: false }
    }

    /// Convenience constructor for an independent store with no leading gap.
    pub fn store(pc: Pc, addr: Addr) -> Self {
        MemoryAccess { pc, addr, kind: AccessKind::Store, gap: 0, dependent: false }
    }

    /// Returns a copy with the `gap` field replaced.
    pub fn with_gap(mut self, gap: u32) -> Self {
        self.gap = gap;
        self
    }

    /// Returns a copy marked as address-dependent on the previous access.
    pub fn with_dependent(mut self, dependent: bool) -> Self {
        self.dependent = dependent;
        self
    }

    /// Total instructions this record represents (the access itself plus the
    /// preceding non-memory gap).
    #[inline]
    pub fn instructions(&self) -> u64 {
        1 + u64::from(self.gap)
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.pc, self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_masks_low_bits() {
        assert_eq!(Addr(0xfff).line(64), Addr(0xfc0));
        assert_eq!(Addr(0x40).line(64), Addr(0x40));
        assert_eq!(Addr(0).line(64), Addr(0));
    }

    #[test]
    fn line_number_matches_shift() {
        assert_eq!(Addr(0x1000).line_number(64), 0x40);
        assert_eq!(Addr(0x103f).line_number(64), 0x40);
        assert_eq!(Addr(0x1040).line_number(64), 0x41);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn line_rejects_non_power_of_two() {
        let _ = Addr(0x100).line(48);
    }

    #[test]
    fn offset_wraps() {
        assert_eq!(Addr(u64::MAX).offset_by(1), Addr(0));
    }

    #[test]
    fn access_instruction_count_includes_gap() {
        let a = MemoryAccess::load(Pc(1), Addr(2)).with_gap(7);
        assert_eq!(a.instructions(), 8);
    }

    #[test]
    fn constructors_set_kind() {
        assert!(MemoryAccess::load(Pc(0), Addr(0)).kind.is_load());
        assert!(!MemoryAccess::store(Pc(0), Addr(0)).kind.is_load());
    }

    #[test]
    fn display_is_nonempty() {
        let a = MemoryAccess::store(Pc(0x400), Addr(0x1000));
        let s = format!("{a}");
        assert!(s.contains("store"));
        assert!(s.contains("0x1000"));
    }

    #[test]
    fn with_dependent_round_trips() {
        let a = MemoryAccess::load(Pc(1), Addr(2)).with_dependent(true);
        assert!(a.dependent);
        assert!(!a.with_dependent(false).dependent);
    }
}
