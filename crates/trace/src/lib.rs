//! Memory-reference traces and synthetic workload generation.
//!
//! This crate is the bottom substrate of the LT-cords reproduction. It defines
//! the core value types shared by every other crate ([`Addr`], [`Pc`],
//! [`MemoryAccess`]), the [`TraceSource`] abstraction that all simulators
//! consume, a library of workload *pattern primitives* ([`gen`]), and the
//! named benchmark [`suite`] that stands in for the paper's SPEC CPU2000 and
//! Olden programs.
//!
//! The paper evaluates LT-cords on traces gathered from SimpleScalar/Alpha
//! runs of SPEC CPU2000 and Olden. Those binaries and traces are not
//! available here, so each benchmark is replaced by a deterministic synthetic
//! generator that reproduces the *structural* properties LT-cords is
//! sensitive to: recurrence of miss sequences (temporal correlation),
//! footprint relative to the cache hierarchy, dependence chains (memory-level
//! parallelism), and layout regularity (which determines whether
//! delta-correlating prefetchers such as GHB PC/DC can compete).
//!
//! # Example
//!
//! ```
//! use ltc_trace::{suite, TraceSource};
//!
//! let entry = suite::by_name("mcf").expect("mcf is part of the suite");
//! let mut source = entry.build(42); // 42 is the RNG seed
//! let first = source.next_access().expect("generators are unbounded");
//! assert!(first.addr.0 < 1 << 40);
//! ```

pub mod checkpoint;
pub mod gen;
pub mod interleave;
pub mod io;
pub mod record;
pub mod segment;
pub mod source;
pub mod stats;
pub mod suite;

pub use checkpoint::{
    Checkpoint, CheckpointStore, RestoreError, SeekableSource, SourceState,
    DEFAULT_CHECKPOINT_INTERVAL,
};
pub use interleave::MultiProgram;
pub use record::{AccessKind, Addr, MemoryAccess, Pc};
pub use segment::TraceSegment;
pub use source::{BoxedSource, Replay, TakeSource, TraceSource};
pub use stats::TraceStats;
pub use suite::{SuiteEntry, WorkloadClass};
