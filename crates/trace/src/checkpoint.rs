//! Snapshot/restore checkpointing and O(K) seeking for trace sources.
//!
//! A generator's state at access `s` used to be reachable only by
//! producing the first `s` accesses. [`SourceState`] captures the
//! *mutable* part of a generator mid-stream (cursors, pass counters,
//! RNG words — never the construction-time derived tables, which a
//! fresh same-config generator rebuilds); restoring it onto such a
//! fresh generator resumes the stream element-identically. The state is
//! serializable (like the sketch `*State` types), so checkpoints cross
//! process boundaries on the worker protocol or a shared directory.
//!
//! [`SeekableSource`] layers positioning on top: it records a snapshot
//! into a [`CheckpointStore`] every `interval` accesses and answers
//! [`SeekableSource::seek`] by restoring the nearest checkpoint at or
//! before the target and generating only the residual — O(K) instead of
//! O(start). Sources that cannot checkpoint (external recordings wrapped
//! in ad-hoc adapters) degrade to the old forward-generation behaviour.
//!
//! Checkpoints are an accelerator, never a semantic change: a restored
//! stream is byte-identical to an uninterrupted one (property-tested per
//! generator in `crates/trace/tests/checkpoint_parity.rs`), so analyses
//! produce the same reports whether or not checkpoints were available.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::record::MemoryAccess;
use crate::source::TraceSource;

/// Default snapshot interval `K` for [`SeekableSource`]: seeks cost at
/// most this many generated accesses once a prefix has been covered.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 1 << 16;

/// The serializable mid-stream state of a trace source.
///
/// Each variant holds only what the matching generator mutates while
/// streaming; construction-time derived data (placements, visit orders,
/// static index tables) is rebuilt by constructing a fresh generator
/// from the same configuration before calling
/// [`TraceSource::restore`]. Mutable derived data (a chase order under
/// mutation, an indirect index array under churn) is carried only when
/// the configuration can actually have perturbed it, keeping common
/// checkpoints a few dozen bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceState {
    /// [`crate::gen::SweepGen`] state.
    Sweep {
        /// Per-array cursors (bytes within each array).
        cursors: Vec<u64>,
        /// Round-robin turn.
        turn: u64,
        /// Pass counter (selects the stride).
        pass: u64,
        /// Accesses emitted.
        access_no: u64,
        /// Gap-jitter RNG words.
        rng: [u64; 4],
    },
    /// [`crate::gen::ChaseGen`] state.
    Chase {
        /// Traversal order — present only when `mutation_rate > 0`
        /// (otherwise the constructed order is still exact).
        order: Option<Vec<u32>>,
        /// Position in the traversal order.
        pos: u64,
        /// Position in the hot-subset order.
        hot_pos: u64,
        /// Field accesses left for the current node.
        fields_left: u32,
        /// Node the field accesses belong to.
        current_node: u32,
        /// Hot/cold interleave counter.
        visit_no: u64,
        /// RNG words.
        rng: [u64; 4],
    },
    /// [`crate::gen::TreeGen`] state.
    Tree {
        /// Position in the static visit order.
        pos: u64,
        /// Field accesses left for the current node.
        fields_left: u32,
        /// Node the field accesses belong to.
        current: u32,
        /// RNG words.
        rng: [u64; 4],
    },
    /// [`crate::gen::RandomGen`] state.
    Random {
        /// Lines left in the current sequential run.
        run_left: u32,
        /// Touches left on the current line.
        touches_left: u32,
        /// Current line cursor.
        cursor: u64,
        /// RNG words.
        rng: [u64; 4],
    },
    /// [`crate::gen::HashWindowGen`] state.
    HashWindow {
        /// Byte cursor within the sliding window.
        window_cursor: u64,
        /// Window accesses since the last table probe.
        since_probe: u32,
        /// RNG words.
        rng: [u64; 4],
    },
    /// [`crate::gen::IndirectGen`] state.
    Indirect {
        /// Index array — present only when `churn > 0` (otherwise the
        /// constructed array is still exact).
        idx: Option<Vec<u32>>,
        /// Position in the index array.
        pos: u64,
        /// Gather stage (0 index load, 1 data load, 2 store).
        stage: u8,
        /// RNG words.
        rng: [u64; 4],
    },
    /// [`crate::gen::PhaseMix`] state (recursive over the phases).
    Phase {
        /// Active phase.
        current: u64,
        /// Accesses emitted by the active phase.
        emitted: u64,
        /// Sub-source states, in phase order.
        phases: Vec<SourceState>,
    },
    /// [`crate::MultiProgram`] state (recursive over the programs).
    MultiProgram {
        /// Running program.
        current: u64,
        /// Instructions left in the current quantum.
        remaining: u64,
        /// Per-program exhaustion flags.
        done: Vec<bool>,
        /// Sub-source states, in program order.
        programs: Vec<SourceState>,
    },
    /// [`crate::Replay`] state.
    Replay {
        /// Position in the recorded vector.
        pos: u64,
    },
    /// [`crate::TakeSource`] state (recursive over the inner source).
    Take {
        /// Accesses the adapter will still pass through.
        remaining: u64,
        /// Inner source state.
        inner: Box<SourceState>,
    },
}

impl SourceState {
    /// The variant name (used in mismatch errors and as the serialized
    /// tag).
    pub fn kind(&self) -> &'static str {
        match self {
            SourceState::Sweep { .. } => "sweep",
            SourceState::Chase { .. } => "chase",
            SourceState::Tree { .. } => "tree",
            SourceState::Random { .. } => "random",
            SourceState::HashWindow { .. } => "hash-window",
            SourceState::Indirect { .. } => "indirect",
            SourceState::Phase { .. } => "phase",
            SourceState::MultiProgram { .. } => "multi-program",
            SourceState::Replay { .. } => "replay",
            SourceState::Take { .. } => "take",
        }
    }
}

/// Why a [`TraceSource::restore`] call was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The source does not implement checkpointing at all.
    Unsupported,
    /// The state is for a different kind of source.
    Mismatch {
        /// Variant the source expected.
        expected: &'static str,
        /// Variant the state actually holds.
        found: &'static str,
    },
    /// The state's values do not fit the source's configuration.
    Invalid(String),
}

impl RestoreError {
    /// A variant-mismatch error against `state`.
    pub fn mismatch(expected: &'static str, state: &SourceState) -> Self {
        RestoreError::Mismatch { expected, found: state.kind() }
    }

    /// An out-of-range / wrong-shape error.
    pub fn invalid(reason: impl Into<String>) -> Self {
        RestoreError::Invalid(reason.into())
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Unsupported => write!(f, "source does not support checkpoint/restore"),
            RestoreError::Mismatch { expected, found } => {
                write!(f, "state mismatch: source expects `{expected}`, state is `{found}`")
            }
            RestoreError::Invalid(reason) => write!(f, "invalid checkpoint state: {reason}"),
        }
    }
}

impl std::error::Error for RestoreError {}

fn rng_value(words: &[u64; 4]) -> Value {
    Value::Seq(words.iter().map(|&w| Value::U64(w)).collect())
}

fn rng_field(body: &Value, ctx: &str) -> Result<[u64; 4], DeError> {
    let words: Vec<u64> = serde::field(body, "rng", ctx)?;
    <[u64; 4]>::try_from(words).map_err(|_| DeError::expected("4 rng words", ctx))
}

impl Serialize for SourceState {
    fn to_value(&self) -> Value {
        let (tag, body) = match self {
            SourceState::Sweep { cursors, turn, pass, access_no, rng } => (
                "sweep",
                Value::Map(vec![
                    ("cursors".to_string(), cursors.to_value()),
                    ("turn".to_string(), turn.to_value()),
                    ("pass".to_string(), pass.to_value()),
                    ("access_no".to_string(), access_no.to_value()),
                    ("rng".to_string(), rng_value(rng)),
                ]),
            ),
            SourceState::Chase {
                order,
                pos,
                hot_pos,
                fields_left,
                current_node,
                visit_no,
                rng,
            } => (
                "chase",
                Value::Map(vec![
                    ("order".to_string(), order.to_value()),
                    ("pos".to_string(), pos.to_value()),
                    ("hot_pos".to_string(), hot_pos.to_value()),
                    ("fields_left".to_string(), fields_left.to_value()),
                    ("current_node".to_string(), current_node.to_value()),
                    ("visit_no".to_string(), visit_no.to_value()),
                    ("rng".to_string(), rng_value(rng)),
                ]),
            ),
            SourceState::Tree { pos, fields_left, current, rng } => (
                "tree",
                Value::Map(vec![
                    ("pos".to_string(), pos.to_value()),
                    ("fields_left".to_string(), fields_left.to_value()),
                    ("current".to_string(), current.to_value()),
                    ("rng".to_string(), rng_value(rng)),
                ]),
            ),
            SourceState::Random { run_left, touches_left, cursor, rng } => (
                "random",
                Value::Map(vec![
                    ("run_left".to_string(), run_left.to_value()),
                    ("touches_left".to_string(), touches_left.to_value()),
                    ("cursor".to_string(), cursor.to_value()),
                    ("rng".to_string(), rng_value(rng)),
                ]),
            ),
            SourceState::HashWindow { window_cursor, since_probe, rng } => (
                "hash-window",
                Value::Map(vec![
                    ("window_cursor".to_string(), window_cursor.to_value()),
                    ("since_probe".to_string(), since_probe.to_value()),
                    ("rng".to_string(), rng_value(rng)),
                ]),
            ),
            SourceState::Indirect { idx, pos, stage, rng } => (
                "indirect",
                Value::Map(vec![
                    ("idx".to_string(), idx.to_value()),
                    ("pos".to_string(), pos.to_value()),
                    ("stage".to_string(), stage.to_value()),
                    ("rng".to_string(), rng_value(rng)),
                ]),
            ),
            SourceState::Phase { current, emitted, phases } => (
                "phase",
                Value::Map(vec![
                    ("current".to_string(), current.to_value()),
                    ("emitted".to_string(), emitted.to_value()),
                    ("phases".to_string(), phases.to_value()),
                ]),
            ),
            SourceState::MultiProgram { current, remaining, done, programs } => (
                "multi-program",
                Value::Map(vec![
                    ("current".to_string(), current.to_value()),
                    ("remaining".to_string(), remaining.to_value()),
                    ("done".to_string(), done.to_value()),
                    ("programs".to_string(), programs.to_value()),
                ]),
            ),
            SourceState::Replay { pos } => {
                ("replay", Value::Map(vec![("pos".to_string(), pos.to_value())]))
            }
            SourceState::Take { remaining, inner } => (
                "take",
                Value::Map(vec![
                    ("remaining".to_string(), remaining.to_value()),
                    ("inner".to_string(), inner.to_value()),
                ]),
            ),
        };
        Value::Map(vec![(tag.to_string(), body)])
    }
}

impl<'de> Deserialize<'de> for SourceState {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries =
            value.as_map().ok_or_else(|| DeError::expected("tagged map", "SourceState"))?;
        let [(tag, body)] = entries else {
            return Err(DeError::expected("single-variant map", "SourceState"));
        };
        match tag.as_str() {
            "sweep" => Ok(SourceState::Sweep {
                cursors: serde::field(body, "cursors", "SourceState::Sweep")?,
                turn: serde::field(body, "turn", "SourceState::Sweep")?,
                pass: serde::field(body, "pass", "SourceState::Sweep")?,
                access_no: serde::field(body, "access_no", "SourceState::Sweep")?,
                rng: rng_field(body, "SourceState::Sweep")?,
            }),
            "chase" => Ok(SourceState::Chase {
                order: serde::field(body, "order", "SourceState::Chase")?,
                pos: serde::field(body, "pos", "SourceState::Chase")?,
                hot_pos: serde::field(body, "hot_pos", "SourceState::Chase")?,
                fields_left: serde::field(body, "fields_left", "SourceState::Chase")?,
                current_node: serde::field(body, "current_node", "SourceState::Chase")?,
                visit_no: serde::field(body, "visit_no", "SourceState::Chase")?,
                rng: rng_field(body, "SourceState::Chase")?,
            }),
            "tree" => Ok(SourceState::Tree {
                pos: serde::field(body, "pos", "SourceState::Tree")?,
                fields_left: serde::field(body, "fields_left", "SourceState::Tree")?,
                current: serde::field(body, "current", "SourceState::Tree")?,
                rng: rng_field(body, "SourceState::Tree")?,
            }),
            "random" => Ok(SourceState::Random {
                run_left: serde::field(body, "run_left", "SourceState::Random")?,
                touches_left: serde::field(body, "touches_left", "SourceState::Random")?,
                cursor: serde::field(body, "cursor", "SourceState::Random")?,
                rng: rng_field(body, "SourceState::Random")?,
            }),
            "hash-window" => Ok(SourceState::HashWindow {
                window_cursor: serde::field(body, "window_cursor", "SourceState::HashWindow")?,
                since_probe: serde::field(body, "since_probe", "SourceState::HashWindow")?,
                rng: rng_field(body, "SourceState::HashWindow")?,
            }),
            "indirect" => Ok(SourceState::Indirect {
                idx: serde::field(body, "idx", "SourceState::Indirect")?,
                pos: serde::field(body, "pos", "SourceState::Indirect")?,
                stage: serde::field(body, "stage", "SourceState::Indirect")?,
                rng: rng_field(body, "SourceState::Indirect")?,
            }),
            "phase" => Ok(SourceState::Phase {
                current: serde::field(body, "current", "SourceState::Phase")?,
                emitted: serde::field(body, "emitted", "SourceState::Phase")?,
                phases: serde::field(body, "phases", "SourceState::Phase")?,
            }),
            "multi-program" => Ok(SourceState::MultiProgram {
                current: serde::field(body, "current", "SourceState::MultiProgram")?,
                remaining: serde::field(body, "remaining", "SourceState::MultiProgram")?,
                done: serde::field(body, "done", "SourceState::MultiProgram")?,
                programs: serde::field(body, "programs", "SourceState::MultiProgram")?,
            }),
            "replay" => {
                Ok(SourceState::Replay { pos: serde::field(body, "pos", "SourceState::Replay")? })
            }
            "take" => Ok(SourceState::Take {
                remaining: serde::field(body, "remaining", "SourceState::Take")?,
                inner: Box::new(serde::field(body, "inner", "SourceState::Take")?),
            }),
            other => Err(DeError(format!("unknown SourceState variant `{other}`"))),
        }
    }
}

/// A positioned snapshot: restoring `state` onto a fresh same-config
/// source makes the *next* produced access the `pos`-th of the stream
/// (0-based).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Accesses the source had produced when the snapshot was taken.
    pub pos: u64,
    /// The snapshot itself.
    pub state: SourceState,
}

/// An ordered collection of [`Checkpoint`]s for one logical stream.
///
/// Kept sorted by position; [`CheckpointStore::nearest_at_or_before`]
/// answers the seek query. Serializable, so a store can be computed once
/// and shared across worker processes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckpointStore {
    checkpoints: Vec<Checkpoint>,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Number of checkpoints held.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Inserts a checkpoint, replacing any existing one at the same
    /// position.
    pub fn insert(&mut self, checkpoint: Checkpoint) {
        match self.checkpoints.binary_search_by_key(&checkpoint.pos, |c| c.pos) {
            Ok(i) => self.checkpoints[i] = checkpoint,
            Err(i) => self.checkpoints.insert(i, checkpoint),
        }
    }

    /// The checkpoint recorded exactly at `pos`, if any.
    pub fn at(&self, pos: u64) -> Option<&Checkpoint> {
        self.checkpoints.binary_search_by_key(&pos, |c| c.pos).ok().map(|i| &self.checkpoints[i])
    }

    /// The latest checkpoint at or before `pos` — the seek entry point.
    pub fn nearest_at_or_before(&self, pos: u64) -> Option<&Checkpoint> {
        match self.checkpoints.binary_search_by_key(&pos, |c| c.pos) {
            Ok(i) => Some(&self.checkpoints[i]),
            Err(0) => None,
            Err(i) => Some(&self.checkpoints[i - 1]),
        }
    }

    /// Iterates the checkpoints in position order.
    pub fn iter(&self) -> impl Iterator<Item = &Checkpoint> {
        self.checkpoints.iter()
    }
}

/// A [`TraceSource`] wrapper that can [`seek`](SeekableSource::seek) in
/// O(K) by checkpointing every `interval` accesses.
///
/// While streaming, a snapshot is recorded whenever the position crosses
/// an interval boundary (including position 0 at construction), so any
/// already-covered prefix can be re-entered at interval granularity. A
/// seek restores the nearest checkpoint at or before the target and
/// generates the residual. Sources whose [`TraceSource::checkpoint`]
/// returns `None` degrade gracefully: forward seeks generate the whole
/// distance (the old O(start) behaviour) and backward seeks fail.
#[derive(Debug)]
pub struct SeekableSource<S> {
    inner: S,
    pos: u64,
    interval: u64,
    store: CheckpointStore,
    checkpointable: bool,
}

impl<S: TraceSource> SeekableSource<S> {
    /// Wraps `inner` with the [`DEFAULT_CHECKPOINT_INTERVAL`].
    pub fn new(inner: S) -> Self {
        Self::with_interval(inner, DEFAULT_CHECKPOINT_INTERVAL)
    }

    /// Wraps `inner`, snapshotting every `interval` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_interval(inner: S, interval: u64) -> Self {
        Self::with_store(inner, interval, CheckpointStore::new())
    }

    /// Wraps a **freshly constructed** `inner` (at stream position 0)
    /// with a pre-populated store — e.g. checkpoints computed by another
    /// worker and shipped over the worker protocol. The store's
    /// checkpoints must have been taken from an identically configured
    /// source; [`TraceSource::restore`] rejects shape mismatches, but
    /// cannot detect a wrong seed.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_store(inner: S, interval: u64, store: CheckpointStore) -> Self {
        assert!(interval > 0, "checkpoint interval must be non-zero");
        let mut s = SeekableSource {
            checkpointable: inner.checkpoint().is_some(),
            inner,
            pos: 0,
            interval,
            store,
        };
        s.record();
        s
    }

    /// Accesses produced so far (the index of the next access).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The accumulated checkpoints.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Consumes the wrapper, returning the accumulated checkpoints.
    pub fn into_store(self) -> CheckpointStore {
        self.store
    }

    /// Records a snapshot at the current position if none exists yet.
    fn record(&mut self) {
        if !self.checkpointable || self.store.at(self.pos).is_some() {
            return;
        }
        if let Some(state) = self.inner.checkpoint() {
            self.store.insert(Checkpoint { pos: self.pos, state });
        }
    }

    /// Positions the stream so the next access produced is the
    /// `target`-th (0-based), restoring the nearest checkpoint at or
    /// before the target and generating only the residual. Returns the
    /// number of residual accesses generated.
    ///
    /// # Errors
    ///
    /// Returns an error when the target lies behind the current position
    /// and no usable checkpoint exists (non-checkpointable source), or
    /// when restoring a checkpoint fails; the source should be discarded
    /// after an error.
    pub fn seek(&mut self, target: u64) -> Result<u64, RestoreError> {
        if target != self.pos {
            let restore_from = self
                .store
                .nearest_at_or_before(target)
                .filter(|c| target < self.pos || c.pos > self.pos)
                .cloned();
            if let Some(c) = restore_from {
                self.inner.restore(&c.state)?;
                self.pos = c.pos;
            } else if target < self.pos {
                return Err(RestoreError::Unsupported);
            }
        }
        let mut generated = 0;
        while self.pos < target {
            if self.next_access().is_none() {
                break;
            }
            generated += 1;
        }
        Ok(generated)
    }
}

impl<S: TraceSource> TraceSource for SeekableSource<S> {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        if self.pos % self.interval == 0 {
            self.record();
        }
        let a = self.inner.next_access();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Addr, Pc};
    use crate::source::Replay;

    fn numbered(n: u64) -> Replay {
        Replay::once((0..n).map(|i| MemoryAccess::load(Pc(i), Addr(i * 64))).collect())
    }

    #[test]
    fn seek_forward_and_backward_lands_exactly() {
        let mut s = SeekableSource::with_interval(numbered(100), 10);
        assert_eq!(s.seek(37).unwrap(), 37);
        assert_eq!(s.next_access().unwrap().pc, Pc(37));
        // Backward: restores the checkpoint at 30 and generates 2.
        assert_eq!(s.seek(32).unwrap(), 2);
        assert_eq!(s.next_access().unwrap().pc, Pc(32));
        // Forward over covered ground uses the nearest later checkpoint.
        assert!(s.seek(95).unwrap() <= 95);
        assert_eq!(s.next_access().unwrap().pc, Pc(95));
    }

    #[test]
    fn checkpoints_accumulate_at_interval_boundaries() {
        let mut s = SeekableSource::with_interval(numbered(50), 8);
        while s.next_access().is_some() {}
        // Positions 0, 8, 16, 24, 32, 40, 48.
        assert_eq!(s.store().len(), 7);
        assert_eq!(s.store().nearest_at_or_before(23).unwrap().pos, 16);
        assert_eq!(s.store().nearest_at_or_before(7).unwrap().pos, 0);
        assert!(s.store().at(9).is_none());
    }

    #[test]
    fn seek_past_end_stops_at_exhaustion() {
        let mut s = SeekableSource::with_interval(numbered(10), 4);
        assert_eq!(s.seek(25).unwrap(), 10);
        assert!(s.next_access().is_none());
    }

    #[test]
    fn store_round_trips_through_serde() {
        let mut s = SeekableSource::with_interval(numbered(20), 5);
        while s.next_access().is_some() {}
        let store = s.into_store();
        let value = store.to_value();
        let parsed = CheckpointStore::from_value(&value).unwrap();
        assert_eq!(parsed, store);
    }

    #[test]
    fn prepopulated_store_skips_generation() {
        let mut first = SeekableSource::with_interval(numbered(40), 10);
        while first.next_access().is_some() {}
        let store = first.into_store();
        let mut second = SeekableSource::with_store(numbered(40), 10, store);
        // 35 sits 5 past the checkpoint at 30: only 5 residual accesses.
        assert_eq!(second.seek(35).unwrap(), 5);
        assert_eq!(second.next_access().unwrap().pc, Pc(35));
    }

    /// A source with no checkpoint support: forward seeks degrade to
    /// generation, backward seeks fail.
    struct Opaque(Replay);

    impl TraceSource for Opaque {
        fn next_access(&mut self) -> Option<MemoryAccess> {
            self.0.next_access()
        }
    }

    #[test]
    fn non_checkpointable_sources_degrade_to_forward_generation() {
        let mut s = SeekableSource::with_interval(Opaque(numbered(30)), 4);
        assert_eq!(s.seek(12).unwrap(), 12);
        assert_eq!(s.store().len(), 0);
        assert_eq!(s.next_access().unwrap().pc, Pc(12));
        assert_eq!(s.seek(5), Err(RestoreError::Unsupported));
    }

    #[test]
    fn restore_error_displays_each_variant() {
        let state = SourceState::Replay { pos: 3 };
        assert!(RestoreError::mismatch("sweep", &state).to_string().contains("replay"));
        assert!(RestoreError::invalid("nope").to_string().contains("nope"));
        assert!(!RestoreError::Unsupported.to_string().is_empty());
    }
}
